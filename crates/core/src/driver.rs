//! High-level dense driver: factor any M × N matrix (no tile-divisibility
//! requirement) with a chosen HQR configuration.
//!
//! The tile engine works on whole b × b tiles, as the paper's experiments
//! do (M = m·b exactly). For arbitrary dimensions this driver pads the
//! matrix with zero rows/columns up to the next tile boundary — a
//! mathematically exact reduction: appending zero rows leaves R and the
//! leading M rows of Q unchanged (the extra Householder components are
//! identity), and appending zero columns appends zero columns to R.

use crate::elim::ElimList;
use crate::factor::{qr_factorize_ib, Execution, QrFactorization};
use crate::hier::HqrConfig;
use hqr_kernels::Trans;
use hqr_tile::{DenseMatrix, TiledMatrix};

/// A dense-matrix QR factorization computed through the tile engine.
///
/// ```
/// use hqr::prelude::*;
/// // 26×10 is not a multiple of the tile size 4 — the driver pads.
/// let a = DenseMatrix::random(26, 10, 1);
/// let qr = DenseQr::compute(&a, 4, HqrConfig::new(2, 1).with_a(2), Execution::Serial);
/// let err = a.sub(&qr.q_thin().matmul(&qr.r())).frob_norm();
/// assert!(err < 1e-12 * a.frob_norm());
/// ```
pub struct DenseQr {
    fac: QrFactorization,
    m: usize,
    n: usize,
}

impl DenseQr {
    /// Factor `a` (M × N, M ≥ N) with tile size `b` under `config`,
    /// executing with `exec`. Dimensions need not divide `b`.
    pub fn compute(a: &DenseMatrix, b: usize, config: HqrConfig, exec: Execution) -> Self {
        Self::compute_ib(a, b, config, exec, b)
    }

    /// [`DenseQr::compute`] with inner blocking.
    pub fn compute_ib(
        a: &DenseMatrix,
        b: usize,
        config: HqrConfig,
        exec: Execution,
        ib: usize,
    ) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "dense driver expects M >= N (least-squares orientation)");
        assert!(b > 0, "tile size must be positive");
        let mt = m.div_ceil(b).max(1);
        let nt = n.div_ceil(b).max(1);
        let mut padded = DenseMatrix::zeros(mt * b, nt * b);
        for j in 0..n {
            for i in 0..m {
                padded.set(i, j, a.get(i, j));
            }
        }
        let mut tiled = TiledMatrix::from_dense(&padded, b);
        let elims: ElimList = config.elimination_list(mt, nt);
        let fac = qr_factorize_ib(&mut tiled, &elims, exec, ib);
        DenseQr { fac, m, n }
    }

    /// Original row count.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Original column count.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The underlying tile factorization (padded shapes).
    pub fn tile_factorization(&self) -> &QrFactorization {
        &self.fac
    }

    /// The N × N upper-triangular R factor of the original matrix.
    pub fn r(&self) -> DenseMatrix {
        let rp = self.fac.r_dense();
        let mut r = DenseMatrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for i in 0..=j {
                r.set(i, j, rp.get(i, j));
            }
        }
        r
    }

    /// The M × N thin Q factor of the original matrix.
    pub fn q_thin(&self) -> DenseMatrix {
        let qp = self.fac.q_thin_dense();
        let mut q = DenseMatrix::zeros(self.m, self.n);
        for j in 0..self.n {
            for i in 0..self.m {
                q.set(i, j, qp.get(i, j));
            }
        }
        q
    }

    /// Solve min‖A·x − rhs‖₂ for each column of `rhs` (M × nrhs).
    ///
    /// Back-substitutes only the leading N × N block of R (the padded
    /// columns of the tile factorization are structurally zero and take no
    /// part in the solution). Panics if R is singular; see
    /// [`Self::try_solve_least_squares`].
    pub fn solve_least_squares(&self, rhs: &DenseMatrix) -> DenseMatrix {
        match self.try_solve_least_squares(rhs) {
            Ok(x) => x,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::solve_least_squares`]: returns
    /// [`hqr_kernels::KernelError::SingularR`] on a rank-deficient R
    /// instead of panicking.
    pub fn try_solve_least_squares(
        &self,
        rhs: &DenseMatrix,
    ) -> Result<DenseMatrix, hqr_kernels::KernelError> {
        assert_eq!(rhs.rows(), self.m, "rhs must have M rows");
        let (n, nrhs) = (self.n, rhs.cols());
        let qtb = self.qt_times(rhs);
        let r = self.r();
        let mut r_sq = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..=j {
                r_sq[i + j * n] = r.get(i, j);
            }
        }
        let mut x = vec![0.0; n * nrhs];
        for j in 0..nrhs {
            for i in 0..n {
                x[i + j * n] = qtb.get(i, j);
            }
        }
        hqr_kernels::blas::try_trsm_upper(n, nrhs, &r_sq, &mut x)?;
        Ok(DenseMatrix::from_col_major(n, nrhs, &x))
    }

    /// Compute Qᵀ·c for a dense M × nc matrix (returns the full padded
    /// row space truncated back to M rows).
    pub fn qt_times(&self, c: &DenseMatrix) -> DenseMatrix {
        assert_eq!(c.rows(), self.m, "C must have M rows");
        let fac = &self.fac;
        let (mp, b) = (fac.factored().rows(), fac.factored().b());
        let ntc = c.cols().div_ceil(b).max(1);
        let mut padded = DenseMatrix::zeros(mp, ntc * b);
        for j in 0..c.cols() {
            for i in 0..self.m {
                padded.set(i, j, c.get(i, j));
            }
        }
        let mut tiled = TiledMatrix::from_dense(&padded, b);
        fac.apply_q(&mut tiled, Trans::Trans);
        let full = tiled.to_dense();
        let mut out = DenseMatrix::zeros(self.m, c.cols());
        for j in 0..c.cols() {
            for i in 0..self.m {
                out.set(i, j, full.get(i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::TreeKind;

    fn cfg() -> HqrConfig {
        HqrConfig::new(2, 1).with_a(2).with_low(TreeKind::Greedy).with_domino(true)
    }

    fn check_dense_qr(m: usize, n: usize, b: usize, seed: u64) {
        let a = DenseMatrix::random(m, n, seed);
        let qr = DenseQr::compute(&a, b, cfg(), Execution::Serial);
        let q = qr.q_thin();
        let r = qr.r();
        assert_eq!(q.rows(), m);
        assert_eq!(q.cols(), n);
        assert_eq!(r.rows(), n);
        assert!(q.orthogonality_error() < 1e-12 * (m as f64), "Q not orthonormal");
        let recon = q.matmul(&r);
        let err = a.sub(&recon).frob_norm() / a.frob_norm().max(1.0);
        assert!(err < 1e-12, "{m}x{n} b={b}: reconstruction error {err}");
        assert_eq!(r.max_abs_below_diagonal(), 0.0);
    }

    #[test]
    fn exact_tile_multiples() {
        check_dense_qr(24, 12, 4, 1);
    }

    #[test]
    fn ragged_rows() {
        check_dense_qr(26, 12, 4, 2);
        check_dense_qr(25, 12, 4, 3);
    }

    #[test]
    fn ragged_cols() {
        check_dense_qr(24, 10, 4, 4);
        check_dense_qr(24, 9, 4, 5);
    }

    #[test]
    fn ragged_both() {
        check_dense_qr(27, 11, 4, 6);
        check_dense_qr(13, 5, 4, 7);
    }

    #[test]
    fn tiny_matrices() {
        check_dense_qr(1, 1, 4, 8);
        check_dense_qr(3, 2, 4, 9);
        check_dense_qr(5, 5, 4, 10);
    }

    #[test]
    fn tile_bigger_than_matrix() {
        check_dense_qr(3, 2, 8, 11);
    }

    #[test]
    fn least_squares_on_ragged() {
        let (m, n, b) = (29usize, 7usize, 4usize);
        let a = DenseMatrix::random(m, n, 12);
        let x_true = DenseMatrix::random(n, 2, 13);
        let rhs = a.matmul(&x_true);
        let qr = DenseQr::compute(&a, b, cfg(), Execution::Serial);
        let x = qr.solve_least_squares(&rhs);
        assert!(x.sub(&x_true).frob_norm() < 1e-9, "err {}", x.sub(&x_true).frob_norm());
    }

    #[test]
    fn qt_times_reproduces_r_on_a() {
        let (m, n, b) = (18usize, 6usize, 4usize);
        let a = DenseMatrix::random(m, n, 14);
        let qr = DenseQr::compute(&a, b, cfg(), Execution::Serial);
        let qta = qr.qt_times(&a);
        let r = qr.r();
        for j in 0..n {
            for i in 0..n.min(m) {
                let expect = if i <= j { r.get(i, j) } else { 0.0 };
                assert!((qta.get(i, j) - expect).abs() < 1e-11, "({i},{j})");
            }
        }
    }

    #[test]
    fn inner_blocked_dense_driver() {
        let a = DenseMatrix::random(21, 9, 15);
        let qr = DenseQr::compute_ib(&a, 4, cfg(), Execution::Parallel(3), 2);
        let q = qr.q_thin();
        let recon = q.matmul(&qr.r());
        assert!(a.sub(&recon).frob_norm() < 1e-12 * a.frob_norm());
    }

    #[test]
    #[should_panic(expected = "M >= N")]
    fn wide_rejected() {
        let a = DenseMatrix::random(4, 9, 16);
        let _ = DenseQr::compute(&a, 4, cfg(), Execution::Serial);
    }
}
