//! Downstream use of the factorization: least-squares solving and explicit
//! thin-Q generation — the operations the QR factorization exists to serve
//! ("the QR factorization algorithm ... is ubiquitous in high-performance
//! computing applications", §I).

use crate::factor::QrFactorization;
use hqr_kernels::blas::try_trsm_upper;
use hqr_kernels::{KernelError, Trans};
use hqr_tile::{DenseMatrix, TiledMatrix};

impl QrFactorization {
    /// Dimensions (elements) of the factored matrix.
    fn dims(&self) -> (usize, usize, usize) {
        let a = self.factored();
        (a.rows(), a.cols(), a.b())
    }

    /// Explicit thin Q (M × N, orthonormal columns): apply the reverse
    /// trees to the first N columns of the identity (LAPACK `dorgqr`).
    pub fn q_thin_dense(&self) -> DenseMatrix {
        let a = self.factored();
        let mut q = TiledMatrix::identity(a.mt(), a.nt(), a.b());
        self.apply_q(&mut q, Trans::NoTrans);
        q.to_dense()
    }

    /// Solve the least-squares problem min‖A·x − b‖₂ for each column of
    /// `rhs` (requires M ≥ N and full-rank R): x = R₁⁻¹·(Qᵀb)₁.
    ///
    /// Panics if R is singular; use [`Self::try_solve_least_squares`] to
    /// get a typed error instead.
    pub fn solve_least_squares(&self, rhs: &DenseMatrix) -> DenseMatrix {
        match self.try_solve_least_squares(rhs) {
            Ok(x) => x,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::solve_least_squares`]: returns
    /// [`KernelError::SingularR`] when back-substitution meets a zero
    /// diagonal, instead of panicking — so services can fail one request
    /// rather than the process.
    pub fn try_solve_least_squares(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, KernelError> {
        let (m, n, b) = self.dims();
        assert!(m >= n, "least squares requires M >= N");
        assert_eq!(rhs.rows(), m, "rhs must have M rows");
        let nrhs = rhs.cols();
        // Pad the right-hand sides into whole tiles.
        let nt_rhs = nrhs.div_ceil(b).max(1);
        let mut c = TiledMatrix::zeros(m / b, nt_rhs, b);
        for j in 0..nrhs {
            for i in 0..m {
                c.tile_mut(i / b, j / b)[i % b + (j % b) * b] = rhs.get(i, j);
            }
        }
        // Qᵀ·b through the stored reflectors (forward trees).
        self.apply_q(&mut c, Trans::Trans);
        let qtb = c.to_dense();
        // Back-substitute with the N×N leading block of R.
        let r = self.r_dense();
        let mut r_sq = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..=j {
                r_sq[i + j * n] = r.get(i, j);
            }
        }
        let mut x = vec![0.0; n * nrhs];
        for j in 0..nrhs {
            for i in 0..n {
                x[i + j * n] = qtb.get(i, j);
            }
        }
        try_trsm_upper(n, nrhs, &r_sq, &mut x)?;
        Ok(DenseMatrix::from_col_major(n, nrhs, &x))
    }

    /// Residual norm ‖A·x − b‖₂ per right-hand side, given the original
    /// dense A (diagnostic companion to [`Self::solve_least_squares`]).
    pub fn residual_norms(a0: &DenseMatrix, x: &DenseMatrix, rhs: &DenseMatrix) -> Vec<f64> {
        let ax = a0.matmul(x);
        (0..rhs.cols())
            .map(|j| {
                (0..rhs.rows()).map(|i| (ax.get(i, j) - rhs.get(i, j)).powi(2)).sum::<f64>().sqrt()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{qr_factorize, Execution};
    use crate::hier::HqrConfig;
    use crate::schedule::Schedule;

    fn factorize(mt: usize, nt: usize, b: usize, seed: u64) -> (DenseMatrix, QrFactorization) {
        let elims = HqrConfig::new(2, 1).with_a(2).with_domino(true).elimination_list(mt, nt);
        let mut a = TiledMatrix::random(mt, nt, b, seed);
        let a0 = a.to_dense();
        let f = qr_factorize(&mut a, &elims, Execution::Serial);
        (a0, f)
    }

    #[test]
    fn thin_q_has_orthonormal_columns() {
        let (_, f) = factorize(6, 2, 4, 31);
        let q = f.q_thin_dense();
        assert_eq!(q.rows(), 24);
        assert_eq!(q.cols(), 8);
        assert!(q.orthogonality_error() < 1e-13);
    }

    #[test]
    fn thin_q_times_r_reconstructs_a() {
        let (a0, f) = factorize(5, 2, 4, 32);
        let q = f.q_thin_dense();
        let r = f.r_dense();
        // thin Q (M×N) times the N×N leading block of R.
        let mut r_sq = DenseMatrix::zeros(8, 8);
        for j in 0..8 {
            for i in 0..=j {
                r_sq.set(i, j, r.get(i, j));
            }
        }
        let qr = q.matmul(&r_sq);
        assert!(a0.sub(&qr).frob_norm() < 1e-12 * a0.frob_norm());
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Consistent system: b = A·x_true → residual 0, x == x_true.
        let (a0, f) = factorize(6, 2, 4, 33);
        let x_true = DenseMatrix::random(8, 3, 34);
        let b = a0.matmul(&x_true);
        let x = f.solve_least_squares(&b);
        assert!(x.sub(&x_true).frob_norm() < 1e-10, "err {}", x.sub(&x_true).frob_norm());
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_range() {
        // Overdetermined random b: the residual must satisfy Aᵀ(Ax−b) ≈ 0.
        let (a0, f) = factorize(8, 2, 4, 35);
        let b = DenseMatrix::random(32, 2, 36);
        let x = f.solve_least_squares(&b);
        let ax = a0.matmul(&x);
        let resid = ax.sub(&b);
        let normal = a0.transpose().matmul(&resid);
        assert!(
            normal.max_abs() < 1e-10 * b.frob_norm(),
            "normal equations violated: {}",
            normal.max_abs()
        );
    }

    #[test]
    fn least_squares_beats_no_solution() {
        let (a0, f) = factorize(6, 1, 4, 37);
        let b = DenseMatrix::random(24, 1, 38);
        let x = f.solve_least_squares(&b);
        let norms = QrFactorization::residual_norms(&a0, &x, &b);
        // Any perturbed x must do no better.
        let mut xp = x.clone();
        xp.set(0, 0, xp.get(0, 0) + 0.1);
        let worse = QrFactorization::residual_norms(&a0, &xp, &b);
        assert!(norms[0] <= worse[0] + 1e-12);
    }

    #[test]
    fn works_with_any_tree() {
        let (mt, nt, b) = (6usize, 2usize, 4usize);
        let elims = Schedule::greedy(mt, nt).to_elim_list(false);
        let mut a = TiledMatrix::random(mt, nt, b, 39);
        let a0 = a.to_dense();
        let f = qr_factorize(&mut a, &elims, Execution::Serial);
        let x_true = DenseMatrix::random(nt * b, 1, 40);
        let bvec = a0.matmul(&x_true);
        let x = f.solve_least_squares(&bvec);
        assert!(x.sub(&x_true).frob_norm() < 1e-10);
    }

    #[test]
    fn singular_r_is_a_typed_error_not_a_panic() {
        // Zero out the first column everywhere: R(0,0) becomes exactly 0.
        let elims = HqrConfig::new(2, 1).with_a(2).with_domino(true).elimination_list(6, 2);
        let mut a = TiledMatrix::random(6, 2, 4, 43);
        for ti in 0..6 {
            let tile = a.tile_mut(ti, 0);
            for x in tile.iter_mut().take(4) {
                *x = 0.0;
            }
        }
        let f = qr_factorize(&mut a, &elims, Execution::Serial);
        let b = DenseMatrix::random(24, 1, 44);
        let err = f.try_solve_least_squares(&b).unwrap_err();
        assert_eq!(err, hqr_kernels::KernelError::SingularR { index: 0 });
    }

    #[test]
    #[should_panic(expected = "M >= N")]
    fn wide_systems_rejected() {
        let elims = Schedule::flat(2, 3).to_elim_list(true);
        let mut a = TiledMatrix::random(2, 3, 4, 41);
        let f = qr_factorize(&mut a, &elims, Execution::Serial);
        let b = DenseMatrix::random(8, 1, 42);
        let _ = f.solve_least_squares(&b);
    }
}
