//! The comparison algorithms of §V, each expressed as a parametrization of
//! the HQR engine — exactly as the paper does ("Since \[SLHD10\] is a
//! sub-case of the HQR algorithm, we use our DAGUE-based implementation of
//! HQR to execute it", §V-A).

use crate::elim::ElimList;
use crate::hier::HqrConfig;
use crate::trees::TreeKind;
use hqr_tile::{Layout, ProcessGrid};

/// An algorithm plus the data layout it runs on — everything the simulator
/// and the real runtime need.
#[derive(Clone, Debug)]
pub struct AlgorithmSetup {
    /// Display name (as in the paper's figure legends).
    pub name: String,
    /// The elimination list.
    pub elims: ElimList,
    /// Tile-to-node mapping.
    pub layout: Layout,
}

/// \[BBD+10\]: "the QR operation currently available in DAGUE" — a plain
/// flat tree (single killer per panel, TS kernels) over a 2D block-cyclic
/// layout, not aware of the distribution (§V-A).
pub fn bbd10(mt: usize, nt: usize, grid: ProcessGrid) -> AlgorithmSetup {
    let cfg = HqrConfig::new(1, 1).with_a(mt.max(1));
    AlgorithmSetup {
        name: "[BBD+10]".into(),
        elims: cfg.elimination_list(mt, nt),
        layout: Layout::Cyclic2D(grid),
    }
}

/// \[SLHD10\]: Song et al.'s communication-avoiding QR — "virtual grid value
/// p = 1, domains of size a = m/r, data distribution CYCLIC(a), low-level
/// binary tree" (§V-A) on a 1D block layout of `r` nodes.
pub fn slhd10(mt: usize, nt: usize, r: usize) -> AlgorithmSetup {
    assert!(r > 0, "need at least one node");
    let a = mt.div_ceil(r).max(1);
    let cfg = HqrConfig::new(1, 1).with_a(a).with_low(TreeKind::Binary);
    AlgorithmSetup {
        name: "[SLHD10]".into(),
        elims: cfg.elimination_list(mt, nt),
        layout: Layout::BlockCyclicRows { nodes: r, block: a },
    }
}

/// HQR with an explicit configuration on a virtual grid mapped 1:1 to the
/// physical grid (§V-A: "All HQR runs use a virtual cluster grid exactly
/// mapping the process grid used for data distribution").
pub fn hqr(mt: usize, nt: usize, grid: ProcessGrid, cfg: HqrConfig) -> AlgorithmSetup {
    assert_eq!((cfg.p, cfg.q), (grid.p, grid.q), "virtual grid must map the process grid");
    AlgorithmSetup {
        name: cfg.describe(),
        elims: cfg.elimination_list(mt, nt),
        layout: Layout::Cyclic2D(grid),
    }
}

/// HQR with a physical data layout *decoupled* from the virtual grid —
/// §IV-A: "The actual (physical) distribution of tiles to clusters needs
/// not obey the virtual p × q cluster grid... This additional flexibility
/// allows us to execute all previously published algorithms simply by
/// tuning the actual distribution parameters."
pub fn hqr_with_layout(mt: usize, nt: usize, cfg: HqrConfig, layout: Layout) -> AlgorithmSetup {
    AlgorithmSetup {
        name: format!("{} on {:?}", cfg.describe(), layout),
        elims: cfg.elimination_list(mt, nt),
        layout,
    }
}

/// The tall-and-skinny tuning of Figure 8: both trees FIBONACCI, a = 4,
/// domino on (§V-C: "we need low and high level trees adapted for tall and
/// skinny matrices so we set both level trees to FIBONACCI ... we set
/// a = 4 ... we activate the domino optimization").
pub fn hqr_tall_skinny(mt: usize, nt: usize, grid: ProcessGrid) -> AlgorithmSetup {
    let cfg = HqrConfig::new(grid.p, grid.q)
        .with_a(4.min(mt.max(1)))
        .with_low(TreeKind::Fibonacci)
        .with_high(TreeKind::Fibonacci)
        .with_domino(true);
    hqr(mt, nt, grid, cfg)
}

/// The square-matrix tuning of Figure 9: high-level FLATTREE (fewer
/// inter-node messages once parallelism is abundant), low-level FIBONACCI,
/// a = 4, domino off (§V-C).
pub fn hqr_square(mt: usize, nt: usize, grid: ProcessGrid) -> AlgorithmSetup {
    let cfg = HqrConfig::new(grid.p, grid.q)
        .with_a(4.min(mt.max(1)))
        .with_low(TreeKind::Fibonacci)
        .with_high(TreeKind::Flat)
        .with_domino(false);
    hqr(mt, nt, grid, cfg)
}

/// The shape-adaptive choice used for the Figure 9 sweep: §V-C picks a and
/// the domino per aspect ratio — a = 1 and domino on while columns are
/// scarce, a = 4 and domino off once column parallelism suffices.
pub fn hqr_adaptive(mt: usize, nt: usize, grid: ProcessGrid) -> AlgorithmSetup {
    // "Depending on the value of N, we choose different values for a:
    // a = 1 for small values of N, and a = 4 for larger values."
    let tall = mt >= 4 * nt;
    if tall {
        hqr_tall_skinny(mt, nt, grid)
    } else {
        hqr_square(mt, nt, grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::Level;

    #[test]
    fn bbd10_is_single_killer_flat() {
        let s = bbd10(8, 3, ProcessGrid::new(2, 2));
        for k in 0..3 {
            for e in s.elims.panel(k) {
                assert_eq!(e.killer as usize, k, "flat tree: diagonal kills everything");
                assert!(e.ts);
            }
        }
        assert_eq!(s.layout.nodes(), 4);
    }

    #[test]
    fn slhd10_has_r_domains_and_binary_combine() {
        let s = slhd10(16, 2, 4);
        // Domain heads: rows 0, 4, 8, 12 in panel 0; the inter-domain
        // reduction is a binary tree of TT kills among the heads.
        let heads: Vec<u32> =
            s.elims.panel(0).filter(|e| e.level == Level::Low).map(|e| e.victim).collect();
        assert_eq!(heads.len(), 3, "3 of 4 heads killed");
        for h in heads {
            assert_eq!(h % 4, 0, "only domain heads are TT victims, got {h}");
        }
        // 1D block layout: rows 0..3 on node 0, 4..7 on node 1, ...
        assert_eq!(s.layout.owner(0, 0), 0);
        assert_eq!(s.layout.owner(5, 1), 1);
        assert_eq!(s.layout.owner(15, 0), 3);
    }

    #[test]
    fn slhd10_ragged_rows() {
        // mt not divisible by r still validates.
        let s = slhd10(13, 3, 4);
        assert_eq!(s.elims.mt(), 13);
    }

    #[test]
    fn hqr_presets_validate_on_many_shapes() {
        let grid = ProcessGrid::new(3, 2);
        for (mt, nt) in [(24, 4), (12, 12), (6, 10), (1, 1)] {
            let _ = hqr_tall_skinny(mt, nt, grid);
            let _ = hqr_square(mt, nt, grid);
            let _ = hqr_adaptive(mt, nt, grid);
        }
    }

    #[test]
    fn adaptive_switches_with_shape() {
        let grid = ProcessGrid::new(3, 2);
        let tall = hqr_adaptive(64, 4, grid);
        let square = hqr_adaptive(16, 16, grid);
        assert!(tall.name.contains("domino=on"));
        assert!(square.name.contains("domino=off"));
        assert!(square.name.contains("high=flat"));
    }

    #[test]
    #[should_panic(expected = "virtual grid must map")]
    fn hqr_grid_mismatch_rejected() {
        let cfg = HqrConfig::new(2, 2);
        let _ = hqr(8, 4, ProcessGrid::new(3, 2), cfg);
    }

    #[test]
    fn decoupled_layout_reproduces_slhd10() {
        // §IV-A's worked example: [2] on r processors = virtual p = 1,
        // domains a = m/r, physical CYCLIC(a).
        let (mt, nt, r) = (16usize, 3usize, 4usize);
        let a = mt / r;
        let cfg = HqrConfig::new(1, 1).with_a(a).with_low(crate::trees::TreeKind::Binary);
        let via_general =
            hqr_with_layout(mt, nt, cfg, Layout::BlockCyclicRows { nodes: r, block: a });
        let canonical = slhd10(mt, nt, r);
        assert_eq!(via_general.elims.to_ops(), canonical.elims.to_ops());
        assert_eq!(via_general.layout, canonical.layout);
    }
}
