//! Coarse-grain unit-time schedules (§III-A/B, Tables I–IV).
//!
//! "Dealing with a coarse-grain model where each elimination requires one
//! time unit ... allows us to understand the main principles that guide the
//! design of tiled QR algorithms." Each elimination occupies its victim and
//! its killer for one time step; a row becomes ready for panel k one step
//! after its panel-(k−1) elimination completes.
//!
//! * [`Schedule::flat`], [`Schedule::binary`], [`Schedule::fibonacci`] —
//!   per-panel tree pairings timed by the earliest-start recurrence
//!   (reproducing Tables I–III);
//! * [`Schedule::greedy`] — the globally greedy algorithm: "at each step,
//!   eliminates as many tiles as possible in each column, starting with
//!   bottom rows" (reproducing Table IV);
//! * [`Schedule::render`] — the paper's table layout;
//! * [`Schedule::to_elim_list`] — a valid elimination list ordered by time
//!   step, ready to feed the DAG runtime.

use crate::elim::{ElimList, Elimination, Level};
use crate::trees::TreeKind;

/// A killer and time step for every sub-diagonal tile of an `mt × nt` tiled
/// matrix under the unit-time model.
///
/// ```
/// use hqr::schedule::Schedule;
/// // Table I: the flat tree kills row i of panel 0 at step i.
/// let s = Schedule::flat(12, 1);
/// assert_eq!(s.killer(5, 0), Some(0));
/// assert_eq!(s.step(5, 0), Some(5));
/// assert_eq!(s.makespan(), 11);
/// // Greedy is optimal: ⌈log₂ 12⌉ = 4 steps for a single panel.
/// assert_eq!(Schedule::greedy(12, 1).makespan(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Schedule {
    mt: usize,
    nt: usize,
    kmax: usize,
    /// `killer[i + k*mt]`, `None` for tiles never eliminated (i ≤ k).
    killer: Vec<Option<u32>>,
    /// `step[i + k*mt]`, 0 for tiles never eliminated.
    step: Vec<u32>,
}

impl Schedule {
    fn empty(mt: usize, nt: usize) -> Self {
        let kmax = mt.min(nt);
        Schedule { mt, nt, kmax, killer: vec![None; mt * kmax], step: vec![0; mt * kmax] }
    }

    /// Flat tree in every panel (SAMEH-KUCK order, Tables I–II).
    pub fn flat(mt: usize, nt: usize) -> Self {
        Self::from_panel_trees(mt, nt, TreeKind::Flat)
    }

    /// Binary tree in every panel (Table III).
    pub fn binary(mt: usize, nt: usize) -> Self {
        Self::from_panel_trees(mt, nt, TreeKind::Binary)
    }

    /// Fibonacci scheme in every panel.
    pub fn fibonacci(mt: usize, nt: usize) -> Self {
        Self::from_panel_trees(mt, nt, TreeKind::Fibonacci)
    }

    /// Per-panel tree pairings, timed with the earliest-start recurrence:
    /// an elimination starts at the first step where both rows are ready
    /// for the panel (one step after their previous-panel elimination) and
    /// not busy with an earlier elimination.
    pub fn from_panel_trees(mt: usize, nt: usize, kind: TreeKind) -> Self {
        let mut s = Self::empty(mt, nt);
        let mut next_free = vec![1u32; mt];
        for k in 0..s.kmax {
            let parts: Vec<usize> = (k..mt).collect();
            let ready: Vec<u32> = parts
                .iter()
                .map(|&i| if k == 0 { 1 } else { s.step[i + (k - 1) * mt] + 1 })
                .collect();
            for (vpos, upos) in kind.reduction(parts.len()) {
                let (v, u) = (parts[vpos], parts[upos]);
                let t = ready[vpos].max(ready[upos]).max(next_free[v]).max(next_free[u]);
                s.killer[v + k * mt] = Some(u as u32);
                s.step[v + k * mt] = t;
                next_free[v] = t + 1;
                next_free[u] = t + 1;
            }
        }
        s
    }

    /// Unit-time schedule of an *arbitrary* valid elimination list (e.g. a
    /// hierarchical HQR list): each panel's eliminations keep their list
    /// order per pivot and start as early as readiness and row-exclusivity
    /// allow. Lets the coarse-grain model of §III evaluate any
    /// configuration against the GREEDY optimum.
    pub fn of_list(list: &crate::elim::ElimList) -> Self {
        let (mt, nt) = (list.mt(), list.nt());
        let mut s = Self::empty(mt, nt);
        let mut next_free = vec![1u32; mt];
        for k in 0..s.kmax {
            let ready: Vec<u32> = (0..mt)
                .map(|i| if k == 0 || i < k { 1 } else { s.step[i + (k - 1) * mt] + 1 })
                .collect();
            for e in list.panel(k) {
                let (v, u) = (e.victim as usize, e.killer as usize);
                let t = ready[v].max(ready[u]).max(next_free[v]).max(next_free[u]);
                s.killer[v + k * mt] = Some(u as u32);
                s.step[v + k * mt] = t;
                next_free[v] = t + 1;
                next_free[u] = t + 1;
            }
        }
        s
    }

    /// The GREEDY algorithm (§III-B, Table IV): a global time-step loop; at
    /// each step, in each column, kill as many ready tiles as possible —
    /// the bottom ⌊z/2⌋ of the z ready rows, "using the z rows above them
    /// as killers, pairing them in the natural order".
    // The row index addresses four parallel arrays; an iterator over any
    // single one would obscure the scan.
    #[allow(clippy::needless_range_loop)]
    pub fn greedy(mt: usize, nt: usize) -> Self {
        let mut s = Self::empty(mt, nt);
        let kmax = s.kmax;
        let mut remaining: usize = (0..kmax).map(|k| mt - 1 - k).sum();
        let mut t = 1u32;
        let mut busy = vec![false; mt];
        let mut scratch: Vec<usize> = Vec::with_capacity(mt);
        while remaining > 0 {
            busy.fill(false);
            for k in 0..kmax {
                scratch.clear();
                for i in k..mt {
                    if busy[i] {
                        continue;
                    }
                    if i > k && s.killer[i + k * mt].is_some() {
                        continue; // already eliminated in this panel
                    }
                    // A row (all of which satisfy i ≥ k > k−1) is ready for
                    // panel k one step after its panel-(k−1) elimination.
                    let ready = if k == 0 {
                        1
                    } else if s.killer[i + (k - 1) * mt].is_some() {
                        s.step[i + (k - 1) * mt] + 1
                    } else {
                        continue; // previous-panel elimination still pending
                    };
                    if ready <= t {
                        scratch.push(i);
                    }
                }
                let z = scratch.len();
                let c = z / 2;
                for idx in 0..c {
                    let v = scratch[z - c + idx];
                    let u = scratch[z - 2 * c + idx];
                    s.killer[v + k * mt] = Some(u as u32);
                    s.step[v + k * mt] = t;
                    busy[v] = true;
                    busy[u] = true;
                    remaining -= 1;
                }
            }
            t += 1;
            assert!(t < 1_000_000, "greedy schedule failed to converge");
        }
        s
    }

    /// Tile rows.
    pub fn mt(&self) -> usize {
        self.mt
    }

    /// Tile columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Killer of tile `(i, k)`.
    pub fn killer(&self, i: usize, k: usize) -> Option<usize> {
        self.killer[i + k * self.mt].map(|u| u as usize)
    }

    /// Time step at which tile `(i, k)` is eliminated.
    pub fn step(&self, i: usize, k: usize) -> Option<usize> {
        self.killer[i + k * self.mt].map(|_| self.step[i + k * self.mt] as usize)
    }

    /// Last time step of the whole schedule (the coarse-grain makespan).
    pub fn makespan(&self) -> usize {
        self.step.iter().copied().max().unwrap_or(0) as usize
    }

    /// Render the first `panels` panels in the layout of Tables I–IV:
    /// one row per tile row, `killer step` per panel.
    pub fn render(&self, panels: usize) -> String {
        let panels = panels.min(self.kmax);
        let mut out = String::new();
        out.push_str("row |");
        for k in 0..panels {
            out.push_str(&format!(" panel {k:>2} |"));
        }
        out.push('\n');
        for i in 0..self.mt {
            out.push_str(&format!("{i:>3} |"));
            for k in 0..panels {
                match self.killer(i, k) {
                    Some(u) => out.push_str(&format!(" {u:>3} @{:>3} |", self.step(i, k).unwrap())),
                    None => out.push_str(&format!(" {:>8} |", if i == k { "?" } else { "" })),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Convert to a valid elimination list, ordered panel-major then by
    /// time step. `ts` selects TS kernels (only valid for single-killer
    /// trees such as the flat tree; multi-killer schedules need TT).
    pub fn to_elim_list(&self, ts: bool) -> ElimList {
        let mut elims = Vec::new();
        for k in 0..self.kmax {
            let mut panel: Vec<Elimination> = ((k + 1)..self.mt)
                .map(|i| {
                    let u = self.killer(i, k).expect("complete schedule");
                    Elimination::new(k as u32, i as u32, u as u32, ts, Level::Single)
                })
                .collect();
            panel.sort_by_key(|e| (self.step[e.victim as usize + k * self.mt], e.victim));
            elims.extend(panel);
        }
        ElimList::new(self.mt, self.nt, elims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I: flat tree on panel 0, m = 12.
    #[test]
    fn table_i_flat_panel0() {
        let s = Schedule::flat(12, 1);
        for i in 1..12 {
            assert_eq!(s.killer(i, 0), Some(0));
            assert_eq!(s.step(i, 0), Some(i));
        }
        assert_eq!(s.killer(0, 0), None);
        assert_eq!(s.makespan(), 11);
    }

    /// Table II: flat tree, first 3 panels, m = 12.
    #[test]
    fn table_ii_flat_three_panels() {
        let s = Schedule::flat(12, 3);
        // Panel 0: killer 0, steps 1..11.
        for i in 1..12 {
            assert_eq!((s.killer(i, 0), s.step(i, 0)), (Some(0), Some(i)));
        }
        // Panel 1: killer 1, steps 3..12.
        for i in 2..12 {
            assert_eq!((s.killer(i, 1), s.step(i, 1)), (Some(1), Some(i + 1)), "row {i}");
        }
        // Panel 2: killer 2, steps 5..13.
        for i in 3..12 {
            assert_eq!((s.killer(i, 2), s.step(i, 2)), (Some(2), Some(i + 2)), "row {i}");
        }
        assert_eq!(s.makespan(), 13);
    }

    /// Every schedule must be *consistent* as a global-time execution:
    /// a row's death in a panel comes strictly after its kills there, and
    /// no row acts in panel k before its panel-(k−1) elimination is done.
    fn assert_consistent(s: &Schedule) {
        for k in 0..s.kmax {
            for i in (k + 1)..s.mt {
                let t = s.step(i, k).expect("complete");
                let u = s.killer(i, k).unwrap();
                // Killer still alive (its own death in this panel is later).
                if let Some(tu) = s.step(u, k) {
                    assert!(tu > t, "panel {k}: killer {u} dies at {tu} but kills {i} at {t}");
                }
                // Readiness from the previous panel.
                if k > 0 {
                    assert!(t > s.step(i, k - 1).unwrap(), "panel {k}: victim {i} not ready");
                    assert!(t > s.step(u, k - 1).unwrap(), "panel {k}: killer {u} not ready");
                }
            }
        }
    }

    /// Table III: binary tree, first 3 panels, m = 12. Panel 0 is checked
    /// entry by entry; for panels 1–2 we check the killer assignments
    /// (which match the paper exactly) and schedule consistency. The
    /// paper's printed steps for those panels violate its own §II
    /// aliveness condition (e.g. row 7 is killed at step 4 in panel 1 yet
    /// kills row 8 at step 5), so they cannot be reproduced by any valid
    /// scheduler; our earliest-start steps are the consistent variant.
    #[test]
    fn table_iii_binary_three_panels() {
        let s = Schedule::binary(12, 3);
        assert_consistent(&s);
        let expect_p0: [(usize, usize, usize); 11] = [
            (1, 0, 1),
            (2, 0, 2),
            (3, 2, 1),
            (4, 0, 3),
            (5, 4, 1),
            (6, 4, 2),
            (7, 6, 1),
            (8, 0, 4),
            (9, 8, 1),
            (10, 8, 2),
            (11, 10, 1),
        ];
        for (i, u, t) in expect_p0 {
            assert_eq!((s.killer(i, 0), s.step(i, 0)), (Some(u), Some(t)), "P0 row {i}");
        }
        let killers_p1 =
            [(2, 1), (3, 1), (4, 3), (5, 1), (6, 5), (7, 5), (8, 7), (9, 1), (10, 9), (11, 9)];
        for (i, u) in killers_p1 {
            assert_eq!(s.killer(i, 1), Some(u), "P1 row {i}");
        }
        let killers_p2 =
            [(3, 2), (4, 2), (5, 4), (6, 2), (7, 6), (8, 6), (9, 8), (10, 2), (11, 10)];
        for (i, u) in killers_p2 {
            assert_eq!(s.killer(i, 2), Some(u), "P2 row {i}");
        }
        // Spot-check the earliest consistent steps where they coincide with
        // the paper: the start of the panel-1 pipeline.
        assert_eq!(s.step(2, 1), Some(3));
        assert_eq!(s.step(6, 1), Some(3));
        assert_eq!(s.step(10, 1), Some(3));
    }

    #[test]
    fn all_generators_are_consistent() {
        for (mt, nt) in [(12usize, 3usize), (9, 9), (20, 5), (6, 1)] {
            assert_consistent(&Schedule::flat(mt, nt));
            assert_consistent(&Schedule::binary(mt, nt));
            assert_consistent(&Schedule::greedy(mt, nt));
            assert_consistent(&Schedule::fibonacci(mt, nt));
        }
    }

    /// Table IV: greedy, first 3 panels, m = 12 — entry by entry, with
    /// two documented deviations where the paper's generator lets a row
    /// kill and be killed in the same time step (row 5 kills row 6 at step
    /// 6 of panel 2 while being killed itself), which the §II aliveness
    /// conditions forbid in a serial reading. Our strictly-consistent
    /// greedy reaches the identical makespan (and kills row 2 of panel 1
    /// one step earlier).
    #[test]
    fn table_iv_greedy_three_panels() {
        let s = Schedule::greedy(12, 3);
        assert_consistent(&s);
        let expect_p0: [(usize, usize, usize); 11] = [
            (1, 0, 4),
            (2, 1, 3),
            (3, 0, 2),
            (4, 1, 2),
            (5, 2, 2),
            (6, 0, 1),
            (7, 1, 1),
            (8, 2, 1),
            (9, 3, 1),
            (10, 4, 1),
            (11, 5, 1),
        ];
        for (i, u, t) in expect_p0 {
            assert_eq!((s.killer(i, 0), s.step(i, 0)), (Some(u), Some(t)), "P0 row {i}");
        }
        let expect_p1: [(usize, usize, usize); 10] = [
            (2, 1, 6),
            (3, 2, 5),
            (4, 2, 4),
            (5, 3, 4),
            (6, 3, 3),
            (7, 4, 3),
            (8, 5, 3),
            (9, 6, 2),
            (10, 7, 2),
            (11, 8, 2),
        ];
        for (i, u, t) in expect_p1 {
            assert_eq!((s.killer(i, 1), s.step(i, 1)), (Some(u), Some(t)), "P1 row {i}");
        }
        let expect_p2: [(usize, usize, usize); 9] = [
            (3, 2, 8),
            (4, 3, 7),
            (5, 3, 6), // paper: killer 4 — who is killed at the same step
            (6, 4, 6), // paper: killer 5 — idem
            (7, 5, 5),
            (8, 6, 5),
            (9, 7, 4),
            (10, 8, 4),
            (11, 10, 3),
        ];
        for (i, u, t) in expect_p2 {
            assert_eq!((s.killer(i, 2), s.step(i, 2)), (Some(u), Some(t)), "P2 row {i}");
        }
    }

    #[test]
    fn greedy_is_never_slower_than_flat_or_binary() {
        // [12], [13]: under the unit-time model no algorithm beats greedy.
        for (mt, nt) in [(12, 3), (16, 4), (24, 6), (20, 20)] {
            let g = Schedule::greedy(mt, nt).makespan();
            let f = Schedule::flat(mt, nt).makespan();
            let b = Schedule::binary(mt, nt).makespan();
            assert!(g <= f, "greedy {g} vs flat {f} for {mt}x{nt}");
            assert!(g <= b, "greedy {g} vs binary {b} for {mt}x{nt}");
        }
    }

    #[test]
    fn flat_pipelines_perfectly() {
        // §III-B: flat tree gives perfect pipelining — panel k starts two
        // steps after panel k−1 and finishes one step later, so panel k
        // ends at (m−1)+k (Table II: makespan 13 for m=12, 3 panels).
        for (mt, nt) in [(12usize, 3usize), (10, 5), (30, 4)] {
            let s = Schedule::flat(mt, nt);
            assert_eq!(s.makespan(), (mt - 1) + (nt - 1), "{mt}x{nt}");
        }
    }

    #[test]
    fn schedules_convert_to_valid_elim_lists() {
        for (mt, nt) in [(12, 3), (8, 8), (16, 2)] {
            let _ = Schedule::flat(mt, nt).to_elim_list(true);
            let _ = Schedule::binary(mt, nt).to_elim_list(false);
            let _ = Schedule::greedy(mt, nt).to_elim_list(false);
            let _ = Schedule::fibonacci(mt, nt).to_elim_list(false);
        }
    }

    #[test]
    fn fibonacci_beats_flat_on_tall_matrices() {
        let f = Schedule::fibonacci(64, 2).makespan();
        let flat = Schedule::flat(64, 2).makespan();
        assert!(f < flat, "fibonacci {f} vs flat {flat}");
    }

    #[test]
    fn render_contains_killers_and_steps() {
        let s = Schedule::flat(4, 2);
        let table = s.render(2);
        assert!(table.contains("panel  0"));
        assert!(table.contains('?'), "diagonal marker");
        assert!(table.contains('@'), "time-step marker");
    }

    #[test]
    fn of_list_reproduces_panel_tree_schedules() {
        for (mt, nt) in [(12usize, 3usize), (9, 5)] {
            for kind in [TreeKind::Flat, TreeKind::Binary, TreeKind::Fibonacci] {
                let direct = Schedule::from_panel_trees(mt, nt, kind);
                let via_list = Schedule::of_list(&direct.to_elim_list(kind == TreeKind::Flat));
                for k in 0..mt.min(nt) {
                    for i in (k + 1)..mt {
                        assert_eq!(direct.step(i, k), via_list.step(i, k), "{kind:?} ({i},{k})");
                        assert_eq!(direct.killer(i, k), via_list.killer(i, k));
                    }
                }
            }
        }
    }

    #[test]
    fn of_list_hierarchical_configs_are_consistent_and_bounded_by_greedy() {
        use crate::hier::HqrConfig;
        let (mt, nt) = (24usize, 6usize);
        let optimum = Schedule::greedy(mt, nt).makespan();
        for domino in [false, true] {
            let cfg = HqrConfig::new(3, 1).with_a(2).with_domino(domino);
            let s = Schedule::of_list(&cfg.elimination_list(mt, nt));
            assert_consistent(&s);
            assert!(
                s.makespan() >= optimum,
                "HQR coarse makespan {} cannot beat the greedy optimum {optimum}",
                s.makespan()
            );
        }
    }

    #[test]
    fn of_list_domino_shortens_flat_low_coarse_makespan() {
        use crate::hier::HqrConfig;
        // Tall-skinny, flat low tree: the coupling level enables lookahead
        // on the local panels (§V-B).
        let (mt, nt) = (48usize, 4usize);
        let mk = |domino: bool| {
            let cfg = HqrConfig::new(4, 1)
                .with_a(2)
                .with_low(TreeKind::Flat)
                .with_high(TreeKind::Fibonacci)
                .with_domino(domino);
            Schedule::of_list(&cfg.elimination_list(mt, nt)).makespan()
        };
        let (off, on) = (mk(false), mk(true));
        assert!(on <= off, "domino coarse makespan {on} vs {off} without");
    }

    #[test]
    fn single_column_greedy_depth_is_ceil_log2() {
        // One panel: greedy == balanced halving: ⌈log₂ m⌉ steps.
        for mt in [2usize, 3, 4, 8, 12, 33] {
            let s = Schedule::greedy(mt, 1);
            assert_eq!(s.makespan(), (mt as f64).log2().ceil() as usize, "m={mt}");
        }
    }
}
