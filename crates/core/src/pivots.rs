//! Symbolic pivot queries — the `libhqr`-style interface a dataflow
//! runtime consumes.
//!
//! §IV-C: "this basically consists only into providing a function that the
//! runtime engine is capable of evaluating, and that computes this
//! elimination list". DAGuE never materializes the task list; its JDF
//! representation queries, for any `(k, i)`: *who kills me?* (`currpiv`),
//! *whom do I kill next / before?* (`nextpiv` / `prevpiv`), and *with
//! which kernel?* (`gettype`). [`PivotIndex`] compiles an [`ElimList`]
//! into exactly that query interface with O(1) lookups.

use crate::elim::{ElimList, Level};

const NONE: u32 = u32::MAX;

/// Compiled constant-time query view of an elimination list.
///
/// ```
/// use hqr::{schedule::Schedule, PivotIndex};
/// let list = Schedule::flat(6, 1).to_elim_list(true);
/// let idx = PivotIndex::new(&list);
/// assert_eq!(idx.currpiv(0, 3), Some(0));        // who kills (3,0)?
/// assert_eq!(idx.nextpiv(0, 0, 3), Some(4));     // whom does 0 kill next?
/// assert_eq!(idx.prevpiv(0, 0, 1), None);        // (1,0) was its first kill
/// assert_eq!(idx.kill_count(0, 0), 5);
/// ```
#[derive(Clone, Debug)]
pub struct PivotIndex {
    mt: usize,
    kmax: usize,
    /// killer of tile (i,k), indexed i + k*mt; NONE above/on the diagonal.
    killer: Vec<u32>,
    /// Level of elim (i,k) as a compact code; 255 = none.
    level: Vec<u8>,
    /// TS flag per elimination.
    ts: Vec<bool>,
    /// CSR of victims per (k, pivot row): offsets at pivot + k*mt.
    kill_off: Vec<u32>,
    kill_victims: Vec<u32>,
    /// Position of elim (i,k) in its pivot's victim list.
    kill_pos: Vec<u32>,
}

fn level_code(l: Level) -> u8 {
    match l {
        Level::TsLevel => 0,
        Level::Low => 1,
        Level::Coupling => 2,
        Level::High => 3,
        Level::Single => 4,
    }
}

fn code_level(c: u8) -> Level {
    match c {
        0 => Level::TsLevel,
        1 => Level::Low,
        2 => Level::Coupling,
        3 => Level::High,
        _ => Level::Single,
    }
}

impl PivotIndex {
    /// Compile an elimination list.
    pub fn new(list: &ElimList) -> Self {
        let (mt, nt) = (list.mt(), list.nt());
        let kmax = mt.min(nt);
        let slots = mt * kmax;
        let mut killer = vec![NONE; slots];
        let mut level = vec![255u8; slots];
        let mut ts = vec![false; slots];
        let mut deg = vec![0u32; slots];
        for e in list.elims() {
            let s = e.victim as usize + (e.k as usize) * mt;
            killer[s] = e.killer;
            level[s] = level_code(e.level);
            ts[s] = e.ts;
            deg[e.killer as usize + (e.k as usize) * mt] += 1;
        }
        let mut kill_off = vec![0u32; slots + 1];
        for s in 0..slots {
            kill_off[s + 1] = kill_off[s] + deg[s];
        }
        let mut cursor: Vec<u32> = kill_off[..slots].to_vec();
        let mut kill_victims = vec![0u32; kill_off[slots] as usize];
        let mut kill_pos = vec![NONE; slots];
        for e in list.elims() {
            let ps = e.killer as usize + (e.k as usize) * mt;
            let vs = e.victim as usize + (e.k as usize) * mt;
            kill_pos[vs] = cursor[ps] - kill_off[ps];
            kill_victims[cursor[ps] as usize] = e.victim;
            cursor[ps] += 1;
        }
        PivotIndex { mt, kmax, killer, level, ts, kill_off, kill_victims, kill_pos }
    }

    #[inline]
    fn slot(&self, k: usize, i: usize) -> usize {
        debug_assert!(k < self.kmax && i < self.mt, "({i},{k}) out of range");
        i + k * self.mt
    }

    /// Number of panels with eliminations.
    pub fn panels(&self) -> usize {
        self.kmax
    }

    /// The pivot (killer) of tile `(i, k)`, or `None` if the tile is never
    /// eliminated (i ≤ k) — `hqr_currpiv`.
    pub fn currpiv(&self, k: usize, i: usize) -> Option<usize> {
        match self.killer[self.slot(k, i)] {
            NONE => None,
            u => Some(u as usize),
        }
    }

    /// The hierarchy level of the elimination of `(i, k)` — `hqr_gettype`.
    pub fn gettype(&self, k: usize, i: usize) -> Option<Level> {
        let c = self.level[self.slot(k, i)];
        (c != 255).then(|| code_level(c))
    }

    /// Whether tile `(i, k)` is killed with TS kernels (victim stays a
    /// square) — determines TSQRT/TSMQR versus TTQRT/TTMQR.
    pub fn is_ts(&self, k: usize, i: usize) -> Option<bool> {
        (self.killer[self.slot(k, i)] != NONE).then(|| self.ts[self.slot(k, i)])
    }

    /// All victims of pivot row `piv` in panel `k`, in elimination order.
    pub fn victims(&self, k: usize, piv: usize) -> &[u32] {
        let s = self.slot(k, piv);
        &self.kill_victims[self.kill_off[s] as usize..self.kill_off[s + 1] as usize]
    }

    /// The victim `piv` kills *after* killing `i` in panel `k`
    /// (`hqr_nextpiv`): `None` if `i` was the last.
    pub fn nextpiv(&self, k: usize, piv: usize, i: usize) -> Option<usize> {
        let pos = self.kill_pos[self.slot(k, i)];
        debug_assert_ne!(pos, NONE, "({i},{k}) is not killed by {piv}");
        self.victims(k, piv).get(pos as usize + 1).map(|&v| v as usize)
    }

    /// The victim `piv` killed *before* killing `i` in panel `k`
    /// (`hqr_prevpiv`): `None` if `i` was the first.
    pub fn prevpiv(&self, k: usize, piv: usize, i: usize) -> Option<usize> {
        let pos = self.kill_pos[self.slot(k, i)];
        debug_assert_ne!(pos, NONE, "({i},{k}) is not killed by {piv}");
        if pos == 0 {
            None
        } else {
            Some(self.victims(k, piv)[pos as usize - 1] as usize)
        }
    }

    /// Number of eliminations pivot `piv` performs in panel `k`
    /// (`hqr_getnbgeqrf`-style counting helper).
    pub fn kill_count(&self, k: usize, piv: usize) -> usize {
        self.victims(k, piv).len()
    }

    /// Rows that must be triangularized (GEQRT) in panel `k`: the diagonal
    /// row, every pivot, every TT victim.
    pub fn geqrt_rows(&self, k: usize) -> Vec<usize> {
        let mut tri = vec![false; self.mt];
        if k < self.mt {
            tri[k] = true;
        }
        for i in k..self.mt {
            let s = self.slot(k, i);
            if self.killer[s] != NONE {
                tri[self.killer[s] as usize] = true;
                if !self.ts[s] {
                    tri[i] = true;
                }
            }
        }
        (k..self.mt).filter(|&i| tri[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::HqrConfig;
    use crate::schedule::Schedule;
    use crate::trees::TreeKind;

    fn sample_list() -> ElimList {
        HqrConfig::new(3, 1)
            .with_a(2)
            .with_low(TreeKind::Greedy)
            .with_high(TreeKind::Fibonacci)
            .with_domino(true)
            .elimination_list(24, 10)
    }

    #[test]
    fn currpiv_matches_list() {
        let l = sample_list();
        let idx = PivotIndex::new(&l);
        for k in 0..10 {
            for i in 0..24 {
                assert_eq!(idx.currpiv(k, i), l.killer(i, k), "({i},{k})");
            }
        }
    }

    #[test]
    fn victims_preserve_elimination_order() {
        let l = sample_list();
        let idx = PivotIndex::new(&l);
        for k in 0..10usize {
            for piv in 0..24usize {
                let from_list: Vec<u32> =
                    l.panel(k).filter(|e| e.killer as usize == piv).map(|e| e.victim).collect();
                assert_eq!(idx.victims(k, piv), from_list.as_slice());
            }
        }
    }

    #[test]
    fn nextpiv_prevpiv_walk_the_victim_chain() {
        let l = sample_list();
        let idx = PivotIndex::new(&l);
        for k in 0..10usize {
            for piv in 0..24usize {
                let vs = idx.victims(k, piv).to_vec();
                for (pos, &v) in vs.iter().enumerate() {
                    let next = idx.nextpiv(k, piv, v as usize);
                    let prev = idx.prevpiv(k, piv, v as usize);
                    assert_eq!(next, vs.get(pos + 1).map(|&x| x as usize));
                    assert_eq!(prev, pos.checked_sub(1).map(|p| vs[p] as usize));
                }
            }
        }
    }

    #[test]
    fn gettype_matches_levels() {
        let l = sample_list();
        let idx = PivotIndex::new(&l);
        for e in l.elims() {
            assert_eq!(idx.gettype(e.k as usize, e.victim as usize), Some(e.level));
            assert_eq!(idx.is_ts(e.k as usize, e.victim as usize), Some(e.ts));
        }
        assert_eq!(idx.gettype(0, 0), None, "diagonal never eliminated");
    }

    #[test]
    fn geqrt_rows_match_runtime_expectation() {
        // Flat TS tree: only the diagonal row is triangularized per panel.
        let l = Schedule::flat(8, 3).to_elim_list(true);
        let idx = PivotIndex::new(&l);
        for k in 0..3 {
            assert_eq!(idx.geqrt_rows(k), vec![k]);
        }
        // Binary TT tree: every participating row is triangularized.
        let l = Schedule::binary(8, 3).to_elim_list(false);
        let idx = PivotIndex::new(&l);
        for k in 0..3usize {
            assert_eq!(idx.geqrt_rows(k), (k..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn flat_tree_chain_queries() {
        let l = Schedule::flat(6, 1).to_elim_list(true);
        let idx = PivotIndex::new(&l);
        assert_eq!(idx.kill_count(0, 0), 5);
        assert_eq!(idx.nextpiv(0, 0, 1), Some(2));
        assert_eq!(idx.nextpiv(0, 0, 5), None);
        assert_eq!(idx.prevpiv(0, 0, 1), None);
        assert_eq!(idx.prevpiv(0, 0, 4), Some(3));
        assert_eq!(idx.kill_count(0, 3), 0, "non-pivot rows kill nobody");
    }

    #[test]
    fn panels_count() {
        let l = Schedule::greedy(9, 4).to_elim_list(false);
        assert_eq!(PivotIndex::new(&l).panels(), 4);
    }
}
