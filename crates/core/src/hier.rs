//! The hierarchical algorithm HQR (§IV): a four-level reduction tree over a
//! virtual p×q cluster grid.
//!
//! For panel `k` and row-cluster `r` (tile row `i` belongs to cluster
//! `i mod p`, at local row `l = i div p`):
//!
//! * the cluster's **top tile** is its first local row with global index
//!   ≥ k (`l_top = ⌈(k−r)/p⌉`); there are ≤ p top tiles, "located on the
//!   first p diagonals of the matrix" (§IV-B);
//! * the **local diagonal** is local row `l = k` — "a line of slope 1 in
//!   the local view, hence of slope p in the global view";
//! * **level 0 (TS)**: below the local diagonal, every domain of `a`
//!   consecutive local rows is reduced by its first participating row with
//!   cache-friendly TS kernels;
//! * **level 1 (low)**: the domain heads are reduced by the low-level tree,
//!   "the last killer on each panel is the tile on the local diagonal";
//! * **level 2 (coupling/domino)**: the band between the top tile
//!   (excluded) and the local diagonal (included) is a chain — local row
//!   `l` is killed by local row `l−1` (global pivot `i − p`). Readiness
//!   ripples top-down across panels "like a domino";
//! * **level 3 (high)**: the top tiles are reduced across clusters by the
//!   high-level tree, rooted at the cluster owning diagonal row k.
//!
//! With the domino coupling disabled, levels 0–1 extend up to the top tile
//! and level 2 disappears (the low tree is rooted at the top tile).

use crate::elim::{ElimList, Elimination, Level};
use crate::trees::TreeKind;
use hqr_tile::{Layout, ProcessGrid};

/// Configuration of the hierarchical QR algorithm.
///
/// The defaults (`a = 1`, greedy low level, Fibonacci high level, no
/// domino) are safe for any matrix shape; see [`crate::baselines`] for the
/// tuned configurations used in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HqrConfig {
    /// Virtual cluster-grid rows (row clusters).
    pub p: usize,
    /// Virtual cluster-grid columns (only affects the data layout).
    pub q: usize,
    /// TS-domain size: every `a`-th local tile kills the `a−1` below it
    /// with TS kernels. `a = 1` disables the TS level ("the algorithm will
    /// use only TT kernels", §IV-A).
    pub a: usize,
    /// Intra-cluster (low-level) reduction tree.
    pub low: TreeKind,
    /// Inter-cluster (high-level) reduction tree.
    pub high: TreeKind,
    /// Whether the coupling-level ("domino") optimization is active.
    pub domino: bool,
}

impl HqrConfig {
    /// A safe default configuration on a virtual `p × q` grid.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "virtual grid must be non-empty");
        HqrConfig { p, q, a: 1, low: TreeKind::Greedy, high: TreeKind::Fibonacci, domino: false }
    }

    /// Set the TS-domain size `a`.
    pub fn with_a(mut self, a: usize) -> Self {
        assert!(a > 0, "domain size must be positive");
        self.a = a;
        self
    }

    /// Set the low-level (intra-cluster) tree.
    pub fn with_low(mut self, low: TreeKind) -> Self {
        self.low = low;
        self
    }

    /// Set the high-level (inter-cluster) tree.
    pub fn with_high(mut self, high: TreeKind) -> Self {
        self.high = high;
        self
    }

    /// Enable or disable the domino coupling level.
    pub fn with_domino(mut self, domino: bool) -> Self {
        self.domino = domino;
        self
    }

    /// The 2D block-cyclic data layout matching the virtual grid
    /// (CYCLIC(1) in both dimensions, §IV-C).
    pub fn layout(&self) -> Layout {
        Layout::Cyclic2D(ProcessGrid::new(self.p, self.q))
    }

    /// Short description used by the bench harnesses.
    pub fn describe(&self) -> String {
        format!(
            "HQR p={} q={} a={} low={} high={} domino={}",
            self.p,
            self.q,
            self.a,
            self.low.name(),
            self.high.name(),
            if self.domino { "on" } else { "off" }
        )
    }

    /// Build the full hierarchical elimination list for an `mt × nt` tiled
    /// matrix. The result is validated (§II conditions) before returning.
    pub fn elimination_list(&self, mt: usize, nt: usize) -> ElimList {
        assert!(mt > 0 && nt > 0, "matrix must be non-empty");
        let (p, a) = (self.p, self.a);
        let kmax = mt.min(nt);
        let mut elims: Vec<Elimination> = Vec::new();
        for k in 0..kmax {
            let ku = k as u32;
            // Per-cluster geometry.
            let mut top_tiles: Vec<usize> = Vec::with_capacity(p);
            let mut cluster_plan: Vec<(usize, usize, usize)> = Vec::with_capacity(p); // (r, l_top, mt_loc)
            for r in 0..p.min(mt) {
                let mt_loc = (mt - r).div_ceil(p);
                let l_top = if k <= r { 0 } else { (k - r).div_ceil(p) };
                if l_top >= mt_loc {
                    continue; // cluster has no rows in this panel
                }
                top_tiles.push(l_top * p + r);
                cluster_plan.push((r, l_top, mt_loc));
            }
            for &(r, l_top, mt_loc) in &cluster_plan {
                let g = |l: usize| (l * p + r) as u32;
                // The coupling band is only meaningful when the cluster has
                // rows strictly below its local diagonal, i.e. when the
                // local diagonal index k is inside the local range.
                let band_end = if self.domino { k.min(mt_loc - 1) } else { l_top };
                // ---- Levels 0 and 1: domains below `band_end` ----
                let first_domain_row = if self.domino { band_end + 1 } else { l_top };
                // Domains are anchored at the first row below the band
                // (Figure 5: "every a-th tile sequentially kills the a−1
                // tiles below it", counted from the local diagonal).
                let mut heads: Vec<usize> = Vec::new();
                let mut dom_start = first_domain_row;
                while dom_start < mt_loc {
                    let dom_end = (dom_start + a).min(mt_loc);
                    heads.push(dom_start);
                    for l in (dom_start + 1)..dom_end {
                        elims.push(Elimination::new(ku, g(l), g(dom_start), true, Level::TsLevel));
                    }
                    dom_start = dom_end;
                }
                // Low-level tree over the domain heads. With the domino the
                // root is the local diagonal tile (band_end = k); without it
                // the first head *is* the top tile.
                if self.domino {
                    let mut parts = Vec::with_capacity(heads.len() + 1);
                    parts.push(band_end);
                    parts.extend(heads.iter().copied().filter(|&h| h != band_end));
                    for (vpos, upos) in self.low.reduction(parts.len()) {
                        elims.push(Elimination::new(
                            ku,
                            g(parts[vpos]),
                            g(parts[upos]),
                            false,
                            Level::Low,
                        ));
                    }
                } else {
                    for (vpos, upos) in self.low.reduction(heads.len()) {
                        elims.push(Elimination::new(
                            ku,
                            g(heads[vpos]),
                            g(heads[upos]),
                            false,
                            Level::Low,
                        ));
                    }
                }
            }
            // ---- Level 2: the domino chains, bottom-up so every killer is
            // still alive when it kills. ----
            if self.domino {
                for &(r, l_top, mt_loc) in &cluster_plan {
                    let g = |l: usize| (l * p + r) as u32;
                    let band_end = k.min(mt_loc - 1);
                    for l in ((l_top + 1)..=band_end).rev() {
                        elims.push(Elimination::new(ku, g(l), g(l - 1), false, Level::Coupling));
                    }
                }
            }
            // ---- Level 3: reduce the top tiles across clusters. ----
            // Participants ordered by global row so the root is the
            // diagonal row k (owned by cluster k mod p).
            top_tiles.sort_unstable();
            debug_assert!(top_tiles.is_empty() || top_tiles[0] == k);
            for (vpos, upos) in self.high.reduction(top_tiles.len()) {
                elims.push(Elimination::new(
                    ku,
                    top_tiles[vpos] as u32,
                    top_tiles[upos] as u32,
                    false,
                    Level::High,
                ));
            }
        }
        ElimList::new(mt, nt, elims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every combination must produce a list satisfying the §II validity
    /// conditions (ElimList::new panics otherwise).
    #[test]
    fn all_configurations_are_valid() {
        for p in [1usize, 2, 3, 5] {
            for a in [1usize, 2, 4] {
                for domino in [false, true] {
                    for low in TreeKind::ALL {
                        for (mt, nt) in [(1, 1), (7, 3), (12, 12), (16, 4), (5, 9)] {
                            let cfg = HqrConfig::new(p, 1)
                                .with_a(a)
                                .with_low(low)
                                .with_high(TreeKind::Fibonacci)
                                .with_domino(domino);
                            let _ = cfg.elimination_list(mt, nt);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn high_trees_all_valid() {
        for high in TreeKind::ALL {
            let cfg = HqrConfig::new(3, 1).with_a(2).with_high(high).with_domino(true);
            let _ = cfg.elimination_list(24, 10);
        }
    }

    #[test]
    fn p1_full_ts_domain_is_the_flat_tree() {
        // p = 1, a = mt, domino off ⇒ the [BBD+10] flat TS tree: in every
        // panel the diagonal row kills everything below it, top to bottom.
        let cfg = HqrConfig::new(1, 1).with_a(12);
        let l = cfg.elimination_list(12, 4);
        for k in 0..4 {
            let panel: Vec<_> = l.panel(k).collect();
            assert_eq!(panel.len(), 12 - 1 - k);
            for (off, e) in panel.iter().enumerate() {
                assert_eq!(e.killer as usize, k);
                assert_eq!(e.victim as usize, k + 1 + off);
                assert!(e.ts, "flat domain kills use TS kernels");
            }
        }
    }

    #[test]
    fn a1_uses_only_tt_kernels() {
        let cfg = HqrConfig::new(3, 1).with_a(1).with_domino(true);
        let l = cfg.elimination_list(15, 5);
        assert!(l.elims().iter().all(|e| !e.ts), "§IV-A: a=1 ⇒ only TT kernels");
        assert_eq!(l.level_counts()[0], 0, "no TS-level eliminations");
    }

    #[test]
    fn paper_example_grid_geometry() {
        // §IV-B example: m=24, n=10 tiles, p=3, a=2.
        let cfg = HqrConfig::new(3, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(24, 10);
        // Panel 0: top tiles are rows 0,1,2; high tree kills (1,0) and (2,0).
        let highs: Vec<_> = l.panel(0).filter(|e| e.level == Level::High).collect();
        assert_eq!(highs.len(), 2);
        assert!(highs.iter().all(|e| e.victim == 1 || e.victim == 2));
        assert!(highs.iter().all(|e| e.killer < e.victim));
        // Panel 1: the domino tile (4,1) is killed by (1,1) — the §IV-B
        // walk-through.
        let domino: Vec<_> = l.panel(1).filter(|e| e.level == Level::Coupling).collect();
        assert!(
            domino.iter().any(|e| e.victim == 4 && e.killer == 1),
            "elim(4,1,1) expected, got {domino:?}"
        );
        // And (5,1) killed by (2,1) on P2.
        assert!(domino.iter().any(|e| e.victim == 5 && e.killer == 2));
    }

    #[test]
    fn domino_chain_uses_pivot_p_rows_above() {
        // Every coupling-level elimination kills with the tile p rows above.
        let cfg = HqrConfig::new(4, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(32, 12);
        for e in l.elims().iter().filter(|e| e.level == Level::Coupling) {
            assert_eq!(e.killer + 4, e.victim, "domino pivot is i − p");
        }
    }

    #[test]
    fn level_counts_domino_on_vs_off() {
        let on = HqrConfig::new(3, 1).with_a(2).with_domino(true).elimination_list(24, 10);
        let off = HqrConfig::new(3, 1).with_a(2).with_domino(false).elimination_list(24, 10);
        let c_on = on.level_counts();
        let c_off = off.level_counts();
        assert!(c_on[2] > 0, "domino on must produce coupling eliminations");
        assert_eq!(c_off[2], 0, "domino off has no coupling level");
        // Same total number of eliminations either way.
        assert_eq!(c_on.iter().sum::<usize>(), c_off.iter().sum::<usize>());
        // High-level count identical: one tree of ≤p tiles per panel.
        assert_eq!(c_on[3], c_off[3]);
    }

    #[test]
    fn high_level_kills_at_most_p_minus_1_per_panel() {
        let cfg = HqrConfig::new(5, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(30, 8);
        for k in 0..8 {
            let n_high = l.panel(k).filter(|e| e.level == Level::High).count();
            assert!(n_high <= 4, "panel {k} has {n_high} high-level kills");
        }
    }

    #[test]
    fn top_tiles_lie_on_first_p_diagonals() {
        // §IV-B: the p top tiles are located on the first p diagonals.
        let p = 3;
        let cfg = HqrConfig::new(p, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(24, 10);
        for k in 0..10usize {
            for e in l.panel(k).filter(|e| e.level == Level::High) {
                assert!((e.victim as usize) < k + p, "victim {} panel {k}", e.victim);
                assert!((e.killer as usize) < k + p);
            }
        }
    }

    #[test]
    fn ts_level_stays_below_local_diagonal_with_domino() {
        let p = 3;
        let cfg = HqrConfig::new(p, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(24, 10);
        for e in l.elims().iter().filter(|e| e.level == Level::TsLevel) {
            let k = e.k as usize;
            let l_loc = e.victim as usize / p;
            assert!(
                l_loc > k,
                "TS victim {} must be below the local diagonal in panel {k}",
                e.victim
            );
        }
    }

    #[test]
    fn single_cluster_column_equals_whole_matrix() {
        // p larger than mt: every cluster holds at most one row, so the
        // high tree does all the work.
        let cfg = HqrConfig::new(8, 1).with_a(4).with_domino(true);
        let l = cfg.elimination_list(5, 3);
        assert!(l.elims().iter().all(|e| e.level == Level::High));
    }

    #[test]
    fn tall_skinny_ts_fraction_grows_with_a() {
        // §IV-B: "If the matrix is tall and skinny, the proportion of level
        // 0 tiles tends to one half" (a = 2).
        let cfg = HqrConfig::new(3, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(96, 2);
        let c = l.level_counts();
        let total: usize = c.iter().sum();
        let frac = c[0] as f64 / total as f64;
        assert!(frac > 0.4 && frac < 0.55, "TS fraction {frac}");
    }

    #[test]
    fn describe_mentions_parameters() {
        let cfg = HqrConfig::new(15, 4).with_a(4).with_domino(true);
        let d = cfg.describe();
        assert!(d.contains("p=15") && d.contains("a=4") && d.contains("domino=on"));
    }

    #[test]
    fn domino_band_geometry_per_panel() {
        // §IV-B geometry: in panel k, cluster r's coupling band spans
        // local rows (l_top, min(k, mt_loc−1)] — so victims are global
        // rows g with l_top < g div p ≤ k.
        let p = 3usize;
        let cfg = HqrConfig::new(p, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(24, 10);
        for e in l.elims().iter().filter(|e| e.level == Level::Coupling) {
            let k = e.k as usize;
            let (g, r) = (e.victim as usize, e.victim as usize % p);
            let l_loc = g / p;
            let l_top = if k <= r { 0 } else { (k - r).div_ceil(p) };
            assert!(l_loc > l_top, "victim above its cluster's top tile");
            assert!(l_loc <= k, "victim below the local diagonal is not level 2");
        }
        // Panel 0 has no coupling band (the top tile IS the local diagonal).
        assert_eq!(l.panel(0).filter(|e| e.level == Level::Coupling).count(), 0);
        // Band width grows with the panel index until saturation.
        let band = |k: usize| l.panel(k).filter(|e| e.level == Level::Coupling).count();
        assert!(band(1) < band(4), "domino area grows with k: {} vs {}", band(1), band(4));
    }

    #[test]
    fn last_local_killer_is_the_local_diagonal() {
        // §IV-B: "the last killer on each panel is the tile on the local
        // diagonal (e.g., tile (6,2) for panel 2 in cluster P0)".
        let p = 3usize;
        let cfg = HqrConfig::new(p, 1).with_a(2).with_low(TreeKind::Greedy).with_domino(true);
        let l = cfg.elimination_list(24, 10);
        // Panel 2, cluster P0 (rows ≡ 0 mod 3): the low-tree root is
        // global row 6 (local row 2 = k).
        let lows: Vec<_> =
            l.panel(2).filter(|e| e.level == Level::Low && e.victim % 3 == 0).collect();
        assert!(!lows.is_empty());
        for e in &lows {
            assert!(e.killer >= 6, "low-level killers sit at or below the local diagonal");
        }
        // Row 6 itself survives the low level and is killed in the band.
        assert!(lows.iter().all(|e| e.victim != 6));
        let row6_death = l.panel(2).find(|e| e.victim == 6).unwrap();
        assert_eq!(row6_death.level, Level::Coupling);
        assert_eq!(row6_death.killer, 3, "killed by the tile p rows above");
    }

    #[test]
    fn layout_matches_virtual_grid() {
        let cfg = HqrConfig::new(3, 2);
        let lay = cfg.layout();
        assert_eq!(lay.nodes(), 6);
        assert_eq!(lay.owner(4, 3), lay.owner(1, 1));
    }
}
