//! The factorization driver: run an elimination list through the task-DAG
//! runtime, keep the Householder factors, rebuild Q, and run the paper's
//! numerical checks (§V-A: "we compute the Q factor ... by applying the
//! reverse trees to the identity, and check (a) that Q has orthonormal
//! columns and (b) that A is equal to Q∗R").

use crate::elim::ElimList;
use hqr_kernels::blocked::{tsmqr_ib, ttmqr_ib, unmqr_ib};
use hqr_kernels::{tsmqr, ttmqr, unmqr, Trans};
use hqr_runtime::{execute_parallel_ib, execute_serial_ib, TFactors, TaskGraph};
use hqr_tile::{DenseMatrix, TiledMatrix};

/// How to execute the task DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Execution {
    /// One thread, program order.
    Serial,
    /// Work-stealing executor with this many threads.
    Parallel(usize),
}

/// A completed QR factorization: the factored tiles (R in the upper
/// triangle, Householder V/V2 blocks elsewhere), the T factors, and the
/// elimination list that produced them — everything needed to apply Q.
pub struct QrFactorization {
    a: TiledMatrix,
    factors: TFactors,
    elims: ElimList,
    /// Inner block size the kernels ran with (`ib == b`: unblocked).
    ib: usize,
}

/// Outcome of the paper's two checks.
#[derive(Clone, Copy, Debug)]
pub struct QrCheck {
    /// ‖QᵀQ − I‖_F.
    pub orthogonality: f64,
    /// ‖A − Q·R‖_F / ‖A‖_F.
    pub residual: f64,
    /// Matrix dimension used for the tolerance scaling.
    pub m: usize,
}

impl QrCheck {
    /// "All checks were satisfactory up to machine precision" — scaled by
    /// the dimension as usual.
    pub fn is_satisfactory(&self) -> bool {
        let tol = 100.0 * f64::EPSILON * self.m as f64;
        self.orthogonality < tol && self.residual < tol
    }
}

/// Factor `a` in place according to `elims` and return the factorization
/// object (which keeps its own copy of the factored tiles).
pub fn qr_factorize(a: &mut TiledMatrix, elims: &ElimList, exec: Execution) -> QrFactorization {
    let b = a.b();
    qr_factorize_ib(a, elims, exec, b)
}

/// [`qr_factorize`] with PLASMA-style inner blocking: kernels process the
/// tile in column panels of width `ib` (`ib == b` selects the unblocked
/// kernels). The factorization records `ib` so Q applications use the
/// matching blocked reflector grouping.
pub fn qr_factorize_ib(
    a: &mut TiledMatrix,
    elims: &ElimList,
    exec: Execution,
    ib: usize,
) -> QrFactorization {
    assert_eq!(a.mt(), elims.mt(), "elimination list built for a different mt");
    assert_eq!(a.nt(), elims.nt(), "elimination list built for a different nt");
    let graph = TaskGraph::build(a.mt(), a.nt(), a.b(), &elims.to_ops());
    let factors = match exec {
        Execution::Serial => execute_serial_ib(&graph, a, ib),
        Execution::Parallel(n) => execute_parallel_ib(&graph, a, n, ib),
    };
    QrFactorization { a: a.clone(), factors, elims: elims.clone(), ib }
}

impl QrFactorization {
    /// The factored tiles (R in the global upper triangle, V blocks below).
    pub fn factored(&self) -> &TiledMatrix {
        &self.a
    }

    /// The R factor as a dense (M × N) upper-triangular matrix.
    pub fn r_dense(&self) -> DenseMatrix {
        self.a.to_dense().upper_triangle()
    }

    /// Rows triangularized (GEQRT'd) in panel `k`: the diagonal row, every
    /// killer, and every TT victim — mirroring the runtime's task
    /// generation.
    fn triangle_rows(&self, k: usize) -> Vec<usize> {
        let mt = self.a.mt();
        let mut tri = vec![false; mt];
        tri[k] = true;
        for e in self.elims.panel(k) {
            tri[e.killer as usize] = true;
            if !e.ts {
                tri[e.victim as usize] = true;
            }
        }
        (k..mt).filter(|&i| tri[i]).collect()
    }

    /// Apply op(Q) to a tiled matrix `c` with the same tile-row count:
    /// `Trans` computes Qᵀ·C (forward elimination order, as during the
    /// factorization), `NoTrans` computes Q·C ("applying the reverse
    /// trees", §V-A).
    pub fn apply_q(&self, c: &mut TiledMatrix, trans: Trans) {
        assert_eq!(c.mt(), self.a.mt(), "C must have the same tile rows");
        assert_eq!(c.b(), self.a.b(), "tile sizes must match");
        let kmax = self.a.mt().min(self.a.nt());
        let panels: Vec<usize> = match trans {
            Trans::Trans => (0..kmax).collect(),
            Trans::NoTrans => (0..kmax).rev().collect(),
        };
        for k in panels {
            if matches!(trans, Trans::Trans) {
                self.apply_panel_geqrts(c, k, trans);
                self.apply_panel_kills(c, k, trans, false);
            } else {
                self.apply_panel_kills(c, k, trans, true);
                self.apply_panel_geqrts(c, k, trans);
            }
        }
    }

    fn apply_panel_geqrts(&self, c: &mut TiledMatrix, k: usize, trans: Trans) {
        let b = self.a.b();
        let blocked = self.ib < b;
        for i in self.triangle_rows(k) {
            let vg = self.factors.vg(i, k).expect("GEQRT factor present");
            let tg = self.factors.tg(i, k).expect("GEQRT T present");
            for jc in 0..c.nt() {
                if blocked {
                    unmqr_ib(b, self.ib, vg, tg, c.tile_mut(i, jc), trans);
                } else {
                    unmqr(b, vg, tg, c.tile_mut(i, jc), trans);
                }
            }
        }
    }

    fn apply_panel_kills(&self, c: &mut TiledMatrix, k: usize, trans: Trans, reversed: bool) {
        let b = self.a.b();
        let blocked = self.ib < b;
        let mut panel: Vec<_> = self.elims.panel(k).copied().collect();
        if reversed {
            panel.reverse();
        }
        for e in panel {
            let (piv, i) = (e.killer as usize, e.victim as usize);
            let v2 = self.a.tile(i, k);
            let tk = self.factors.tk(i, k).expect("kill T present");
            for jc in 0..c.nt() {
                let (c1, c2) = c.tile_pair_mut((piv, jc), (i, jc));
                match (e.ts, blocked) {
                    (true, false) => tsmqr(b, v2, tk, c1, c2, trans),
                    (true, true) => tsmqr_ib(b, self.ib, v2, tk, c1, c2, trans),
                    (false, false) => ttmqr(b, v2, tk, c1, c2, trans),
                    (false, true) => ttmqr_ib(b, self.ib, v2, tk, c1, c2, trans),
                }
            }
        }
    }

    /// [`QrFactorization::apply_q`] through the task-DAG runtime on
    /// `nthreads` workers (the DPLASMA `unmqr` analogue): distinct columns
    /// of C and independent row pairs proceed concurrently.
    pub fn apply_q_parallel(&self, c: &mut TiledMatrix, trans: Trans, nthreads: usize) {
        hqr_runtime::apply_q_parallel(
            &self.a,
            &self.factors,
            &self.elims.to_ops(),
            self.ib,
            c,
            trans,
            nthreads,
        );
    }

    /// Build Q explicitly (M × M) by applying the reverse trees to the
    /// identity.
    pub fn q_dense(&self) -> DenseMatrix {
        let mt = self.a.mt();
        let b = self.a.b();
        let mut q = TiledMatrix::identity(mt, mt, b);
        self.apply_q(&mut q, Trans::NoTrans);
        q.to_dense()
    }

    /// Run the paper's two checks against the original matrix.
    pub fn check(&self, original: &DenseMatrix) -> QrCheck {
        let q = self.q_dense();
        let orthogonality = q.orthogonality_error();
        // Q·R via the tiled apply (cheaper and stronger than dense matmul:
        // exercises the reverse-tree application).
        let r = self.r_dense();
        let mut r_tiled = TiledMatrix::from_dense(&r, self.a.b());
        self.apply_q(&mut r_tiled, Trans::NoTrans);
        let qr = r_tiled.to_dense();
        let norm_a = original.frob_norm().max(1.0);
        let residual = original.sub(&qr).frob_norm() / norm_a;
        QrCheck { orthogonality, residual, m: self.a.rows() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::HqrConfig;
    use crate::schedule::Schedule;
    use crate::trees::TreeKind;

    fn check_config(mt: usize, nt: usize, b: usize, elims: &ElimList, exec: Execution, seed: u64) {
        let mut a = TiledMatrix::random(mt, nt, b, seed);
        let a0 = a.to_dense();
        let f = qr_factorize(&mut a, elims, exec);
        let chk = f.check(&a0);
        assert!(
            chk.is_satisfactory(),
            "ortho={:e} resid={:e} for {mt}x{nt}",
            chk.orthogonality,
            chk.residual
        );
    }

    #[test]
    fn flat_tree_factorization_checks_out() {
        let l = Schedule::flat(5, 3).to_elim_list(true);
        check_config(5, 3, 4, &l, Execution::Serial, 1);
    }

    #[test]
    fn greedy_factorization_checks_out() {
        let l = Schedule::greedy(6, 4).to_elim_list(false);
        check_config(6, 4, 4, &l, Execution::Serial, 2);
    }

    #[test]
    fn binary_factorization_checks_out() {
        let l = Schedule::binary(7, 3).to_elim_list(false);
        check_config(7, 3, 3, &l, Execution::Serial, 3);
    }

    #[test]
    fn fibonacci_factorization_checks_out() {
        let l = Schedule::fibonacci(8, 3).to_elim_list(false);
        check_config(8, 3, 3, &l, Execution::Serial, 4);
    }

    #[test]
    fn hqr_with_domino_checks_out() {
        let cfg = HqrConfig::new(3, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(9, 4);
        check_config(9, 4, 4, &l, Execution::Serial, 5);
    }

    #[test]
    fn hqr_without_domino_checks_out() {
        let cfg = HqrConfig::new(2, 1).with_a(2).with_low(TreeKind::Flat);
        let l = cfg.elimination_list(8, 4);
        check_config(8, 4, 4, &l, Execution::Serial, 6);
    }

    #[test]
    fn hqr_all_tree_combos_small() {
        for low in TreeKind::ALL {
            for high in [TreeKind::Flat, TreeKind::Greedy] {
                let cfg =
                    HqrConfig::new(2, 1).with_a(2).with_low(low).with_high(high).with_domino(true);
                let l = cfg.elimination_list(6, 3);
                check_config(6, 3, 3, &l, Execution::Serial, 7);
            }
        }
    }

    #[test]
    fn parallel_execution_checks_out() {
        let cfg = HqrConfig::new(3, 1).with_a(2).with_domino(true);
        let l = cfg.elimination_list(9, 3);
        check_config(9, 3, 4, &l, Execution::Parallel(4), 8);
    }

    #[test]
    fn square_matrix_checks_out() {
        let l = Schedule::greedy(5, 5).to_elim_list(false);
        check_config(5, 5, 4, &l, Execution::Serial, 9);
    }

    #[test]
    fn single_tile_matrix() {
        let l = Schedule::flat(1, 1).to_elim_list(true);
        check_config(1, 1, 5, &l, Execution::Serial, 10);
    }

    #[test]
    fn qt_times_a_equals_r() {
        // Applying Qᵀ (forward trees) to the original must reproduce R.
        let (mt, nt, b) = (6, 3, 4);
        let l = Schedule::greedy(mt, nt).to_elim_list(false);
        let mut a = TiledMatrix::random(mt, nt, b, 11);
        let a0 = a.to_dense();
        let f = qr_factorize(&mut a, &l, Execution::Serial);
        let mut c = TiledMatrix::from_dense(&a0, b);
        f.apply_q(&mut c, Trans::Trans);
        let qta = c.to_dense();
        let diff = qta.sub(&f.r_dense()).frob_norm();
        assert!(diff < 1e-11, "QᵀA != R: {diff}");
        assert!(qta.max_abs_below_diagonal() < 1e-12);
    }

    #[test]
    fn r_diagonal_blocks_upper_triangular() {
        let (mt, nt, b) = (5, 5, 4);
        let l = Schedule::binary(mt, nt).to_elim_list(false);
        let mut a = TiledMatrix::random(mt, nt, b, 12);
        let f = qr_factorize(&mut a, &l, Execution::Serial);
        let r = f.r_dense();
        assert_eq!(r.max_abs_below_diagonal(), 0.0);
    }

    #[test]
    fn q_application_roundtrip() {
        let (mt, nt, b) = (6, 2, 3);
        let cfg = HqrConfig::new(2, 1).with_a(3).with_domino(true);
        let l = cfg.elimination_list(mt, nt);
        let mut a = TiledMatrix::random(mt, nt, b, 13);
        let f = qr_factorize(&mut a, &l, Execution::Serial);
        let c0 = TiledMatrix::random(mt, 2, b, 14);
        let mut c = c0.clone();
        f.apply_q(&mut c, Trans::Trans);
        f.apply_q(&mut c, Trans::NoTrans);
        let diff = c.to_dense().sub(&c0.to_dense()).frob_norm();
        assert!(diff < 1e-11, "Q·Qᵀ·C != C: {diff}");
    }

    #[test]
    fn parallel_apply_q_matches_serial_apply_q() {
        let (mt, nt, b) = (9usize, 4usize, 4usize);
        let cfg = HqrConfig::new(3, 1).with_a(2).with_domino(true);
        let elims = cfg.elimination_list(mt, nt);
        let mut a = TiledMatrix::random(mt, nt, b, 104);
        let f = qr_factorize(&mut a, &elims, Execution::Serial);
        let c0 = TiledMatrix::random(mt, 2, b, 105);
        for trans in [Trans::Trans, Trans::NoTrans] {
            let mut cs = c0.clone();
            let mut cp = c0.clone();
            f.apply_q(&mut cs, trans);
            f.apply_q_parallel(&mut cp, trans, 4);
            assert_eq!(cs.to_dense().data(), cp.to_dense().data(), "{trans:?}");
        }
    }

    #[test]
    fn parallel_apply_q_with_inner_blocking() {
        let (mt, nt, b) = (6usize, 3usize, 6usize);
        let elims = Schedule::greedy(mt, nt).to_elim_list(false);
        let mut a = TiledMatrix::random(mt, nt, b, 106);
        let f = qr_factorize_ib(&mut a, &elims, Execution::Serial, 3);
        let c0 = TiledMatrix::random(mt, 1, b, 107);
        let mut cs = c0.clone();
        let mut cp = c0.clone();
        f.apply_q(&mut cs, Trans::Trans);
        f.apply_q_parallel(&mut cp, Trans::Trans, 3);
        assert_eq!(cs.to_dense().data(), cp.to_dense().data());
    }

    #[test]
    fn inner_blocked_factorization_checks_out() {
        // PLASMA-style IB kernels through the full pipeline.
        let (mt, nt, b) = (8usize, 4usize, 8usize);
        let cfg = HqrConfig::new(2, 1).with_a(2).with_domino(true);
        let elims = cfg.elimination_list(mt, nt);
        for ib in [2usize, 4, 8] {
            let mut a = TiledMatrix::random(mt, nt, b, 101);
            let a0 = a.to_dense();
            let f = qr_factorize_ib(&mut a, &elims, Execution::Serial, ib);
            let chk = f.check(&a0);
            assert!(
                chk.is_satisfactory(),
                "ib={ib}: ortho={:e} resid={:e}",
                chk.orthogonality,
                chk.residual
            );
        }
    }

    #[test]
    fn inner_blocked_r_matches_unblocked() {
        let (mt, nt, b) = (6usize, 3usize, 8usize);
        let elims = Schedule::greedy(mt, nt).to_elim_list(false);
        let r_of = |ib: usize| {
            let mut a = TiledMatrix::random(mt, nt, b, 102);
            qr_factorize_ib(&mut a, &elims, Execution::Serial, ib).r_dense()
        };
        let r8 = r_of(8);
        let r2 = r_of(2);
        // Same factorization mathematically: R agrees to rounding.
        assert!(r8.sub(&r2).frob_norm() < 1e-11, "err {}", r8.sub(&r2).frob_norm());
    }

    #[test]
    fn inner_blocked_parallel_consistent() {
        let (mt, nt, b) = (9usize, 3usize, 6usize);
        let cfg = HqrConfig::new(3, 1).with_a(3).with_domino(true);
        let elims = cfg.elimination_list(mt, nt);
        let mut a1 = TiledMatrix::random(mt, nt, b, 103);
        let mut a2 = a1.clone();
        let f1 = qr_factorize_ib(&mut a1, &elims, Execution::Serial, 3);
        let f2 = qr_factorize_ib(&mut a2, &elims, Execution::Parallel(4), 3);
        assert_eq!(f1.r_dense().data(), f2.r_dense().data());
    }

    #[test]
    #[should_panic(expected = "different mt")]
    fn shape_mismatch_rejected() {
        let l = Schedule::flat(4, 2).to_elim_list(true);
        let mut a = TiledMatrix::random(5, 2, 3, 15);
        let _ = qr_factorize(&mut a, &l, Execution::Serial);
    }
}
