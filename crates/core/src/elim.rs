//! Elimination lists and the paper's validity conditions (§II).

use hqr_runtime::ElimOp;

/// Which level of the hierarchical tree an elimination belongs to (§IV-A/B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// Level 0 — "TS level": intra-domain kills with TS kernels.
    TsLevel,
    /// Level 1 — "low level": intra-cluster reduction of domain heads.
    Low,
    /// Level 2 — "coupling level": the domino band between the top tile and
    /// the local diagonal.
    Coupling,
    /// Level 3 — "high level": inter-cluster reduction of the top tiles.
    High,
    /// Not part of a hierarchy (single-level algorithms such as the plain
    /// flat/greedy trees of §III).
    Single,
}

/// One elimination `elim(i, killer(i,k), k)` with its kernel family and
/// hierarchy level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Elimination {
    /// Panel index.
    pub k: u32,
    /// Row being zeroed out.
    pub victim: u32,
    /// Row doing the killing.
    pub killer: u32,
    /// TS kernels (victim square) or TT kernels (victim triangular).
    pub ts: bool,
    /// Hierarchy level.
    pub level: Level,
}

impl Elimination {
    /// Convenience constructor.
    pub fn new(k: u32, victim: u32, killer: u32, ts: bool, level: Level) -> Self {
        Self { k, victim, killer, ts, level }
    }
}

/// An ordered, panel-major elimination list for an `mt × nt` tiled matrix.
#[derive(Clone, Debug)]
pub struct ElimList {
    mt: usize,
    nt: usize,
    elims: Vec<Elimination>,
}

impl ElimList {
    /// Wrap a list; panics if [`ElimList::validate`] fails, so every list in
    /// the library is valid by construction.
    pub fn new(mt: usize, nt: usize, elims: Vec<Elimination>) -> Self {
        let l = ElimList { mt, nt, elims };
        if let Err(e) = l.validate() {
            panic!("invalid elimination list: {e}");
        }
        l
    }

    /// Tile rows.
    pub fn mt(&self) -> usize {
        self.mt
    }

    /// Tile columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// The ordered eliminations.
    pub fn elims(&self) -> &[Elimination] {
        &self.elims
    }

    /// Eliminations of panel `k`, in order.
    pub fn panel(&self, k: usize) -> impl Iterator<Item = &Elimination> {
        self.elims.iter().filter(move |e| e.k as usize == k)
    }

    /// The killer of tile `(i, k)`, if the list eliminates it.
    pub fn killer(&self, i: usize, k: usize) -> Option<usize> {
        self.elims
            .iter()
            .find(|e| e.k as usize == k && e.victim as usize == i)
            .map(|e| e.killer as usize)
    }

    /// Number of eliminations per level, in the order
    /// [TS, Low, Coupling, High, Single].
    pub fn level_counts(&self) -> [usize; 5] {
        let mut c = [0usize; 5];
        for e in &self.elims {
            let idx = match e.level {
                Level::TsLevel => 0,
                Level::Low => 1,
                Level::Coupling => 2,
                Level::High => 3,
                Level::Single => 4,
            };
            c[idx] += 1;
        }
        c
    }

    /// Check the validity conditions of §II:
    ///
    /// * panel-major ordering;
    /// * every sub-diagonal tile `(i, k)`, `i > k`, killed exactly once;
    /// * rows only participate while alive in the panel (`killer(i,k)` must
    ///   be "a potential annihilator": not yet zeroed out when it kills);
    /// * TS victims must be square: never a killer and never a TT victim in
    ///   the same panel before (or after) their elimination.
    pub fn validate(&self) -> Result<(), String> {
        let (mt, nt) = (self.mt, self.nt);
        let kmax = mt.min(nt);
        let mut last_k = 0u32;
        for e in &self.elims {
            if e.k < last_k {
                return Err(format!("list not panel-major at panel {}", e.k));
            }
            last_k = e.k;
            if e.k as usize >= kmax {
                return Err(format!("panel {} out of range", e.k));
            }
            if e.victim as usize >= mt || e.killer as usize >= mt {
                return Err(format!("row out of range in panel {}", e.k));
            }
        }
        let mut killed = vec![false; mt];
        let mut has_killed = vec![false; mt];
        for k in 0..kmax {
            killed[k..mt].fill(false);
            has_killed[k..mt].fill(false);
            let panel: Vec<&Elimination> = self.panel(k).collect();
            for e in &panel {
                let (v, u) = (e.victim as usize, e.killer as usize);
                if v <= k {
                    return Err(format!("panel {k}: victim {v} not below the diagonal"));
                }
                if u < k {
                    return Err(format!("panel {k}: killer {u} above the panel"));
                }
                if v == u {
                    return Err(format!("panel {k}: row {v} kills itself"));
                }
                if killed[v] {
                    return Err(format!("panel {k}: tile ({v},{k}) killed twice"));
                }
                if killed[u] {
                    return Err(format!("panel {k}: killer {u} already zeroed out"));
                }
                if e.ts && has_killed[v] {
                    return Err(format!(
                        "panel {k}: TS victim {v} previously killed (is a triangle)"
                    ));
                }
                killed[v] = true;
                has_killed[u] = true;
            }
            // TS victims must stay square: they must not be TT victims of a
            // *different* elimination — already covered by killed-twice —
            // nor killers at any point of the panel.
            for e in &panel {
                if e.ts && has_killed[e.victim as usize] {
                    return Err(format!("panel {k}: TS victim {} also acts as a killer", e.victim));
                }
            }
            for (i, &dead) in killed.iter().enumerate().take(mt).skip(k + 1) {
                if !dead {
                    return Err(format!("panel {k}: tile ({i},{k}) never killed"));
                }
            }
            if killed[k] {
                return Err(format!("panel {k}: diagonal row killed"));
            }
        }
        Ok(())
    }

    /// Convert to the runtime's plain operation list.
    pub fn to_ops(&self) -> Vec<ElimOp> {
        self.elims.iter().map(|e| ElimOp::new(e.k, e.victim, e.killer, e.ts)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(mt: usize, nt: usize) -> Vec<Elimination> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(Elimination::new(k as u32, i as u32, k as u32, true, Level::Single));
            }
        }
        v
    }

    #[test]
    fn flat_list_is_valid() {
        let l = ElimList::new(5, 3, flat(5, 3));
        assert_eq!(l.elims().len(), 4 + 3 + 2);
        assert!(l.validate().is_ok());
    }

    #[test]
    fn killer_lookup() {
        let l = ElimList::new(4, 2, flat(4, 2));
        assert_eq!(l.killer(3, 1), Some(1));
        assert_eq!(l.killer(3, 0), Some(0));
        assert_eq!(l.killer(0, 0), None);
    }

    #[test]
    fn missing_elimination_detected() {
        let mut e = flat(4, 2);
        e.remove(1); // drop elim(2, 0, 0)
        let l = ElimList { mt: 4, nt: 2, elims: e };
        let err = l.validate().unwrap_err();
        assert!(err.contains("never killed"), "{err}");
    }

    #[test]
    fn double_kill_detected() {
        let mut e = flat(3, 1);
        e.push(Elimination::new(0, 2, 1, false, Level::Single));
        let l = ElimList { mt: 3, nt: 1, elims: e };
        assert!(l.validate().unwrap_err().contains("killed twice"));
    }

    #[test]
    fn dead_killer_detected() {
        // Kill row 1 first, then row 2 tries to be killed by dead row 1.
        let e = vec![
            Elimination::new(0, 1, 0, false, Level::Single),
            Elimination::new(0, 2, 1, false, Level::Single),
        ];
        let l = ElimList { mt: 3, nt: 1, elims: e };
        assert!(l.validate().unwrap_err().contains("already zeroed"));
    }

    #[test]
    fn ts_victim_must_be_square() {
        // Row 1 kills row 2 (is a triangle), then is TS-killed: invalid.
        let e = vec![
            Elimination::new(0, 2, 1, false, Level::Single),
            Elimination::new(0, 1, 0, true, Level::Single),
        ];
        let l = ElimList { mt: 3, nt: 1, elims: e };
        let err = l.validate().unwrap_err();
        assert!(err.contains("TS victim"), "{err}");
    }

    #[test]
    fn self_kill_detected() {
        let e = vec![Elimination::new(0, 1, 1, false, Level::Single)];
        let l = ElimList { mt: 2, nt: 1, elims: e };
        assert!(l.validate().unwrap_err().contains("kills itself"));
    }

    #[test]
    fn panel_major_required() {
        let e = vec![
            Elimination::new(1, 2, 1, true, Level::Single),
            Elimination::new(0, 1, 0, true, Level::Single),
            Elimination::new(0, 2, 0, true, Level::Single),
        ];
        let l = ElimList { mt: 3, nt: 2, elims: e };
        assert!(l.validate().unwrap_err().contains("panel-major"));
    }

    #[test]
    fn victim_above_diagonal_detected() {
        // Panel 0 is complete; panel 1 tries to kill the diagonal row 1.
        let e = vec![
            Elimination::new(0, 1, 0, true, Level::Single),
            Elimination::new(0, 2, 0, true, Level::Single),
            Elimination::new(1, 1, 2, false, Level::Single),
        ];
        let l = ElimList { mt: 3, nt: 2, elims: e };
        assert!(l.validate().unwrap_err().contains("not below the diagonal"));
    }

    #[test]
    fn level_counts_sum_to_len() {
        let l = ElimList::new(6, 2, flat(6, 2));
        let c = l.level_counts();
        assert_eq!(c.iter().sum::<usize>(), l.elims().len());
        assert_eq!(c[4], l.elims().len(), "flat fixture is all Single level");
    }

    #[test]
    fn to_ops_preserves_order_and_kernels() {
        let l = ElimList::new(4, 2, flat(4, 2));
        let ops = l.to_ops();
        assert_eq!(ops.len(), l.elims().len());
        assert!(ops.iter().all(|o| o.ts));
        assert_eq!(ops[0].victim, 1);
    }

    #[test]
    #[should_panic(expected = "invalid elimination list")]
    fn constructor_rejects_invalid() {
        let _ = ElimList::new(3, 1, vec![]);
    }
}
