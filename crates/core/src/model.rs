//! Analytic formulas from the paper (§II and §III-C).

/// Floating-point operations of a QR factorization of an M × N matrix:
/// 2MN² − (2/3)N³ — "the exact same number as for a standard Householder
/// reflection algorithm" (§II).
pub fn qr_flops(m_elems: usize, n_elems: usize) -> f64 {
    let (m, n) = (m_elems as f64, n_elems as f64);
    2.0 * m * n * n - 2.0 / 3.0 * n * n * n
}

/// Total kernel weight of *any* tiled QR elimination list on an mt × nt
/// tile matrix, in b³/3 flop units. Panel k costs one triangularization of
/// the diagonal row (4 + 6 per trailing column) plus, per eliminated row,
/// one kill and its updates (6 + 12 per trailing column — identical for
/// the TS and TT paths, §II). For m ≥ n this telescopes to the paper's
/// 6mn² − 2n³.
pub fn total_weight(mt: usize, nt: usize) -> u64 {
    let (m, n) = (mt as u64, nt as u64);
    let mut w = 0u64;
    for k in 0..m.min(n) {
        let trailing = n - 1 - k;
        w += 4 + 6 * trailing; // GEQRT + UNMQRs of the diagonal row
        w += (m - 1 - k) * (6 + 12 * trailing); // kills + their updates
    }
    w
}

/// §III-C: with an m × n tile matrix on p clusters, "the speedup attainable
/// by the block distribution is bounded by p(1 − n/(3m))" — the clusters
/// owning top rows go idle as the factorization progresses.
pub fn block_distribution_speedup_bound(p: usize, mt: usize, nt: usize) -> f64 {
    p as f64 * (1.0 - nt as f64 / (3.0 * mt as f64))
}

/// Coarse-grain makespan of the flat tree (perfect pipelining, Table II):
/// panel k finishes at step (m − 1) + k, so the last panel with kills
/// (min(m−1, n) − 1) ends at (m − 1) + min(m − 1, n) − 1.
pub fn flat_coarse_makespan(mt: usize, nt: usize) -> usize {
    (mt - 1) + mt.saturating_sub(1).min(nt).saturating_sub(1)
}

/// Critical-path ratio quoted in §V-B for the low-level tree on a local
/// m′ × n′ sub-matrix: flat ≈ (m′ + 2n′) versus greedy ≈ (log₂ m′ + 2n′).
pub fn low_level_cp_ratio(m_loc: usize, n_loc: usize) -> f64 {
    (m_loc as f64 + 2.0 * n_loc as f64) / ((m_loc as f64).log2() + 2.0 * n_loc as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_flops_square() {
        // For M = N: 2N³ − 2N³/3 = (4/3)N³.
        let n = 300usize;
        assert!((qr_flops(n, n) - 4.0 / 3.0 * (n as f64).powi(3)).abs() < 1.0);
    }

    #[test]
    fn weight_matches_flops_in_units() {
        // total_weight · b³/3 == qr_flops(m·b, n·b) exactly.
        for (mt, nt, b) in [(6usize, 4usize, 5usize), (10, 10, 3), (20, 2, 7)] {
            let w = total_weight(mt, nt) as f64 * (b as f64).powi(3) / 3.0;
            let f = qr_flops(mt * b, nt * b);
            assert!((w - f).abs() < 1e-6, "{mt}x{nt} b={b}: {w} vs {f}");
        }
    }

    #[test]
    fn block_bound_matches_paper_ratios() {
        // §V-C: square matrix ⇒ bound = p·(2/3): [SLHD10] reaches 2/3 of
        // HQR; N = M/2 ⇒ bound = p·(5/6).
        let square = block_distribution_speedup_bound(60, 240, 240) / 60.0;
        assert!((square - 2.0 / 3.0).abs() < 1e-12);
        let half = block_distribution_speedup_bound(60, 240, 120) / 60.0;
        assert!((half - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn flat_makespan_matches_schedule() {
        use crate::schedule::Schedule;
        for (mt, nt) in [(12usize, 3usize), (9, 5), (40, 2)] {
            assert_eq!(flat_coarse_makespan(mt, nt), Schedule::flat(mt, nt).makespan());
        }
    }

    #[test]
    fn cp_ratio_matches_paper_example() {
        // §V-B: 68×16 local matrix ⇒ flat/greedy CP ratio ≈ 2.6.
        let ratio = low_level_cp_ratio(68, 16);
        assert!((ratio - 2.6).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn tall_skinny_bound_is_nearly_p() {
        let bound = block_distribution_speedup_bound(60, 1024, 16) / 60.0;
        assert!(bound > 0.99);
    }
}
