//! **HQR** — hierarchical tile QR factorization for clusters of multi-core
//! nodes, reproducing Dongarra, Faverge, Herault, Langou & Robert,
//! *"Hierarchical QR factorization algorithms for multi-core cluster
//! systems"* (IPDPS 2012).
//!
//! A tile QR algorithm is entirely characterized by its *elimination list*
//! (§II). This crate provides:
//!
//! * [`elim`] — elimination lists with the paper's validity conditions;
//! * [`trees`] — the per-panel reduction trees (FLATTREE, BINARYTREE,
//!   GREEDY, FIBONACCI);
//! * [`hier`] — the paper's contribution: the four-level hierarchical tree
//!   (TS level / low level / domino coupling level / high level) over a
//!   virtual p×q cluster grid ([`HqrConfig`]);
//! * [`schedule`] — coarse-grain unit-time schedules reproducing the
//!   paper's Tables I–IV and the critical-path reasoning of §III;
//! * [`factor`] — the numerical driver: factorize a [`hqr_tile::TiledMatrix`]
//!   through the task-DAG runtime, rebuild Q, and run the paper's checks
//!   (‖QᵀQ−I‖, ‖A−QR‖);
//! * [`baselines`] — the comparison algorithms of §V as parametrizations
//!   of the same engine (\[BBD+10\], \[SLHD10\], plus the ScaLAPACK model in
//!   `hqr-sim`);
//! * [`model`] — analytic formulas (flop counts, §III-C load-balance
//!   bounds);
//! * [`experiments`] — glue to run any configuration through the cluster
//!   simulator, used by the figure-regenerating benches.
//!
//! # Quickstart
//!
//! ```
//! use hqr::prelude::*;
//!
//! // An 8×4-tile matrix of 8×8 tiles, factored with HQR on a virtual
//! // 2×1 grid, TS domains of 2, default trees, domino coupling on.
//! let config = HqrConfig::new(2, 1).with_a(2).with_domino(true);
//! let elims = config.elimination_list(8, 4);
//! let mut a = TiledMatrix::random(8, 4, 8, 42);
//! let a0 = a.to_dense();
//! let fac = qr_factorize(&mut a, &elims, Execution::Serial);
//! let check = fac.check(&a0);
//! assert!(check.is_satisfactory());
//! ```

pub mod baselines;
pub mod driver;
pub mod elim;
pub mod experiments;
pub mod factor;
pub mod hier;
pub mod model;
pub mod pivots;
pub mod schedule;
pub mod solve;
pub mod trees;

pub use driver::DenseQr;
pub use elim::{ElimList, Elimination, Level};
pub use factor::{qr_factorize, qr_factorize_ib, Execution, QrCheck, QrFactorization};
pub use hier::HqrConfig;
pub use pivots::PivotIndex;
pub use trees::TreeKind;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::driver::DenseQr;
    pub use crate::elim::{ElimList, Elimination, Level};
    pub use crate::factor::{qr_factorize, qr_factorize_ib, Execution, QrCheck, QrFactorization};
    pub use crate::hier::HqrConfig;
    pub use crate::schedule::Schedule;
    pub use crate::trees::TreeKind;
    pub use hqr_tile::{DenseMatrix, Layout, ProcessGrid, TiledMatrix};
}
