//! Glue between the algorithm definitions and the cluster simulator —
//! used by the figure-regenerating benches and the examples.

use crate::baselines::AlgorithmSetup;
use hqr_runtime::TaskGraph;
use hqr_sim::{simulate, Platform, SimReport};

/// Build the task DAG of a setup and replay it on `platform` with tile
/// size `b`. Returns the simulator's report (GFlop/s, messages, ...).
pub fn simulate_setup(setup: &AlgorithmSetup, b: usize, platform: &Platform) -> SimReport {
    let graph = TaskGraph::build(setup.elims.mt(), setup.elims.nt(), b, &setup.elims.to_ops());
    simulate(&graph, &setup.layout, platform)
}

/// One row of a figure: algorithm name plus achieved GFlop/s.
#[derive(Clone, Debug)]
pub struct FigurePoint {
    /// Matrix rows in elements.
    pub m: usize,
    /// Matrix columns in elements.
    pub n: usize,
    /// Algorithm / configuration label.
    pub label: String,
    /// Achieved GFlop/s under the simulator.
    pub gflops: f64,
    /// Inter-node messages.
    pub messages: usize,
}

impl FigurePoint {
    /// Evaluate a setup into a labelled figure point.
    pub fn from_setup(setup: &AlgorithmSetup, b: usize, platform: &Platform) -> Self {
        let rep = simulate_setup(setup, b, platform);
        FigurePoint {
            m: setup.elims.mt() * b,
            n: setup.elims.nt() * b,
            label: setup.name.clone(),
            gflops: rep.gflops,
            messages: rep.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{bbd10, hqr_tall_skinny, slhd10};
    use hqr_tile::ProcessGrid;

    /// A scaled-down edel: 6 nodes × 4 cores, same rates.
    fn mini_platform() -> Platform {
        Platform { nodes: 6, cores_per_node: 4, ..Platform::edel() }
    }

    #[test]
    fn hqr_beats_bbd10_on_tall_skinny() {
        // The headline claim of Figure 8, at reduced scale: 96×4 tiles,
        // 3×2 grid of 6 nodes.
        let p = mini_platform();
        let grid = ProcessGrid::new(3, 2);
        let b = 40;
        let h = FigurePoint::from_setup(&hqr_tall_skinny(96, 4, grid), b, &p);
        let f = FigurePoint::from_setup(&bbd10(96, 4, grid), b, &p);
        assert!(
            h.gflops > 1.5 * f.gflops,
            "HQR {:.1} GF should clearly beat [BBD+10] {:.1} GF on tall-skinny",
            h.gflops,
            f.gflops
        );
    }

    #[test]
    fn hqr_beats_slhd10_on_square() {
        // Figure 9's square end: 1D block layout load imbalance caps
        // [SLHD10] at ~2/3 of HQR (§III-C / §V-C).
        let p = mini_platform();
        let grid = ProcessGrid::new(3, 2);
        let b = 40;
        let h = FigurePoint::from_setup(&crate::baselines::hqr_square(36, 36, grid), b, &p);
        let s = FigurePoint::from_setup(&slhd10(36, 36, 6), b, &p);
        assert!(
            h.gflops > s.gflops,
            "HQR {:.1} GF should beat [SLHD10] {:.1} GF on square",
            h.gflops,
            s.gflops
        );
    }

    #[test]
    fn hqr_sends_fewer_messages_than_bbd10_tall_skinny() {
        // "Communication-avoiding": the high-level tree sends O(p log p)
        // messages per panel instead of the flat tree's unaware traffic.
        let p = mini_platform();
        let grid = ProcessGrid::new(6, 1);
        let b = 40;
        let h = FigurePoint::from_setup(&hqr_tall_skinny(96, 2, grid), b, &p);
        let f = FigurePoint::from_setup(&bbd10(96, 2, grid), b, &p);
        assert!(
            h.messages < f.messages,
            "HQR messages {} should undercut [BBD+10] {}",
            h.messages,
            f.messages
        );
    }

    #[test]
    fn figure_point_carries_dimensions() {
        let p = mini_platform();
        let grid = ProcessGrid::new(3, 2);
        let pt = FigurePoint::from_setup(&bbd10(8, 4, grid), 10, &p);
        assert_eq!(pt.m, 80);
        assert_eq!(pt.n, 40);
        assert!(pt.gflops > 0.0);
    }
}
