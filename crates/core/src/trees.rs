//! Per-panel reduction trees: FLATTREE, BINARYTREE, GREEDY, FIBONACCI.
//!
//! A reduction tree over `z` participants (index 0 is the root — the top
//! tile — and indices increase downward) is an ordered list of `z − 1`
//! pairings `(victim, killer)` satisfying the §II conditions: a participant
//! kills only while alive, and the root survives.
//!
//! These are the building blocks plugged into the low and high levels of
//! the hierarchical algorithm (§IV-A: "the trees can be freely chosen
//! (flat, binary, greedy)", plus the FIBONACCI scheme of \[1\]). The
//! whole-matrix, pipelining-aware variants used for Tables I–IV live in
//! [`crate::schedule`].

/// The tree shapes offered at every level of the hierarchy (§V-A: "a choice
/// of four different TT trees ... GREEDY, BINARYTREE, FLATTREE, FIBONACCI").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// A single killer (the root) eliminates everyone sequentially.
    /// Minimal communication / maximal locality, serial.
    Flat,
    /// Balanced binary combining: maximal instantaneous parallelism.
    Binary,
    /// Kill as many as possible per round, bottom rows first (§III-B).
    Greedy,
    /// The Fibonacci scheme of Modi & Clarke \[16\]: kill F(s) rows at round
    /// s — asymptotically optimal like GREEDY, with smoother pipelining.
    Fibonacci,
}

impl TreeKind {
    /// All four kinds, for parameter sweeps.
    pub const ALL: [TreeKind; 4] =
        [TreeKind::Flat, TreeKind::Binary, TreeKind::Greedy, TreeKind::Fibonacci];

    /// Parse the paper's tree names.
    pub fn parse(s: &str) -> Option<TreeKind> {
        match s.to_ascii_lowercase().as_str() {
            "flat" | "flattree" => Some(TreeKind::Flat),
            "binary" | "binarytree" => Some(TreeKind::Binary),
            "greedy" => Some(TreeKind::Greedy),
            "fibonacci" => Some(TreeKind::Fibonacci),
            _ => None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Flat => "flat",
            TreeKind::Binary => "binary",
            TreeKind::Greedy => "greedy",
            TreeKind::Fibonacci => "fibonacci",
        }
    }

    /// Generate the ordered `(victim, killer)` pairings reducing `z`
    /// participants into participant 0.
    ///
    /// ```
    /// use hqr::TreeKind;
    /// // Figure 2's binary tree on 4 tiles: adjacent pairs, then the root.
    /// assert_eq!(TreeKind::Binary.reduction(4), vec![(1, 0), (3, 2), (2, 0)]);
    /// // The flat tree serializes everything through the root (Figure 1).
    /// assert_eq!(TreeKind::Flat.reduction(3), vec![(1, 0), (2, 0)]);
    /// ```
    pub fn reduction(self, z: usize) -> Vec<(usize, usize)> {
        if z <= 1 {
            return Vec::new();
        }
        match self {
            TreeKind::Flat => (1..z).map(|v| (v, 0)).collect(),
            TreeKind::Binary => {
                let mut out = Vec::with_capacity(z - 1);
                let mut stride = 1;
                while stride < z {
                    let mut idx = 0;
                    while idx + stride < z {
                        out.push((idx + stride, idx));
                        idx += 2 * stride;
                    }
                    stride *= 2;
                }
                out
            }
            TreeKind::Greedy => rounds_reduction(z, |_round, alive| alive / 2),
            TreeKind::Fibonacci => {
                rounds_reduction(z, |round, alive| fibonacci(round + 1).min(alive / 2))
            }
        }
    }

    /// Number of rounds (parallel depth) of the reduction, assuming
    /// unit-time eliminations with unbounded resources.
    pub fn depth(self, z: usize) -> usize {
        if z <= 1 {
            return 0;
        }
        match self {
            TreeKind::Flat => z - 1,
            // Both greedy and binary halve the survivors each round.
            TreeKind::Binary | TreeKind::Greedy => (z as f64).log2().ceil() as usize,
            TreeKind::Fibonacci => {
                let mut alive = z;
                let mut rounds = 0;
                while alive > 1 {
                    alive -= fibonacci(rounds + 1).min(alive / 2).max(1);
                    rounds += 1;
                }
                rounds
            }
        }
    }
}

/// Round-based reduction: at round `r`, kill `quota(r, alive)` of the
/// bottom-most alive participants, each paired with the alive participant
/// that many places above it ("the z rows above them as killers, pairing
/// them in the natural order", §III-B).
fn rounds_reduction(z: usize, quota: impl Fn(usize, usize) -> usize) -> Vec<(usize, usize)> {
    let mut alive: Vec<usize> = (0..z).collect();
    let mut out = Vec::with_capacity(z - 1);
    let mut round = 0;
    while alive.len() > 1 {
        let c = quota(round, alive.len()).clamp(1, alive.len() / 2).max(1).min(alive.len() - 1);
        let n = alive.len();
        for t in 0..c {
            let victim = alive[n - c + t];
            let killer = alive[n - 2 * c + t];
            out.push((victim, killer));
        }
        alive.truncate(n - c);
        round += 1;
    }
    out
}

/// The Fibonacci numbers F(1)=1, F(2)=1, F(3)=2, ...
fn fibonacci(n: usize) -> usize {
    let (mut a, mut b) = (1usize, 1usize);
    for _ in 1..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

/// Check that a pairing list is a valid reduction of `z` participants:
/// every non-root killed exactly once, killers alive when they kill,
/// root 0 survives. Used by tests and by the hierarchy builder's debug
/// assertions.
pub fn validate_reduction(z: usize, pairs: &[(usize, usize)]) -> Result<(), String> {
    let mut killed = vec![false; z];
    for &(v, u) in pairs {
        if v >= z || u >= z {
            return Err(format!("participant out of range: ({v},{u})"));
        }
        if v == u {
            return Err(format!("{v} kills itself"));
        }
        if killed[v] {
            return Err(format!("{v} killed twice"));
        }
        if killed[u] {
            return Err(format!("killer {u} already dead"));
        }
        killed[v] = true;
    }
    if killed[0] {
        return Err("root was killed".into());
    }
    for (i, &dead) in killed.iter().enumerate().skip(1) {
        if !dead {
            return Err(format!("participant {i} never killed"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_produce_valid_reductions() {
        for kind in TreeKind::ALL {
            for z in 0..40 {
                let pairs = kind.reduction(z);
                if z > 0 {
                    assert_eq!(pairs.len(), z - 1, "{kind:?} z={z}");
                    validate_reduction(z, &pairs).unwrap_or_else(|e| panic!("{kind:?} z={z}: {e}"));
                }
            }
        }
    }

    #[test]
    fn flat_matches_paper_figure_1() {
        // Figure 1 / Table I: killer is always tile 0, order top to bottom.
        let pairs = TreeKind::Flat.reduction(12);
        let expect: Vec<(usize, usize)> = (1..12).map(|v| (v, 0)).collect();
        assert_eq!(pairs, expect);
    }

    #[test]
    fn binary_matches_paper_figure_2() {
        // Figure 2: elim(2i+1, 2i) first, then stride 2, 4, 8 — the last
        // elimination is elim(2^⌈log m⌉ ... , 0).
        let pairs = TreeKind::Binary.reduction(12);
        assert_eq!(&pairs[..6], &[(1, 0), (3, 2), (5, 4), (7, 6), (9, 8), (11, 10)]);
        assert_eq!(&pairs[6..9], &[(2, 0), (6, 4), (10, 8)]);
        assert_eq!(&pairs[9..], &[(4, 0), (8, 0)]);
        assert_eq!(*pairs.last().unwrap(), (8, 0));
    }

    #[test]
    fn greedy_kills_bottom_half_each_round() {
        // §III-B Table IV panel 0, m=12: round 1 kills rows 6..11 using
        // rows 0..5.
        let pairs = TreeKind::Greedy.reduction(12);
        assert_eq!(&pairs[..6], &[(6, 0), (7, 1), (8, 2), (9, 3), (10, 4), (11, 5)]);
        // Round 2: rows 3,4,5 killed by 0,1,2; round 3: 2 by 1... wait —
        // survivors are 0,1,2 and greedy kills ⌊3/2⌋ = 1 bottom row (2) by
        // the row 1 above; then 1 by 0.
        assert_eq!(&pairs[6..9], &[(3, 0), (4, 1), (5, 2)]);
        assert_eq!(&pairs[9..], &[(2, 1), (1, 0)]);
    }

    #[test]
    fn fibonacci_quota_grows_like_fibonacci() {
        // For a tall panel the kill counts per round follow 1,1,2,3,5,...
        let pairs = TreeKind::Fibonacci.reduction(13);
        // Round sizes: 1,1,2,3,(then capped by alive/2) ...
        assert_eq!(pairs[0], (12, 11), "bottom row killed first");
        assert_eq!(pairs[1], (11, 10));
        assert_eq!(&pairs[2..4], &[(9, 7), (10, 8)]);
    }

    #[test]
    fn depths() {
        assert_eq!(TreeKind::Flat.depth(12), 11);
        assert_eq!(TreeKind::Binary.depth(12), 4);
        assert_eq!(TreeKind::Greedy.depth(12), 4);
        assert!(TreeKind::Fibonacci.depth(12) >= 4);
        assert_eq!(TreeKind::Flat.depth(1), 0);
        assert_eq!(TreeKind::Binary.depth(0), 0);
    }

    #[test]
    fn binary_depth_is_logarithmic() {
        for z in [2usize, 3, 4, 7, 8, 9, 100] {
            let pairs = TreeKind::Binary.reduction(z);
            // Depth via longest chain of kill dependencies on the root.
            assert!(pairs.len() == z - 1);
            assert_eq!(TreeKind::Binary.depth(z), (z as f64).log2().ceil() as usize);
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(TreeKind::parse("FLATTREE"), Some(TreeKind::Flat));
        assert_eq!(TreeKind::parse("greedy"), Some(TreeKind::Greedy));
        assert_eq!(TreeKind::parse("BinaryTree"), Some(TreeKind::Binary));
        assert_eq!(TreeKind::parse("fibonacci"), Some(TreeKind::Fibonacci));
        assert_eq!(TreeKind::parse("bogus"), None);
    }

    #[test]
    fn two_participants_single_elim() {
        for kind in TreeKind::ALL {
            assert_eq!(kind.reduction(2), vec![(1, 0)], "{kind:?}");
        }
    }

    #[test]
    fn validate_reduction_rejects_bad_lists() {
        assert!(validate_reduction(3, &[(1, 0)]).is_err(), "2 never killed");
        assert!(validate_reduction(3, &[(1, 0), (2, 1)]).is_err(), "dead killer");
        assert!(validate_reduction(3, &[(1, 0), (1, 0)]).is_err(), "double kill");
        assert!(validate_reduction(2, &[(0, 1)]).is_err(), "root killed... and 1 never");
        assert!(validate_reduction(3, &[(2, 0), (1, 0)]).is_ok());
    }
}
