//! Property-based tests of the tile kernels: structural and numerical
//! invariants over random tiles, tile sizes and inner block sizes.

use hqr_kernels::blocked::{geqrt_ib, tsmqr_ib, tsqrt_ib, unmqr_ib};
use hqr_kernels::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr, Trans};
use hqr_tile::{DenseMatrix, TileGuard};
use proptest::prelude::*;

fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn tile(b: usize, seed: u64) -> Vec<f64> {
    DenseMatrix::random(b, b, seed).data().to_vec()
}

fn upper(b: usize, a: &[f64]) -> Vec<f64> {
    let mut u = vec![0.0; b * b];
    for j in 0..b {
        for i in 0..=j {
            u[i + j * b] = a[i + j * b];
        }
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEQRT: R diagonal magnitudes equal column norms of the residual
    /// panel process (first column exactly), V strictly lower, and
    /// applying Qᵀ then Q is the identity.
    #[test]
    fn geqrt_invariants(b in 1usize..16, seed in any::<u64>()) {
        let a0 = tile(b, seed);
        let mut a = a0.clone();
        let mut t = vec![0.0; b * b];
        geqrt(b, &mut a, &mut t);
        // |r00| = ‖a0[:,0]‖.
        let col0 = norm(&a0[..b]);
        prop_assert!((a[0].abs() - col0).abs() < 1e-12 * col0.max(1.0));
        // Roundtrip.
        let c0 = tile(b, seed.wrapping_add(1));
        let mut c = c0.clone();
        unmqr(b, &a, &t, &mut c, Trans::Trans);
        unmqr(b, &a, &t, &mut c, Trans::NoTrans);
        let diff: Vec<f64> = c.iter().zip(&c0).map(|(x, y)| x - y).collect();
        prop_assert!(norm(&diff) < 1e-11 * norm(&c0).max(1.0));
    }

    /// TSQRT kills the bottom tile: applying Qᵀ to the original stack
    /// leaves zeros below, and the top R norm accounts for all the mass.
    #[test]
    fn tsqrt_annihilation(b in 1usize..12, seed in any::<u64>()) {
        let a1_0 = upper(b, &tile(b, seed));
        let a2_0 = tile(b, seed.wrapping_add(2));
        let (mut a1, mut a2) = (a1_0.clone(), a2_0.clone());
        let mut t = vec![0.0; b * b];
        tsqrt(b, &mut a1, &mut a2, &mut t);
        let (mut c1, mut c2) = (a1_0.clone(), a2_0.clone());
        tsmqr(b, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        prop_assert!(norm(&c2) < 1e-11 * (norm(&a1_0) + norm(&a2_0)).max(1.0));
        // Orthogonality preserves the stacked norm.
        let mass_in = (norm(&a1_0).powi(2) + norm(&a2_0).powi(2)).sqrt();
        let mass_out = norm(&upper(b, &a1));
        prop_assert!((mass_in - mass_out).abs() < 1e-10 * mass_in.max(1.0));
    }

    /// TTQRT preserves the strict lower triangle of both tiles.
    #[test]
    fn ttqrt_structure(b in 1usize..12, seed in any::<u64>()) {
        let mut a1 = tile(b, seed);
        let mut a2 = tile(b, seed.wrapping_add(3));
        let lower = |a: &[f64]| -> Vec<f64> {
            let mut v = Vec::new();
            for j in 0..b {
                for i in (j + 1)..b {
                    v.push(a[i + j * b]);
                }
            }
            v
        };
        let (l1, l2) = (lower(&a1), lower(&a2));
        let mut t = vec![0.0; b * b];
        ttqrt(b, &mut a1, &mut a2, &mut t);
        prop_assert_eq!(lower(&a1), l1, "A1 strict lower untouched");
        prop_assert_eq!(lower(&a2), l2, "A2 strict lower untouched");
    }

    /// Update kernels are isometries on the stacked pair.
    #[test]
    fn updates_are_isometries(b in 1usize..12, seed in any::<u64>(), tt in any::<bool>()) {
        let mut a1 = upper(b, &tile(b, seed));
        let mut a2 = if tt { upper(b, &tile(b, seed ^ 5)) } else { tile(b, seed ^ 5) };
        let mut t = vec![0.0; b * b];
        if tt {
            ttqrt(b, &mut a1, &mut a2, &mut t);
        } else {
            tsqrt(b, &mut a1, &mut a2, &mut t);
        }
        let (mut c1, mut c2) = (tile(b, seed ^ 9), tile(b, seed ^ 11));
        let before = (norm(&c1).powi(2) + norm(&c2).powi(2)).sqrt();
        if tt {
            ttmqr(b, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        } else {
            tsmqr(b, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        }
        let after = (norm(&c1).powi(2) + norm(&c2).powi(2)).sqrt();
        prop_assert!((before - after).abs() < 1e-11 * before.max(1.0));
    }

    /// Inner-blocked kernels compute the same V and R as the unblocked
    /// ones for every valid ib.
    #[test]
    fn blocked_matches_unblocked(b in 2usize..14, ib_frac in 1usize..14, seed in any::<u64>()) {
        let ib = (ib_frac % b).max(1);
        let a0 = tile(b, seed);
        let (mut a_ref, mut t_ref) = (a0.clone(), vec![0.0; b * b]);
        geqrt(b, &mut a_ref, &mut t_ref);
        let (mut a_ib, mut t_ib) = (a0.clone(), vec![0.0; b * b]);
        geqrt_ib(b, ib, &mut a_ib, &mut t_ib);
        let diff: Vec<f64> = a_ref.iter().zip(&a_ib).map(|(x, y)| x - y).collect();
        prop_assert!(norm(&diff) < 1e-10 * norm(&a0).max(1.0), "ib={ib} b={b}");
    }

    /// Blocked TSQRT + blocked apply roundtrips.
    #[test]
    fn blocked_ts_roundtrip(b in 2usize..12, ib_frac in 1usize..12, seed in any::<u64>()) {
        let ib = (ib_frac % b).max(1);
        let mut a1 = upper(b, &tile(b, seed));
        let mut a2 = tile(b, seed ^ 21);
        let mut t = vec![0.0; b * b];
        tsqrt_ib(b, ib, &mut a1, &mut a2, &mut t);
        let (c1_0, c2_0) = (tile(b, seed ^ 23), tile(b, seed ^ 27));
        let (mut c1, mut c2) = (c1_0.clone(), c2_0.clone());
        tsmqr_ib(b, ib, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        tsmqr_ib(b, ib, &a2, &t, &mut c1, &mut c2, Trans::NoTrans);
        let d1: Vec<f64> = c1.iter().zip(&c1_0).map(|(x, y)| x - y).collect();
        let d2: Vec<f64> = c2.iter().zip(&c2_0).map(|(x, y)| x - y).collect();
        prop_assert!(norm(&d1) + norm(&d2) < 1e-10 * (norm(&c1_0) + norm(&c2_0)).max(1.0));
    }

    /// Tile guards across random legitimate kernel sequences: refreshing
    /// a guard after each kernel that writes its buffer means verification
    /// never false-positives (digest and tolerant column sums alike), and
    /// a single bit flip afterwards is always caught.
    #[test]
    fn guards_track_random_kernel_sequences(
        b in 1usize..10, seed in any::<u64>(), nops in 1usize..12,
        ops_seed in any::<u64>(), flip_raw in any::<u64>(),
    ) {
        // A cheap splitmix step stands in for a `Vec` strategy (the
        // vendored proptest has no collection support).
        let mut opstate = ops_seed;
        let mut next = move || {
            opstate = opstate.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = opstate;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let ops: Vec<usize> = (0..nops).map(|_| (next() % 6) as usize).collect();
        // Working set: two factorizable tiles, two update targets, one T.
        let mut bufs: [Vec<f64>; 5] = [
            tile(b, seed),
            tile(b, seed ^ 1),
            tile(b, seed ^ 2),
            tile(b, seed ^ 3),
            vec![0.0; b * b],
        ];
        let mut guards: Vec<TileGuard> =
            bufs.iter().map(|x| TileGuard::compute(b, x)).collect();
        for (step, &op) in ops.iter().enumerate() {
            // Zero false positives before every kernel launch.
            for (g, x) in guards.iter().zip(&bufs) {
                prop_assert!(g.verify(x).is_ok(), "digest false positive before step {step}");
                prop_assert!(g.verify_sums(x).is_ok(), "sum false positive before step {step}");
            }
            let [a1, a2, c1, c2, t] = &mut bufs;
            // Run one kernel, then refresh exactly its write set.
            let written: &[usize] = match op {
                0 => { geqrt(b, a1, t); &[0, 4] }
                1 => { unmqr(b, a1, t, c1, Trans::Trans); &[2] }
                2 => { tsqrt(b, a1, a2, t); &[0, 1, 4] }
                3 => { tsmqr(b, a2, t, c1, c2, Trans::Trans); &[2, 3] }
                4 => { ttqrt(b, a1, a2, t); &[0, 1, 4] }
                _ => { ttmqr(b, a2, t, c1, c2, Trans::Trans); &[2, 3] }
            };
            for &w in written {
                guards[w].refresh(&bufs[w]);
            }
        }
        for (g, x) in guards.iter().zip(&bufs) {
            prop_assert!(g.verify(x).is_ok(), "false positive after the sequence");
        }
        // 100% detection: one flipped bit anywhere is caught.
        let (which, elem, bit) =
            ((flip_raw % 5) as usize, (flip_raw >> 3) as usize % (b * b), (flip_raw >> 32) % 64);
        let x = &mut bufs[which][elem];
        *x = f64::from_bits(x.to_bits() ^ (1u64 << bit));
        prop_assert!(
            guards[which].verify(&bufs[which]).is_err(),
            "bit {bit} of element {elem} in buffer {which} escaped the guard"
        );
    }

    /// Blocked UNMQR agrees with unblocked UNMQR when fed the same
    /// factorization (V identical, T layouts coincide for the shared
    /// panels only when ib divides evenly — so compare end results of
    /// applying the full Q).
    #[test]
    fn blocked_apply_agrees(b in 2usize..12, ib_frac in 1usize..12, seed in any::<u64>()) {
        let ib = (ib_frac % b).max(1);
        let a0 = tile(b, seed);
        let (mut a_u, mut t_u) = (a0.clone(), vec![0.0; b * b]);
        geqrt(b, &mut a_u, &mut t_u);
        let (mut a_b, mut t_b) = (a0.clone(), vec![0.0; b * b]);
        geqrt_ib(b, ib, &mut a_b, &mut t_b);
        let c0 = tile(b, seed ^ 33);
        let mut cu = c0.clone();
        unmqr(b, &a_u, &t_u, &mut cu, Trans::Trans);
        let mut cb = c0.clone();
        unmqr_ib(b, ib, &a_b, &t_b, &mut cb, Trans::Trans);
        let d: Vec<f64> = cu.iter().zip(&cb).map(|(x, y)| x - y).collect();
        prop_assert!(norm(&d) < 1e-10 * norm(&c0).max(1.0), "ib={ib} b={b}");
    }
}
