//! Scalar-vs-SIMD dispatch-arm parity and run-to-run determinism.
//!
//! The two gemm-core arms (portable scalar, AVX2/FMA) share blocking and
//! accumulation *order*, but the vector arm contracts multiply-adds with
//! FMA, so cross-arm results agree only to rounding — these tests bound
//! that gap with norm-scaled tolerances over every kernel entry point.
//! Within a fixed arm the kernels must be *bitwise* deterministic
//! run-to-run: checkpoint resume and the multi-job service's solo-parity
//! invariant both compare f64 buffers for exact equality across runs.
//!
//! When the host has no AVX2 the detected arm is the scalar arm and the
//! parity checks degenerate to exact self-comparison (still meaningful
//! for the determinism half).

use hqr_kernels::blocked::{
    geqrt_ib_arm, tsmqr_ib_arm, tsqrt_ib_arm, ttmqr_ib_arm, ttqrt_ib_arm, unmqr_ib_arm,
};
use hqr_kernels::micro::simd_detected;
use hqr_kernels::{geqrt, tsmqr_arm, tsqrt, ttmqr_arm, ttqrt, unmqr_arm, SimdArm, Trans};
use hqr_tile::DenseMatrix;

const SIZES: &[usize] = &[1, 3, 5, 8, 13, 24, 32];

fn tile(b: usize, seed: u64) -> Vec<f64> {
    DenseMatrix::random(b, b, seed).data().to_vec()
}

fn upper(b: usize, a: &[f64]) -> Vec<f64> {
    let mut u = vec![0.0; b * b];
    for j in 0..b {
        for i in 0..=j {
            u[i + j * b] = a[i + j * b];
        }
    }
    u
}

fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Max |x−y| must be small relative to the buffer norm.
fn assert_close(b: usize, x: &[f64], y: &[f64], what: &str) {
    let scale = norm(x).max(1.0);
    let gap = x.iter().zip(y).fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    assert!(
        gap < 1e-12 * (b as f64).max(1.0) * scale,
        "{what} (b={b}): cross-arm gap {gap:e} vs scale {scale:e}"
    );
}

fn assert_bits(x: &[f64], y: &[f64], what: &str) {
    for (i, (p, q)) in x.iter().zip(y).enumerate() {
        assert_eq!(p.to_bits(), q.to_bits(), "{what}: bit mismatch at {i}: {p} vs {q}");
    }
}

fn ib_for(b: usize) -> usize {
    (b / 2).max(1)
}

/// Run every kernel entry point once on `arm` from identical inputs and
/// return all output buffers, concatenated per kernel.
fn run_all(arm: SimdArm, b: usize, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let ib = ib_for(b);
    let mut out: Vec<(&'static str, Vec<f64>)> = Vec::new();

    // GEQRT (factor kernels are arm-independent scalar code) feeds UNMQR.
    let (mut v, mut t) = (tile(b, seed), vec![0.0; b * b]);
    geqrt(b, &mut v, &mut t);
    let mut c = tile(b, seed ^ 1);
    unmqr_arm(arm, b, &v, &t, &mut c, Trans::Trans);
    let mut c2 = tile(b, seed ^ 2);
    unmqr_arm(arm, b, &v, &t, &mut c2, Trans::NoTrans);
    out.push(("unmqr", [c, c2].concat()));

    // TSQRT feeds TSMQR.
    let (mut r1, mut a2, mut ts) =
        (upper(b, &tile(b, seed ^ 3)), tile(b, seed ^ 4), vec![0.0; b * b]);
    tsqrt(b, &mut r1, &mut a2, &mut ts);
    let (mut p1, mut p2) = (tile(b, seed ^ 5), tile(b, seed ^ 6));
    tsmqr_arm(arm, b, &a2, &ts, &mut p1, &mut p2, Trans::Trans);
    out.push(("tsmqr", [p1, p2].concat()));

    // TTQRT feeds TTMQR (second tile upper-triangular).
    let (mut q1, mut q2, mut tt) =
        (upper(b, &tile(b, seed ^ 7)), upper(b, &tile(b, seed ^ 8)), vec![0.0; b * b]);
    ttqrt(b, &mut q1, &mut q2, &mut tt);
    let (mut w1, mut w2) = (tile(b, seed ^ 9), tile(b, seed ^ 10));
    ttmqr_arm(arm, b, &q2, &tt, &mut w1, &mut w2, Trans::Trans);
    out.push(("ttmqr", [w1, w2].concat()));

    // Inner-blocked variants of all six kernels (the IB factor kernels
    // run their trailing block-applies through the dispatched core).
    let (mut gv, mut gt) = (tile(b, seed ^ 11), vec![0.0; b * b]);
    geqrt_ib_arm(arm, b, ib, &mut gv, &mut gt);
    let mut gc = tile(b, seed ^ 12);
    unmqr_ib_arm(arm, b, ib, &gv, &gt, &mut gc, Trans::Trans);
    out.push(("geqrt_ib", [gv.clone(), gt.clone()].concat()));
    out.push(("unmqr_ib", gc));

    let (mut sr, mut sa, mut st) =
        (upper(b, &tile(b, seed ^ 13)), tile(b, seed ^ 14), vec![0.0; b * b]);
    tsqrt_ib_arm(arm, b, ib, &mut sr, &mut sa, &mut st);
    let (mut s1, mut s2) = (tile(b, seed ^ 15), tile(b, seed ^ 16));
    tsmqr_ib_arm(arm, b, ib, &sa, &st, &mut s1, &mut s2, Trans::Trans);
    out.push(("tsqrt_ib", [sr, sa.clone(), st.clone()].concat()));
    out.push(("tsmqr_ib", [s1, s2].concat()));

    let (mut tr, mut ta, mut tt2) =
        (upper(b, &tile(b, seed ^ 17)), upper(b, &tile(b, seed ^ 18)), vec![0.0; b * b]);
    ttqrt_ib_arm(arm, b, ib, &mut tr, &mut ta, &mut tt2);
    let (mut u1, mut u2) = (tile(b, seed ^ 19), tile(b, seed ^ 20));
    ttmqr_ib_arm(arm, b, ib, &ta, &tt2, &mut u1, &mut u2, Trans::Trans);
    out.push(("ttqrt_ib", [tr, ta.clone(), tt2.clone()].concat()));
    out.push(("ttmqr_ib", [u1, u2].concat()));

    // The BLAS shim rides the same core.
    let (ga, gb) = (tile(b, seed ^ 21), tile(b, seed ^ 22));
    let mut gcm = tile(b, seed ^ 23);
    hqr_kernels::blas::gemm_arm(
        arm,
        b,
        b,
        b,
        1.5,
        &ga,
        Trans::NoTrans,
        &gb,
        Trans::Trans,
        -0.5,
        &mut gcm,
    );
    out.push(("gemm", gcm));

    out
}

#[test]
fn scalar_and_detected_arms_agree_to_rounding_on_all_kernels() {
    let det = simd_detected();
    for &b in SIZES {
        let scalar = run_all(SimdArm::Scalar, b, 0x9e37 + b as u64);
        let vector = run_all(det, b, 0x9e37 + b as u64);
        for ((name, xs), (name2, ys)) in scalar.iter().zip(&vector) {
            assert_eq!(name, name2);
            assert_close(b, xs, ys, name);
        }
    }
}

#[test]
fn each_arm_is_bitwise_deterministic_run_to_run() {
    for arm in [SimdArm::Scalar, simd_detected()] {
        for &b in &[5usize, 13, 32] {
            let first = run_all(arm, b, 0x51d7 + b as u64);
            let second = run_all(arm, b, 0x51d7 + b as u64);
            for ((name, xs), (_, ys)) in first.iter().zip(&second) {
                assert_bits(xs, ys, name);
            }
        }
    }
}

#[test]
fn ib_factorization_matches_flat_kernels_numerically() {
    // Same V and R up to rounding regardless of inner blocking, on both
    // arms — guards the panel/trailing split against the flat reference.
    let det = simd_detected();
    for &b in &[6usize, 12, 24] {
        let a0 = tile(b, 77 + b as u64);
        let mut flat = a0.clone();
        let mut tflat = vec![0.0; b * b];
        geqrt(b, &mut flat, &mut tflat);
        for arm in [SimdArm::Scalar, det] {
            for ib in [1usize, 2, b / 2, b] {
                let ib = ib.max(1);
                let mut ab = a0.clone();
                let mut tb = vec![0.0; b * b];
                geqrt_ib_arm(arm, b, ib, &mut ab, &mut tb);
                assert_close(b, &flat, &ab, "geqrt_ib vs geqrt (V,R)");
            }
        }
    }
}
