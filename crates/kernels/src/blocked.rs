//! Inner-blocked (IB) kernel variants — the structure of PLASMA's real
//! tile kernels.
//!
//! Production tile kernels split each b×b tile into column panels of width
//! `ib` (PLASMA's inner block size, typically 32–64 for b ≈ 200–300): each
//! panel is factored with level-2 BLAS, its compact T factor built, and
//! the panel's block reflector applied to the remaining columns with
//! level-3 BLAS. This bounds the T factors to `ib × b` and improves cache
//! behaviour; mathematically the factorization is identical (same V, same
//! R up to rounding), only the grouping of reflector applications changes.
//!
//! Layout convention: the `t` buffer is still `b × b`; the T factor of the
//! panel starting at column `s` (width `w = min(ib, b−s)`) is the `w × w`
//! upper triangle at rows `0..w`, columns `s..s+w`.
//!
//! With `ib = b` these kernels compute exactly the same factorization as
//! the unblocked ones in [`crate::geqrt`] etc. (identical V and R; the T
//! layout coincides as well since the single panel starts at column 0).

use crate::check_tile;
use crate::larfg::larfg;
use crate::Trans;

fn check_ib(b: usize, ib: usize) {
    assert!(ib > 0 && ib <= b, "inner block size must be in 1..=b (got {ib} for b={b})");
}

/// Panel start offsets for tile size `b` and inner block `ib`.
fn panels(b: usize, ib: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..b).step_by(ib).map(move |s| (s, (s + ib).min(b)))
}

/// Multiply the `w × n` workspace `wbuf` in place by op(T_panel), where the
/// panel T is stored at rows 0..w, cols s..s+w of `t`.
fn apply_t_panel(
    b: usize,
    t: &[f64],
    s: usize,
    w: usize,
    n: usize,
    wbuf: &mut [f64],
    trans: Trans,
) {
    let tat = |i: usize, j: usize| t[i + (s + j) * b];
    for col in 0..n {
        let c = col * w;
        match trans {
            Trans::Trans => {
                for r in (0..w).rev() {
                    let mut acc = 0.0;
                    for i in 0..=r {
                        acc += tat(i, r) * wbuf[c + i];
                    }
                    wbuf[c + r] = acc;
                }
            }
            Trans::NoTrans => {
                for r in 0..w {
                    let mut acc = 0.0;
                    for i in r..w {
                        acc += tat(r, i) * wbuf[c + i];
                    }
                    wbuf[c + r] = acc;
                }
            }
        }
    }
}

/// Inner-blocked GEQRT (PLASMA `CORE_dgeqrt` with inner blocking).
pub fn geqrt_ib(b: usize, ib: usize, a: &mut [f64], t: &mut [f64]) {
    check_tile(b, a);
    check_tile(b, t);
    check_ib(b, ib);
    t.fill(0.0);
    for (s, e) in panels(b, ib) {
        let w = e - s;
        // Factor the panel columns with immediate (BLAS-2) updates inside
        // the panel, building the panel T on the fly.
        for j in s..e {
            let cj = j * b;
            let (beta, tau) = {
                let alpha = a[cj + j];
                let (_, tail) = a.split_at_mut(cj + j + 1);
                larfg(alpha, &mut tail[..b - j - 1])
            };
            a[cj + j] = beta;
            for l in (j + 1)..e {
                let cl = l * b;
                let mut wv = a[cl + j];
                for i in (j + 1)..b {
                    wv += a[cj + i] * a[cl + i];
                }
                wv *= tau;
                a[cl + j] -= wv;
                for i in (j + 1)..b {
                    a[cl + i] -= wv * a[cj + i];
                }
            }
            // T_panel(0..jj, jj) = −τ·T·(Vᵀ v_j) with jj = j − s.
            let jj = j - s;
            for i in 0..jj {
                let ci = (s + i) * b;
                let mut z = a[ci + j];
                for r in (j + 1)..b {
                    z += a[ci + r] * a[cj + r];
                }
                t[i + cj] = z;
            }
            for i in 0..jj {
                let mut y = 0.0;
                for r in i..jj {
                    y += t[i + (s + r) * b] * t[r + cj];
                }
                t[i + cj] = -tau * y;
            }
            t[jj + cj] = tau;
        }
        // Apply the panel's block reflector to the trailing columns e..b:
        // C := (I − V T Vᵀ)ᵀ C on rows s..b (V unit-lower in cols s..e).
        let ntrail = b - e;
        if ntrail == 0 {
            continue;
        }
        let mut wbuf = vec![0.0; w * ntrail];
        for (col, l) in (e..b).enumerate() {
            let cl = l * b;
            for r in 0..w {
                let cv = (s + r) * b;
                let mut acc = a[cl + s + r];
                for i in (s + r + 1)..b {
                    acc += a[cv + i] * a[cl + i];
                }
                wbuf[col * w + r] = acc;
            }
        }
        apply_t_panel(b, t, s, w, ntrail, &mut wbuf, Trans::Trans);
        for (col, l) in (e..b).enumerate() {
            let cl = l * b;
            for i in s..b {
                let mut acc = 0.0;
                for r in 0..w {
                    let row = s + r;
                    let v = if i == row {
                        1.0
                    } else if i > row {
                        a[row * b + i]
                    } else {
                        0.0
                    };
                    acc += v * wbuf[col * w + r];
                }
                a[cl + i] -= acc;
            }
        }
    }
}

/// Apply op(Q) of a [`geqrt_ib`] factorization to tile `c`
/// (inner-blocked UNMQR). `Trans` applies panels forward, `NoTrans`
/// in reverse.
pub fn unmqr_ib(b: usize, ib: usize, v: &[f64], t: &[f64], c: &mut [f64], trans: Trans) {
    check_tile(b, v);
    check_tile(b, t);
    check_tile(b, c);
    check_ib(b, ib);
    let plist: Vec<(usize, usize)> = panels(b, ib).collect();
    let iter: Box<dyn Iterator<Item = &(usize, usize)>> = match trans {
        Trans::Trans => Box::new(plist.iter()),
        Trans::NoTrans => Box::new(plist.iter().rev()),
    };
    for &(s, e) in iter {
        let w = e - s;
        let mut wbuf = vec![0.0; w * b];
        for col in 0..b {
            let cc = col * b;
            for r in 0..w {
                let cv = (s + r) * b;
                let mut acc = c[cc + s + r];
                for i in (s + r + 1)..b {
                    acc += v[cv + i] * c[cc + i];
                }
                wbuf[col * w + r] = acc;
            }
        }
        apply_t_panel(b, t, s, w, b, &mut wbuf, trans);
        for col in 0..b {
            let cc = col * b;
            for r in 0..w {
                let row = s + r;
                let wv = wbuf[col * w + r];
                if wv == 0.0 {
                    continue;
                }
                c[cc + row] -= wv;
                let cv = row * b;
                for i in (row + 1)..b {
                    c[cc + i] -= v[cv + i] * wv;
                }
            }
        }
    }
}

/// Shared inner-blocked TSQRT/TTQRT.
fn stacked_qrt_ib(b: usize, ib: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64], tri: bool) {
    check_tile(b, a1);
    check_tile(b, a2);
    check_tile(b, t);
    check_ib(b, ib);
    let support = |col: usize| if tri { col + 1 } else { b };
    t.fill(0.0);
    for (s, e) in panels(b, ib) {
        for j in s..e {
            let cj = j * b;
            let blen = support(j);
            let (beta, tau) = larfg(a1[j + cj], &mut a2[cj..cj + blen]);
            a1[j + cj] = beta;
            for l in (j + 1)..e {
                let cl = l * b;
                let mut wv = a1[j + cl];
                for i in 0..blen {
                    wv += a2[cj + i] * a2[cl + i];
                }
                wv *= tau;
                a1[j + cl] -= wv;
                for i in 0..blen {
                    a2[cl + i] -= wv * a2[cj + i];
                }
            }
            let jj = j - s;
            for i in 0..jj {
                let sup = support(s + i).min(blen);
                let ci = (s + i) * b;
                let mut z = 0.0;
                for r in 0..sup {
                    z += a2[ci + r] * a2[cj + r];
                }
                t[i + cj] = z;
            }
            for i in 0..jj {
                let mut y = 0.0;
                for r in i..jj {
                    y += t[i + (s + r) * b] * t[r + cj];
                }
                t[i + cj] = -tau * y;
            }
            t[jj + cj] = tau;
        }
        // Block-apply the panel to trailing columns e..b of [A1; A2].
        let w = e - s;
        let ntrail = b - e;
        if ntrail == 0 {
            continue;
        }
        let mut wbuf = vec![0.0; w * ntrail];
        for (col, l) in (e..b).enumerate() {
            let cl = l * b;
            for r in 0..w {
                let cv = (s + r) * b;
                let sup = support(s + r);
                let mut acc = a1[(s + r) + cl];
                for i in 0..sup {
                    acc += a2[cv + i] * a2[cl + i];
                }
                wbuf[col * w + r] = acc;
            }
        }
        apply_t_panel(b, t, s, w, ntrail, &mut wbuf, Trans::Trans);
        for (col, l) in (e..b).enumerate() {
            let cl = l * b;
            for r in 0..w {
                let wv = wbuf[col * w + r];
                if wv == 0.0 {
                    continue;
                }
                a1[(s + r) + cl] -= wv;
                let cv = (s + r) * b;
                let sup = support(s + r);
                for i in 0..sup {
                    a2[cl + i] -= a2[cv + i] * wv;
                }
            }
        }
    }
}

/// Inner-blocked TSQRT.
pub fn tsqrt_ib(b: usize, ib: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64]) {
    stacked_qrt_ib(b, ib, a1, a2, t, false);
}

/// Inner-blocked TTQRT.
pub fn ttqrt_ib(b: usize, ib: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64]) {
    stacked_qrt_ib(b, ib, a1, a2, t, true);
}

/// Shared inner-blocked TSMQR/TTMQR.
#[allow(clippy::too_many_arguments)]
fn stacked_mqr_ib(
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
    tri: bool,
) {
    check_tile(b, v2);
    check_tile(b, t);
    check_tile(b, a1);
    check_tile(b, a2);
    check_ib(b, ib);
    let support = |col: usize| if tri { col + 1 } else { b };
    let plist: Vec<(usize, usize)> = panels(b, ib).collect();
    let iter: Box<dyn Iterator<Item = &(usize, usize)>> = match trans {
        Trans::Trans => Box::new(plist.iter()),
        Trans::NoTrans => Box::new(plist.iter().rev()),
    };
    for &(s, e) in iter {
        let w = e - s;
        let mut wbuf = vec![0.0; w * b];
        for col in 0..b {
            let cc = col * b;
            for r in 0..w {
                let cv = (s + r) * b;
                let sup = support(s + r);
                let mut acc = a1[cc + s + r];
                for i in 0..sup {
                    acc += v2[cv + i] * a2[cc + i];
                }
                wbuf[col * w + r] = acc;
            }
        }
        apply_t_panel(b, t, s, w, b, &mut wbuf, trans);
        for col in 0..b {
            let cc = col * b;
            for r in 0..w {
                let wv = wbuf[col * w + r];
                if wv == 0.0 {
                    continue;
                }
                a1[cc + s + r] -= wv;
                let cv = (s + r) * b;
                let sup = support(s + r);
                for i in 0..sup {
                    a2[cc + i] -= v2[cv + i] * wv;
                }
            }
        }
    }
}

/// Inner-blocked TSMQR.
pub fn tsmqr_ib(
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr_ib(b, ib, v2, t, a1, a2, trans, false);
}

/// Inner-blocked TTMQR.
pub fn ttmqr_ib(
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr_ib(b, ib, v2, t, a1, a2, trans, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{geqrt, tsqrt, ttqrt};
    use hqr_tile::DenseMatrix;

    const B: usize = 12;

    fn tile(seed: u64) -> Vec<f64> {
        DenseMatrix::random(B, B, seed).data().to_vec()
    }

    fn upper(a: &[f64]) -> Vec<f64> {
        let mut u = vec![0.0; B * B];
        for j in 0..B {
            for i in 0..=j {
                u[i + j * B] = a[i + j * B];
            }
        }
        u
    }

    fn upper_of(a: &[f64]) -> DenseMatrix {
        DenseMatrix::from_col_major(B, B, &upper(a))
    }

    fn norm(a: &[f64]) -> f64 {
        a.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    fn assert_same_r(a: &[f64], bm: &[f64], tol: f64) {
        for d in 0..B {
            let sign = if a[d + d * B] * bm[d + d * B] >= 0.0 { 1.0 } else { -1.0 };
            for j in d..B {
                let diff = (a[d + j * B] - sign * bm[d + j * B]).abs();
                assert!(diff < tol, "R mismatch at ({d},{j}): {diff}");
            }
        }
    }

    #[test]
    fn geqrt_ib_equals_unblocked_for_ib_b() {
        let a0 = tile(50);
        let (mut a1, mut t1) = (a0.clone(), vec![0.0; B * B]);
        let (mut a2, mut t2) = (a0.clone(), vec![0.0; B * B]);
        geqrt(B, &mut a1, &mut t1);
        geqrt_ib(B, B, &mut a2, &mut t2);
        assert!(norm(&a1.iter().zip(&a2).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-13);
        assert!(norm(&t1.iter().zip(&t2).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-13);
    }

    #[test]
    fn geqrt_ib_same_r_any_ib() {
        let a0 = tile(51);
        let mut r_ref = a0.clone();
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut r_ref, &mut t);
        for ibv in [1usize, 2, 3, 4, 5, 7, 12] {
            let mut a = a0.clone();
            let mut tb = vec![0.0; B * B];
            geqrt_ib(B, ibv, &mut a, &mut tb);
            assert_same_r(&r_ref, &a, 1e-12);
            // V is identical, not just R.
            for j in 0..B {
                for i in (j + 1)..B {
                    assert!((a[i + j * B] - r_ref[i + j * B]).abs() < 1e-12, "V mismatch ib={ibv}");
                }
            }
        }
    }

    #[test]
    fn geqrt_ib_roundtrip_via_unmqr_ib() {
        for ibv in [2usize, 4, 5] {
            let a0 = tile(52);
            let mut a = a0.clone();
            let mut t = vec![0.0; B * B];
            geqrt_ib(B, ibv, &mut a, &mut t);
            // Qᵀ·A0 == R.
            let mut c = a0.clone();
            unmqr_ib(B, ibv, &a, &t, &mut c, Trans::Trans);
            let cm = DenseMatrix::from_col_major(B, B, &c);
            assert!(cm.max_abs_below_diagonal() < 1e-12, "ib={ibv}");
            assert!(cm.upper_triangle().sub(&upper_of(&a)).frob_norm() < 1e-12);
            // Q·Qᵀ·C == C.
            let c0 = tile(53);
            let mut c = c0.clone();
            unmqr_ib(B, ibv, &a, &t, &mut c, Trans::Trans);
            unmqr_ib(B, ibv, &a, &t, &mut c, Trans::NoTrans);
            assert!(norm(&c.iter().zip(&c0).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-12);
        }
    }

    #[test]
    fn tsqrt_ib_equals_unblocked_for_ib_b() {
        let a1_0 = upper(&tile(54));
        let a2_0 = tile(55);
        let (mut x1, mut y1, mut t1) = (a1_0.clone(), a2_0.clone(), vec![0.0; B * B]);
        let (mut x2, mut y2, mut t2) = (a1_0.clone(), a2_0.clone(), vec![0.0; B * B]);
        tsqrt(B, &mut x1, &mut y1, &mut t1);
        tsqrt_ib(B, B, &mut x2, &mut y2, &mut t2);
        assert!(norm(&x1.iter().zip(&x2).map(|(a, b)| a - b).collect::<Vec<_>>()) < 1e-12);
        assert!(norm(&y1.iter().zip(&y2).map(|(a, b)| a - b).collect::<Vec<_>>()) < 1e-12);
        assert!(norm(&t1.iter().zip(&t2).map(|(a, b)| a - b).collect::<Vec<_>>()) < 1e-12);
    }

    #[test]
    fn tsqrt_ib_annihilates_and_roundtrips() {
        for ibv in [2usize, 3, 5] {
            let a1_0 = upper(&tile(56));
            let a2_0 = tile(57);
            let (mut a1, mut a2, mut t) = (a1_0.clone(), a2_0.clone(), vec![0.0; B * B]);
            tsqrt_ib(B, ibv, &mut a1, &mut a2, &mut t);
            // Qᵀ applied to the original stack annihilates the bottom.
            let (mut c1, mut c2) = (a1_0.clone(), a2_0.clone());
            tsmqr_ib(B, ibv, &a2, &t, &mut c1, &mut c2, Trans::Trans);
            assert!(norm(&c2) < 1e-11, "ib={ibv}: bottom not annihilated ({})", norm(&c2));
            // And Q[Rnew; 0] reconstructs the stack.
            let mut d1 = upper(&a1);
            let mut d2 = vec![0.0; B * B];
            tsmqr_ib(B, ibv, &a2, &t, &mut d1, &mut d2, Trans::NoTrans);
            assert!(norm(&d1.iter().zip(&a1_0).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-11);
            assert!(norm(&d2.iter().zip(&a2_0).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-11);
        }
    }

    #[test]
    fn ttqrt_ib_preserves_triangularity_and_matches_r() {
        let a1_0 = upper(&tile(58));
        let a2_0 = upper(&tile(59));
        let (mut r1, mut r2, mut tref) = (a1_0.clone(), a2_0.clone(), vec![0.0; B * B]);
        ttqrt(B, &mut r1, &mut r2, &mut tref);
        for ibv in [2usize, 4, 6] {
            let (mut a1, mut a2, mut t) = (a1_0.clone(), a2_0.clone(), vec![0.0; B * B]);
            ttqrt_ib(B, ibv, &mut a1, &mut a2, &mut t);
            assert_same_r(&r1, &a1, 1e-11);
            // V2 stays upper triangular.
            for j in 0..B {
                for i in (j + 1)..B {
                    assert_eq!(a2[i + j * B], 0.0, "ib={ibv}: V2 must stay triangular");
                }
            }
        }
    }

    #[test]
    fn ttmqr_ib_roundtrip() {
        for ibv in [3usize, 5] {
            let (mut a1, mut a2, mut t) = (upper(&tile(60)), upper(&tile(61)), vec![0.0; B * B]);
            ttqrt_ib(B, ibv, &mut a1, &mut a2, &mut t);
            let c1_0 = tile(62);
            let c2_0 = tile(63);
            let (mut c1, mut c2) = (c1_0.clone(), c2_0.clone());
            ttmqr_ib(B, ibv, &a2, &t, &mut c1, &mut c2, Trans::Trans);
            ttmqr_ib(B, ibv, &a2, &t, &mut c1, &mut c2, Trans::NoTrans);
            assert!(norm(&c1.iter().zip(&c1_0).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-11);
            assert!(norm(&c2.iter().zip(&c2_0).map(|(x, y)| x - y).collect::<Vec<_>>()) < 1e-11);
        }
    }

    #[test]
    fn stacked_isometry_ib() {
        let ibv = 4;
        let (mut a1, mut a2, mut t) = (upper(&tile(64)), tile(65), vec![0.0; B * B]);
        tsqrt_ib(B, ibv, &mut a1, &mut a2, &mut t);
        let (mut c1, mut c2) = (tile(66), tile(67));
        let before = (norm(&c1).powi(2) + norm(&c2).powi(2)).sqrt();
        tsmqr_ib(B, ibv, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        let after = (norm(&c1).powi(2) + norm(&c2).powi(2)).sqrt();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner block size")]
    fn rejects_bad_ib() {
        let mut a = tile(68);
        let mut t = vec![0.0; B * B];
        geqrt_ib(B, 0, &mut a, &mut t);
    }
}
