//! Inner-blocked (IB) kernel variants — the structure of PLASMA's real
//! tile kernels.
//!
//! Production tile kernels split each b×b tile into column panels of width
//! `ib` (PLASMA's inner block size, typically 32–64 for b ≈ 200–300): each
//! panel is factored with level-2 BLAS, its compact T factor built, and
//! the panel's block reflector applied to the remaining columns with
//! level-3 BLAS. This bounds the T factors to `ib × b` and improves cache
//! behaviour; mathematically the factorization is identical (same V, same
//! R up to rounding), only the grouping of reflector applications changes.
//!
//! The level-3 parts — every trailing-column block-apply and the whole of
//! the IB update kernels — are packed calls into the shared gemm core
//! ([`crate::micro`]), so they ride the same scalar/AVX2 dispatch as the
//! flat kernels. Panel factor loops stay level-2 scalar code, as in
//! PLASMA. Control flow is input-independent (no data-dependent
//! early-outs), keeping per-call flop counts a function of `(b, ib)` and
//! results bitwise deterministic run-to-run on a fixed dispatch arm.
//!
//! Layout convention: the `t` buffer is still `b × b`; the T factor of the
//! panel starting at column `s` (width `w = min(ib, b−s)`) is the `w × w`
//! upper triangle at rows `0..w`, columns `s..s+w`.
//!
//! With `ib = b` these kernels compute exactly the same factorization as
//! the unblocked ones in [`crate::geqrt`] etc. (identical V and R; the T
//! layout coincides as well since the single panel starts at column 0).

use crate::check_tile;
use crate::larfg::larfg;
use crate::micro::{gemm_core, simd_arm, MaskA, SimdArm};
use crate::Trans;

fn check_ib(b: usize, ib: usize) {
    assert!(ib > 0 && ib <= b, "inner block size must be in 1..=b (got {ib} for b={b})");
}

/// Panel start offsets for tile size `b` and inner block `ib`.
fn panels(b: usize, ib: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..b).step_by(ib).map(move |s| (s, (s + ib).min(b)))
}

/// Multiply the `w × n` workspace `wbuf` in place by op(T_panel), where the
/// panel T is stored at rows 0..w, cols s..s+w of `t` (strict lower of the
/// panel triangle ignored).
#[allow(clippy::too_many_arguments)]
fn apply_t_panel(
    arm: SimdArm,
    b: usize,
    t: &[f64],
    s: usize,
    w: usize,
    n: usize,
    wbuf: &mut [f64],
    trans: Trans,
) {
    let mut tc = vec![0.0; w * w];
    let mask = match trans {
        Trans::Trans => {
            for j in 0..w {
                for i in 0..=j {
                    tc[j + i * w] = t[i + (s + j) * b];
                }
            }
            MaskA::Lower
        }
        Trans::NoTrans => {
            for j in 0..w {
                for i in 0..=j {
                    tc[i + j * w] = t[i + (s + j) * b];
                }
            }
            MaskA::Upper
        }
    };
    let src = wbuf.to_vec();
    gemm_core(arm, w, n, w, 1.0, &tc, w, mask, &src, w, 0.0, wbuf, w);
}

/// Pack the unit-lower reflector panel of columns `s..s+w` of `v` (rows
/// `s..b`, unit diagonal at row `s+r`, entries above it zero) and its
/// transpose, both with local row indexing.
fn pack_unit_lower_panel(b: usize, s: usize, w: usize, v: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mrows = b - s;
    let mut vp = vec![0.0; mrows * w];
    let mut vpt = vec![0.0; w * mrows];
    for r in 0..w {
        vp[r + r * mrows] = 1.0;
        vpt[r + r * w] = 1.0;
        for i in (s + r + 1)..b {
            let x = v[i + (s + r) * b];
            vp[(i - s) + r * mrows] = x;
            vpt[r + (i - s) * w] = x;
        }
    }
    (vp, vpt)
}

/// Pack the stacked-bottom reflector panel of columns `s..s+w` of `v2`
/// (rows `0..support(col)` active, the rest zero) and its transpose.
/// `keff` is the packed row count (`s+w` for triangular support, `b`
/// otherwise).
fn pack_stacked_panel(
    b: usize,
    s: usize,
    w: usize,
    keff: usize,
    v2: &[f64],
    tri: bool,
) -> (Vec<f64>, Vec<f64>) {
    let mut vp = vec![0.0; keff * w];
    let mut vpt = vec![0.0; w * keff];
    for r in 0..w {
        let sup = if tri { (s + r + 1).min(keff) } else { keff };
        for i in 0..sup {
            let x = v2[i + (s + r) * b];
            vp[i + r * keff] = x;
            vpt[r + i * w] = x;
        }
    }
    (vp, vpt)
}

/// Inner-blocked GEQRT (PLASMA `CORE_dgeqrt` with inner blocking).
pub fn geqrt_ib(b: usize, ib: usize, a: &mut [f64], t: &mut [f64]) {
    geqrt_ib_arm(simd_arm(), b, ib, a, t);
}

/// [`geqrt_ib`] on an explicit dispatch arm (parity tests and benches).
pub fn geqrt_ib_arm(arm: SimdArm, b: usize, ib: usize, a: &mut [f64], t: &mut [f64]) {
    check_tile(b, a);
    check_tile(b, t);
    check_ib(b, ib);
    t.fill(0.0);
    for (s, e) in panels(b, ib) {
        let w = e - s;
        // Factor the panel columns with immediate (BLAS-2) updates inside
        // the panel, building the panel T on the fly.
        for j in s..e {
            let cj = j * b;
            let (beta, tau) = {
                let alpha = a[cj + j];
                let (_, tail) = a.split_at_mut(cj + j + 1);
                larfg(alpha, &mut tail[..b - j - 1])
            };
            a[cj + j] = beta;
            for l in (j + 1)..e {
                let cl = l * b;
                let mut wv = a[cl + j];
                for i in (j + 1)..b {
                    wv += a[cj + i] * a[cl + i];
                }
                wv *= tau;
                a[cl + j] -= wv;
                for i in (j + 1)..b {
                    a[cl + i] -= wv * a[cj + i];
                }
            }
            // T_panel(0..jj, jj) = −τ·T·(Vᵀ v_j) with jj = j − s.
            let jj = j - s;
            for i in 0..jj {
                let ci = (s + i) * b;
                let mut z = a[ci + j];
                for r in (j + 1)..b {
                    z += a[ci + r] * a[cj + r];
                }
                t[i + cj] = z;
            }
            for i in 0..jj {
                let mut y = 0.0;
                for r in i..jj {
                    y += t[i + (s + r) * b] * t[r + cj];
                }
                t[i + cj] = -tau * y;
            }
            t[jj + cj] = tau;
        }
        // Apply the panel's block reflector to the trailing columns e..b:
        // C := (I − V T Vᵀ)ᵀ C on rows s..b (V unit-lower in cols s..e).
        let ntrail = b - e;
        if ntrail == 0 {
            continue;
        }
        let mrows = b - s;
        let (vp, vpt) = pack_unit_lower_panel(b, s, w, a);
        let (_, trail) = a.split_at_mut(e * b);
        let mut wbuf = vec![0.0; w * ntrail];
        gemm_core(
            arm,
            w,
            ntrail,
            mrows,
            1.0,
            &vpt,
            w,
            MaskA::Upper,
            &trail[s..],
            b,
            0.0,
            &mut wbuf,
            w,
        );
        apply_t_panel(arm, b, t, s, w, ntrail, &mut wbuf, Trans::Trans);
        gemm_core(
            arm,
            mrows,
            ntrail,
            w,
            -1.0,
            &vp,
            mrows,
            MaskA::Lower,
            &wbuf,
            w,
            1.0,
            &mut trail[s..],
            b,
        );
    }
}

/// Apply op(Q) of a [`geqrt_ib`] factorization to tile `c`
/// (inner-blocked UNMQR). `Trans` applies panels forward, `NoTrans`
/// in reverse.
pub fn unmqr_ib(b: usize, ib: usize, v: &[f64], t: &[f64], c: &mut [f64], trans: Trans) {
    unmqr_ib_arm(simd_arm(), b, ib, v, t, c, trans);
}

/// [`unmqr_ib`] on an explicit dispatch arm (parity tests and benches).
pub fn unmqr_ib_arm(
    arm: SimdArm,
    b: usize,
    ib: usize,
    v: &[f64],
    t: &[f64],
    c: &mut [f64],
    trans: Trans,
) {
    check_tile(b, v);
    check_tile(b, t);
    check_tile(b, c);
    check_ib(b, ib);
    let plist: Vec<(usize, usize)> = panels(b, ib).collect();
    let iter: Box<dyn Iterator<Item = &(usize, usize)>> = match trans {
        Trans::Trans => Box::new(plist.iter()),
        Trans::NoTrans => Box::new(plist.iter().rev()),
    };
    for &(s, e) in iter {
        let w = e - s;
        let mrows = b - s;
        let (vp, vpt) = pack_unit_lower_panel(b, s, w, v);
        let mut wbuf = vec![0.0; w * b];
        gemm_core(arm, w, b, mrows, 1.0, &vpt, w, MaskA::Upper, &c[s..], b, 0.0, &mut wbuf, w);
        apply_t_panel(arm, b, t, s, w, b, &mut wbuf, trans);
        gemm_core(arm, mrows, b, w, -1.0, &vp, mrows, MaskA::Lower, &wbuf, w, 1.0, &mut c[s..], b);
    }
}

/// Shared inner-blocked TSQRT/TTQRT.
fn stacked_qrt_ib(
    arm: SimdArm,
    b: usize,
    ib: usize,
    a1: &mut [f64],
    a2: &mut [f64],
    t: &mut [f64],
    tri: bool,
) {
    check_tile(b, a1);
    check_tile(b, a2);
    check_tile(b, t);
    check_ib(b, ib);
    let support = |col: usize| if tri { col + 1 } else { b };
    t.fill(0.0);
    for (s, e) in panels(b, ib) {
        for j in s..e {
            let cj = j * b;
            let blen = support(j);
            let (beta, tau) = larfg(a1[j + cj], &mut a2[cj..cj + blen]);
            a1[j + cj] = beta;
            for l in (j + 1)..e {
                let cl = l * b;
                let mut wv = a1[j + cl];
                for i in 0..blen {
                    wv += a2[cj + i] * a2[cl + i];
                }
                wv *= tau;
                a1[j + cl] -= wv;
                for i in 0..blen {
                    a2[cl + i] -= wv * a2[cj + i];
                }
            }
            let jj = j - s;
            for i in 0..jj {
                let sup = support(s + i).min(blen);
                let ci = (s + i) * b;
                let mut z = 0.0;
                for r in 0..sup {
                    z += a2[ci + r] * a2[cj + r];
                }
                t[i + cj] = z;
            }
            for i in 0..jj {
                let mut y = 0.0;
                for r in i..jj {
                    y += t[i + (s + r) * b] * t[r + cj];
                }
                t[i + cj] = -tau * y;
            }
            t[jj + cj] = tau;
        }
        // Block-apply the panel to trailing columns e..b of [A1; A2].
        let w = e - s;
        let ntrail = b - e;
        if ntrail == 0 {
            continue;
        }
        // Rows of the bottom block a panel reflector can touch: with
        // triangular support the panel's widest column reaches row e−1.
        let keff = if tri { e } else { b };
        let (vp, vpt) = pack_stacked_panel(b, s, w, keff, a2, tri);
        let (_, a1t) = a1.split_at_mut(e * b);
        let (_, a2t) = a2.split_at_mut(e * b);
        // W = A1[s..e, e..] + Vᵀ·A2[0..keff, e..].
        let mut wbuf = vec![0.0; w * ntrail];
        for col in 0..ntrail {
            for r in 0..w {
                wbuf[r + col * w] = a1t[(s + r) + col * b];
            }
        }
        gemm_core(arm, w, ntrail, keff, 1.0, &vpt, w, MaskA::Full, a2t, b, 1.0, &mut wbuf, w);
        apply_t_panel(arm, b, t, s, w, ntrail, &mut wbuf, Trans::Trans);
        // A1[s..e, e..] -= W; A2[0..keff, e..] -= V·W.
        for col in 0..ntrail {
            for r in 0..w {
                a1t[(s + r) + col * b] -= wbuf[r + col * w];
            }
        }
        gemm_core(arm, keff, ntrail, w, -1.0, &vp, keff, MaskA::Full, &wbuf, w, 1.0, a2t, b);
    }
}

/// Inner-blocked TSQRT.
pub fn tsqrt_ib(b: usize, ib: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64]) {
    stacked_qrt_ib(simd_arm(), b, ib, a1, a2, t, false);
}

/// [`tsqrt_ib`] on an explicit dispatch arm (parity tests and benches).
pub fn tsqrt_ib_arm(
    arm: SimdArm,
    b: usize,
    ib: usize,
    a1: &mut [f64],
    a2: &mut [f64],
    t: &mut [f64],
) {
    stacked_qrt_ib(arm, b, ib, a1, a2, t, false);
}

/// Inner-blocked TTQRT.
pub fn ttqrt_ib(b: usize, ib: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64]) {
    stacked_qrt_ib(simd_arm(), b, ib, a1, a2, t, true);
}

/// [`ttqrt_ib`] on an explicit dispatch arm (parity tests and benches).
pub fn ttqrt_ib_arm(
    arm: SimdArm,
    b: usize,
    ib: usize,
    a1: &mut [f64],
    a2: &mut [f64],
    t: &mut [f64],
) {
    stacked_qrt_ib(arm, b, ib, a1, a2, t, true);
}

/// Shared inner-blocked TSMQR/TTMQR.
#[allow(clippy::too_many_arguments)]
fn stacked_mqr_ib(
    arm: SimdArm,
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
    tri: bool,
) {
    check_tile(b, v2);
    check_tile(b, t);
    check_tile(b, a1);
    check_tile(b, a2);
    check_ib(b, ib);
    let plist: Vec<(usize, usize)> = panels(b, ib).collect();
    let iter: Box<dyn Iterator<Item = &(usize, usize)>> = match trans {
        Trans::Trans => Box::new(plist.iter()),
        Trans::NoTrans => Box::new(plist.iter().rev()),
    };
    for &(s, e) in iter {
        let w = e - s;
        let keff = if tri { e } else { b };
        let (vp, vpt) = pack_stacked_panel(b, s, w, keff, v2, tri);
        // W = A1[s..e, :] + Vᵀ·A2[0..keff, :].
        let mut wbuf = vec![0.0; w * b];
        for col in 0..b {
            for r in 0..w {
                wbuf[r + col * w] = a1[(s + r) + col * b];
            }
        }
        gemm_core(arm, w, b, keff, 1.0, &vpt, w, MaskA::Full, a2, b, 1.0, &mut wbuf, w);
        apply_t_panel(arm, b, t, s, w, b, &mut wbuf, trans);
        // A1[s..e, :] -= W; A2[0..keff, :] -= V·W.
        for col in 0..b {
            for r in 0..w {
                a1[(s + r) + col * b] -= wbuf[r + col * w];
            }
        }
        gemm_core(arm, keff, b, w, -1.0, &vp, keff, MaskA::Full, &wbuf, w, 1.0, a2, b);
    }
}

/// Inner-blocked TSMQR.
pub fn tsmqr_ib(
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr_ib(simd_arm(), b, ib, v2, t, a1, a2, trans, false);
}

/// [`tsmqr_ib`] on an explicit dispatch arm (parity tests and benches).
#[allow(clippy::too_many_arguments)]
pub fn tsmqr_ib_arm(
    arm: SimdArm,
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr_ib(arm, b, ib, v2, t, a1, a2, trans, false);
}

/// Inner-blocked TTMQR.
pub fn ttmqr_ib(
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr_ib(simd_arm(), b, ib, v2, t, a1, a2, trans, true);
}

/// [`ttmqr_ib`] on an explicit dispatch arm (parity tests and benches).
#[allow(clippy::too_many_arguments)]
pub fn ttmqr_ib_arm(
    arm: SimdArm,
    b: usize,
    ib: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr_ib(arm, b, ib, v2, t, a1, a2, trans, true);
}
