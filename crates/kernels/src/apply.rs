//! Update kernels: UNMQR, TSMQR, TTMQR (apply op(Q) of a factor kernel).
//!
//! All three are built as packed calls into the shared gemm core
//! ([`crate::micro`]): triangular operands are pack-cleaned (the ignored
//! triangle zeroed, unit diagonals materialized) so the vector arm can
//! run dense register blocks while the structure mask preserves the
//! kernels' nominal flop counts. Control flow is input-independent —
//! there are no data-dependent early-outs — so per-call flop counts are
//! a function of `b` alone and results are bitwise deterministic
//! run-to-run for a fixed dispatch arm.

use crate::micro::{gemm_core, simd_arm, MaskA, SimdArm};
use crate::{check_tile, Trans};

/// Multiply the `b × b` workspace `w` in place by op(T), where `t` is the
/// upper-triangular block-reflector factor (its strict lower triangle is
/// ignored).
fn apply_t(arm: SimdArm, b: usize, t: &[f64], w: &mut [f64], trans: Trans) {
    let mut tc = vec![0.0; b * b];
    let mask = match trans {
        // W := Tᵀ·W with Tᵀ lower triangular.
        Trans::Trans => {
            for j in 0..b {
                for i in 0..=j {
                    tc[j + i * b] = t[i + j * b];
                }
            }
            MaskA::Lower
        }
        // W := T·W with T upper triangular.
        Trans::NoTrans => {
            for j in 0..b {
                for i in 0..=j {
                    tc[i + j * b] = t[i + j * b];
                }
            }
            MaskA::Upper
        }
    };
    let wsrc = w.to_vec();
    gemm_core(arm, b, b, b, 1.0, &tc, b, mask, &wsrc, b, 0.0, w, b);
}

/// Apply op(Q) of a [`crate::geqrt`] factorization to a tile `c`
/// (PLASMA `CORE_dormqr`, left side): C := op(Q)·C with Q = I − V·T·Vᵀ.
///
/// `v` is the factored tile (V in its strict lower triangle, unit diagonal
/// implicit; its upper triangle — R — is ignored), `t` the T factor.
pub fn unmqr(b: usize, v: &[f64], t: &[f64], c: &mut [f64], trans: Trans) {
    unmqr_arm(simd_arm(), b, v, t, c, trans);
}

/// [`unmqr`] on an explicit dispatch arm (parity tests and benches).
pub fn unmqr_arm(arm: SimdArm, b: usize, v: &[f64], t: &[f64], c: &mut [f64], trans: Trans) {
    check_tile(b, v);
    check_tile(b, t);
    check_tile(b, c);
    // Pack the unit-lower V (upper triangle of `v` holds R — ignored) and
    // its transpose.
    let mut vl = vec![0.0; b * b];
    let mut vlt = vec![0.0; b * b];
    for col in 0..b {
        vl[col + col * b] = 1.0;
        vlt[col + col * b] = 1.0;
        for i in (col + 1)..b {
            let x = v[i + col * b];
            vl[i + col * b] = x;
            vlt[col + i * b] = x;
        }
    }
    // W = Vᵀ·C (Vᵀ unit upper triangular).
    let mut w = vec![0.0; b * b];
    gemm_core(arm, b, b, b, 1.0, &vlt, b, MaskA::Upper, c, b, 0.0, &mut w, b);
    apply_t(arm, b, t, &mut w, trans);
    // C -= V·W.
    gemm_core(arm, b, b, b, -1.0, &vl, b, MaskA::Lower, &w, b, 1.0, c, b);
}

/// Shared implementation of TSMQR/TTMQR: apply op(Q) of a stacked
/// factorization (Q = I − V̂·T·V̂ᵀ, V̂ = [I; V2]) to the stacked tile pair
/// `[A1; A2]`. `tri` mirrors the structure flag of the factor kernel:
/// column `r` of V2 has `r+1` active rows when `tri` is set.
#[allow(clippy::too_many_arguments)]
fn stacked_mqr(
    arm: SimdArm,
    b: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
    tri: bool,
) {
    check_tile(b, v2);
    check_tile(b, t);
    check_tile(b, a1);
    check_tile(b, a2);
    // Pack-clean V2 and V2ᵀ: for TT the strict lower triangle of `v2` is
    // dead storage and must never be read (it may hold unrelated data).
    let mut v2c = vec![0.0; b * b];
    let mut v2t = vec![0.0; b * b];
    if tri {
        for col in 0..b {
            for i in 0..=col {
                let x = v2[i + col * b];
                v2c[i + col * b] = x;
                v2t[col + i * b] = x;
            }
        }
    } else {
        v2c.copy_from_slice(v2);
        for col in 0..b {
            for i in 0..b {
                v2t[col + i * b] = v2[i + col * b];
            }
        }
    }
    let (mask_vt, mask_v) =
        if tri { (MaskA::Lower, MaskA::Upper) } else { (MaskA::Full, MaskA::Full) };
    // W = A1 + V2ᵀ·A2.
    let mut w = a1.to_vec();
    gemm_core(arm, b, b, b, 1.0, &v2t, b, mask_vt, a2, b, 1.0, &mut w, b);
    apply_t(arm, b, t, &mut w, trans);
    // A1 -= W; A2 -= V2·W.
    for (x, wv) in a1.iter_mut().zip(&w) {
        *x -= wv;
    }
    gemm_core(arm, b, b, b, -1.0, &v2c, b, mask_v, &w, b, 1.0, a2, b);
}

/// Apply op(Q) of a [`crate::tsqrt`] to the stacked tile pair `[A1; A2]`
/// (PLASMA `CORE_dtsmqr`). `v2` is the square V block stored by TSQRT.
pub fn tsmqr(b: usize, v2: &[f64], t: &[f64], a1: &mut [f64], a2: &mut [f64], trans: Trans) {
    stacked_mqr(simd_arm(), b, v2, t, a1, a2, trans, false);
}

/// [`tsmqr`] on an explicit dispatch arm (parity tests and benches).
pub fn tsmqr_arm(
    arm: SimdArm,
    b: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr(arm, b, v2, t, a1, a2, trans, false);
}

/// Apply op(Q) of a [`crate::ttqrt`] to the stacked tile pair `[A1; A2]`
/// (PLASMA `CORE_dttmqr`). `v2` is upper triangular; only its upper part is
/// read, which is what makes TTMQR weight 6 versus TSMQR's 12.
pub fn ttmqr(b: usize, v2: &[f64], t: &[f64], a1: &mut [f64], a2: &mut [f64], trans: Trans) {
    stacked_mqr(simd_arm(), b, v2, t, a1, a2, trans, true);
}

/// [`ttmqr`] on an explicit dispatch arm (parity tests and benches).
pub fn ttmqr_arm(
    arm: SimdArm,
    b: usize,
    v2: &[f64],
    t: &[f64],
    a1: &mut [f64],
    a2: &mut [f64],
    trans: Trans,
) {
    stacked_mqr(arm, b, v2, t, a1, a2, trans, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{geqrt, tsqrt, ttqrt};
    use hqr_tile::DenseMatrix;

    const B: usize = 6;

    fn tile_random(seed: u64) -> Vec<f64> {
        DenseMatrix::random(B, B, seed).data().to_vec()
    }

    fn upper(a: &[f64]) -> Vec<f64> {
        let mut u = vec![0.0; B * B];
        for j in 0..B {
            for i in 0..=j {
                u[i + j * B] = a[i + j * B];
            }
        }
        u
    }

    fn norm(a: &[f64]) -> f64 {
        a.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    #[test]
    fn unmqr_q_then_qt_roundtrips() {
        let mut v = tile_random(21);
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut v, &mut t);
        let c0 = tile_random(22);
        let mut c = c0.clone();
        unmqr(B, &v, &t, &mut c, Trans::Trans);
        unmqr(B, &v, &t, &mut c, Trans::NoTrans);
        let d: Vec<f64> = c.iter().zip(&c0).map(|(a, b)| a - b).collect();
        assert!(norm(&d) < 1e-12, "Q·Qᵀ·C != C, err {}", norm(&d));
    }

    #[test]
    fn unmqr_preserves_frobenius_norm() {
        let mut v = tile_random(23);
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut v, &mut t);
        let mut c = tile_random(24);
        let before = norm(&c);
        unmqr(B, &v, &t, &mut c, Trans::Trans);
        assert!((norm(&c) - before).abs() < 1e-12, "orthogonal transforms preserve norms");
    }

    #[test]
    fn unmqr_ignores_upper_triangle_of_v() {
        let mut v = tile_random(40);
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut v, &mut t);
        let mut v_poison = v.clone();
        for j in 0..B {
            for i in 0..=j {
                v_poison[i + j * B] = f64::NAN;
            }
        }
        let c0 = tile_random(41);
        let (mut c, mut cp) = (c0.clone(), c0);
        unmqr(B, &v, &t, &mut c, Trans::Trans);
        unmqr(B, &v_poison, &t, &mut cp, Trans::Trans);
        assert_eq!(c, cp);
    }

    #[test]
    fn tsmqr_roundtrip_and_isometry() {
        let mut a1 = upper(&tile_random(25));
        let mut a2 = tile_random(26);
        let mut t = vec![0.0; B * B];
        tsqrt(B, &mut a1, &mut a2, &mut t);
        let c1_0 = tile_random(27);
        let c2_0 = tile_random(28);
        let (mut c1, mut c2) = (c1_0.clone(), c2_0.clone());
        let before = (norm(&c1).powi(2) + norm(&c2).powi(2)).sqrt();
        tsmqr(B, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        let after = (norm(&c1).powi(2) + norm(&c2).powi(2)).sqrt();
        assert!((before - after).abs() < 1e-12, "stacked isometry");
        tsmqr(B, &a2, &t, &mut c1, &mut c2, Trans::NoTrans);
        let d1: Vec<f64> = c1.iter().zip(&c1_0).map(|(a, b)| a - b).collect();
        let d2: Vec<f64> = c2.iter().zip(&c2_0).map(|(a, b)| a - b).collect();
        assert!(norm(&d1) < 1e-12 && norm(&d2) < 1e-12);
    }

    #[test]
    fn ttmqr_roundtrip() {
        let mut a1 = upper(&tile_random(29));
        let mut a2 = upper(&tile_random(30));
        let mut t = vec![0.0; B * B];
        ttqrt(B, &mut a1, &mut a2, &mut t);
        let c1_0 = tile_random(31);
        let c2_0 = tile_random(32);
        let (mut c1, mut c2) = (c1_0.clone(), c2_0.clone());
        ttmqr(B, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        ttmqr(B, &a2, &t, &mut c1, &mut c2, Trans::NoTrans);
        let d1: Vec<f64> = c1.iter().zip(&c1_0).map(|(a, b)| a - b).collect();
        let d2: Vec<f64> = c2.iter().zip(&c2_0).map(|(a, b)| a - b).collect();
        assert!(norm(&d1) < 1e-12 && norm(&d2) < 1e-12);
    }

    #[test]
    fn ttmqr_ignores_strict_lower_of_v2() {
        let mut a1 = upper(&tile_random(33));
        let mut a2 = upper(&tile_random(34));
        let mut t = vec![0.0; B * B];
        ttqrt(B, &mut a1, &mut a2, &mut t);
        let mut c1 = tile_random(35);
        let mut c2 = tile_random(36);
        let (mut c1p, mut c2p) = (c1.clone(), c2.clone());
        // Poisoned V2 lower triangle must not change the result.
        let mut v2_poison = a2.clone();
        for j in 0..B {
            for i in (j + 1)..B {
                v2_poison[i + j * B] = f64::NAN;
            }
        }
        ttmqr(B, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        ttmqr(B, &v2_poison, &t, &mut c1p, &mut c2p, Trans::Trans);
        assert_eq!(c1, c1p);
        assert_eq!(c2, c2p);
    }

    #[test]
    fn unmqr_identity_v_is_noop_when_tau_zero() {
        // geqrt of the identity produces tau=0 reflectors -> Q = I.
        let mut v = vec![0.0; B * B];
        for d in 0..B {
            v[d + d * B] = 1.0;
        }
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut v, &mut t);
        let c0 = tile_random(37);
        let mut c = c0.clone();
        unmqr(B, &v, &t, &mut c, Trans::Trans);
        let d: Vec<f64> = c.iter().zip(&c0).map(|(a, b)| a - b).collect();
        // Q may only flip signs it introduced; for identity input tau=0 so no-op.
        assert!(norm(&d) < 1e-13);
    }
}
