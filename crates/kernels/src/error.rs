//! Typed kernel errors for predictable bad-input conditions.
//!
//! Contract violations (wrong buffer sizes, zero inner block) stay
//! `assert!`-based panics — they are programming errors. Data-dependent
//! failures a caller can reasonably hit with valid code (a singular R
//! reaching back-substitution) are surfaced as [`KernelError`] so a
//! long-running service can fail one request instead of the process.

use std::fmt;

/// A recoverable kernel failure caused by the input data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// Back-substitution met an exactly-zero diagonal entry: R is
    /// singular and the triangular solve has no unique solution.
    SingularR {
        /// Index of the zero diagonal entry.
        index: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::SingularR { index } => {
                write!(f, "singular R: zero diagonal at {index}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_diagonal() {
        let e = KernelError::SingularR { index: 3 };
        assert_eq!(e.to_string(), "singular R: zero diagonal at 3");
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(KernelError::SingularR { index: 0 });
        assert!(e.to_string().contains("singular"));
    }
}
