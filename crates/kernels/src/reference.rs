//! Reference dense Householder QR, used only for verification.
//!
//! This is the textbook unblocked algorithm (LAPACK `dgeqr2` followed by an
//! explicit Q build). It is deliberately independent of the tile kernels so
//! that tests comparing the two catch mistakes in either.

use hqr_tile::DenseMatrix;

/// Dense Householder QR of an `m × n` matrix with `m ≥ n`.
///
/// Returns `(Q, R)` with Q an `m × m` orthogonal matrix and R an `m × n`
/// upper-triangular (trapezoidal) matrix such that `A = Q·R`.
pub fn dense_householder_qr(a: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "reference QR requires m >= n");
    let mut r = a.clone();
    // Store reflectors (v, tau) to build Q afterwards.
    let mut vs: Vec<(usize, Vec<f64>, f64)> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the reflector annihilating r[k+1.., k].
        let alpha = r.get(k, k);
        let mut sigma = 0.0;
        for i in (k + 1)..m {
            sigma += r.get(i, k) * r.get(i, k);
        }
        let (beta, tau, v) = if sigma == 0.0 {
            (alpha, 0.0, vec![0.0; m - k - 1])
        } else {
            let mu = (alpha * alpha + sigma).sqrt();
            let beta = if alpha <= 0.0 { mu } else { -mu };
            let tau = (beta - alpha) / beta;
            let scale = 1.0 / (alpha - beta);
            let v: Vec<f64> = ((k + 1)..m).map(|i| r.get(i, k) * scale).collect();
            (beta, tau, v)
        };
        // Apply H to the trailing matrix r[k.., k..].
        for j in k..n {
            let mut w = r.get(k, j);
            for (off, vi) in v.iter().enumerate() {
                w += vi * r.get(k + 1 + off, j);
            }
            w *= tau;
            r.set(k, j, r.get(k, j) - w);
            for (off, vi) in v.iter().enumerate() {
                let i = k + 1 + off;
                r.set(i, j, r.get(i, j) - w * vi);
            }
        }
        r.set(k, k, beta);
        for i in (k + 1)..m {
            r.set(i, k, 0.0);
        }
        vs.push((k, v, tau));
    }
    // Q = H_0 · H_1 ⋯ H_{n-1} applied to the identity (apply in reverse).
    let mut q = DenseMatrix::identity(m, m);
    for (k, v, tau) in vs.iter().rev() {
        if *tau == 0.0 {
            continue;
        }
        for j in 0..m {
            let mut w = q.get(*k, j);
            for (off, vi) in v.iter().enumerate() {
                w += vi * q.get(*k + 1 + off, j);
            }
            w *= tau;
            q.set(*k, j, q.get(*k, j) - w);
            for (off, vi) in v.iter().enumerate() {
                let i = *k + 1 + off;
                q.set(i, j, q.get(i, j) - w * vi);
            }
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_a() {
        let a = DenseMatrix::random(10, 6, 99);
        let (q, r) = dense_householder_qr(&a);
        let qr = q.matmul(&r);
        assert!(a.sub(&qr).frob_norm() < 1e-12 * a.frob_norm().max(1.0));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = DenseMatrix::random(8, 8, 100);
        let (q, _) = dense_householder_qr(&a);
        assert!(q.orthogonality_error() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DenseMatrix::random(9, 5, 101);
        let (_, r) = dense_householder_qr(&a);
        assert_eq!(r.max_abs_below_diagonal(), 0.0);
    }

    #[test]
    fn square_identity_fixed_point() {
        let a = DenseMatrix::identity(5, 5);
        let (q, r) = dense_householder_qr(&a);
        assert!(q.sub(&DenseMatrix::identity(5, 5)).frob_norm() < 1e-14);
        assert!(r.sub(&DenseMatrix::identity(5, 5)).frob_norm() < 1e-14);
    }

    #[test]
    fn tall_skinny_shapes() {
        let a = DenseMatrix::random(20, 3, 102);
        let (q, r) = dense_householder_qr(&a);
        assert_eq!(q.rows(), 20);
        assert_eq!(q.cols(), 20);
        assert_eq!(r.rows(), 20);
        assert_eq!(r.cols(), 3);
        assert!(a.sub(&q.matmul(&r)).frob_norm() < 1e-12);
    }
}
