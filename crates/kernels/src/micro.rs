//! Register-blocked gemm microkernel with one-time SIMD dispatch.
//!
//! Every level-3 operation in this crate — the update kernels
//! (UNMQR/TSMQR/TTMQR), the trailing block-applies of the inner-blocked
//! factor kernels, and [`crate::blas::gemm`] — funnels into
//! [`gemm_core`]: `C := α·A·B + β·C` on column-major buffers with
//! explicit leading dimensions, where `A` may carry a triangular
//! structure mask so triangle-shaped operands (TT kernels, T factors,
//! unit-lower V blocks) keep their flop savings.
//!
//! Two arms implement the core:
//!
//! * **Scalar** — portable Rust, axpy-ordered (`j`-outer, `l`-middle,
//!   contiguous `i`-inner) so the compiler can autovectorize with
//!   baseline features. Always available; the fallback on every target.
//! * **Avx2** — `core::arch` AVX2+FMA intrinsics, an 8×4 register block
//!   (8 accumulator vectors) streaming columns of `A` against broadcast
//!   elements of `B`. Only compiled on x86-64 and only selected when the
//!   CPU reports both `avx2` and `fma`.
//!
//! The arm is chosen **once per process** ([`simd_arm`], a `OnceLock`):
//! runtime feature detection, overridable with `HQR_SIMD=off|scalar`
//! (force the portable arm) or `HQR_SIMD=avx2` (force the vector arm,
//! falling back with a warning if the CPU lacks it). A fixed arm plus
//! input-independent control flow (no data-dependent early-outs
//! anywhere in the core) makes every kernel bitwise deterministic
//! run-to-run on the same machine — the property the checkpoint-resume
//! and multi-job solo-parity suites rely on. The two arms agree only up
//! to rounding (FMA contracts the multiply-add), which is why
//! cross-arm tests are tolerance-based while same-arm tests are exact.

use std::sync::OnceLock;

/// A dispatch arm of the microkernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdArm {
    /// Portable Rust loops (autovectorizable, no target features).
    Scalar,
    /// AVX2 + FMA intrinsics (x86-64 only, runtime-detected).
    Avx2,
}

impl SimdArm {
    /// Short stable name, e.g. for bench metadata: `"scalar"` / `"avx2"`.
    pub fn name(self) -> &'static str {
        match self {
            SimdArm::Scalar => "scalar",
            SimdArm::Avx2 => "avx2",
        }
    }
}

/// The arm the hardware supports (ignoring `HQR_SIMD`).
pub fn simd_detected() -> SimdArm {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdArm::Avx2;
        }
    }
    SimdArm::Scalar
}

fn resolve_arm() -> (SimdArm, &'static str) {
    let detected = simd_detected();
    match std::env::var("HQR_SIMD").ok().as_deref() {
        None => (detected, "runtime-detected"),
        Some("off") | Some("scalar") | Some("0") => (SimdArm::Scalar, "forced via HQR_SIMD"),
        Some("avx2") | Some("on") | Some("1") => {
            if detected == SimdArm::Avx2 {
                (SimdArm::Avx2, "forced via HQR_SIMD")
            } else {
                eprintln!("HQR_SIMD requested avx2 but the CPU lacks avx2+fma; using scalar");
                (SimdArm::Scalar, "avx2 unavailable, fell back to scalar")
            }
        }
        Some(other) => {
            eprintln!("unknown HQR_SIMD value `{other}` (use off|scalar|avx2); auto-detecting");
            (detected, "runtime-detected")
        }
    }
}

fn dispatch() -> &'static (SimdArm, &'static str) {
    static ARM: OnceLock<(SimdArm, &'static str)> = OnceLock::new();
    ARM.get_or_init(resolve_arm)
}

/// The arm every public kernel entry point uses, selected once at startup.
pub fn simd_arm() -> SimdArm {
    dispatch().0
}

/// Human-readable dispatch description, e.g. `"avx2 (runtime-detected)"`.
pub fn simd_description() -> String {
    let (arm, how) = dispatch();
    format!("{} ({how})", arm.name())
}

/// Structure of the `A` operand: which `(i, l)` entries may be nonzero.
/// Masked-out entries are never read by the scalar arm and are read but
/// guaranteed zero (callers pack-clean their buffers) by the block-granular
/// AVX2 arm, so both arms skip the corresponding flops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MaskA {
    /// Dense m×k operand.
    Full,
    /// Lower triangular including the diagonal: nonzero iff `l <= i`.
    Lower,
    /// Upper triangular including the diagonal: nonzero iff `l >= i`.
    Upper,
}

impl MaskA {
    /// Column range of `A` that can touch rows `[i0, i1)`, intersected
    /// with `[0, k)`.
    #[inline]
    fn k_range(self, i0: usize, i1: usize, k: usize) -> (usize, usize) {
        match self {
            MaskA::Full => (0, k),
            // A[i, l] nonzero iff l <= i: columns 0..=max_i.
            MaskA::Lower => (0, i1.min(k)),
            // A[i, l] nonzero iff l >= i: columns min_i onward.
            MaskA::Upper => (i0.min(k), k),
        }
    }
}

/// `C := α·A·B + β·C` where `A` is `m × k` (leading dimension `lda`,
/// structure `mask`), `B` is `k × n` (`ldb`), `C` is `m × n` (`ldc`), all
/// column-major. `β == 0` overwrites `C` without reading it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_core(
    arm: SimdArm,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    mask: MaskA,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(lda >= m && ldc >= m && (k == 0 || ldb >= k));
    match arm {
        SimdArm::Scalar => gemm_scalar(m, n, k, alpha, a, lda, mask, b, ldb, beta, c, ldc),
        SimdArm::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 arm is only ever selected when runtime
            // detection confirmed avx2+fma (see `resolve_arm`).
            unsafe {
                avx2::gemm(m, n, k, alpha, a, lda, mask, b, ldb, beta, c, ldc)
            }
            #[cfg(not(target_arch = "x86_64"))]
            gemm_scalar(m, n, k, alpha, a, lda, mask, b, ldb, beta, c, ldc)
        }
    }
}

/// Portable arm: axpy ordering keeps the inner loop contiguous in `i`,
/// and the mask trims each `A` column to its exact nonzero row range.
#[allow(clippy::too_many_arguments)]
fn gemm_scalar(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    mask: MaskA,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        let cj = j * ldc;
        let ccol = &mut c[cj..cj + m];
        if beta == 0.0 {
            ccol.fill(0.0);
        } else if beta != 1.0 {
            for v in ccol.iter_mut() {
                *v *= beta;
            }
        }
        for l in 0..k {
            let blj = alpha * b[l + j * ldb];
            // Rows of column l of A that can be nonzero under the mask.
            let (i0, i1) = match mask {
                MaskA::Full => (0, m),
                MaskA::Lower => (l.min(m), m),
                MaskA::Upper => (0, (l + 1).min(m)),
            };
            let al = &a[l * lda..l * lda + m];
            for i in i0..i1 {
                ccol[i] += blj * al[i];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::MaskA;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// Microkernel: `C[0..4·MV, 0..NR] = α·(A·B) + β·C` over `kk` terms,
    /// accumulating the full block in `MV × NR` vector registers.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn mk<const MV: usize, const NR: usize>(
        kk: usize,
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        alpha: f64,
        beta: f64,
        c: *mut f64,
        ldc: usize,
    ) {
        let mut acc = [[_mm256_setzero_pd(); MV]; NR];
        for l in 0..kk {
            let ap = a.add(l * lda);
            let av: [__m256d; MV] = core::array::from_fn(|v| _mm256_loadu_pd(ap.add(4 * v)));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bv = _mm256_set1_pd(*b.add(l + j * ldb));
                for (avv, accv) in av.iter().zip(accj.iter_mut()) {
                    *accv = _mm256_fmadd_pd(*avv, bv, *accv);
                }
            }
        }
        let va = _mm256_set1_pd(alpha);
        for (j, accj) in acc.iter().enumerate() {
            let cp = c.add(j * ldc);
            for (v, accv) in accj.iter().enumerate() {
                let mut r = _mm256_mul_pd(*accv, va);
                if beta == 1.0 {
                    r = _mm256_add_pd(r, _mm256_loadu_pd(cp.add(4 * v)));
                } else if beta != 0.0 {
                    r = _mm256_fmadd_pd(_mm256_loadu_pd(cp.add(4 * v)), _mm256_set1_pd(beta), r);
                }
                _mm256_storeu_pd(cp.add(4 * v), r);
            }
        }
    }

    /// Scalar cleanup for row tails narrower than one vector.
    #[allow(clippy::too_many_arguments)]
    unsafe fn tail_rows(
        rows: usize,
        nr: usize,
        kk: usize,
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        alpha: f64,
        beta: f64,
        c: *mut f64,
        ldc: usize,
    ) {
        for j in 0..nr {
            for i in 0..rows {
                let mut s = 0.0;
                for l in 0..kk {
                    s += *a.add(i + l * lda) * *b.add(l + j * ldb);
                }
                let cp = c.add(i + j * ldc);
                let prev = if beta == 0.0 { 0.0 } else { beta * *cp };
                *cp = prev + alpha * s;
            }
        }
    }

    /// Blocked driver for the AVX2 arm. The mask trims the `k` range per
    /// 8-row block; diagonal-crossing blocks rely on callers packing
    /// zeros into the masked-out triangle.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        mask: MaskA,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut j = 0;
        while j < n {
            let nr = (n - j).min(4);
            let mut i = 0;
            while i < m {
                let mr = (m - i).min(8);
                let (klo, khi) = mask.k_range(i, i + mr, k);
                let kk = khi - klo;
                let ab = ap.add(i + klo * lda);
                let bb = bp.add(klo + j * ldb);
                let cb = cp.add(i + j * ldc);
                match (mr >= 8, mr >= 4, nr) {
                    (true, _, 4) => mk::<2, 4>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc),
                    (true, _, 3) => {
                        mk::<2, 2>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc);
                        mk::<2, 1>(
                            kk,
                            ab,
                            lda,
                            bb.add(2 * ldb),
                            ldb,
                            alpha,
                            beta,
                            cb.add(2 * ldc),
                            ldc,
                        );
                    }
                    (true, _, 2) => mk::<2, 2>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc),
                    (true, _, _) => mk::<2, 1>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc),
                    (false, true, 4) => mk::<1, 4>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc),
                    (false, true, 3) => {
                        mk::<1, 2>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc);
                        mk::<1, 1>(
                            kk,
                            ab,
                            lda,
                            bb.add(2 * ldb),
                            ldb,
                            alpha,
                            beta,
                            cb.add(2 * ldc),
                            ldc,
                        );
                    }
                    (false, true, 2) => mk::<1, 2>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc),
                    (false, true, _) => mk::<1, 1>(kk, ab, lda, bb, ldb, alpha, beta, cb, ldc),
                    (false, false, _) => {
                        tail_rows(mr, nr, kk, ab, lda, bb, ldb, alpha, beta, cb, ldc)
                    }
                }
                // 5..=7 rows: the vector kernel covered the first 4.
                if (4..8).contains(&mr) {
                    tail_rows(mr - 4, nr, kk, ab.add(4), lda, bb, ldb, alpha, beta, cb.add(4), ldc);
                }
                i += mr;
            }
            j += nr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_tile::DenseMatrix;

    #[allow(clippy::too_many_arguments)]
    fn reference(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        mask: MaskA,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &[f64],
        ldc: usize,
    ) -> Vec<f64> {
        let mut out = c.to_vec();
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for l in 0..k {
                    let live = match mask {
                        MaskA::Full => true,
                        MaskA::Lower => l <= i,
                        MaskA::Upper => l >= i,
                    };
                    if live {
                        s += a[i + l * lda] * b[l + j * ldb];
                    }
                }
                out[i + j * ldc] = beta * c[i + j * ldc] + alpha * s;
            }
        }
        out
    }

    fn masked_fill(m: usize, k: usize, mask: MaskA, seed: u64) -> Vec<f64> {
        let full = DenseMatrix::random(m, k, seed).data().to_vec();
        let mut out = vec![0.0; m * k];
        for l in 0..k {
            for i in 0..m {
                let live = match mask {
                    MaskA::Full => true,
                    MaskA::Lower => l <= i,
                    MaskA::Upper => l >= i,
                };
                if live {
                    out[i + l * m] = full[i + l * m];
                }
            }
        }
        out
    }

    fn check(arm: SimdArm, m: usize, n: usize, k: usize, mask: MaskA, alpha: f64, beta: f64) {
        let a = masked_fill(m, k, mask, 1000 + m as u64 * 7 + n as u64);
        let b = DenseMatrix::random(k, n, 2000 + k as u64).data().to_vec();
        let c0 = DenseMatrix::random(m, n, 3000 + n as u64).data().to_vec();
        let expect = reference(m, n, k, alpha, &a, m, mask, &b, k, beta, &c0, m);
        let mut c = c0.clone();
        gemm_core(arm, m, n, k, alpha, &a, m, mask, &b, k, beta, &mut c, m);
        let err = c.iter().zip(&expect).fold(0.0f64, |acc, (x, y)| acc.max((x - y).abs()));
        assert!(err < 1e-11, "{arm:?} {m}x{n}x{k} {mask:?} alpha={alpha} beta={beta}: err {err}");
    }

    #[test]
    fn all_arms_match_reference_over_shapes() {
        let arms: &[SimdArm] = if simd_detected() == SimdArm::Avx2 {
            &[SimdArm::Scalar, SimdArm::Avx2]
        } else {
            &[SimdArm::Scalar]
        };
        for &arm in arms {
            for &(m, n, k) in &[
                (1, 1, 1),
                (3, 2, 5),
                (4, 4, 4),
                (7, 3, 9),
                (8, 4, 8),
                (8, 5, 13),
                (11, 7, 6),
                (16, 16, 16),
                (24, 9, 17),
                (33, 13, 33),
            ] {
                for &mask in &[MaskA::Full, MaskA::Lower, MaskA::Upper] {
                    for &(alpha, beta) in &[(1.0, 0.0), (1.0, 1.0), (-1.0, 1.0), (2.5, -0.5)] {
                        check(arm, m, n, k, mask, alpha, beta);
                    }
                }
            }
        }
    }

    #[test]
    fn triangular_masks_never_read_dead_entries_on_scalar() {
        // Poison the masked-out triangle: the scalar arm's exact row
        // trimming must never touch it.
        let (m, k, n) = (9usize, 9usize, 4usize);
        let mut a = masked_fill(m, k, MaskA::Lower, 7);
        for l in 0..k {
            for i in 0..m {
                if l > i {
                    a[i + l * m] = f64::NAN;
                }
            }
        }
        let b = DenseMatrix::random(k, n, 8).data().to_vec();
        let mut c = vec![0.0; m * n];
        gemm_core(SimdArm::Scalar, m, n, k, 1.0, &a, m, MaskA::Lower, &b, k, 0.0, &mut c, m);
        assert!(c.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn same_arm_is_bitwise_deterministic() {
        let (m, n, k) = (33usize, 17usize, 29usize);
        let a = DenseMatrix::random(m, k, 11).data().to_vec();
        let b = DenseMatrix::random(k, n, 12).data().to_vec();
        for &arm in &[SimdArm::Scalar, simd_detected()] {
            let mut c1 = vec![0.5; m * n];
            let mut c2 = vec![0.5; m * n];
            gemm_core(arm, m, n, k, 1.0, &a, m, MaskA::Full, &b, k, 1.0, &mut c1, m);
            gemm_core(arm, m, n, k, 1.0, &a, m, MaskA::Full, &b, k, 1.0, &mut c2, m);
            let bits1: Vec<u64> = c1.iter().map(|x| x.to_bits()).collect();
            let bits2: Vec<u64> = c2.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits1, bits2, "{arm:?} not run-to-run deterministic");
        }
    }

    #[test]
    fn dispatch_is_stable_within_a_process() {
        assert_eq!(simd_arm(), simd_arm());
        assert!(!simd_description().is_empty());
        assert_eq!(SimdArm::Scalar.name(), "scalar");
        assert_eq!(SimdArm::Avx2.name(), "avx2");
    }
}
