//! From-scratch sequential tile QR kernels.
//!
//! These are the six kernels of the paper's §II (Algorithm 2), implemented
//! with Householder reflections in compact WY form, exactly as PLASMA's
//! CORE_BLAS kernels do:
//!
//! | kernel | operation | weight (b³/3 flops) |
//! |---|---|---|
//! | [`geqrt`]  | QR of a square tile: A → (V, R), T | 4 |
//! | [`unmqr`]  | apply op(Q) of a GEQRT to a tile | 6 |
//! | [`tsqrt`]  | QR of [R; A] (triangle on top of square) | 6 |
//! | [`tsmqr`]  | apply op(Q) of a TSQRT to a tile pair | 12 |
//! | [`ttqrt`]  | QR of [R; R] (triangle on top of triangle) | 2 |
//! | [`ttmqr`]  | apply op(Q) of a TTQRT to a tile pair | 6 |
//!
//! All tiles are square `b × b`, column-major slices of length `b²`.
//! TT kernels exploit the triangular structure of the second tile and so
//! perform roughly a third of the floating-point work of their TS
//! counterparts per call, but "the sequential performance of the TS kernels
//! is higher" per *flop* (§II) — which the criterion bench `kernels`
//! measures on this implementation.
//!
//! Conventions (LAPACK-style): `geqrt` factors A = Q·R with
//! Q = I − V·T·Vᵀ (V unit lower triangular, T upper triangular);
//! applying `Trans` computes Qᵀ·C (used during factorization, since
//! R = Qᵀ·A), `NoTrans` computes Q·C (used to rebuild Q against the
//! identity, as the paper's checks do).
//!
//! ```
//! use hqr_kernels::{geqrt, unmqr, Trans};
//! use hqr_tile::DenseMatrix;
//! let b = 8;
//! let a0 = DenseMatrix::random(b, b, 7).data().to_vec();
//! let (mut a, mut t) = (a0.clone(), vec![0.0; b * b]);
//! geqrt(b, &mut a, &mut t);
//! // Qᵀ·A0 reproduces R: strictly-lower part vanishes.
//! let mut c = a0.clone();
//! unmqr(b, &a, &t, &mut c, Trans::Trans);
//! for j in 0..b {
//!     for i in (j + 1)..b {
//!         assert!(c[i + j * b].abs() < 1e-12);
//!     }
//! }
//! ```

mod apply;
pub mod blas;
pub mod blocked;
mod error;
mod factor;
mod larfg;
pub mod micro;
pub mod reference;
pub mod weights;

pub use apply::{tsmqr, tsmqr_arm, ttmqr, ttmqr_arm, unmqr, unmqr_arm};
pub use error::KernelError;
pub use factor::{geqrt, tsqrt, ttqrt};
pub use micro::{simd_arm, simd_description, simd_detected, SimdArm};
pub use weights::{KernelClass, KernelKind};

/// Whether to apply `Q` or `Qᵀ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Apply Q (used when reconstructing Q or computing Q·R).
    NoTrans,
    /// Apply Qᵀ (used during factorization: R = Qᵀ·A).
    Trans,
}

#[inline]
pub(crate) fn check_tile(b: usize, t: &[f64]) {
    assert_eq!(t.len(), b * b, "tile must be b*b = {} elements, got {}", b * b, t.len());
}
