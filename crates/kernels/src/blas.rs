//! Small dense BLAS-like routines on column-major tiles, supporting the
//! least-squares solver and the explicit-Q builders. These are utility
//! kernels (the paper's algorithms only need the six QR kernels).
//!
//! [`gemm`] is a thin shim over the shared register-blocked core in
//! [`crate::micro`], so it rides the same runtime scalar/AVX2 dispatch as
//! the tile kernels. Buffer-size contract: every routine here demands
//! exact sizes (`assert_eq!`) — including [`try_trsm_upper`]'s `r`, which
//! historically tolerated oversized buffers and silently indexed the
//! leading block.

use crate::micro::{gemm_core, simd_arm, MaskA, SimdArm};
use crate::KernelError;
use crate::Trans;

/// C := beta·C + alpha·op(A)·op(B) for column-major matrices.
/// `a` is `m × k` (after op), `b` is `k × n` (after op), `c` is `m × n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: Trans,
    b: &[f64],
    tb: Trans,
    beta: f64,
    c: &mut [f64],
) {
    gemm_arm(simd_arm(), m, n, k, alpha, a, ta, b, tb, beta, c);
}

/// [`gemm`] on an explicit dispatch arm (parity tests and benches).
#[allow(clippy::too_many_arguments)]
pub fn gemm_arm(
    arm: SimdArm,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: Trans,
    b: &[f64],
    tb: Trans,
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(c.len(), m * n, "C must be m*n");
    match ta {
        Trans::NoTrans => assert_eq!(a.len(), m * k, "A must be m*k"),
        Trans::Trans => assert_eq!(a.len(), k * m, "A' must be k*m"),
    }
    match tb {
        Trans::NoTrans => assert_eq!(b.len(), k * n, "B must be k*n"),
        Trans::Trans => assert_eq!(b.len(), n * k, "B' must be n*k"),
    }
    // The core takes both operands untransposed; pack transposed views.
    let apack;
    let an: &[f64] = match ta {
        Trans::NoTrans => a,
        Trans::Trans => {
            let mut p = vec![0.0; m * k];
            for l in 0..k {
                for i in 0..m {
                    p[i + l * m] = a[l + i * k];
                }
            }
            apack = p;
            &apack
        }
    };
    let bpack;
    let bn: &[f64] = match tb {
        Trans::NoTrans => b,
        Trans::Trans => {
            let mut p = vec![0.0; k * n];
            for j in 0..n {
                for l in 0..k {
                    p[l + j * k] = b[j + l * n];
                }
            }
            bpack = p;
            &bpack
        }
    };
    gemm_core(arm, m, n, k, alpha, an, m, MaskA::Full, bn, k, beta, c, m);
}

/// Solve R·X = B in place (X overwrites B), where `r` is the upper
/// triangle of an `n × n` column-major matrix (entries below the diagonal
/// are ignored) and `b` is `n × nrhs`. Backward substitution; returns
/// [`KernelError::SingularR`] on a zero diagonal entry, leaving `b` in an
/// unspecified partially-solved state.
pub fn try_trsm_upper(n: usize, nrhs: usize, r: &[f64], b: &mut [f64]) -> Result<(), KernelError> {
    assert_eq!(r.len(), n * n, "R must be n*n");
    assert_eq!(b.len(), n * nrhs, "B must be n*nrhs");
    for col in 0..nrhs {
        let bc = col * n;
        for i in (0..n).rev() {
            let mut s = b[bc + i];
            for l in (i + 1)..n {
                s -= r[i + l * n] * b[bc + l];
            }
            let d = r[i + i * n];
            if d == 0.0 {
                return Err(KernelError::SingularR { index: i });
            }
            b[bc + i] = s / d;
        }
    }
    Ok(())
}

/// Panicking convenience wrapper around [`try_trsm_upper`] for callers that
/// have already established R is nonsingular.
pub fn trsm_upper(n: usize, nrhs: usize, r: &[f64], b: &mut [f64]) {
    if let Err(e) = try_trsm_upper(n, nrhs, r, b) {
        panic!("{e}");
    }
}

/// Infinity norm of the difference of two equal-length buffers.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_tile::DenseMatrix;

    #[test]
    fn gemm_matches_dense_reference() {
        let (m, n, k) = (4usize, 3usize, 5usize);
        let a = DenseMatrix::random(m, k, 1);
        let b = DenseMatrix::random(k, n, 2);
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, a.data(), Trans::NoTrans, b.data(), Trans::NoTrans, 0.0, &mut c);
        let expect = a.matmul(&b);
        assert!(max_abs_diff(&c, expect.data()) < 1e-14);
    }

    #[test]
    fn gemm_transposed_operands() {
        let (m, n, k) = (3usize, 4usize, 2usize);
        let at = DenseMatrix::random(k, m, 3); // holds Aᵀ
        let bt = DenseMatrix::random(n, k, 4); // holds Bᵀ
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, at.data(), Trans::Trans, bt.data(), Trans::Trans, 0.0, &mut c);
        let expect = at.transpose().matmul(&bt.transpose());
        assert!(max_abs_diff(&c, expect.data()) < 1e-14);
    }

    #[test]
    fn gemm_alpha_beta() {
        let (m, n, k) = (2usize, 2usize, 2usize);
        let a = DenseMatrix::identity(2, 2);
        let b = DenseMatrix::identity(2, 2);
        let mut c = vec![1.0; 4];
        gemm(m, n, k, 2.0, a.data(), Trans::NoTrans, b.data(), Trans::NoTrans, 3.0, &mut c);
        // C = 3*ones + 2*I
        assert_eq!(c, vec![5.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn gemm_large_shapes_match_reference_on_both_arms() {
        // Exercise the register-block tails (m, n not multiples of 8/4).
        use crate::micro::SimdArm;
        for &(m, n, k) in &[(17usize, 9usize, 13usize), (64, 64, 64), (33, 5, 21)] {
            let a = DenseMatrix::random(m, k, 91);
            let b = DenseMatrix::random(k, n, 92);
            let expect = a.matmul(&b);
            for arm in [SimdArm::Scalar, crate::micro::simd_detected()] {
                let mut c = vec![0.0; m * n];
                gemm_arm(
                    arm,
                    m,
                    n,
                    k,
                    1.0,
                    a.data(),
                    Trans::NoTrans,
                    b.data(),
                    Trans::NoTrans,
                    0.0,
                    &mut c,
                );
                assert!(max_abs_diff(&c, expect.data()) < 1e-11 * (k as f64));
            }
        }
    }

    #[test]
    fn trsm_solves_upper_system() {
        let n = 5;
        // Build a well-conditioned upper-triangular R.
        let mut r = vec![0.0; n * n];
        let dm = DenseMatrix::random(n, n, 5);
        for j in 0..n {
            for i in 0..=j {
                r[i + j * n] = dm.get(i, j) + if i == j { 3.0 } else { 0.0 };
            }
        }
        let x_true = DenseMatrix::random(n, 2, 6);
        // b = R x
        let mut b = vec![0.0; n * 2];
        gemm(n, 2, n, 1.0, &r, Trans::NoTrans, x_true.data(), Trans::NoTrans, 0.0, &mut b);
        try_trsm_upper(n, 2, &r, &mut b).unwrap();
        assert!(max_abs_diff(&b, x_true.data()) < 1e-12);
    }

    #[test]
    fn trsm_ignores_strict_lower() {
        let n = 3;
        let mut r = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..=j {
                r[i + j * n] = 1.0 + (i + j) as f64;
            }
        }
        let mut r_poison = r.clone();
        for j in 0..n {
            for i in (j + 1)..n {
                r_poison[i + j * n] = f64::NAN;
            }
        }
        let mut b1 = vec![1.0, 2.0, 3.0];
        let mut b2 = b1.clone();
        try_trsm_upper(n, 1, &r, &mut b1).unwrap();
        try_trsm_upper(n, 1, &r_poison, &mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn trsm_reports_singularity_as_error() {
        let mut r = vec![0.0; 9];
        r[0] = 1.0;
        r[4] = 0.0; // zero diagonal at index 1
        r[8] = 2.0;
        let mut b = vec![1.0, 1.0, 1.0];
        assert_eq!(try_trsm_upper(3, 1, &r, &mut b), Err(KernelError::SingularR { index: 1 }));
    }

    #[test]
    #[should_panic(expected = "singular R")]
    fn trsm_panicking_wrapper_still_panics() {
        let r = vec![0.0; 4];
        let mut b = vec![1.0, 1.0];
        trsm_upper(2, 1, &r, &mut b);
    }

    #[test]
    #[should_panic(expected = "R must be n*n")]
    fn trsm_rejects_oversized_r() {
        // Contract unified with gemm: exact sizes only.
        let r = vec![1.0; 10];
        let mut b = vec![1.0; 3];
        let _ = try_trsm_upper(3, 1, &r, &mut b);
    }
}
