//! Small dense BLAS-like routines on column-major tiles, supporting the
//! least-squares solver and the explicit-Q builders. These are utility
//! kernels (the paper's algorithms only need the six QR kernels); they are
//! written for clarity and tested against references, not for peak speed.

use crate::Trans;

/// C := beta·C + alpha·op(A)·op(B) for column-major matrices.
/// `a` is `m × k` (after op), `b` is `k × n` (after op), `c` is `m × n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ta: Trans,
    b: &[f64],
    tb: Trans,
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(c.len(), m * n, "C must be m*n");
    match ta {
        Trans::NoTrans => assert_eq!(a.len(), m * k, "A must be m*k"),
        Trans::Trans => assert_eq!(a.len(), k * m, "A' must be k*m"),
    }
    match tb {
        Trans::NoTrans => assert_eq!(b.len(), k * n, "B must be k*n"),
        Trans::Trans => assert_eq!(b.len(), n * k, "B' must be n*k"),
    }
    let at = |i: usize, l: usize| match ta {
        Trans::NoTrans => a[i + l * m],
        Trans::Trans => a[l + i * k],
    };
    let bt = |l: usize, j: usize| match tb {
        Trans::NoTrans => b[l + j * k],
        Trans::Trans => b[j + l * n],
    };
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for l in 0..k {
                s += at(i, l) * bt(l, j);
            }
            c[i + j * m] = beta * c[i + j * m] + alpha * s;
        }
    }
}

/// Solve R·X = B in place (X overwrites B), where `r` is the upper
/// triangle of an `n × n` column-major tile (entries below the diagonal are
/// ignored) and `b` is `n × nrhs`. Backward substitution; panics on a zero
/// diagonal entry (singular R).
pub fn trsm_upper(n: usize, nrhs: usize, r: &[f64], b: &mut [f64]) {
    assert!(r.len() >= n * n, "R must be at least n*n");
    assert_eq!(b.len(), n * nrhs, "B must be n*nrhs");
    for col in 0..nrhs {
        let bc = col * n;
        for i in (0..n).rev() {
            let mut s = b[bc + i];
            for l in (i + 1)..n {
                s -= r[i + l * n] * b[bc + l];
            }
            let d = r[i + i * n];
            assert!(d != 0.0, "singular R: zero diagonal at {i}");
            b[bc + i] = s / d;
        }
    }
}

/// Infinity norm of the difference of two equal-length buffers.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_tile::DenseMatrix;

    #[test]
    fn gemm_matches_dense_reference() {
        let (m, n, k) = (4usize, 3usize, 5usize);
        let a = DenseMatrix::random(m, k, 1);
        let b = DenseMatrix::random(k, n, 2);
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, a.data(), Trans::NoTrans, b.data(), Trans::NoTrans, 0.0, &mut c);
        let expect = a.matmul(&b);
        assert!(max_abs_diff(&c, expect.data()) < 1e-14);
    }

    #[test]
    fn gemm_transposed_operands() {
        let (m, n, k) = (3usize, 4usize, 2usize);
        let at = DenseMatrix::random(k, m, 3); // holds Aᵀ
        let bt = DenseMatrix::random(n, k, 4); // holds Bᵀ
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, 1.0, at.data(), Trans::Trans, bt.data(), Trans::Trans, 0.0, &mut c);
        let expect = at.transpose().matmul(&bt.transpose());
        assert!(max_abs_diff(&c, expect.data()) < 1e-14);
    }

    #[test]
    fn gemm_alpha_beta() {
        let (m, n, k) = (2usize, 2usize, 2usize);
        let a = DenseMatrix::identity(2, 2);
        let b = DenseMatrix::identity(2, 2);
        let mut c = vec![1.0; 4];
        gemm(m, n, k, 2.0, a.data(), Trans::NoTrans, b.data(), Trans::NoTrans, 3.0, &mut c);
        // C = 3*ones + 2*I
        assert_eq!(c, vec![5.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn trsm_solves_upper_system() {
        let n = 5;
        // Build a well-conditioned upper-triangular R.
        let mut r = vec![0.0; n * n];
        let dm = DenseMatrix::random(n, n, 5);
        for j in 0..n {
            for i in 0..=j {
                r[i + j * n] = dm.get(i, j) + if i == j { 3.0 } else { 0.0 };
            }
        }
        let x_true = DenseMatrix::random(n, 2, 6);
        // b = R x
        let mut b = vec![0.0; n * 2];
        gemm(n, 2, n, 1.0, &r, Trans::NoTrans, x_true.data(), Trans::NoTrans, 0.0, &mut b);
        trsm_upper(n, 2, &r, &mut b);
        assert!(max_abs_diff(&b, x_true.data()) < 1e-12);
    }

    #[test]
    fn trsm_ignores_strict_lower() {
        let n = 3;
        let mut r = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..=j {
                r[i + j * n] = 1.0 + (i + j) as f64;
            }
        }
        let mut r_poison = r.clone();
        for j in 0..n {
            for i in (j + 1)..n {
                r_poison[i + j * n] = f64::NAN;
            }
        }
        let mut b1 = vec![1.0, 2.0, 3.0];
        let mut b2 = b1.clone();
        trsm_upper(n, 1, &r, &mut b1);
        trsm_upper(n, 1, &r_poison, &mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    #[should_panic(expected = "singular R")]
    fn trsm_detects_singularity() {
        let r = vec![0.0; 4];
        let mut b = vec![1.0, 1.0];
        trsm_upper(2, 1, &r, &mut b);
    }
}
