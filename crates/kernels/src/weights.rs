//! Kernel cost model of §II: "Assuming square b-by-b tiles and using a b³/3
//! floating point operation unit, the weight of GEQRT is 4, UNMQR 6, TSQRT
//! 6, TSMQR 12, TTQRT 2, and TTMQR 6."

/// The six tile kernels of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Square-tile QR (make a killer triangular).
    Geqrt,
    /// Apply a GEQRT's Q to a trailing tile.
    Unmqr,
    /// Kill a square with a triangle.
    Tsqrt,
    /// Apply a TSQRT's Q to a trailing tile pair.
    Tsmqr,
    /// Kill a triangle with a triangle.
    Ttqrt,
    /// Apply a TTQRT's Q to a trailing tile pair.
    Ttmqr,
}

/// The efficiency class of a kernel, which determines the sequential rate it
/// achieves (§V-A: dTSMQR 7.21 GFlop/s = 79.4% of peak, dTTMQR 6.28 GFlop/s
/// = 69.2% of peak on the edel nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// TS-style kernels (square second operand): cache-friendly, faster.
    Ts,
    /// TT-style kernels (triangular operands): more parallelism, slower.
    Tt,
}

impl KernelKind {
    /// Cost weight in units of b³/3 floating-point operations.
    pub fn weight(self) -> u64 {
        match self {
            KernelKind::Geqrt => 4,
            KernelKind::Unmqr => 6,
            KernelKind::Tsqrt => 6,
            KernelKind::Tsmqr => 12,
            KernelKind::Ttqrt => 2,
            KernelKind::Ttmqr => 6,
        }
    }

    /// Floating point operations for tile size `b`.
    pub fn flops(self, b: usize) -> f64 {
        self.weight() as f64 * (b as f64).powi(3) / 3.0
    }

    /// Which sequential-efficiency class the kernel belongs to.
    ///
    /// GEQRT/TSQRT/UNMQR/TSMQR operate on at least one full square block and
    /// run at TS rates; TTQRT/TTMQR are the triangle-triangle kernels.
    pub fn class(self) -> KernelClass {
        match self {
            KernelKind::Ttqrt | KernelKind::Ttmqr => KernelClass::Tt,
            _ => KernelClass::Ts,
        }
    }

    /// True for the kill kernels (panel column), false for updates.
    pub fn is_factor(self) -> bool {
        matches!(self, KernelKind::Geqrt | KernelKind::Tsqrt | KernelKind::Ttqrt)
    }

    /// Short LAPACK-style name, as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Geqrt => "GEQRT",
            KernelKind::Unmqr => "UNMQR",
            KernelKind::Tsqrt => "TSQRT",
            KernelKind::Tsmqr => "TSMQR",
            KernelKind::Ttqrt => "TTQRT",
            KernelKind::Ttmqr => "TTMQR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_paper() {
        assert_eq!(KernelKind::Geqrt.weight(), 4);
        assert_eq!(KernelKind::Unmqr.weight(), 6);
        assert_eq!(KernelKind::Tsqrt.weight(), 6);
        assert_eq!(KernelKind::Tsmqr.weight(), 12);
        assert_eq!(KernelKind::Ttqrt.weight(), 2);
        assert_eq!(KernelKind::Ttmqr.weight(), 6);
    }

    #[test]
    fn ts_kill_equals_geqrt_plus_ttqrt() {
        // §II: "The number of arithmetic operations performed by a TSQRT
        // kernel is the same as that of a GEQRT followed by a TTQRT."
        assert_eq!(
            KernelKind::Tsqrt.weight(),
            KernelKind::Geqrt.weight() + KernelKind::Ttqrt.weight()
        );
        // And the same for the updates: TSMQR = UNMQR + TTMQR.
        assert_eq!(
            KernelKind::Tsmqr.weight(),
            KernelKind::Unmqr.weight() + KernelKind::Ttmqr.weight()
        );
    }

    #[test]
    fn flops_scale_cubically() {
        let f1 = KernelKind::Tsmqr.flops(10);
        let f2 = KernelKind::Tsmqr.flops(20);
        assert!((f2 / f1 - 8.0).abs() < 1e-12);
        assert!((KernelKind::Geqrt.flops(3) - 4.0 * 27.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn classes() {
        assert_eq!(KernelKind::Tsmqr.class(), KernelClass::Ts);
        assert_eq!(KernelKind::Geqrt.class(), KernelClass::Ts);
        assert_eq!(KernelKind::Ttmqr.class(), KernelClass::Tt);
        assert_eq!(KernelKind::Ttqrt.class(), KernelClass::Tt);
    }

    #[test]
    fn factor_vs_update() {
        assert!(KernelKind::Geqrt.is_factor());
        assert!(KernelKind::Tsqrt.is_factor());
        assert!(KernelKind::Ttqrt.is_factor());
        assert!(!KernelKind::Unmqr.is_factor());
        assert!(!KernelKind::Tsmqr.is_factor());
        assert!(!KernelKind::Ttmqr.is_factor());
    }
}
