//! Factorization kernels: GEQRT, TSQRT, TTQRT.

use crate::check_tile;
use crate::larfg::larfg;

/// QR factorization of a square `b × b` tile (PLASMA `CORE_dgeqrt`).
///
/// On exit, `a` holds R in its upper triangle (diagonal included) and the
/// Householder vectors V in its strict lower triangle (unit diagonal
/// implicit); `t` holds the upper-triangular block-reflector factor T, with
/// the τ values on its diagonal, such that Q = I − V·T·Vᵀ and A = Q·R.
pub fn geqrt(b: usize, a: &mut [f64], t: &mut [f64]) {
    check_tile(b, a);
    check_tile(b, t);
    t.fill(0.0);
    for j in 0..b {
        let cj = j * b;
        // Generate the reflector annihilating a[j+1.., j].
        let (beta, tau) = {
            let alpha = a[cj + j];
            let (head, tail) = a.split_at_mut(cj + j + 1);
            debug_assert_eq!(head.len(), cj + j + 1);
            let x = &mut tail[..b - j - 1];
            larfg(alpha, x)
        };
        a[cj + j] = beta;
        // Apply H_j = I − τ v vᵀ to the trailing columns (v = [1; a[j+1.., j]]).
        for l in (j + 1)..b {
            let cl = l * b;
            let mut w = a[cl + j];
            for i in (j + 1)..b {
                w += a[cj + i] * a[cl + i];
            }
            w *= tau;
            a[cl + j] -= w;
            for i in (j + 1)..b {
                a[cl + i] -= w * a[cj + i];
            }
        }
        // T(0..j, j) = −τ · T(0..j, 0..j) · (Vᵀ v_j); T(j, j) = τ.
        // z_i = (V[:,i])ᵀ v_j = a[j, i] + Σ_{r>j} a[r, i]·a[r, j]   (i < j)
        for i in 0..j {
            let ci = i * b;
            let mut z = a[ci + j];
            for r in (j + 1)..b {
                z += a[ci + r] * a[cj + r];
            }
            t[j * b + i] = z;
        }
        // In-place upper-triangular matvec: y_i = Σ_{r=i..j-1} T[i,r]·z_r.
        // Ascending i only overwrites entries later iterations never read.
        for i in 0..j {
            let mut y = 0.0;
            for r in i..j {
                y += t[r * b + i] * t[j * b + r];
            }
            t[j * b + i] = -tau * y;
        }
        t[j * b + j] = tau;
    }
}

/// Shared implementation of TSQRT/TTQRT: QR of a triangle stacked on a
/// second tile. `tri_bottom` selects the bottom tile's structure: `false`
/// for a full square (TS), `true` for an upper triangle (TT), in which case
/// column `j` of the bottom tile only has rows `0..=j` active — the source
/// of the 3× flop saving of TT kernels.
fn stacked_qrt(b: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64], tri_bottom: bool) {
    check_tile(b, a1);
    check_tile(b, a2);
    check_tile(b, t);
    let support = |col: usize| if tri_bottom { col + 1 } else { b };
    t.fill(0.0);
    for j in 0..b {
        let cj = j * b;
        let blen = support(j);
        // Reflector on [a1[j,j]; a2[0..blen, j]]: the top part of v is e_j
        // because rows j+1..b of column j in the stacked triangle are zero.
        let (beta, tau) = larfg(a1[j + cj], &mut a2[cj..cj + blen]);
        a1[j + cj] = beta;
        // Update trailing columns l > j of the stacked pair.
        for l in (j + 1)..b {
            let cl = l * b;
            let mut w = a1[j + cl];
            for i in 0..blen {
                w += a2[cj + i] * a2[cl + i];
            }
            w *= tau;
            a1[j + cl] -= w;
            for i in 0..blen {
                a2[cl + i] -= w * a2[cj + i];
            }
        }
        // T(0..j, j) = −τ·T·(V̂ᵀ v̂_j). Top blocks are disjoint unit vectors,
        // so only the bottom parts contribute: z_i = v2_iᵀ · v2_j.
        for i in 0..j {
            let sup = support(i).min(blen);
            let ci = i * b;
            let mut z = 0.0;
            for r in 0..sup {
                z += a2[ci + r] * a2[cj + r];
            }
            t[cj + i] = z;
        }
        for i in 0..j {
            let mut y = 0.0;
            for r in i..j {
                y += t[r * b + i] * t[cj + r];
            }
            t[cj + i] = -tau * y;
        }
        t[cj + j] = tau;
    }
}

/// TSQRT (PLASMA `CORE_dtsqrt`): QR of `[A1; A2]` where `A1` is the upper
/// triangle produced by a previous GEQRT/TSQRT on the pivot row and `A2` is
/// a full square tile of the victim row.
///
/// On exit `A1` holds the updated R, `A2` holds the (full square) block of
/// Householder vectors V2, and `t` the block-reflector factor for
/// Q = I − V̂·T·V̂ᵀ with V̂ = [I; V2]. The strict lower triangle of `A1`
/// (which stores unrelated V data from GEQRT) is left untouched.
pub fn tsqrt(b: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64]) {
    stacked_qrt(b, a1, a2, t, false);
}

/// TTQRT (PLASMA `CORE_dttqrt`): QR of `[A1; A2]` where **both** tiles are
/// upper triangular (two killers meeting). `A2`'s strict lower triangle is
/// preserved; V2 is upper triangular, which is what makes this kernel cost
/// weight 2 instead of TSQRT's 6.
pub fn ttqrt(b: usize, a1: &mut [f64], a2: &mut [f64], t: &mut [f64]) {
    stacked_qrt(b, a1, a2, t, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{tsmqr, ttmqr, unmqr};
    use crate::reference::dense_householder_qr;
    use crate::Trans;
    use hqr_tile::DenseMatrix;

    const B: usize = 8;

    fn tile_random(b: usize, seed: u64) -> Vec<f64> {
        DenseMatrix::random(b, b, seed).data().to_vec()
    }

    fn tile_identity(b: usize) -> Vec<f64> {
        let mut t = vec![0.0; b * b];
        for d in 0..b {
            t[d + d * b] = 1.0;
        }
        t
    }

    fn upper_of(b: usize, a: &[f64]) -> DenseMatrix {
        let mut u = DenseMatrix::zeros(b, b);
        for j in 0..b {
            for i in 0..=j {
                u.set(i, j, a[i + j * b]);
            }
        }
        u
    }

    /// |R1| == |R2| entrywise (QR unique up to diagonal signs).
    fn assert_same_r_up_to_signs(r1: &DenseMatrix, r2: &DenseMatrix, tol: f64) {
        assert_eq!(r1.rows(), r2.rows());
        for i in 0..r1.rows().min(r1.cols()) {
            let sign = if r1.get(i, i) * r2.get(i, i) >= 0.0 { 1.0 } else { -1.0 };
            for j in i..r1.cols() {
                let d = (r1.get(i, j) - sign * r2.get(i, j)).abs();
                assert!(d < tol, "R mismatch at ({i},{j}): {} vs {}", r1.get(i, j), r2.get(i, j));
            }
        }
    }

    #[test]
    fn geqrt_r_matches_dense_reference() {
        let a0 = tile_random(B, 1);
        let mut a = a0.clone();
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut a, &mut t);
        let r_tile = upper_of(B, &a);
        let dense = DenseMatrix::from_col_major(B, B, &a0);
        let (_, r_ref) = dense_householder_qr(&dense);
        assert_same_r_up_to_signs(&r_tile, &r_ref, 1e-12);
    }

    #[test]
    fn geqrt_q_is_orthogonal_and_reproduces_a() {
        let a0 = tile_random(B, 2);
        let mut a = a0.clone();
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut a, &mut t);
        // Q = unmqr(NoTrans) applied to identity.
        let mut q = tile_identity(B);
        unmqr(B, &a, &t, &mut q, Trans::NoTrans);
        let qm = DenseMatrix::from_col_major(B, B, &q);
        assert!(qm.orthogonality_error() < 1e-13, "Q not orthogonal");
        let qr = qm.matmul(&upper_of(B, &a));
        let a0m = DenseMatrix::from_col_major(B, B, &a0);
        assert!(a0m.sub(&qr).frob_norm() < 1e-13 * a0m.frob_norm().max(1.0));
    }

    #[test]
    fn geqrt_qt_times_a_equals_r() {
        let a0 = tile_random(B, 3);
        let mut a = a0.clone();
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut a, &mut t);
        let mut c = a0.clone();
        unmqr(B, &a, &t, &mut c, Trans::Trans);
        // Qᵀ·A should equal R: strict lower ~ 0, upper == stored R.
        let cm = DenseMatrix::from_col_major(B, B, &c);
        assert!(cm.max_abs_below_diagonal() < 1e-13);
        let diff = cm.upper_triangle().sub(&upper_of(B, &a));
        assert!(diff.frob_norm() < 1e-13);
    }

    #[test]
    fn geqrt_on_identity_is_trivial() {
        let mut a = tile_identity(B);
        let mut t = vec![0.0; B * B];
        geqrt(B, &mut a, &mut t);
        // R = I (possibly with sign flips), V = 0, so T diag in {0} (tau=0).
        for j in 0..B {
            for i in (j + 1)..B {
                assert_eq!(a[i + j * B], 0.0, "V must stay zero");
            }
            assert!((a[j + j * B].abs() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn tsqrt_stacked_r_matches_dense_reference() {
        let top0 = tile_random(B, 4);
        let bot0 = tile_random(B, 5);
        // First triangularize the top.
        let mut top = top0.clone();
        let mut t_ge = vec![0.0; B * B];
        geqrt(B, &mut top, &mut t_ge);
        let r_top = upper_of(B, &top);
        // TSQRT of [R_top; bottom].
        let mut bot = bot0.clone();
        let mut t_ts = vec![0.0; B * B];
        let mut a1 = r_top.data().to_vec();
        tsqrt(B, &mut a1, &mut bot, &mut t_ts);
        // Reference: dense QR of the 2b×b stack [R_top; bot0].
        let mut stack = DenseMatrix::zeros(2 * B, B);
        for j in 0..B {
            for i in 0..B {
                stack.set(i, j, r_top.get(i, j));
                stack.set(B + i, j, bot0[i + j * B]);
            }
        }
        let (_, r_ref) = dense_householder_qr(&stack);
        let mut r_ref_sq = DenseMatrix::zeros(B, B);
        for j in 0..B {
            for i in 0..=j {
                r_ref_sq.set(i, j, r_ref.get(i, j));
            }
        }
        assert_same_r_up_to_signs(&upper_of(B, &a1), &r_ref_sq, 1e-12);
    }

    #[test]
    fn tsqrt_with_apply_reproduces_stack() {
        // Factor [R; A2], then verify Q·[Rnew; 0] == [R; A2] by applying
        // NoTrans to the stacked R.
        let mut a1 = upper_of(B, &tile_random(B, 6)).data().to_vec();
        let a1_orig = a1.clone();
        let a2_orig = tile_random(B, 7);
        let mut a2 = a2_orig.clone();
        let mut t = vec![0.0; B * B];
        tsqrt(B, &mut a1, &mut a2, &mut t);
        let mut c1 = upper_of(B, &a1).data().to_vec();
        let mut c2 = vec![0.0; B * B];
        tsmqr(B, &a2, &t, &mut c1, &mut c2, Trans::NoTrans);
        let d1 = DenseMatrix::from_col_major(B, B, &c1)
            .sub(&DenseMatrix::from_col_major(B, B, &a1_orig));
        let d2 = DenseMatrix::from_col_major(B, B, &c2)
            .sub(&DenseMatrix::from_col_major(B, B, &a2_orig));
        assert!(d1.frob_norm() < 1e-12, "top reconstruction off by {}", d1.frob_norm());
        assert!(d2.frob_norm() < 1e-12, "bottom reconstruction off by {}", d2.frob_norm());
    }

    #[test]
    fn tsqrt_annihilates_bottom_tile() {
        let mut a1 = upper_of(B, &tile_random(B, 8)).data().to_vec();
        let mut a2 = tile_random(B, 9);
        let a2_orig = a2.clone();
        let a1_orig = a1.clone();
        let mut t = vec![0.0; B * B];
        tsqrt(B, &mut a1, &mut a2, &mut t);
        // Apply Qᵀ to the original stack: bottom should vanish.
        let mut c1 = a1_orig;
        let mut c2 = a2_orig;
        tsmqr(B, &a2, &t, &mut c1, &mut c2, Trans::Trans);
        let bot_norm = c2.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(bot_norm < 1e-12, "bottom tile should be annihilated, norm={bot_norm}");
    }

    #[test]
    fn tsqrt_preserves_pivot_v_storage() {
        // The strict lower triangle of A1 (GEQRT's V) must be untouched.
        let mut a1 = tile_random(B, 10);
        let lower_before: Vec<f64> = (0..B)
            .flat_map(|j| ((j + 1)..B).map(move |i| (i, j)))
            .map(|(i, j)| a1[i + j * B])
            .collect();
        let mut a2 = tile_random(B, 11);
        let mut t = vec![0.0; B * B];
        tsqrt(B, &mut a1, &mut a2, &mut t);
        let lower_after: Vec<f64> = (0..B)
            .flat_map(|j| ((j + 1)..B).map(move |i| (i, j)))
            .map(|(i, j)| a1[i + j * B])
            .collect();
        assert_eq!(lower_before, lower_after);
    }

    #[test]
    fn ttqrt_keeps_v2_upper_triangular() {
        let mut a1 = upper_of(B, &tile_random(B, 12)).data().to_vec();
        let mut a2 = upper_of(B, &tile_random(B, 13)).data().to_vec();
        // Poison the strict lower of a2 to verify it is never read/written.
        for j in 0..B {
            for i in (j + 1)..B {
                a2[i + j * B] = 1e9;
            }
        }
        let mut t = vec![0.0; B * B];
        ttqrt(B, &mut a1, &mut a2, &mut t);
        for j in 0..B {
            for i in (j + 1)..B {
                assert_eq!(a2[i + j * B], 1e9, "strict lower of A2 must be preserved");
            }
        }
    }

    #[test]
    fn ttqrt_stacked_r_matches_dense_reference() {
        let r1 = upper_of(B, &tile_random(B, 14));
        let r2 = upper_of(B, &tile_random(B, 15));
        let mut a1 = r1.data().to_vec();
        let mut a2 = r2.data().to_vec();
        let mut t = vec![0.0; B * B];
        ttqrt(B, &mut a1, &mut a2, &mut t);
        let mut stack = DenseMatrix::zeros(2 * B, B);
        for j in 0..B {
            for i in 0..B {
                stack.set(i, j, r1.get(i, j));
                stack.set(B + i, j, r2.get(i, j));
            }
        }
        let (_, r_ref) = dense_householder_qr(&stack);
        let mut r_ref_sq = DenseMatrix::zeros(B, B);
        for j in 0..B {
            for i in 0..=j {
                r_ref_sq.set(i, j, r_ref.get(i, j));
            }
        }
        assert_same_r_up_to_signs(&upper_of(B, &a1), &r_ref_sq, 1e-12);
    }

    #[test]
    fn ttqrt_with_apply_reproduces_stack() {
        let r1 = upper_of(B, &tile_random(B, 16)).data().to_vec();
        let r2 = upper_of(B, &tile_random(B, 17)).data().to_vec();
        let mut a1 = r1.clone();
        let mut a2 = r2.clone();
        let mut t = vec![0.0; B * B];
        ttqrt(B, &mut a1, &mut a2, &mut t);
        let mut c1 = upper_of(B, &a1).data().to_vec();
        let mut c2 = vec![0.0; B * B];
        ttmqr(B, &a2, &t, &mut c1, &mut c2, Trans::NoTrans);
        let d1 =
            DenseMatrix::from_col_major(B, B, &c1).sub(&DenseMatrix::from_col_major(B, B, &r1));
        let d2 =
            DenseMatrix::from_col_major(B, B, &c2).sub(&DenseMatrix::from_col_major(B, B, &r2));
        assert!(d1.frob_norm() < 1e-12);
        assert!(d2.frob_norm() < 1e-12);
    }

    #[test]
    fn tsqrt_zero_bottom_is_identity_transform() {
        let r = upper_of(B, &tile_random(B, 18)).data().to_vec();
        let mut a1 = r.clone();
        let mut a2 = vec![0.0; B * B];
        let mut t = vec![0.0; B * B];
        tsqrt(B, &mut a1, &mut a2, &mut t);
        assert_eq!(a1, r, "R must be unchanged when the victim is zero");
        assert!(t.iter().enumerate().all(|(idx, &v)| v == 0.0 || idx % (B + 1) == 0));
    }

    #[test]
    fn kernels_handle_b_equals_one() {
        let mut a1 = vec![3.0];
        let mut a2 = vec![4.0];
        let mut t = vec![0.0];
        tsqrt(1, &mut a1, &mut a2, &mut t);
        assert!((a1[0].abs() - 5.0).abs() < 1e-14, "hypot(3,4)=5, got {}", a1[0]);
    }
}
