//! Householder reflector generation (LAPACK `dlarfg`).

/// Generate an elementary Householder reflector H = I − τ·v·vᵀ with
/// v = [1; x'] such that H·[α; x] = [β; 0].
///
/// On return `x` holds the tail of v (x'), and `(β, τ)` is returned.
/// When `x` is already zero, τ = 0 (H = I) and β = α, as in LAPACK.
pub(crate) fn larfg(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let sigma: f64 = x.iter().map(|v| v * v).sum();
    if sigma == 0.0 {
        return (alpha, 0.0);
    }
    let mu = (alpha * alpha + sigma).sqrt();
    // beta = -sign(alpha) * mu avoids cancellation in alpha - beta.
    let beta = if alpha <= 0.0 { mu } else { -mu };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in x.iter_mut() {
        *v *= scale;
    }
    (beta, tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_reflector(alpha: f64, orig_x: &[f64], v: &[f64], tau: f64) -> Vec<f64> {
        // H [alpha; x] = [alpha; x] - tau * vhat * (vhatᵀ [alpha; x]),
        // vhat = [1; v].
        let mut w = alpha;
        for (vi, xi) in v.iter().zip(orig_x) {
            w += vi * xi;
        }
        w *= tau;
        let mut out = Vec::with_capacity(1 + orig_x.len());
        out.push(alpha - w);
        for (vi, xi) in v.iter().zip(orig_x) {
            out.push(xi - w * vi);
        }
        out
    }

    #[test]
    fn annihilates_tail() {
        let alpha = 3.0;
        let orig = vec![1.0, -2.0, 0.5];
        let mut x = orig.clone();
        let (beta, tau) = larfg(alpha, &mut x);
        let out = apply_reflector(alpha, &orig, &x, tau);
        assert!((out[0] - beta).abs() < 1e-14, "head should become beta");
        for (i, &v) in out.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-14, "tail entry {i} should vanish, got {v}");
        }
    }

    #[test]
    fn preserves_two_norm() {
        let alpha = -1.5;
        let orig = vec![2.0, 4.0, -1.0, 0.25];
        let mut x = orig.clone();
        let (beta, _tau) = larfg(alpha, &mut x);
        let norm_in = (alpha * alpha + orig.iter().map(|v| v * v).sum::<f64>()).sqrt();
        assert!((beta.abs() - norm_in).abs() < 1e-14);
    }

    #[test]
    fn zero_tail_gives_identity() {
        let mut x = vec![0.0, 0.0];
        let (beta, tau) = larfg(7.0, &mut x);
        assert_eq!(beta, 7.0);
        assert_eq!(tau, 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn beta_sign_is_opposite_of_alpha() {
        for &alpha in &[5.0, -5.0] {
            let mut x = vec![1.0];
            let (beta, _) = larfg(alpha, &mut x);
            assert!(beta * alpha < 0.0, "alpha {alpha} -> beta {beta}");
        }
    }

    #[test]
    fn empty_tail_is_identity() {
        let mut x: Vec<f64> = vec![];
        let (beta, tau) = larfg(-2.0, &mut x);
        assert_eq!(beta, -2.0);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn tau_within_stability_range() {
        // LAPACK guarantees 1 <= tau <= 2 for real reflectors (when nonzero).
        let mut x = vec![0.3, -0.7, 2.0];
        let (_, tau) = larfg(0.1, &mut x);
        assert!((1.0..=2.0).contains(&tau), "tau = {tau}");
    }
}
