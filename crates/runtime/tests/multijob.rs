//! Multi-job pool integration tests: concurrent jobs racing on one shared
//! worker pool must be bitwise-identical to their solo runs under every
//! scheduling policy; per-job robustness policy (fault injection, retry,
//! deadlines, QoS shedding, drain/resume) must affect only the job it
//! belongs to.

use std::path::PathBuf;
use std::time::Duration;

use hqr_runtime::{
    execute_serial_ib, load_queue, ElimOp, FaultPlan, IntegrityMode, JobInput, JobPool, JobSpec,
    JobState, PoolConfig, QosClass, SchedPolicy, SdcFault, SdcPattern, SubmitError, TFactors,
    TaskGraph,
};
use hqr_tile::TiledMatrix;

/// Flat-tree elimination list: row k kills every row below it.
fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            out.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    out
}

/// Binary-tree elimination list (TT kernels only).
fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let mut next = Vec::new();
            for pair in alive.chunks(2) {
                if let [a, b] = pair {
                    out.push(ElimOp::new(k as u32, *b, *a, false));
                }
                next.push(pair[0]);
            }
            alive = next;
        }
    }
    out
}

/// The solo reference: factor `a0` serially with the same elimination list
/// and inner block size the pool job uses.
fn solo(elims: &[ElimOp], a0: &TiledMatrix, ib: usize) -> (TiledMatrix, TFactors) {
    let graph = TaskGraph::try_build(a0.mt(), a0.nt(), a0.b(), elims).expect("valid elims");
    let mut a = a0.clone();
    let f = execute_serial_ib(&graph, &mut a, ib);
    (a, f)
}

fn assert_bitwise(
    label: &str,
    got_a: &TiledMatrix,
    got_f: &TFactors,
    elims: &[ElimOp],
    a0: &TiledMatrix,
    ib: usize,
) {
    let (ref_a, ref_f) = solo(elims, a0, ib);
    assert_eq!(
        got_a.to_dense().data(),
        ref_a.to_dense().data(),
        "{label}: factored matrix differs from solo run"
    );
    assert!(got_f.bitwise_eq(&ref_f), "{label}: factor buffers differ from solo run");
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hqr_pool_{name}_{}.queue", std::process::id()))
}

/// Block until `id` is admitted and running (bounded by a generous
/// timeout so a broken pool fails the test instead of hanging it).
fn wait_until_running(pool: &JobPool, id: hqr_runtime::JobId) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let v = pool.status(id).expect("known job");
        if v.state == JobState::Running {
            return;
        }
        assert!(!v.state.is_terminal(), "job reached {} before running", v.state);
        assert!(std::time::Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A job spec whose first task keeps panicking for `attempts` injected
/// faults before succeeding: a deterministic way to keep a job resident on
/// the pool long enough for cancel/shed/admission assertions, without any
/// sleeps in the test.
fn spinner(seed: u64, attempts: u32) -> (Vec<ElimOp>, TiledMatrix, JobSpec) {
    let elims = flat_elims(2, 2);
    let a = TiledMatrix::random(2, 2, 4, seed);
    let mut spec = JobSpec::fresh(elims.clone(), a.clone());
    spec.plan = Some(FaultPlan::new(seed).fail_task(0, attempts));
    spec.max_retries = attempts + 1;
    (elims, a, spec)
}

#[test]
fn racing_jobs_bitwise_identical_under_every_policy() {
    for policy in SchedPolicy::ALL {
        let pool = JobPool::new(PoolConfig { nthreads: 4, ..Default::default() });
        let cases = [
            (flat_elims(5, 4), TiledMatrix::random(5, 4, 8, 11)),
            (binary_elims(6, 4), TiledMatrix::random(6, 4, 8, 22)),
        ];
        let ids: Vec<_> = cases
            .iter()
            .map(|(elims, a)| {
                let mut spec = JobSpec::fresh(elims.clone(), a.clone());
                spec.policy = policy;
                pool.submit(spec).expect("submit")
            })
            .collect();
        for (id, (elims, a0)) in ids.into_iter().zip(&cases) {
            let out = pool.wait(id).expect("known job");
            assert_eq!(out.state, JobState::Completed, "{policy}: {:?}", out.error);
            let r = out.result.expect("first waiter gets the payload");
            assert_bitwise(&format!("policy {policy}"), &r.a, &r.factors, elims, a0, a0.b());
        }
        pool.shutdown();
    }
}

#[test]
fn fault_injection_is_job_isolated() {
    let pool = JobPool::new(PoolConfig { nthreads: 4, ..Default::default() });
    // Job A: three injected task failures, healed by per-task retry.
    let elims_a = flat_elims(5, 4);
    let a0 = TiledMatrix::random(5, 4, 8, 31);
    let mut spec_a = JobSpec::fresh(elims_a.clone(), a0.clone());
    spec_a.plan = Some(FaultPlan::new(7).fail_task(0, 1).fail_task(3, 2));
    spec_a.max_retries = 3;
    // Job B: an SDC strike, detected and recomputed under Spot integrity.
    let elims_b = binary_elims(6, 4);
    let b0 = TiledMatrix::random(6, 4, 8, 32);
    let mut spec_b = JobSpec::fresh(elims_b.clone(), b0.clone());
    spec_b.plan = Some(
        FaultPlan::new(8)
            .corrupt_task(1, SdcFault { slot: 0, element: 3, pattern: SdcPattern::Scale }),
    );
    spec_b.integrity = IntegrityMode::Spot;
    spec_b.max_retries = 2;
    // Job C: completely clean, racing both faulty neighbors.
    let elims_c = flat_elims(4, 4);
    let c0 = TiledMatrix::random(4, 4, 8, 33);
    let spec_c = JobSpec::fresh(elims_c.clone(), c0.clone());

    let ia = pool.submit(spec_a).expect("submit a");
    let ib = pool.submit(spec_b).expect("submit b");
    let ic = pool.submit(spec_c).expect("submit c");

    let oa = pool.wait(ia).expect("a");
    assert_eq!(oa.state, JobState::Completed, "{:?}", oa.error);
    assert!(oa.stats.panics_caught >= 3, "injected failures must be observed: {:?}", oa.stats);
    let ra = oa.result.unwrap();
    assert_bitwise("faulty job A", &ra.a, &ra.factors, &elims_a, &a0, a0.b());

    let ob = pool.wait(ib).expect("b");
    assert_eq!(ob.state, JobState::Completed, "{:?}", ob.error);
    assert!(ob.stats.sdc_detected >= 1, "SDC must be detected: {:?}", ob.stats);
    let rb = ob.result.unwrap();
    assert_bitwise("SDC job B", &rb.a, &rb.factors, &elims_b, &b0, b0.b());

    let oc = pool.wait(ic).expect("c");
    assert_eq!(oc.state, JobState::Completed, "{:?}", oc.error);
    assert_eq!(oc.stats, Default::default(), "clean job must see zero fault events");
    let rc = oc.result.unwrap();
    assert_bitwise("clean job C", &rc.a, &rc.factors, &elims_c, &c0, c0.b());
    pool.shutdown();
}

/// The acceptance-criteria scenario: ≥ 8 concurrent jobs with mixed QoS,
/// integrity modes, scheduling policies, inner block sizes, shapes, and
/// fault plans, all multiplexed on one pool, each bitwise-identical to its
/// solo run.
#[test]
fn eight_mixed_jobs_complete_bitwise() {
    let pool = JobPool::new(PoolConfig { nthreads: 4, ..Default::default() });
    struct Case {
        elims: Vec<ElimOp>,
        a0: TiledMatrix,
        ib: usize,
        spec_ib: Option<usize>,
        qos: QosClass,
        policy: SchedPolicy,
        integrity: IntegrityMode,
        plan: Option<FaultPlan>,
        max_retries: u32,
    }
    let mk = |elims: Vec<ElimOp>, a0: TiledMatrix| Case {
        elims,
        a0,
        ib: 8,
        spec_ib: None,
        qos: QosClass::Normal,
        policy: SchedPolicy::Fifo,
        integrity: IntegrityMode::Off,
        plan: None,
        max_retries: 0,
    };
    let mut cases = vec![
        mk(flat_elims(4, 3), TiledMatrix::random(4, 3, 8, 101)),
        mk(binary_elims(5, 4), TiledMatrix::random(5, 4, 8, 102)),
        mk(flat_elims(6, 4), TiledMatrix::random(6, 4, 8, 103)),
        mk(binary_elims(4, 4), TiledMatrix::random(4, 4, 8, 104)),
        mk(flat_elims(5, 5), TiledMatrix::random(5, 5, 8, 105)),
        mk(binary_elims(6, 3), TiledMatrix::random(6, 3, 8, 106)),
        mk(flat_elims(3, 3), TiledMatrix::random(3, 3, 8, 107)),
        mk(binary_elims(5, 3), TiledMatrix::random(5, 3, 8, 108)),
        mk(flat_elims(4, 4), TiledMatrix::random(4, 4, 8, 109)),
    ];
    cases[0].qos = QosClass::Interactive;
    cases[1].qos = QosClass::Batch;
    cases[2].policy = SchedPolicy::PanelFirst;
    cases[3].policy = SchedPolicy::CriticalPath;
    cases[4].integrity = IntegrityMode::Spot;
    cases[5].integrity = IntegrityMode::Full;
    cases[6].ib = 4;
    cases[6].spec_ib = Some(4);
    cases[7].plan = Some(FaultPlan::new(42).fail_task(2, 2));
    cases[7].max_retries = 2;
    cases[8].qos = QosClass::Interactive;
    cases[8].policy = SchedPolicy::CriticalPath;
    cases[8].integrity = IntegrityMode::Full;

    let ids: Vec<_> = cases
        .iter()
        .map(|c| {
            let mut spec = JobSpec::fresh(c.elims.clone(), c.a0.clone());
            spec.ib = c.spec_ib;
            spec.qos = c.qos;
            spec.policy = c.policy;
            spec.integrity = c.integrity;
            spec.plan = c.plan.clone();
            spec.max_retries = c.max_retries;
            spec.tag = format!("case-{}", c.a0.mt());
            pool.submit(spec).expect("submit")
        })
        .collect();
    assert!(ids.len() >= 8);
    for (id, c) in ids.into_iter().zip(&cases) {
        let out = pool.wait(id).expect("known job");
        assert_eq!(out.state, JobState::Completed, "case seed: {:?}", out.error);
        let r = out.result.expect("payload");
        assert_bitwise("mixed case", &r.a, &r.factors, &c.elims, &c.a0, c.ib);
    }
    pool.shutdown();
}

#[test]
fn deadline_miss_retries_then_quarantines_while_others_complete() {
    let pool = JobPool::new(PoolConfig {
        nthreads: 2,
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    });
    // The doomed job: a deadline no real factorization can meet, one
    // job-level retry. Expected path: deadline → backoff → deadline →
    // quarantine.
    let (_, _, mut doomed) = spinner(61, 20_000);
    doomed.deadline = Some(Duration::from_millis(1));
    doomed.job_retries = 1;
    let id_doomed = pool.submit(doomed).expect("submit doomed");
    // The bystander races it on the same workers and must be unaffected.
    let elims = flat_elims(5, 4);
    let a0 = TiledMatrix::random(5, 4, 8, 62);
    let id_ok = pool.submit(JobSpec::fresh(elims.clone(), a0.clone())).expect("submit ok");

    let out = pool.wait(id_doomed).expect("doomed");
    assert_eq!(out.state, JobState::Quarantined, "{:?}", out.error);
    assert_eq!(out.attempts, 2, "initial run plus one job-level retry");
    let err = out.error.expect("quarantine records the last error");
    assert!(err.contains("deadline"), "error should name the deadline: {err}");

    let ok = pool.wait(id_ok).expect("ok");
    assert_eq!(ok.state, JobState::Completed, "{:?}", ok.error);
    let r = ok.result.unwrap();
    assert_bitwise("bystander", &r.a, &r.factors, &elims, &a0, a0.b());
    pool.shutdown();
}

#[test]
fn task_failure_exhausts_retry_budget_then_job_quarantines() {
    let pool = JobPool::new(PoolConfig {
        nthreads: 2,
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    });
    // Task 0 fails 10 attempts; per-task budget is 1 retry, so every
    // incarnation dies with TaskFailed; one job-level retry, then
    // quarantine.
    let elims = flat_elims(3, 3);
    let a0 = TiledMatrix::random(3, 3, 8, 71);
    let mut spec = JobSpec::fresh(elims, a0);
    spec.plan = Some(FaultPlan::new(5).fail_task(0, 10));
    spec.max_retries = 1;
    spec.job_retries = 1;
    let id = pool.submit(spec).expect("submit");
    let out = pool.wait(id).expect("job");
    assert_eq!(out.state, JobState::Quarantined, "{:?}", out.error);
    assert_eq!(out.attempts, 2);
    // Two incarnations × two attempts each.
    assert!(out.stats.panics_caught >= 4, "{:?}", out.stats);
    let err = out.error.expect("error recorded");
    assert!(err.contains("task 0"), "{err}");
    pool.shutdown();
}

#[test]
fn cancel_running_and_queued_jobs() {
    let pool = JobPool::new(PoolConfig { nthreads: 1, max_active: 1, ..Default::default() });
    // Occupy the single active slot with a deterministic long-runner.
    let (_, _, busy) = spinner(81, 200_000);
    let id_busy = pool.submit(busy).expect("submit busy");
    // This one stays queued behind max_active = 1.
    let id_queued = pool
        .submit(JobSpec::fresh(flat_elims(3, 3), TiledMatrix::random(3, 3, 8, 82)))
        .expect("submit queued");

    assert!(pool.cancel(id_queued), "queued job accepts cancellation");
    let oq = pool.wait(id_queued).expect("queued");
    assert_eq!(oq.state, JobState::Cancelled);

    assert!(pool.cancel(id_busy), "running job accepts cancellation");
    let ob = pool.wait(id_busy).expect("busy");
    assert_eq!(ob.state, JobState::Cancelled, "{:?}", ob.error);

    assert!(!pool.cancel(id_busy), "terminal jobs reject cancellation");
    assert!(!pool.cancel(hqr_runtime::JobId(9999)), "unknown ids reject cancellation");
    pool.shutdown();
}

#[test]
fn admission_rejects_overbudget_sheds_lowest_qos_and_applies_backpressure() {
    let pool = JobPool::new(PoolConfig {
        nthreads: 1,
        max_active: 1,
        queue_cap: 1,
        mem_budget: 1 << 20,
        ..Default::default()
    });
    // A job whose working set alone exceeds the 1 MiB budget: typed reject.
    let big = JobSpec::fresh(flat_elims(8, 8), TiledMatrix::random(8, 8, 64, 90));
    match pool.submit(big) {
        Err(SubmitError::OverBudget { need, budget }) => {
            assert!(need > budget, "need {need} must exceed budget {budget}")
        }
        other => panic!("expected OverBudget, got {other:?}", other = other.map(|id| id.0)),
    }
    // Occupy the active slot so the queue fills.
    let (_, _, busy) = spinner(91, 200_000);
    let id_busy = pool.submit(busy).expect("submit busy");
    wait_until_running(&pool, id_busy);
    // Queue a batch job (fills the cap-1 queue).
    let id_batch = {
        let mut s = JobSpec::fresh(flat_elims(3, 3), TiledMatrix::random(3, 3, 8, 92));
        s.qos = QosClass::Batch;
        pool.submit(s).expect("submit batch")
    };
    // An interactive arrival sheds the queued batch job.
    let (elims_i, a_i) = (flat_elims(4, 3), TiledMatrix::random(4, 3, 8, 93));
    let id_inter = {
        let mut s = JobSpec::fresh(elims_i.clone(), a_i.clone());
        s.qos = QosClass::Interactive;
        pool.submit(s).expect("interactive submission sheds the batch job")
    };
    let shed = pool.wait(id_batch).expect("batch");
    assert_eq!(shed.state, JobState::Shed);
    // A second batch arrival outranks nothing in the full queue: backpressure.
    let mut again = JobSpec::fresh(flat_elims(3, 3), TiledMatrix::random(3, 3, 8, 94));
    again.qos = QosClass::Batch;
    match pool.submit(again) {
        Err(SubmitError::QueueFull { cap }) => assert_eq!(cap, 1),
        other => panic!("expected QueueFull, got {other:?}", other = other.map(|id| id.0)),
    }
    // Free the slot; the surviving interactive job must complete cleanly.
    assert!(pool.cancel(id_busy));
    let oi = pool.wait(id_inter).expect("interactive");
    assert_eq!(oi.state, JobState::Completed, "{:?}", oi.error);
    let r = oi.result.unwrap();
    assert_bitwise("interactive survivor", &r.a, &r.factors, &elims_i, &a_i, a_i.b());
    pool.shutdown();
}

/// Graceful drain: in-flight work is checkpointed at a quiescent point,
/// queued work keeps its pristine payload, and a fresh pool resubmitting
/// the persisted queue finishes every accepted job bitwise-identically to
/// its solo run — zero lost accepted jobs.
#[test]
fn drain_persists_queue_and_resumes_bitwise() {
    let path = tmp("drain_resume");
    let _ = std::fs::remove_file(&path);

    let pool = JobPool::new(PoolConfig { nthreads: 2, max_active: 1, ..Default::default() });
    // The active job: enough injected-retry stalling on task 0 that the
    // drain lands while it is provably incomplete, then clean execution.
    let elims_active = flat_elims(5, 4);
    let a_active = TiledMatrix::random(5, 4, 8, 201);
    let mut spec_active = JobSpec::fresh(elims_active.clone(), a_active.clone());
    spec_active.plan = Some(FaultPlan::new(3).fail_task(0, 50_000));
    spec_active.max_retries = 60_000;
    spec_active.tag = "active".into();
    let id_active = pool.submit(spec_active).expect("submit active");
    // The drain must land while this job is provably in flight.
    wait_until_running(&pool, id_active);
    // Two queued jobs that never start before the drain.
    let queued_cases = [
        (binary_elims(4, 4), TiledMatrix::random(4, 4, 8, 202)),
        (flat_elims(4, 3), TiledMatrix::random(4, 3, 8, 203)),
    ];
    let queued_ids: Vec<_> = queued_cases
        .iter()
        .map(|(elims, a)| {
            let mut s = JobSpec::fresh(elims.clone(), a.clone());
            s.tag = "queued".into();
            pool.submit(s).expect("submit queued")
        })
        .collect();

    let report = pool.drain(Duration::from_millis(5), Some(&path)).expect("drain");
    assert_eq!(report.persisted, 3, "one suspended + two queued jobs persisted");
    assert_eq!(report.suspended, vec![id_active], "the active job was suspended");
    let oa = pool.wait(id_active).expect("active");
    assert_eq!(oa.state, JobState::Suspended);
    for id in &queued_ids {
        // Queued jobs stay Queued in the drained pool's records; their
        // payloads live on in the persisted queue.
        let v = pool.status(*id).expect("known");
        assert_eq!(v.state, JobState::Queued);
    }
    assert!(
        pool.submit(JobSpec::fresh(flat_elims(2, 2), TiledMatrix::random(2, 2, 4, 1))).is_err(),
        "draining pool refuses new work"
    );
    pool.shutdown();

    // A restarted service resubmits the persisted queue.
    let entries = load_queue(&path).expect("queue decodes");
    assert_eq!(entries.len(), 3);
    let resumed = entries.iter().filter(|e| matches!(e.spec.input, JobInput::Resume(_))).count();
    assert_eq!(resumed, 1, "exactly the suspended job resumes from a checkpoint");

    let pool2 = JobPool::new(PoolConfig { nthreads: 2, ..Default::default() });
    let mut expected: Vec<(Vec<ElimOp>, TiledMatrix)> = vec![(elims_active, a_active)];
    expected.extend(queued_cases.iter().cloned());
    let ids2: Vec<_> =
        entries.into_iter().map(|e| pool2.submit(e.spec).expect("resubmit")).collect();
    // Entries are persisted pending-first? No: queued jobs first, then the
    // suspended one — match each outcome to its reference by tag order.
    let mut done = 0;
    for id in ids2 {
        let out = pool2.wait(id).expect("resubmitted");
        assert_eq!(out.state, JobState::Completed, "{:?}", out.error);
        let r = out.result.expect("payload");
        // Identify the matching reference by shape + input fingerprint.
        let matched = expected.iter().any(|(elims, a0)| {
            if a0.mt() != r.a.mt() || a0.nt() != r.a.nt() {
                return false;
            }
            let (ref_a, ref_f) = solo(elims, a0, a0.b());
            ref_a.to_dense().data() == r.a.to_dense().data() && r.factors.bitwise_eq(&ref_f)
        });
        assert!(matched, "resumed job must match one solo reference bitwise");
        done += 1;
    }
    assert_eq!(done, 3, "zero lost accepted jobs");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn spec_wire_roundtrip_preserves_policy_and_payload() {
    let elims = binary_elims(4, 3);
    let a0 = TiledMatrix::random(4, 3, 8, 301);
    let mut spec = JobSpec::fresh(elims.clone(), a0.clone());
    spec.ib = Some(4);
    spec.qos = QosClass::Interactive;
    spec.policy = SchedPolicy::CriticalPath;
    spec.integrity = IntegrityMode::Full;
    spec.max_retries = 3;
    spec.job_retries = 2;
    spec.deadline = Some(Duration::from_millis(1500));
    spec.tag = "tenant-42".into();

    let back = JobSpec::from_bytes(spec.to_bytes()).expect("roundtrip");
    assert_eq!(back.ib, Some(4));
    assert_eq!(back.qos, QosClass::Interactive);
    assert_eq!(back.policy, SchedPolicy::CriticalPath);
    assert_eq!(back.integrity, IntegrityMode::Full);
    assert_eq!(back.max_retries, 3);
    assert_eq!(back.job_retries, 2);
    assert_eq!(back.deadline, Some(Duration::from_millis(1500)));
    assert_eq!(back.tag, "tenant-42");
    match back.input {
        JobInput::Fresh { elims: e, a } => {
            assert_eq!(e, elims);
            assert_eq!(a.to_dense().data(), a0.to_dense().data());
        }
        JobInput::Resume(_) => panic!("fresh spec must decode as fresh"),
    }
}

#[test]
fn invalid_specs_are_rejected_with_typed_errors() {
    let pool = JobPool::new(PoolConfig { nthreads: 1, ..Default::default() });
    // Engine-only fault-plan features.
    let mut s = JobSpec::fresh(flat_elims(2, 2), TiledMatrix::random(2, 2, 4, 1));
    s.plan = Some(FaultPlan::new(1).poison_worker(0));
    assert!(matches!(pool.submit(s), Err(SubmitError::Invalid { .. })));
    let mut s = JobSpec::fresh(flat_elims(2, 2), TiledMatrix::random(2, 2, 4, 1));
    s.plan = Some(FaultPlan::new(1).lose_completion(0));
    assert!(matches!(pool.submit(s), Err(SubmitError::Invalid { .. })));
    // Bad inner block size.
    let mut s = JobSpec::fresh(flat_elims(2, 2), TiledMatrix::random(2, 2, 4, 1));
    s.ib = Some(5);
    assert!(matches!(pool.submit(s), Err(SubmitError::Invalid { .. })));
    // Out-of-range victim row → graph rejection.
    let s = JobSpec::fresh(vec![ElimOp::new(0, 9, 0, true)], TiledMatrix::random(2, 2, 4, 1));
    assert!(matches!(pool.submit(s), Err(SubmitError::Invalid { .. })));
    pool.shutdown();
}

/// The out-of-core admission fix: a matrix whose working set exceeds the
/// pool's memory budget was rejected `OverBudget` before; with a resident
/// budget configured the pool charges only the resident tier, admits the
/// job, pages it against a spill file, and still lands bitwise on the
/// solo answer.
#[test]
fn resident_budget_admits_previously_over_budget_job_bitwise() {
    let elims = flat_elims(4, 3);
    let a0 = TiledMatrix::random(4, 3, 8, 404);
    // Working set: 12 tiles + factor buffers at 512 B/tile — well over
    // 4 KiB, comfortably over a 2 KiB resident tier.
    let mem_budget = 4 * 1024;

    // Without a resident budget the submission bounces.
    let strict = JobPool::new(PoolConfig { nthreads: 2, mem_budget, ..Default::default() });
    match strict.submit(JobSpec::fresh(elims.clone(), a0.clone())) {
        Err(SubmitError::OverBudget { need, budget }) => {
            assert!(need > budget, "need {need} must exceed budget {budget}");
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    strict.shutdown();

    // With one, the same job is admitted and completes exactly.
    let paged = JobPool::new(PoolConfig {
        nthreads: 2,
        mem_budget,
        resident_budget: Some(2 * 1024),
        ..Default::default()
    });
    let id = paged.submit(JobSpec::fresh(elims.clone(), a0.clone())).expect("admitted");
    let out = paged.wait(id).expect("wait");
    assert_eq!(out.state, JobState::Completed, "error: {:?}", out.error);
    let r = out.result.expect("payload");
    assert_bitwise("paged pool job", &r.a, &r.factors, &elims, &a0, a0.b());
    paged.shutdown();
}
