//! Property-based tests of the shared scheduling-policy machinery
//! (`hqr_runtime::sched`) over randomly generated elimination lists: the
//! critical-path priority must be monotone along every DAG edge, and the
//! prioritized executor must stay bitwise-faithful to the serial run under
//! every policy.

use hqr_runtime::analysis::paths_to_exit;
use hqr_runtime::sched::{panel_first_key, priorities};
use hqr_runtime::{
    execute_serial, try_execute_traced, ElimOp, ExecOptions, SchedPolicy, TaskGraph,
};
use hqr_tile::TiledMatrix;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generate a random valid elimination list: per panel, repeatedly pick a
/// random alive non-top row as the victim and any alive row above it as
/// the killer (TT kernels, which are unconditionally valid).
fn random_elims(mt: usize, nt: usize, seed: u64) -> Vec<ElimOp> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let vpos = rng.gen_range(1..alive.len());
            let upos = rng.gen_range(0..vpos);
            out.push(ElimOp::new(k as u32, alive[vpos], alive[upos], false));
            alive.remove(vpos);
        }
        alive.shuffle(&mut rng);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Critical-path priorities are monotone along every DAG edge: a
    /// task's upward rank exceeds each successor's by at least its own
    /// weight, so (in the min-ordered key space) a task never outranks
    /// its successor-path bound — predecessors always sort strictly
    /// before their successors.
    #[test]
    fn critical_path_priority_is_monotone_along_every_edge(
        mt in 2usize..12, nt in 1usize..6, seed in any::<u64>(),
    ) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, 3, &elims);
        let up = paths_to_exit(&g);
        let keys = priorities(&g, SchedPolicy::CriticalPath);
        for (t, task) in g.tasks().iter().enumerate() {
            prop_assert_eq!(keys[t], u64::MAX - up[t]);
            for &s in g.successors(t) {
                let s = s as usize;
                prop_assert!(
                    up[t] >= up[s] + task.kind.weight(),
                    "rank({t})={} < rank({s})={} + w={}", up[t], up[s], task.kind.weight()
                );
                prop_assert!(keys[t] < keys[s], "edge {t}->{s} breaks key monotonicity");
            }
        }
        // The maximum upward rank is the DAG's critical-path weight.
        let cp = hqr_runtime::analysis::dag_stats(&g).critical_path_weight;
        prop_assert_eq!(up.iter().copied().max().unwrap_or(0), cp);
    }

    /// The panel-first key orders panels before anything else, and factor
    /// kernels before updates within a panel.
    #[test]
    fn panel_first_key_orders_panels_then_factors(
        mt in 2usize..10, nt in 1usize..5, seed in any::<u64>(),
    ) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, 3, &elims);
        for a in g.tasks() {
            for b in g.tasks() {
                let earlier_panel = a.k < b.k;
                let factor_before_update =
                    a.k == b.k && a.kind.is_factor() && !b.kind.is_factor();
                if earlier_panel || factor_before_update {
                    prop_assert!(panel_first_key(a) < panel_first_key(b));
                }
            }
        }
    }

    /// Every scheduling policy yields a factorization bitwise-identical to
    /// the serial run (the DAG fixes the arithmetic; the policy only
    /// reorders it), and the trace reports the policy that ran.
    #[test]
    fn every_policy_is_bitwise_faithful_on_random_trees(
        mt in 2usize..8, nt in 1usize..5, seed in any::<u64>(), threads in 2usize..5,
    ) {
        let b = 3usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let a0 = TiledMatrix::random(mt, nt, b, seed ^ 0x5C4ED);
        let mut a1 = a0.clone();
        let _ = execute_serial(&g, &mut a1);
        let reference = a1.to_dense();
        for policy in SchedPolicy::ALL {
            let mut a = a0.clone();
            let opts = ExecOptions { nthreads: threads, policy, ..Default::default() };
            let (_, _, tr) = try_execute_traced(&g, &mut a, &opts).expect("fault-free run");
            prop_assert_eq!(tr.policy, policy);
            prop_assert_eq!(tr.records.len(), g.tasks().len());
            let dense = a.to_dense();
            prop_assert_eq!(reference.data(), dense.data(), "{:?} diverged", policy);
        }
    }
}
