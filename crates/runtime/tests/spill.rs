//! Out-of-core execution tests: a run whose resident tier holds only a
//! fraction of the tile footprint must produce factors bitwise-identical
//! to a fully-resident run, across elimination trees, scheduling policies
//! and worker counts — and the two-tier store must stay safe under pin
//! pressure, refaults, and checkpoint/resume.

use std::path::PathBuf;

use hqr_runtime::{
    resume_from_checkpoint, try_execute_checkpointed, try_execute_traced, try_execute_with,
    CheckpointPolicy, CheckpointSpec, ElimOp, ExecOptions, InstantKind, SchedPolicy, TaskGraph,
};
use hqr_tile::TiledMatrix;

/// Flat-tree elimination list: row k kills every row below it.
fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            out.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    out
}

/// Binary-tree elimination list (TT kernels only).
fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let mut next = Vec::new();
            for pair in alive.chunks(2) {
                if let [a, b] = pair {
                    out.push(ElimOp::new(k as u32, *b, *a, false));
                }
                next.push(pair[0]);
            }
            alive = next;
        }
    }
    out
}

fn matrix_bytes(mt: usize, nt: usize, b: usize) -> u64 {
    (mt * nt * b * b * std::mem::size_of::<f64>()) as u64
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hqr_spill_{name}_{}", std::process::id()))
}

/// The tentpole acceptance gate: every (tree, policy, thread-count)
/// combination factors bitwise-identically whether the tile store is
/// fully resident or paged against a 25%-of-footprint resident tier.
#[test]
fn paged_runs_bitwise_match_resident_across_trees_policies_threads() {
    let cases: [(&str, Vec<ElimOp>, usize, usize); 2] =
        [("flat", flat_elims(6, 4), 6, 4), ("binary", binary_elims(6, 4), 6, 4)];
    let b = 8;
    for (tree, elims, mt, nt) in &cases {
        let graph = TaskGraph::build(*mt, *nt, b, elims);
        let a0 = TiledMatrix::random(*mt, *nt, b, 4242);
        let budget = matrix_bytes(*mt, *nt, b) / 4;
        for policy in SchedPolicy::ALL {
            for nthreads in [1usize, 2, 4] {
                let label = format!("{tree}/{policy}/{nthreads}t");
                let mut a_ref = a0.clone();
                let resident = ExecOptions { nthreads, policy, ..Default::default() };
                let (f_ref, _) = try_execute_with(&graph, &mut a_ref, &resident)
                    .unwrap_or_else(|e| panic!("{label}: resident run failed: {e}"));

                let mut a_paged = a0.clone();
                let paged = ExecOptions {
                    nthreads,
                    policy,
                    resident_budget: Some(budget),
                    ..Default::default()
                };
                let (f_paged, _, trace) = try_execute_traced(&graph, &mut a_paged, &paged)
                    .unwrap_or_else(|e| panic!("{label}: paged run failed: {e}"));

                assert!(
                    f_paged.bitwise_eq(&f_ref),
                    "{label}: paged factors differ from resident run"
                );
                let d_ref = a_ref.to_dense();
                let d_paged = a_paged.to_dense();
                assert!(
                    d_ref
                        .data()
                        .iter()
                        .zip(d_paged.data().iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{label}: paged tile store differs from resident run"
                );
                let spill = trace
                    .spill
                    .unwrap_or_else(|| panic!("{label}: paged run must report a spill summary"));
                assert_eq!(spill.budget, budget, "{label}: budget echoed in summary");
                assert!(
                    spill.evictions > 0,
                    "{label}: a 25% resident tier must evict (summary: {spill:?})"
                );
            }
        }
    }
}

/// A resident tier smaller than one task's pinned read/write set must
/// still complete: pinned slots are never evicted, the budget stretches
/// for the duration of the pin, and the factors stay exact. This is the
/// eviction-under-pin safety gate — with a one-tile budget every TSMQR
/// holds several pins at once.
#[test]
fn one_tile_budget_is_safe_under_multi_tile_pins() {
    let (mt, nt, b) = (5, 4, 8);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let a0 = TiledMatrix::random(mt, nt, b, 99);

    let mut a_ref = a0.clone();
    let (f_ref, _) = try_execute_with(&graph, &mut a_ref, &ExecOptions::with_threads(2)).unwrap();

    let tile = (b * b * std::mem::size_of::<f64>()) as u64;
    let mut a = a0.clone();
    let opts = ExecOptions { nthreads: 2, resident_budget: Some(tile), ..Default::default() };
    let (f, _, trace) = try_execute_traced(&graph, &mut a, &opts).expect("one-tile budget run");
    assert!(f.bitwise_eq(&f_ref), "one-tile-budget factors differ");
    let spill = trace.spill.expect("paged run reports spill summary");
    assert!(spill.writebacks > 0, "dirty evictions must write back: {spill:?}");
}

/// Refault-after-spill: with a tiny budget, tiles written back to disk
/// are re-read later in the same run. Every re-read passes the per-record
/// checksum (a corrupt record fails the run), demand faults show up both
/// in the summary and as trace instants, and the per-worker fault
/// counters agree with the store's totals.
#[test]
fn refaulted_tiles_verify_checksums_and_count_faults() {
    let (mt, nt, b) = (6, 4, 8);
    let elims = binary_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let mut a = TiledMatrix::random(mt, nt, b, 7);

    let opts = ExecOptions {
        nthreads: 2,
        resident_budget: Some(2 * (b * b * std::mem::size_of::<f64>()) as u64),
        spill_dir: Some(tmp("refault")),
        ..Default::default()
    };
    let (_, _, trace) = try_execute_traced(&graph, &mut a, &opts).expect("paged run");
    let spill = trace.spill.expect("spill summary");
    assert!(
        spill.demand_faults + spill.prefetch_hits > 0,
        "a two-tile budget must refault spilled tiles: {spill:?}"
    );
    let worker_faults: u64 = trace.counters.iter().map(|c| c.tile_faults).sum();
    let worker_hits: u64 = trace.counters.iter().map(|c| c.prefetch_hits).sum();
    assert_eq!(worker_faults, spill.demand_faults, "per-worker faults match summary");
    assert_eq!(worker_hits, spill.prefetch_hits, "per-worker prefetch hits match summary");
    // One TileFaulted instant marks each task attempt that faulted at
    // least once, so the instant count is positive but bounded by the
    // per-tile fault total.
    let faulted =
        trace.instants.iter().filter(|i| i.kind == InstantKind::TileFaulted).count() as u64;
    assert!(faulted > 0, "faulting run must emit TileFaulted instants");
    assert!(faulted <= spill.demand_faults, "instants are per-attempt, faults per-tile");
    let _ = std::fs::remove_dir_all(tmp("refault"));
}

/// Checkpoint/resume of a partially-spilled job: interrupting a paged run
/// at a panel boundary must persist a complete, non-hollow checkpoint
/// (spilled tiles faulted back in before the snapshot), and resuming —
/// paged again — must land bitwise on the uninterrupted answer.
#[test]
fn checkpoint_and_resume_of_partially_spilled_run_is_bitwise() {
    let (mt, nt, b) = (6, 4, 8);
    let elims = binary_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let a0 = TiledMatrix::random(mt, nt, b, 31);

    let mut a_ref = a0.clone();
    let (f_ref, _) = try_execute_with(&graph, &mut a_ref, &ExecOptions::with_threads(2)).unwrap();

    let path = tmp("ckpt_resume.ckpt");
    let budget = matrix_bytes(mt, nt, b) / 4;
    let opts = ExecOptions { nthreads: 2, resident_budget: Some(budget), ..Default::default() };
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 31,
        stop_after_panel: Some(1),
    };
    let mut a = a0.clone();
    let run = try_execute_checkpointed(&graph, &mut a, &opts, &spec, false).expect("paged segment");
    assert!(run.interrupted, "stopping after panel 1 must leave work");
    assert!(run.completed_tasks < graph.tasks().len());

    let resumed = resume_from_checkpoint(&path, &opts, false).expect("paged resume");
    assert!(
        resumed.factors.bitwise_eq(&f_ref),
        "resumed paged factors must match the uninterrupted resident run"
    );
    let d_ref = a_ref.to_dense();
    let d_res = resumed.a.to_dense();
    assert!(
        d_ref.data().iter().zip(d_res.data().iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
        "resumed paged tile store must match the uninterrupted resident run"
    );
    let _ = std::fs::remove_file(&path);
}

/// A budget at or above the allocated footprint never pages: the engine
/// must fall back to the plain resident store and report no spill
/// summary.
#[test]
fn generous_budget_stays_resident() {
    let (mt, nt, b) = (4, 3, 8);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let mut a = TiledMatrix::random(mt, nt, b, 1);
    let opts = ExecOptions { nthreads: 2, resident_budget: Some(u64::MAX), ..Default::default() };
    let (_, _, trace) = try_execute_traced(&graph, &mut a, &opts).expect("run");
    assert!(trace.spill.is_none(), "generous budget must not page");
}
