//! Crash-safe durability tests for the job pool: the write-ahead journal,
//! the durable result store, and checkpoint-backed suspension together
//! guarantee that every accepted job reaches a terminal state with
//! bitwise-identical results, no matter where the daemon dies.
//!
//! A SIGKILL cannot be delivered to an in-process pool, so the crash is
//! simulated the way a crash actually looks on disk: the state directory
//! is copied *while the pool is live* (every journal append is fsync'd, so
//! any point-in-time copy is a valid crash image, up to a torn tail the
//! replay tolerates), and a second pool recovers from the copy.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hqr_runtime::{
    execute_serial_ib, result_from_bytes, DurabilityConfig, ElimOp, FaultPlan, JobPool, JobSpec,
    JobState, Journal, JournalEvent, PoolConfig, TFactors, TaskGraph, CKPT_DIR, JOURNAL_FILE,
};
use hqr_tile::TiledMatrix;

/// Flat-tree elimination list: row k kills every row below it.
fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            out.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    out
}

/// The solo reference: factor `a0` serially with the same elimination list.
fn solo(elims: &[ElimOp], a0: &TiledMatrix) -> (TiledMatrix, TFactors) {
    let graph = TaskGraph::try_build(a0.mt(), a0.nt(), a0.b(), elims).expect("valid elims");
    let mut a = a0.clone();
    let f = execute_serial_ib(&graph, &mut a, a0.b());
    (a, f)
}

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hqr_dur_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_pool(dir: &Path, ckpt_interval: Duration) -> JobPool {
    let mut d = DurabilityConfig::at(dir);
    d.ckpt_interval = ckpt_interval;
    JobPool::new(PoolConfig { nthreads: 2, durability: Some(d), ..PoolConfig::default() })
}

/// Point-in-time copy of a live state directory — the crash image.
fn snapshot(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create snapshot dir");
    fn copy_tree(src: &Path, dst: &Path) {
        for entry in std::fs::read_dir(src).expect("read_dir") {
            let entry = entry.expect("dir entry");
            let to = dst.join(entry.file_name());
            if entry.file_type().expect("file_type").is_dir() {
                std::fs::create_dir_all(&to).expect("mkdir");
                copy_tree(&entry.path(), &to);
            } else {
                std::fs::copy(entry.path(), &to).expect("copy file");
            }
        }
    }
    copy_tree(src, dst);
}

/// Block until the job pool reports `id` in `state` (or panic after 60 s).
fn wait_for_state(pool: &JobPool, id: hqr_runtime::JobId, state: JobState) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let now = pool.jobs().into_iter().find(|j| j.id == id).map(|j| j.state);
        if now == Some(state) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {} never reached {state:?} (currently {now:?})",
            id.0
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A spec that stalls forever: one task's injected failures outlast any
/// practical test, but stay within the per-task retry budget so the job
/// keeps retrying (and stays preemptible) instead of quarantining.
fn stalling_spec(elims: Vec<ElimOp>, a: TiledMatrix, task: u32) -> JobSpec {
    let mut spec = JobSpec::fresh(elims, a);
    spec.plan = Some(FaultPlan::new(7).fail_task(task, 1_000_000));
    spec.max_retries = 1_000_001;
    spec
}

#[test]
fn completed_results_survive_restart_bitwise() {
    let dir = state_dir("completed");
    let elims = flat_elims(4, 3);
    let a0 = TiledMatrix::random(4, 3, 8, 11);
    let (ref_a, ref_f) = solo(&elims, &a0);

    let first_bytes;
    let id;
    {
        let pool = durable_pool(&dir, Duration::from_secs(3600));
        id = pool.submit(JobSpec::fresh(elims.clone(), a0.clone())).expect("submit");
        let out = pool.wait(id).expect("wait");
        assert_eq!(out.state, JobState::Completed);
        first_bytes = pool.result_bytes(id).expect("durable result after completion");
        pool.shutdown();
    }

    // A fresh pool on the same state directory: the journal replays the
    // job as already-terminal, and the stored result is still retrievable
    // and bitwise-identical.
    let pool = durable_pool(&dir, Duration::from_secs(3600));
    let report = pool.recover().expect("recover");
    assert_eq!(report.total, 1);
    assert_eq!(report.completed_retained, 1);
    assert_eq!(report.unrecoverable, 0);
    let view = pool.jobs().into_iter().find(|j| j.id == id).expect("job survives restart");
    assert_eq!(view.state, JobState::Completed);

    let bytes = pool.result_bytes(id).expect("result survives restart");
    assert_eq!(bytes, first_bytes, "stored container is byte-stable across restarts");
    let stored = result_from_bytes(bytes).expect("stored result decodes");
    assert_eq!(stored.id, id.0);
    assert_eq!(stored.result.a.to_dense().data(), ref_a.to_dense().data());
    assert!(stored.result.factors.bitwise_eq(&ref_f));
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_image_mid_run_drives_every_accepted_job_terminal() {
    let dir = state_dir("crash");
    let crash = state_dir("crash_image");
    let elims = flat_elims(4, 3);
    let a0 = TiledMatrix::random(4, 3, 8, 21);
    let b0 = TiledMatrix::random(4, 3, 8, 22);
    let (ref_a, ref_fa) = solo(&elims, &a0);
    let (ref_b, ref_fb) = solo(&elims, &b0);

    let (done_id, stuck_id, queued_id);
    {
        let pool = durable_pool(&dir, Duration::from_secs(3600));
        // Job 1 completes before the crash; job 2 is mid-factorization
        // (stalled on an injected fault) when the crash lands; job 3 is
        // still queued behind it.
        done_id = pool.submit(JobSpec::fresh(elims.clone(), a0.clone())).expect("submit done");
        assert_eq!(pool.wait(done_id).expect("wait").state, JobState::Completed);
        stuck_id = pool.submit(stalling_spec(elims.clone(), b0.clone(), 2)).expect("submit stuck");
        wait_for_state(&pool, stuck_id, JobState::Running);
        queued_id = pool.submit(JobSpec::fresh(elims.clone(), b0.clone())).expect("submit queued");

        // SIGKILL: copy the state directory out from under the live pool,
        // then abandon it (Drop halts workers without draining — nothing
        // it does can reach the crash image).
        snapshot(&dir, &crash);
    }

    let pool = durable_pool(&crash, Duration::from_secs(3600));
    let report = pool.recover().expect("recover");
    assert_eq!(report.total, 3);
    assert_eq!(report.completed_retained, 1);
    assert_eq!(report.unrecoverable, 0);

    // The completed job's result is still retrievable, bitwise.
    let stored = result_from_bytes(pool.result_bytes(done_id).expect("done result")).unwrap();
    assert_eq!(stored.result.a.to_dense().data(), ref_a.to_dense().data());
    assert!(stored.result.factors.bitwise_eq(&ref_fa));

    // The in-flight and queued jobs were re-accepted; fault plans are
    // engine policy (never persisted), so both now run clean to
    // completion — and bitwise match the uninterrupted reference.
    for id in [stuck_id, queued_id] {
        let out = pool.wait(id).expect("recovered job waitable");
        assert_eq!(out.state, JobState::Completed, "job {} error: {:?}", id.0, out.error);
        let stored = result_from_bytes(pool.result_bytes(id).expect("result stored")).unwrap();
        assert_eq!(stored.result.a.to_dense().data(), ref_b.to_dense().data());
        assert!(stored.result.factors.bitwise_eq(&ref_fb));
    }
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

#[test]
fn suspended_job_resumes_from_checkpoint_after_crash() {
    let dir = state_dir("park");
    let crash = state_dir("park_image");
    let elims = flat_elims(5, 4);
    let a0 = TiledMatrix::random(5, 4, 8, 31);
    let (ref_a, ref_f) = solo(&elims, &a0);

    let id;
    {
        let pool = durable_pool(&dir, Duration::from_secs(3600));
        // Stall late in the DAG so the suspension checkpoint has real
        // progress behind it.
        let task = flat_elims(5, 4).len() as u32; // a task past the first panel
        id = pool.submit(stalling_spec(elims.clone(), a0.clone(), task)).expect("submit");
        wait_for_state(&pool, id, JobState::Running);
        assert!(pool.suspend(id), "suspend accepted for a running job");
        wait_for_state(&pool, id, JobState::Suspended);
        // The checkpoint file is on disk before the state flips.
        assert!(dir.join(CKPT_DIR).join(format!("job-{}.ckpt", id.0)).exists());
        snapshot(&dir, &crash);
    }

    let pool = durable_pool(&crash, Duration::from_secs(3600));
    let report = pool.recover().expect("recover");
    assert_eq!(report.total, 1);
    assert_eq!(
        report.resumed_from_checkpoint, 1,
        "a suspended job restarts from its checkpoint, not from scratch"
    );
    let out = pool.wait(id).expect("wait");
    assert_eq!(out.state, JobState::Completed, "error: {:?}", out.error);
    let stored = result_from_bytes(pool.result_bytes(id).expect("result")).unwrap();
    assert_eq!(
        stored.result.a.to_dense().data(),
        ref_a.to_dense().data(),
        "resume from checkpoint is bitwise-identical to the uninterrupted run"
    );
    assert!(stored.result.factors.bitwise_eq(&ref_f));
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

#[test]
fn park_and_resume_job_round_trips_bitwise() {
    let dir = state_dir("resume_verb");
    let elims = flat_elims(4, 3);
    let a0 = TiledMatrix::random(4, 3, 8, 41);
    let (ref_a, ref_f) = solo(&elims, &a0);

    let pool = durable_pool(&dir, Duration::from_secs(3600));
    let id = pool.submit(stalling_spec(elims.clone(), a0.clone(), 3)).expect("submit");
    wait_for_state(&pool, id, JobState::Running);
    assert!(pool.suspend(id));
    wait_for_state(&pool, id, JobState::Suspended);
    // Parked jobs stay parked: nothing resumes them implicitly.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(pool.jobs().into_iter().find(|j| j.id == id).unwrap().state, JobState::Suspended);
    assert!(!pool.resume_job(hqr_runtime::JobId(id.0 + 7)), "unknown id is refused");
    assert!(pool.resume_job(id), "parked job resumes");
    let out = pool.wait(id).expect("wait");
    assert_eq!(out.state, JobState::Completed, "error: {:?}", out.error);
    let r = out.result.expect("first waiter claims the result");
    assert_eq!(r.a.to_dense().data(), ref_a.to_dense().data());
    assert!(r.factors.bitwise_eq(&ref_f));
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dedup_key_is_idempotent_and_survives_recovery() {
    let dir = state_dir("dedup");
    let elims = flat_elims(3, 2);
    let a0 = TiledMatrix::random(3, 2, 8, 51);
    let keyed = |key: &str| {
        let mut s = JobSpec::fresh(elims.clone(), a0.clone());
        s.dedup_key = Some(key.into());
        s
    };

    let id1;
    {
        let pool = durable_pool(&dir, Duration::from_secs(3600));
        let (a, deduped) = pool.submit_dedup(keyed("batch-7")).expect("submit");
        assert!(!deduped);
        id1 = a;
        let (b, deduped) = pool.submit_dedup(keyed("batch-7")).expect("resubmit");
        assert!(deduped, "same key is deduplicated");
        assert_eq!(b, id1);
        let (c, deduped) = pool.submit_dedup(keyed("batch-8")).expect("other key");
        assert!(!deduped);
        assert_ne!(c, id1);
        // Terminal jobs keep their registration: a late duplicate of a
        // finished submission still maps to the original id.
        pool.wait(id1).expect("wait");
        let (d, deduped) = pool.submit_dedup(keyed("batch-7")).expect("late resubmit");
        assert!(deduped);
        assert_eq!(d, id1);
        pool.wait(c).expect("wait other");
        pool.shutdown();
    }

    // Recovery rebuilds the dedup map from the journal.
    let pool = durable_pool(&dir, Duration::from_secs(3600));
    pool.recover().expect("recover");
    let (e, deduped) = pool.submit_dedup(keyed("batch-7")).expect("post-restart resubmit");
    assert!(deduped, "dedup registration survives the restart");
    assert_eq!(e, id1);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_checkpoints_fire_without_perturbing_results() {
    let dir = state_dir("periodic");
    // Big enough that several supervisor ticks elapse mid-run.
    let elims = flat_elims(10, 6);
    let a0 = TiledMatrix::random(10, 6, 16, 61);
    let (ref_a, ref_f) = solo(&elims, &a0);

    let pool = durable_pool(&dir, Duration::from_millis(1));
    let id = pool.submit(JobSpec::fresh(elims.clone(), a0.clone())).expect("submit");
    let out = pool.wait(id).expect("wait");
    assert_eq!(out.state, JobState::Completed, "error: {:?}", out.error);
    let stored = result_from_bytes(pool.result_bytes(id).expect("result")).unwrap();
    assert_eq!(
        stored.result.a.to_dense().data(),
        ref_a.to_dense().data(),
        "periodic suspend/resume cycles are bitwise-invisible"
    );
    assert!(stored.result.factors.bitwise_eq(&ref_f));

    // The journal recorded at least one periodic checkpoint cycle, and the
    // job's checkpoint file was cleaned up at completion.
    let events = Journal::read(&dir.join(JOURNAL_FILE)).expect("journal readable");
    let ckpts = events
        .iter()
        .filter(|e| matches!(e, JournalEvent::Checkpointed { id: jid, .. } if *jid == id.0))
        .count();
    assert!(ckpts >= 1, "expected a periodic checkpoint in the journal, got {events:?}");
    assert!(
        !dir.join(CKPT_DIR).join(format!("job-{}.ckpt", id.0)).exists(),
        "completion removes the suspension checkpoint"
    );
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// 100-job churn against a small rotation threshold: the journal must
/// stay bounded (the unbounded-growth bug this sweep fixes), terminal
/// noise compacts away, and the rotated journal still replays.
#[test]
fn journal_rotation_keeps_hundred_job_churn_bounded() {
    let dir = state_dir("rotate_churn");
    let rotate_at = 16 * 1024_u64;
    let mut d = DurabilityConfig::at(&dir);
    d.ckpt_interval = Duration::from_secs(3600);
    d.journal_rotate_bytes = rotate_at;
    d.result_cap = 4;
    let pool =
        JobPool::new(PoolConfig { nthreads: 2, durability: Some(d), ..PoolConfig::default() });
    let elims = flat_elims(2, 2);
    let mut last = None;
    for i in 0..100u64 {
        let a = TiledMatrix::random(2, 2, 4, 100 + i);
        let id = pool.submit(JobSpec::fresh(elims.clone(), a)).expect("submit");
        assert_eq!(pool.wait(id).expect("wait").state, JobState::Completed);
        last = Some(id);
    }
    pool.shutdown();

    // Bounded: the file never strays far past the threshold (one append
    // can overshoot before the rotation that follows it).
    let len = std::fs::metadata(dir.join(JOURNAL_FILE)).expect("journal exists").len();
    assert!(
        len < 2 * rotate_at,
        "journal must stay near the {rotate_at}-byte threshold after 100 jobs, got {len}"
    );
    assert!(
        !dir.join(JOURNAL_FILE).with_extension("journal.rotating").exists(),
        "no rotation marker may survive a clean shutdown"
    );

    // The compacted journal still replays: the retained results are
    // retrievable and everything recovered is terminal.
    let pool = durable_pool(&dir, Duration::from_secs(3600));
    pool.recover().expect("rotated journal replays");
    for j in pool.jobs() {
        assert!(j.state.is_terminal(), "job {} recovered as {}", j.id.0, j.state);
    }
    let id = last.expect("ran jobs");
    assert!(pool.result_bytes(id).is_some(), "newest result survives rotation + retention");
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash between writing the rotate-in-progress marker and finishing
/// the compaction leaves the marker on disk next to a valid journal
/// (both the pre-rotation file and the atomically-renamed compacted file
/// are valid crash states). Reopening must clear the marker and drive
/// every accepted job to a terminal state.
#[test]
fn crash_across_rotation_boundary_recovers_every_job() {
    let dir = state_dir("rotate_crash");
    let crash = state_dir("rotate_crash_image");
    let elims = flat_elims(4, 3);
    let a0 = TiledMatrix::random(4, 3, 8, 71);
    let (ref_a, ref_f) = solo(&elims, &a0);

    let (done_id, stuck_id);
    {
        let mut d = DurabilityConfig::at(&dir);
        d.ckpt_interval = Duration::from_secs(3600);
        d.journal_rotate_bytes = 8 * 1024;
        let pool =
            JobPool::new(PoolConfig { nthreads: 2, durability: Some(d), ..PoolConfig::default() });
        done_id = pool.submit(JobSpec::fresh(elims.clone(), a0.clone())).expect("submit");
        assert_eq!(pool.wait(done_id).expect("wait").state, JobState::Completed);
        stuck_id = pool.submit(stalling_spec(elims.clone(), a0.clone(), 2)).expect("submit");
        wait_for_state(&pool, stuck_id, JobState::Running);
        snapshot(&dir, &crash);
    }
    // Simulate dying right after the marker hit the disk: the crash image
    // carries the marker, and the journal it guards is the pre-compaction
    // one.
    let marker = {
        let mut name = JOURNAL_FILE.to_string();
        name.push_str(".rotating");
        crash.join(name)
    };
    std::fs::write(&marker, b"").expect("plant rotate marker");

    let mut d = DurabilityConfig::at(&crash);
    d.ckpt_interval = Duration::from_secs(3600);
    d.journal_rotate_bytes = 8 * 1024;
    let pool =
        JobPool::new(PoolConfig { nthreads: 2, durability: Some(d), ..PoolConfig::default() });
    assert!(!marker.exists(), "open must clear a stale rotation marker");
    let report = pool.recover().expect("recover across rotation boundary");
    assert_eq!(report.unrecoverable, 0);
    let stored = result_from_bytes(pool.result_bytes(done_id).expect("done result")).unwrap();
    assert_eq!(stored.result.a.to_dense().data(), ref_a.to_dense().data());
    assert!(stored.result.factors.bitwise_eq(&ref_f));
    let out = pool.wait(stuck_id).expect("recovered job waitable");
    assert_eq!(out.state, JobState::Completed, "error: {:?}", out.error);
    for j in pool.jobs() {
        assert!(
            j.state.is_terminal(),
            "every accepted job must end terminal, job {} is {}",
            j.id.0,
            j.state
        );
    }
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

/// Byte- and age-based result retention ride along with the count cap:
/// a byte ceiling prunes oldest results first and journals each prune.
#[test]
fn result_byte_retention_prunes_and_journals() {
    let dir = state_dir("result_bytes");
    let elims = flat_elims(2, 2);
    // One stored result for a 2x2 b=4 job is ~1.3 KiB; a 4 KiB ceiling
    // keeps only the newest three results of six.
    let mut d = DurabilityConfig::at(&dir);
    d.ckpt_interval = Duration::from_secs(3600);
    d.result_max_bytes = 4 * 1024;
    let pool =
        JobPool::new(PoolConfig { nthreads: 2, durability: Some(d), ..PoolConfig::default() });
    let mut ids = Vec::new();
    for i in 0..6u64 {
        let a = TiledMatrix::random(2, 2, 4, 200 + i);
        let id = pool.submit(JobSpec::fresh(elims.clone(), a)).expect("submit");
        assert_eq!(pool.wait(id).expect("wait").state, JobState::Completed);
        ids.push(id);
    }
    let newest = *ids.last().unwrap();
    assert!(pool.result_bytes(newest).is_some(), "newest result must be retained");
    assert!(pool.result_bytes(ids[0]).is_none(), "oldest result must fall to the byte ceiling");
    let events = Journal::read(&dir.join(JOURNAL_FILE)).expect("journal");
    assert!(
        events.iter().any(|e| matches!(e, JournalEvent::ResultPruned { .. })),
        "byte-ceiling prunes must be journaled: {events:?}"
    );
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
