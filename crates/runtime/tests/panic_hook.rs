//! Regression test: the engine's panic-hook suppression is scoped to its
//! own worker threads. A process-wide counter (the old implementation)
//! would swallow panics from *unrelated* threads — e.g. concurrent tests —
//! for as long as any fault-tolerant run was in flight.
//!
//! Kept as its own integration-test binary so the process-wide panic hook
//! installed here cannot interact with any other test.

use std::panic::catch_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use hqr_runtime::{ElimOp, ExecError, ExecOptions, FaultPlan, TaskGraph};

static HOOK_CALLS: AtomicUsize = AtomicUsize::new(0);

fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    v
}

#[test]
fn non_engine_panic_still_reaches_hook_during_recovery_run() {
    // Install a counting hook BEFORE the engine ever engages its quiet
    // wrapper; the wrapper (installed once, by the first worker) captures
    // whatever hook is current as `prev`, so every non-suppressed panic
    // lands here. The hook deliberately prints nothing.
    std::panic::set_hook(Box::new(|_info| {
        HOOK_CALLS.fetch_add(1, Ordering::SeqCst);
    }));

    let (mt, nt, b) = (5, 2, 2);
    let graph = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let last = graph.tasks().len() as u32 - 1;
    // The plan injects panics on worker threads (they must stay silent)
    // and drops one completion so the run reliably stays in flight until
    // the watchdog fires — a guaranteed window for the probe below.
    let opts = ExecOptions {
        nthreads: 2,
        max_retries: 2,
        plan: Some(FaultPlan::new(3).fail_task(0, 1).lose_completion(last)),
        watchdog: Some(Duration::from_millis(500)),
        ..Default::default()
    };

    let runner = std::thread::spawn(move || {
        let mut a = hqr_tile::TiledMatrix::random(mt, nt, b, 41);
        hqr_runtime::try_execute_with(&graph, &mut a, &opts).map(|(_, stats)| stats)
    });

    // Probe: panic on a thread that is NOT an engine worker while the run
    // is guaranteed in flight. With thread-scoped suppression the hook
    // fires; with the old global counter it was swallowed.
    std::thread::sleep(Duration::from_millis(100));
    let probe = std::thread::spawn(|| {
        let _ = catch_unwind(|| panic!("unrelated panic on a non-engine thread"));
    });
    probe.join().unwrap();
    assert_eq!(
        HOOK_CALLS.load(Ordering::SeqCst),
        1,
        "exactly the non-engine panic reaches the hook; injected worker panics stay quiet"
    );

    // The run itself ends in the watchdog's stall report (the dropped
    // completion means it can never finish), with the injected fault
    // having been caught and retried silently.
    match runner.join().unwrap() {
        Err(ExecError::Stalled(report)) => {
            assert!(report.remaining > 0);
        }
        other => panic!("expected a stall, got {other:?}"),
    }
    assert_eq!(HOOK_CALLS.load(Ordering::SeqCst), 1, "no late hook calls from engine threads");
}
