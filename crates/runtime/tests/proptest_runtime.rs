//! Property-based tests of the task-DAG runtime over *randomly generated*
//! valid elimination lists — not just the structured trees the library
//! ships, but arbitrary members of the combinatorial space of §III.

use hqr_runtime::{
    execute_parallel, execute_serial, try_execute_with, ElimOp, ExecOptions, FaultPlan, TaskGraph,
};
use hqr_tile::TiledMatrix;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generate a random valid elimination list: per panel, repeatedly pick a
/// random alive non-top row as the victim and any alive row above it as
/// the killer (TT kernels, which are unconditionally valid).
fn random_elims(mt: usize, nt: usize, seed: u64) -> Vec<ElimOp> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let vpos = rng.gen_range(1..alive.len());
            let upos = rng.gen_range(0..vpos);
            out.push(ElimOp::new(k as u32, alive[vpos], alive[upos], false));
            alive.remove(vpos);
        }
        alive.shuffle(&mut rng); // survivor identity is irrelevant beyond validity
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random lists build acyclic DAGs whose program order is topological
    /// and whose weight matches the §II invariant.
    #[test]
    fn random_lists_build_valid_dags(mt in 1usize..12, nt in 1usize..6, seed in any::<u64>()) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, 3, &elims);
        let mut indeg = vec![0u32; g.tasks().len()];
        for t in 0..g.tasks().len() {
            for &s in g.successors(t) {
                prop_assert!((s as usize) > t);
                indeg[s as usize] += 1;
            }
        }
        prop_assert_eq!(&indeg[..], g.in_degrees());
        // Weight invariant (m >= n case).
        if mt >= nt {
            let expect: u64 = 6 * (mt * nt * nt) as u64 - 2 * (nt * nt * nt) as u64;
            let total: u64 = g.tasks().iter().map(|t| t.kind.weight()).sum();
            prop_assert_eq!(total, expect);
        }
    }

    /// For any random tree, parallel execution is bitwise equal to serial.
    #[test]
    fn parallel_equals_serial_on_random_trees(
        mt in 2usize..9, nt in 1usize..5, b in 1usize..5,
        seed in any::<u64>(), threads in 2usize..5,
    ) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let mut a1 = TiledMatrix::random(mt, nt, b, seed ^ 0xABCD);
        let mut a2 = a1.clone();
        let _ = execute_serial(&g, &mut a1);
        let _ = execute_parallel(&g, &mut a2, threads);
        let (d1, d2) = (a1.to_dense(), a2.to_dense());
        prop_assert_eq!(d1.data(), d2.data());
    }

    /// For any seeded fault plan whose per-task failure counts stay within
    /// the retry budget, the recovered factorization is bitwise-identical
    /// to the fault-free one — on random trees, random faulted task sets
    /// and random thread counts.
    #[test]
    fn any_recoverable_fault_plan_is_bitwise_transparent(
        mt in 2usize..8, nt in 1usize..5,
        seed in any::<u64>(), faults in 1usize..5,
        per_task in 1u32..3, threads in 2usize..5,
    ) {
        let b = 3usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let n = g.tasks().len();
        let mut a1 = TiledMatrix::random(mt, nt, b, seed ^ 0x5EED);
        let mut a2 = a1.clone();
        let _ = execute_serial(&g, &mut a1);
        let plan = FaultPlan::new(seed).fail_random_tasks(n, faults, per_task);
        let planned = plan.failing_tasks().count();
        let opts = ExecOptions {
            nthreads: threads,
            max_retries: per_task,
            plan: Some(plan),
            ..Default::default()
        };
        let (_, stats) = try_execute_with(&g, &mut a2, &opts).expect("faults within budget");
        let (d1, d2) = (a1.to_dense(), a2.to_dense());
        prop_assert_eq!(d1.data(), d2.data());
        prop_assert_eq!(stats.tasks_recovered as usize, planned);
        prop_assert!(stats.panics_caught as usize >= planned);
    }

    /// Any random tree produces the same R (up to diagonal signs) as the
    /// flat tree: the factorization is tree-independent.
    #[test]
    fn r_independent_of_random_tree(mt in 2usize..7, nt in 1usize..4, seed in any::<u64>()) {
        let b = 4usize;
        let flat: Vec<ElimOp> = (0..mt.min(nt))
            .flat_map(|k| ((k + 1)..mt).map(move |i| ElimOp::new(k as u32, i as u32, k as u32, true)))
            .collect();
        let rand_list = random_elims(mt, nt, seed);
        let r_of = |ops: &[ElimOp]| {
            let g = TaskGraph::build(mt, nt, b, ops);
            let mut a = TiledMatrix::random(mt, nt, b, 4242);
            let _ = execute_serial(&g, &mut a);
            a.to_dense().upper_triangle()
        };
        let r1 = r_of(&flat);
        let r2 = r_of(&rand_list);
        for d in 0..(nt * b).min(mt * b) {
            let sign = if r1.get(d, d) * r2.get(d, d) >= 0.0 { 1.0 } else { -1.0 };
            for j in d..nt * b {
                prop_assert!(
                    (r1.get(d, j) - sign * r2.get(d, j)).abs() < 1e-9,
                    "R mismatch at ({}, {})", d, j
                );
            }
        }
    }
}
