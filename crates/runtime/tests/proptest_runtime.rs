//! Property-based tests of the task-DAG runtime over *randomly generated*
//! valid elimination lists — not just the structured trees the library
//! ships, but arbitrary members of the combinatorial space of §III.

use hqr_runtime::{
    chrome_trace_from_exec, execute_parallel, execute_serial, realized_critical_path,
    resume_from_checkpoint, try_execute_checkpointed, try_execute_traced, try_execute_with,
    validate_chrome_trace, CheckpointPolicy, CheckpointSpec, ElimOp, ExecOptions, FaultPlan,
    IntegrityMode, TaskGraph,
};
use hqr_tile::TiledMatrix;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generate a random valid elimination list: per panel, repeatedly pick a
/// random alive non-top row as the victim and any alive row above it as
/// the killer (TT kernels, which are unconditionally valid).
fn random_elims(mt: usize, nt: usize, seed: u64) -> Vec<ElimOp> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let vpos = rng.gen_range(1..alive.len());
            let upos = rng.gen_range(0..vpos);
            out.push(ElimOp::new(k as u32, alive[vpos], alive[upos], false));
            alive.remove(vpos);
        }
        alive.shuffle(&mut rng); // survivor identity is irrelevant beyond validity
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random lists build acyclic DAGs whose program order is topological
    /// and whose weight matches the §II invariant.
    #[test]
    fn random_lists_build_valid_dags(mt in 1usize..12, nt in 1usize..6, seed in any::<u64>()) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, 3, &elims);
        let mut indeg = vec![0u32; g.tasks().len()];
        for t in 0..g.tasks().len() {
            for &s in g.successors(t) {
                prop_assert!((s as usize) > t);
                indeg[s as usize] += 1;
            }
        }
        prop_assert_eq!(&indeg[..], g.in_degrees());
        // Weight invariant (m >= n case).
        if mt >= nt {
            let expect: u64 = 6 * (mt * nt * nt) as u64 - 2 * (nt * nt * nt) as u64;
            let total: u64 = g.tasks().iter().map(|t| t.kind.weight()).sum();
            prop_assert_eq!(total, expect);
        }
    }

    /// For any random tree, parallel execution is bitwise equal to serial.
    #[test]
    fn parallel_equals_serial_on_random_trees(
        mt in 2usize..9, nt in 1usize..5, b in 1usize..5,
        seed in any::<u64>(), threads in 2usize..5,
    ) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let mut a1 = TiledMatrix::random(mt, nt, b, seed ^ 0xABCD);
        let mut a2 = a1.clone();
        let _ = execute_serial(&g, &mut a1);
        let _ = execute_parallel(&g, &mut a2, threads);
        let (d1, d2) = (a1.to_dense(), a2.to_dense());
        prop_assert_eq!(d1.data(), d2.data());
    }

    /// For any seeded fault plan whose per-task failure counts stay within
    /// the retry budget, the recovered factorization is bitwise-identical
    /// to the fault-free one — on random trees, random faulted task sets
    /// and random thread counts, through both the plain and the traced
    /// recovery paths.
    #[test]
    fn any_recoverable_fault_plan_is_bitwise_transparent(
        mt in 2usize..8, nt in 1usize..5,
        seed in any::<u64>(), faults in 1usize..5,
        per_task in 1u32..3, threads in 2usize..5,
    ) {
        let b = 3usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let n = g.tasks().len();
        let a0 = TiledMatrix::random(mt, nt, b, seed ^ 0x5EED);
        let (mut a1, mut a2, mut a3) = (a0.clone(), a0.clone(), a0);
        let f1 = execute_serial(&g, &mut a1);
        let plan = FaultPlan::new(seed).fail_random_tasks(n, faults, per_task);
        let planned = plan.failing_tasks().count();
        let opts = ExecOptions {
            nthreads: threads,
            max_retries: per_task,
            plan: Some(plan),
            ..Default::default()
        };
        let (f2, stats) = try_execute_with(&g, &mut a2, &opts).expect("faults within budget");
        let (d1, d2) = (a1.to_dense(), a2.to_dense());
        prop_assert_eq!(d1.data(), d2.data());
        prop_assert!(f2.bitwise_eq(&f1), "recovered factors differ from fault-free factors");
        prop_assert_eq!(stats.tasks_recovered as usize, planned);
        prop_assert!(stats.panics_caught as usize >= planned);
        // Tracing must not change recovery semantics: same plan, traced
        // path, same bits.
        let (f3, _, tr) = try_execute_traced(&g, &mut a3, &opts).expect("faults within budget");
        prop_assert!(f3.bitwise_eq(&f1), "traced recovery changed the factors");
        let d3 = a3.to_dense();
        prop_assert_eq!(d1.data(), d3.data());
        prop_assert!(tr.records.len() == n);
    }

    /// Kill-and-resume transparency on random trees: checkpoint at every
    /// panel, stop after a random panel, resume from the file — the
    /// resumed run's factors and tile store are bitwise-identical to an
    /// uninterrupted serial run.
    #[test]
    fn checkpoint_resume_bitwise_on_random_trees(
        mt in 2usize..8, nt in 2usize..5,
        seed in any::<u64>(), threads in 1usize..4,
    ) {
        let b = 3usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let a0 = TiledMatrix::random(mt, nt, b, seed ^ 0xC0DE);
        let mut a1 = a0.clone();
        let f1 = execute_serial(&g, &mut a1);

        let panels = mt.min(nt);
        let stop = (seed % (panels as u64 - 1)) as usize; // always before the last panel
        let path = std::env::temp_dir()
            .join(format!("hqr_prop_ckpt_{}_{seed:016x}.ckpt", std::process::id()));
        let mut a2 = a0.clone();
        let spec = CheckpointSpec {
            path: &path,
            elims: &elims,
            policy: CheckpointPolicy::default(),
            input_seed: seed,
            stop_after_panel: Some(stop),
        };
        let opts = ExecOptions::with_threads(threads);
        let run = try_execute_checkpointed(&g, &mut a2, &opts, &spec, false)
            .expect("checkpointed segment");
        let resumed = resume_from_checkpoint(&path, &opts, false).expect("resume");
        let _ = std::fs::remove_file(&path);
        prop_assert!(run.interrupted, "stop before the last panel must leave work");
        prop_assert_eq!(resumed.resumed_from, run.completed_tasks);
        prop_assert!(resumed.factors.bitwise_eq(&f1), "resume diverged from the serial run");
        let (d1, d2) = (a1.to_dense(), resumed.a.to_dense());
        prop_assert!(
            d1.data().iter().zip(d2.data()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "resumed tile store diverged"
        );
    }

    /// Trace invariants on random trees, thread counts and fault plans:
    /// every completed task gets exactly one span and their union covers
    /// the whole graph; per-worker spans never overlap; every span fits
    /// inside the wall clock; scheduler counters account for every task
    /// acquisition; the Chrome export is schema-valid; and the realized
    /// critical path is bounded by [longest single task, wall].
    #[test]
    fn trace_invariants_on_random_trees(
        mt in 2usize..8, nt in 1usize..5,
        seed in any::<u64>(), threads in 2usize..5, faults in 0usize..3,
    ) {
        let b = 3usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let n = g.tasks().len();
        let mut a = TiledMatrix::random(mt, nt, b, seed ^ 0x7ACE);
        let opts = ExecOptions {
            nthreads: threads,
            max_retries: 1,
            plan: (faults > 0).then(|| FaultPlan::new(seed).fail_random_tasks(n, faults, 1)),
            ..Default::default()
        };
        let (_, _, tr) = try_execute_traced(&g, &mut a, &opts).expect("faults within budget");
        prop_assert_eq!(tr.nthreads, threads);
        prop_assert_eq!(tr.records.len(), n, "one span per completed task");
        let mut seen = vec![false; n];
        for r in &tr.records {
            prop_assert!(!seen[r.task as usize], "duplicate span for task {}", r.task);
            seen[r.task as usize] = true;
            prop_assert!((r.worker as usize) < threads);
            prop_assert!(r.start <= r.end);
            prop_assert!(r.end <= tr.wall + 1e-9);
        }
        prop_assert!(seen.iter().all(|&x| x), "span union covers the graph");
        // One thread runs one task at a time: per-worker spans are disjoint.
        let mut by_worker = tr.records.clone();
        by_worker.sort_by(|x, y| x.worker.cmp(&y.worker).then(x.start.total_cmp(&y.start)));
        for w in by_worker.windows(2) {
            if w[0].worker == w[1].worker {
                prop_assert!(w[1].start >= w[0].end, "worker {} overlaps", w[0].worker);
            }
        }
        // Every execution attempt was acquired from exactly one source;
        // inline retries re-run without re-acquiring, requeues re-acquire.
        let acquired: u64 =
            tr.counters.iter().map(|c| c.local_pops + c.injector_pops + c.steals).sum();
        let requeues: u64 = tr.counters.iter().map(|c| c.requeues).sum();
        prop_assert_eq!(acquired, n as u64 + requeues);
        let json = chrome_trace_from_exec(&tr, g.tasks());
        let events = validate_chrome_trace(&json).expect("schema-valid Chrome trace");
        prop_assert!(events >= n);
        let mut span = vec![None; n];
        for r in &tr.records {
            span[r.task as usize] = Some((r.start, r.end));
        }
        let cp = realized_critical_path(&g, |t| span[t as usize], |_, _| 0.0);
        let longest = tr.records.iter().map(|r| r.end - r.start).fold(0.0f64, f64::max);
        prop_assert!(cp.length >= longest - 1e-12, "CP dominates the longest task");
        prop_assert!(cp.length <= tr.wall + 1e-9, "CP within the wall clock");
    }

    /// Zero false positives: a fully guarded run with no injected
    /// corruption over any random tree and thread count detects nothing
    /// and matches the serial bits exactly.
    #[test]
    fn full_integrity_never_false_positives(
        mt in 2usize..8, nt in 1usize..5, b in 1usize..5,
        seed in any::<u64>(), threads in 2usize..5,
    ) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let mut a1 = TiledMatrix::random(mt, nt, b, seed ^ 0x9AD);
        let mut a2 = a1.clone();
        let f1 = execute_serial(&g, &mut a1);
        let opts = ExecOptions {
            nthreads: threads,
            max_retries: 1,
            integrity: IntegrityMode::Full,
            ..Default::default()
        };
        let (f2, stats) = try_execute_with(&g, &mut a2, &opts).expect("clean run");
        prop_assert_eq!(stats.sdc_injected, 0);
        prop_assert_eq!(stats.sdc_detected, 0, "false positive: {:?}", stats);
        let (d1, d2) = (a1.to_dense(), a2.to_dense());
        prop_assert_eq!(d1.data(), d2.data());
        prop_assert!(f2.bitwise_eq(&f1), "guarded clean run changed the factors");
    }

    /// 100% detection: any seeded set of single-bit-flip corruptions over
    /// any random tree is detected and recomputed under full integrity,
    /// and the result is bitwise-identical to the clean serial run — via
    /// both the plain and the traced execution paths.
    #[test]
    fn injected_bitflips_always_detected_under_full_integrity(
        mt in 2usize..8, nt in 1usize..5,
        seed in any::<u64>(), strikes in 1usize..5, threads in 2usize..5,
    ) {
        let b = 3usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let n = g.tasks().len();
        let a0 = TiledMatrix::random(mt, nt, b, seed ^ 0x51DC);
        let (mut a1, mut a2, mut a3) = (a0.clone(), a0.clone(), a0);
        let f1 = execute_serial(&g, &mut a1);
        let plan = FaultPlan::new(seed).corrupt_random_tasks(n, strikes);
        let planned = plan.planned_corruptions() as u32;
        let opts = ExecOptions {
            nthreads: threads,
            max_retries: 1,
            plan: Some(plan),
            integrity: IntegrityMode::Full,
            ..Default::default()
        };
        let (f2, stats) = try_execute_with(&g, &mut a2, &opts).expect("detect-recompute");
        prop_assert_eq!(stats.sdc_injected, planned);
        prop_assert_eq!(stats.sdc_detected, planned, "escaped strike: {:?}", stats);
        prop_assert_eq!(stats.sdc_recomputed, planned);
        let (d1, d2) = (a1.to_dense(), a2.to_dense());
        prop_assert_eq!(d1.data(), d2.data());
        prop_assert!(f2.bitwise_eq(&f1), "recomputed factors differ from clean factors");
        let (f3, stats3, _) = try_execute_traced(&g, &mut a3, &opts).expect("traced recompute");
        prop_assert_eq!(stats3.sdc_detected, planned);
        prop_assert!(f3.bitwise_eq(&f1), "traced recompute changed the factors");
    }

    /// Any random tree produces the same R (up to diagonal signs) as the
    /// flat tree: the factorization is tree-independent.
    #[test]
    fn r_independent_of_random_tree(mt in 2usize..7, nt in 1usize..4, seed in any::<u64>()) {
        let b = 4usize;
        let flat: Vec<ElimOp> = (0..mt.min(nt))
            .flat_map(|k| ((k + 1)..mt).map(move |i| ElimOp::new(k as u32, i as u32, k as u32, true)))
            .collect();
        let rand_list = random_elims(mt, nt, seed);
        let r_of = |ops: &[ElimOp]| {
            let g = TaskGraph::build(mt, nt, b, ops);
            let mut a = TiledMatrix::random(mt, nt, b, 4242);
            let _ = execute_serial(&g, &mut a);
            a.to_dense().upper_triangle()
        };
        let r1 = r_of(&flat);
        let r2 = r_of(&rand_list);
        for d in 0..(nt * b).min(mt * b) {
            let sign = if r1.get(d, d) * r2.get(d, d) >= 0.0 { 1.0 } else { -1.0 };
            for j in d..nt * b {
                prop_assert!(
                    (r1.get(d, j) - sign * r2.get(d, j)).abs() < 1e-9,
                    "R mismatch at ({}, {})", d, j
                );
            }
        }
    }
}
