//! Checkpoint/restart integration tests: kill-mid-run → resume →
//! bitwise-identical factors, durable-format hygiene (truncation,
//! corruption, atomic writes), fingerprint binding, and trace instants.

use std::path::PathBuf;
use std::time::Duration;

use hqr_runtime::{
    chrome_trace_from_exec, execute_serial, read_checkpoint, resume_from_checkpoint,
    try_execute_checkpointed, validate_chrome_trace, write_checkpoint, CheckpointError,
    CheckpointPolicy, CheckpointSpec, ElimOp, ExecOptions, InstantKind, TaskGraph,
};
use hqr_tile::io::sibling_tmp_path;
use hqr_tile::TiledMatrix;

/// Flat-tree elimination list: row k kills every row below it.
fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            out.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    out
}

/// Binary-tree elimination list (TT kernels only).
fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let mut next = Vec::new();
            for pair in alive.chunks(2) {
                if let [a, b] = pair {
                    out.push(ElimOp::new(k as u32, *b, *a, false));
                }
                next.push(pair[0]);
            }
            alive = next;
        }
    }
    out
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hqr_ckpt_{name}_{}.ckpt", std::process::id()))
}

#[test]
fn kill_mid_run_then_resume_is_bitwise_identical() {
    let (mt, nt, b) = (6, 4, 8);
    let elims = binary_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let a0 = TiledMatrix::random(mt, nt, b, 77);

    let mut a_ref = a0.clone();
    let f_ref = execute_serial(&graph, &mut a_ref);

    let path = tmp("kill_resume");
    let mut a = a0.clone();
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 77,
        stop_after_panel: Some(1),
    };
    let opts = ExecOptions::with_threads(3);
    let run = try_execute_checkpointed(&graph, &mut a, &opts, &spec, false).unwrap();
    assert!(run.interrupted, "stopping after panel 1 of 4 must leave work");
    assert!(run.checkpoints_written >= 1);
    assert!(run.completed_tasks < graph.tasks().len());
    assert!(path.exists());
    assert!(!sibling_tmp_path(&path).exists(), "temp file must not survive");

    let resumed = resume_from_checkpoint(&path, &opts, false).unwrap();
    assert_eq!(resumed.resumed_from, run.completed_tasks);
    assert_eq!(resumed.input_seed, 77);
    assert!(
        resumed.factors.bitwise_eq(&f_ref),
        "resumed factors must be bitwise-identical to an uninterrupted run"
    );
    let d_ref = a_ref.to_dense();
    let d_res = resumed.a.to_dense();
    assert!(
        d_ref.data().iter().zip(d_res.data().iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
        "resumed tile store must be bitwise-identical"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn uninterrupted_checkpointed_run_matches_serial() {
    let (mt, nt, b) = (5, 3, 6);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let a0 = TiledMatrix::random(mt, nt, b, 5);

    let mut a_ref = a0.clone();
    let f_ref = execute_serial(&graph, &mut a_ref);

    let path = tmp("full_run");
    let mut a = a0.clone();
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 5,
        stop_after_panel: None,
    };
    let run = try_execute_checkpointed(&graph, &mut a, &ExecOptions::with_threads(2), &spec, false)
        .unwrap();
    assert!(!run.interrupted);
    assert_eq!(run.completed_tasks, graph.tasks().len());
    // One checkpoint per panel boundary except the final (fully done) one.
    assert_eq!(run.checkpoints_written, nt - 1);
    assert!(run.factors.bitwise_eq(&f_ref));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn policy_every_k_and_min_interval_limit_writes() {
    let (mt, nt, b) = (6, 6, 4);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);

    // every_panels = 2 → boundaries after panels 2, 4 (final boundary skipped).
    let path = tmp("every_two");
    let mut a = TiledMatrix::random(mt, nt, b, 9);
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::every(2),
        input_seed: 9,
        stop_after_panel: None,
    };
    let run = try_execute_checkpointed(&graph, &mut a, &ExecOptions::with_threads(1), &spec, false)
        .unwrap();
    assert_eq!(run.checkpoints_written, 2);
    let _ = std::fs::remove_file(&path);

    // A prohibitive min_interval lets only the first due checkpoint through.
    let path = tmp("min_interval");
    let mut a = TiledMatrix::random(mt, nt, b, 9);
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy { every_panels: 1, min_interval: Duration::from_secs(3600) },
        input_seed: 9,
        stop_after_panel: None,
    };
    let run = try_execute_checkpointed(&graph, &mut a, &ExecOptions::with_threads(1), &spec, false)
        .unwrap();
    assert_eq!(run.checkpoints_written, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_is_rejected_for_a_different_plan() {
    let (mt, nt, b) = (5, 3, 4);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let path = tmp("fingerprint");
    let mut a = TiledMatrix::random(mt, nt, b, 3);
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 3,
        stop_after_panel: Some(0),
    };
    try_execute_checkpointed(&graph, &mut a, &ExecOptions::with_threads(1), &spec, false).unwrap();

    let ckpt = read_checkpoint(&path).unwrap();
    // Same shape, different elimination order → different fingerprint.
    let other = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    match ckpt.validate_against(&other, ckpt.ib) {
        Err(CheckpointError::FingerprintMismatch { .. }) => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // Same graph, different ib → also rejected.
    let same = TaskGraph::build(mt, nt, b, &elims);
    match ckpt.validate_against(&same, ckpt.ib + 1) {
        Err(CheckpointError::FingerprintMismatch { .. }) => {}
        other => panic!("expected FingerprintMismatch on ib change, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_and_corrupt_checkpoints_are_typed_errors() {
    let (mt, nt, b) = (4, 3, 4);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let path = tmp("truncate");
    let mut a = TiledMatrix::random(mt, nt, b, 11);
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 11,
        stop_after_panel: Some(0),
    };
    try_execute_checkpointed(&graph, &mut a, &ExecOptions::with_threads(1), &spec, false).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    // Truncate mid-file (inside the tile section).
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    match read_checkpoint(&path) {
        Err(CheckpointError::Format(_)) => {}
        other => panic!("expected Format error on truncation, got {other:?}"),
    }
    // Flip one payload byte: checksum must catch it.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&path, &corrupt).unwrap();
    match read_checkpoint(&path) {
        Err(CheckpointError::Format(hqr_tile::BinFormatError::ChecksumMismatch { .. })) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_conflicting_ib_and_open_bitmap() {
    let (mt, nt, b) = (4, 3, 4);
    let elims = flat_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let path = tmp("bad_resume");
    let mut a = TiledMatrix::random(mt, nt, b, 13);
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 13,
        stop_after_panel: Some(0),
    };
    let opts = ExecOptions { ib: Some(2), ..ExecOptions::with_threads(1) };
    try_execute_checkpointed(&graph, &mut a, &opts, &spec, false).unwrap();

    // Conflicting ib at resume time.
    let conflicting = ExecOptions { ib: Some(4), ..ExecOptions::with_threads(1) };
    match resume_from_checkpoint(&path, &conflicting, false) {
        Err(CheckpointError::Inconsistent { .. }) => {}
        other => panic!("expected Inconsistent on ib conflict, got {:?}", other.map(|_| ())),
    }

    // A bitmap not closed under dependencies is rejected before any
    // kernel runs.
    let mut ckpt = read_checkpoint(&path).unwrap();
    let n = ckpt.completed.len();
    ckpt.completed[n - 1] = true; // final task "done" with pending preds
    write_checkpoint(&path, &ckpt).unwrap();
    match resume_from_checkpoint(&path, &ExecOptions::with_threads(1), false) {
        Err(CheckpointError::Inconsistent { .. }) => {}
        other => panic!("expected Inconsistent on open bitmap, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn traced_runs_carry_checkpoint_and_resume_instants() {
    let (mt, nt, b) = (6, 4, 6);
    let elims = binary_elims(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims);
    let path = tmp("traced");
    let mut a = TiledMatrix::random(mt, nt, b, 21);
    let spec = CheckpointSpec {
        path: &path,
        elims: &elims,
        policy: CheckpointPolicy::default(),
        input_seed: 21,
        stop_after_panel: Some(1),
    };
    let opts = ExecOptions::with_threads(2);
    let run = try_execute_checkpointed(&graph, &mut a, &opts, &spec, true).unwrap();
    let trace = run.trace.expect("trace requested");
    let ckpt_instants = trace.instants.iter().filter(|i| i.kind == InstantKind::Checkpoint).count();
    assert_eq!(ckpt_instants, run.checkpoints_written);
    assert_eq!(trace.records.len(), run.completed_tasks);
    let json = chrome_trace_from_exec(&trace, graph.tasks());
    let events = validate_chrome_trace(&json).expect("valid Chrome trace");
    assert!(events > 0);
    assert!(json.contains("checkpoint written"));

    let resumed = resume_from_checkpoint(&path, &opts, true).unwrap();
    let rtrace = resumed.trace.expect("trace requested");
    assert_eq!(rtrace.instants[0].kind, InstantKind::Resume);
    assert_eq!(rtrace.instants[0].task as usize, resumed.resumed_from);
    let json = chrome_trace_from_exec(&rtrace, resumed.graph.tasks());
    validate_chrome_trace(&json).expect("valid Chrome trace after resume");
    assert!(json.contains("resumed from checkpoint"));
    let _ = std::fs::remove_file(&path);
}
