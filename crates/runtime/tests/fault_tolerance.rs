//! Fault-injection integration tests: recovered executions must be
//! bitwise-identical to fault-free ones, stalls must be reported as
//! structured errors, and no failure mode may deadlock the executor.

use std::time::Duration;

use hqr_runtime::{
    chrome_trace_from_exec, execute_serial, try_execute_parallel, try_execute_traced,
    try_execute_with, validate_sdc_instants, ElimOp, ExecError, ExecOptions, FaultPlan,
    IntegrityMode, SdcFault, SdcPattern, StallCause, TFactors, TaskGraph,
};
use hqr_tile::TiledMatrix;

fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    v
}

fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        let rows: Vec<u32> = (k as u32..mt as u32).collect();
        let mut stride = 1;
        while stride < rows.len() {
            let mut idx = 0;
            while idx + stride < rows.len() {
                v.push(ElimOp::new(k as u32, rows[idx + stride], rows[idx], false));
                idx += 2 * stride;
            }
            stride *= 2;
        }
    }
    v
}

/// Every factor buffer must match bitwise, not just the factored matrix.
fn assert_factors_identical(g: &TaskGraph, f1: &TFactors, f2: &TFactors) {
    for k in 0..g.mt().min(g.nt()) {
        for i in 0..g.mt() {
            assert_eq!(f1.vg(i, k), f2.vg(i, k), "Vg({i},{k}) differs");
            assert_eq!(f1.tg(i, k), f2.tg(i, k), "Tg({i},{k}) differs");
            assert_eq!(f1.tk(i, k), f2.tk(i, k), "Tk({i},{k}) differs");
        }
    }
}

/// Acceptance criterion: a seeded fault plan failing at least 3 distinct
/// tasks (once each) yields a factorization bitwise-identical to the
/// fault-free run.
#[test]
fn seeded_three_task_failures_recover_bitwise() {
    let (mt, nt, b) = (6, 4, 4);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let n = g.tasks().len();
    let mut a_clean = TiledMatrix::random(mt, nt, b, 11);
    let mut a_faulty = a_clean.clone();
    let f_clean = execute_serial(&g, &mut a_clean);

    let plan = FaultPlan::new(0xC0FFEE).fail_random_tasks(n, 3, 1);
    assert_eq!(plan.failing_tasks().count(), 3, "plan must hit 3 distinct tasks");
    let opts = ExecOptions { nthreads: 4, max_retries: 1, plan: Some(plan), ..Default::default() };
    let (f_faulty, stats) = try_execute_with(&g, &mut a_faulty, &opts).expect("recovers");

    assert_eq!(
        a_clean.to_dense().data(),
        a_faulty.to_dense().data(),
        "recovered factorization must be bitwise-identical"
    );
    assert_factors_identical(&g, &f_clean, &f_faulty);
    assert!(stats.panics_caught >= 3, "{stats:?}");
    assert_eq!(stats.tasks_recovered, 3, "{stats:?}");
    assert!(stats.tiles_rolled_back >= 3, "{stats:?}");
}

#[test]
fn repeated_failures_within_budget_recover() {
    let (mt, nt, b) = (5, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a1 = TiledMatrix::random(mt, nt, b, 21);
    let mut a2 = a1.clone();
    let _ = execute_serial(&g, &mut a1);
    // Task 2 fails its first three attempts; budget allows exactly that.
    let plan = FaultPlan::new(7).fail_task(2, 3);
    let opts = ExecOptions { nthreads: 2, max_retries: 3, plan: Some(plan), ..Default::default() };
    let (_, stats) = try_execute_with(&g, &mut a2, &opts).expect("within budget");
    assert_eq!(a1.to_dense().data(), a2.to_dense().data());
    assert_eq!(stats.panics_caught, 3, "{stats:?}");
    assert_eq!(stats.tasks_recovered, 1, "{stats:?}");
}

#[test]
fn retry_budget_exhaustion_is_a_typed_error() {
    let (mt, nt, b) = (4, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a = TiledMatrix::random(mt, nt, b, 31);
    let plan = FaultPlan::new(3).fail_task(0, 5);
    let opts = ExecOptions { nthreads: 3, max_retries: 2, plan: Some(plan), ..Default::default() };
    match try_execute_with(&g, &mut a, &opts) {
        Err(ExecError::TaskFailed { task: 0, attempts: 3, .. }) => {}
        other => panic!("expected TaskFailed for task 0 after 3 attempts, got {other:?}"),
    }
}

#[test]
fn poisoned_worker_hands_work_to_peers() {
    let (mt, nt, b) = (8, 4, 4);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a1 = TiledMatrix::random(mt, nt, b, 41);
    let mut a2 = a1.clone();
    let _ = execute_serial(&g, &mut a1);
    let plan = FaultPlan::new(5).poison_worker(0);
    let opts = ExecOptions { nthreads: 4, plan: Some(plan), ..Default::default() };
    let (_, _stats) = try_execute_with(&g, &mut a2, &opts).expect("peers absorb the work");
    assert_eq!(a1.to_dense().data(), a2.to_dense().data());
}

#[test]
fn all_workers_poisoned_reports_stall_not_deadlock() {
    let (mt, nt, b) = (4, 2, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a = TiledMatrix::random(mt, nt, b, 51);
    let plan = FaultPlan::new(9).poison_worker(0);
    let opts = ExecOptions { nthreads: 1, plan: Some(plan), ..Default::default() };
    match try_execute_with(&g, &mut a, &opts) {
        Err(ExecError::Stalled(r)) => {
            assert_eq!(r.cause, StallCause::AllWorkersExited);
            assert!(r.remaining > 0, "{r:?}");
        }
        other => panic!("expected a stall, got {other:?}"),
    }
}

/// Watchdog unit test on a "broken DAG": the root's completion is dropped,
/// so nothing downstream can ever run; the watchdog must convert the stall
/// into a structured report instead of hanging.
#[test]
fn watchdog_reports_stall_with_frontier_diagnostics() {
    let (mt, nt, b) = (3, 3, 2);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let n = g.tasks().len();
    let mut a = TiledMatrix::random(mt, nt, b, 61);
    let plan = FaultPlan::new(0).lose_completion(0);
    let opts = ExecOptions {
        nthreads: 2,
        plan: Some(plan),
        watchdog: Some(Duration::from_millis(80)),
        ..Default::default()
    };
    match try_execute_with(&g, &mut a, &opts) {
        Err(ExecError::Stalled(r)) => {
            assert_eq!(r.cause, StallCause::WatchdogTimeout);
            assert_eq!(r.completed, 1, "only the lost root executed: {r:?}");
            assert_eq!(r.remaining, n, "no completion was ever delivered: {r:?}");
            assert!(r.stuck_frontier.is_empty(), "no runnable task is pending: {r:?}");
            assert!(!r.blocked.is_empty(), "successors must show up blocked: {r:?}");
            assert!(r.blocked.iter().all(|&(t, d)| (t as usize) < n && d > 0));
        }
        other => panic!("expected a watchdog stall, got {other:?}"),
    }
}

#[test]
fn losing_completions_without_watchdog_is_rejected() {
    let g = TaskGraph::build(2, 2, 2, &flat_elims(2, 2));
    let mut a = TiledMatrix::random(2, 2, 2, 71);
    let plan = FaultPlan::new(0).lose_completion(0);
    let opts = ExecOptions { nthreads: 2, plan: Some(plan), ..Default::default() };
    assert!(matches!(try_execute_with(&g, &mut a, &opts), Err(ExecError::Config { .. })));
}

#[test]
fn watchdog_stays_quiet_on_healthy_runs() {
    let (mt, nt, b) = (5, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a1 = TiledMatrix::random(mt, nt, b, 81);
    let mut a2 = a1.clone();
    let _ = execute_serial(&g, &mut a1);
    let opts =
        ExecOptions { nthreads: 3, watchdog: Some(Duration::from_secs(5)), ..Default::default() };
    let (_, stats) = try_execute_with(&g, &mut a2, &opts).expect("healthy run");
    assert_eq!(a1.to_dense().data(), a2.to_dense().data());
    assert_eq!(stats.panics_caught, 0);
}

#[test]
fn config_errors_are_typed() {
    let g = TaskGraph::build(3, 3, 2, &flat_elims(3, 3));
    // Tile-size mismatch between the matrix and the graph.
    let mut wrong = TiledMatrix::random(3, 3, 4, 91);
    assert!(matches!(try_execute_parallel(&g, &mut wrong, 2), Err(ExecError::Config { .. })));
    // Inner block size out of range.
    let mut a = TiledMatrix::random(3, 3, 2, 92);
    let opts = ExecOptions { nthreads: 2, ib: Some(5), ..Default::default() };
    assert!(matches!(try_execute_with(&g, &mut a, &opts), Err(ExecError::Config { .. })));
}

#[test]
fn try_parallel_matches_serial_on_clean_runs() {
    let (mt, nt, b) = (6, 4, 4);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let mut a1 = TiledMatrix::random(mt, nt, b, 101);
    let mut a2 = a1.clone();
    let _ = execute_serial(&g, &mut a1);
    let _ = try_execute_parallel(&g, &mut a2, 4).expect("clean run");
    assert_eq!(a1.to_dense().data(), a2.to_dense().data());
}

/// SDC acceptance: with full integrity, every injected single-bit flip is
/// caught by the commit-time guard check and recomputed from the rollback
/// snapshot, and the result — matrix and factor buffers alike — is
/// bitwise-identical to a clean run.
#[test]
fn seeded_bitflip_corruptions_are_detected_and_recomputed() {
    let (mt, nt, b) = (6, 4, 4);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let n = g.tasks().len();
    let mut a_clean = TiledMatrix::random(mt, nt, b, 17);
    let mut a_sdc = a_clean.clone();
    let f_clean = execute_serial(&g, &mut a_clean);

    let plan = FaultPlan::new(0xBADBEEF).corrupt_random_tasks(n, 5);
    assert_eq!(plan.planned_corruptions(), 5, "plan must strike 5 distinct tasks");
    let opts = ExecOptions {
        nthreads: 4,
        max_retries: 1,
        plan: Some(plan),
        integrity: IntegrityMode::Full,
        ..Default::default()
    };
    let (f_sdc, stats) = try_execute_with(&g, &mut a_sdc, &opts).expect("detect-recompute");
    assert_eq!(stats.sdc_injected, 5, "{stats:?}");
    assert_eq!(stats.sdc_detected, 5, "every strike must be detected: {stats:?}");
    assert_eq!(stats.sdc_recomputed, 5, "every strike must be recomputed: {stats:?}");
    assert_eq!(
        a_clean.to_dense().data(),
        a_sdc.to_dense().data(),
        "recomputed factorization must be bitwise-identical"
    );
    assert_factors_identical(&g, &f_clean, &f_sdc);
}

/// With integrity off the strike still happens but nothing checks it: the
/// corruption escapes into the factorization output.
#[test]
fn integrity_off_lets_corruption_escape() {
    let (mt, nt, b) = (5, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let n = g.tasks().len();
    let mut a_clean = TiledMatrix::random(mt, nt, b, 23);
    let mut a_sdc = a_clean.clone();
    let f_clean = execute_serial(&g, &mut a_clean);

    let plan = FaultPlan::new(99).corrupt_random_tasks(n, 3);
    let opts = ExecOptions { nthreads: 2, max_retries: 1, plan: Some(plan), ..Default::default() };
    let (f_sdc, stats) = try_execute_with(&g, &mut a_sdc, &opts).expect("nothing checks");
    assert_eq!(stats.sdc_injected, 3, "{stats:?}");
    assert_eq!(stats.sdc_detected, 0, "integrity off must not verify: {stats:?}");
    let clean_bits =
        a_clean.to_dense().data() == a_sdc.to_dense().data() && f_sdc.bitwise_eq(&f_clean);
    assert!(!clean_bits, "an unguarded corruption must escape into the result");
}

/// Spot mode catches a scaling corruption too: the digest is bit-exact,
/// not flip-specific.
#[test]
fn scaling_corruption_is_detected_in_spot_mode() {
    let (mt, nt, b) = (4, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a_clean = TiledMatrix::random(mt, nt, b, 41);
    let mut a_sdc = a_clean.clone();
    let f_clean = execute_serial(&g, &mut a_clean);

    let fault = SdcFault { slot: 0, element: 3, pattern: SdcPattern::Scale };
    let plan = FaultPlan::new(7).corrupt_task(2, fault);
    let opts = ExecOptions {
        nthreads: 2,
        max_retries: 1,
        plan: Some(plan),
        integrity: IntegrityMode::Spot,
        ..Default::default()
    };
    let (f_sdc, stats) = try_execute_with(&g, &mut a_sdc, &opts).expect("recomputes");
    assert_eq!((stats.sdc_injected, stats.sdc_detected, stats.sdc_recomputed), (1, 1, 1));
    assert_eq!(a_clean.to_dense().data(), a_sdc.to_dense().data());
    assert_factors_identical(&g, &f_clean, &f_sdc);
}

/// With a zero recompute budget detection still works, but recovery is
/// impossible: the run aborts with a typed error naming the task.
#[test]
fn sdc_without_recompute_budget_is_a_typed_error() {
    let (mt, nt, b) = (4, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let mut a = TiledMatrix::random(mt, nt, b, 57);
    let fault = SdcFault { slot: 0, element: 0, pattern: SdcPattern::BitFlip(52) };
    let plan = FaultPlan::new(5).corrupt_task(0, fault);
    let opts = ExecOptions {
        nthreads: 2,
        max_retries: 0,
        plan: Some(plan),
        integrity: IntegrityMode::Full,
        ..Default::default()
    };
    match try_execute_with(&g, &mut a, &opts) {
        Err(ExecError::SdcDetected { task: 0, attempts: 0, .. }) => {}
        other => panic!("expected SdcDetected for task 0, got {other:?}"),
    }
}

/// Detection and recompute instants flow into the Chrome trace and pass
/// the SDC-specific validator.
#[test]
fn sdc_instants_appear_in_the_chrome_trace() {
    let (mt, nt, b) = (5, 3, 3);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let n = g.tasks().len();
    let mut a = TiledMatrix::random(mt, nt, b, 73);
    let plan = FaultPlan::new(31).corrupt_random_tasks(n, 3);
    let opts = ExecOptions {
        nthreads: 3,
        max_retries: 1,
        plan: Some(plan),
        integrity: IntegrityMode::Full,
        ..Default::default()
    };
    let (_, stats, tr) = try_execute_traced(&g, &mut a, &opts).expect("recomputes");
    assert_eq!(stats.sdc_detected, 3, "{stats:?}");
    let json = chrome_trace_from_exec(&tr, g.tasks());
    assert!(json.contains("sdc detected") && json.contains("sdc recomputed"), "{json}");
    assert_eq!(validate_sdc_instants(&json), Ok((3, 3)));
}
