//! DAG analysis: weighted critical paths, task histograms, and
//! communication counting under a data layout.

use std::collections::HashSet;

use crate::graph::TaskGraph;
use crate::task::Task;
use hqr_kernels::KernelKind;
use hqr_tile::Layout;

/// Summary statistics of a task DAG.
#[derive(Clone, Debug, PartialEq)]
pub struct DagStats {
    /// Number of tasks per kernel kind, indexed by [`kind_index`].
    pub counts: [usize; 6],
    /// Total weight in b³/3 flop units.
    pub total_weight: u64,
    /// Length of the longest path, with each task costing its kernel weight.
    pub critical_path_weight: u64,
    /// Length of the longest path counting each task as 1.
    pub critical_path_len: usize,
}

/// Stable index for a kernel kind.
pub fn kind_index(k: KernelKind) -> usize {
    match k {
        KernelKind::Geqrt => 0,
        KernelKind::Unmqr => 1,
        KernelKind::Tsqrt => 2,
        KernelKind::Tsmqr => 3,
        KernelKind::Ttqrt => 4,
        KernelKind::Ttmqr => 5,
    }
}

/// Weighted longest path from each task to the DAG exit, inclusive of the
/// task's own weight — the static *upward rank* of list scheduling, and
/// the priority behind [`crate::sched::SchedPolicy::CriticalPath`]. One
/// reverse sweep (program order is topological); the maximum over all
/// tasks is the DAG's critical-path weight.
pub fn paths_to_exit(graph: &TaskGraph) -> Vec<u64> {
    let tasks = graph.tasks();
    let mut dist = vec![0u64; tasks.len()];
    for tid in (0..tasks.len()).rev() {
        let mut best = 0u64;
        for &s in graph.successors(tid) {
            best = best.max(dist[s as usize]);
        }
        dist[tid] = best + tasks[tid].kind.weight();
    }
    dist
}

/// Compute [`DagStats`]: counts and hop-length in one forward sweep, the
/// weighted critical path via [`paths_to_exit`].
pub fn dag_stats(graph: &TaskGraph) -> DagStats {
    let tasks = graph.tasks();
    let mut counts = [0usize; 6];
    let mut total_weight = 0u64;
    let mut dist_l = vec![0u32; tasks.len()];
    let mut cp_l = 0u32;
    for (tid, t) in tasks.iter().enumerate() {
        counts[kind_index(t.kind)] += 1;
        total_weight += t.kind.weight();
        let fl = dist_l[tid] + 1;
        cp_l = cp_l.max(fl);
        for &s in graph.successors(tid) {
            let s = s as usize;
            dist_l[s] = dist_l[s].max(fl);
        }
    }
    let cp_w = paths_to_exit(graph).into_iter().max().unwrap_or(0);
    DagStats { counts, total_weight, critical_path_weight: cp_w, critical_path_len: cp_l as usize }
}

/// Communication cost of executing the DAG under `layout` with the
/// owner-computes rule: one message per (producing task, consuming node)
/// pair whose producer and consumer live on different nodes. Returns
/// `(message count, volume in tiles)` — volume equals the message count
/// because every transfer carries one b×b tile (plus its small T factor,
/// which real implementations pack into the same message).
pub fn comm_messages(graph: &TaskGraph, layout: &Layout) -> (usize, usize) {
    let node_of = |t: &Task| {
        let (i, j) = t.affinity_tile();
        layout.owner(i, j)
    };
    let tasks = graph.tasks();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut messages = 0usize;
    for (tid, t) in tasks.iter().enumerate() {
        let src = node_of(t);
        for &s in graph.successors(tid) {
            let dst = node_of(&tasks[s as usize]);
            if src != dst && seen.insert((tid as u32, dst as u32)) {
                messages += 1;
            }
        }
    }
    (messages, messages)
}

/// Render the task DAG in Graphviz DOT format (for inspection of small
/// DAGs; refuses graphs above `max_tasks` to avoid megabyte dumps).
pub fn to_dot(graph: &TaskGraph, max_tasks: usize) -> Result<String, String> {
    let tasks = graph.tasks();
    if tasks.len() > max_tasks {
        return Err(format!("DAG has {} tasks (> {max_tasks})", tasks.len()));
    }
    let mut out = String::from("digraph hqr {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for (tid, t) in tasks.iter().enumerate() {
        let label = t.label();
        let color = if t.kind.is_factor() { "lightblue" } else { "white" };
        out.push_str(&format!("  t{tid} [label=\"{label}\", style=filled, fillcolor={color}];\n"));
    }
    for tid in 0..tasks.len() {
        let mut prev = u32::MAX;
        let mut succs: Vec<u32> = graph.successors(tid).to_vec();
        succs.sort_unstable();
        for s in succs {
            if s != prev {
                out.push_str(&format!("  t{tid} -> t{s};\n"));
                prev = s;
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::ElimOp;
    use hqr_tile::{Layout, ProcessGrid};

    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        v
    }

    fn binary_elims_panel0(mt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        let mut stride = 1;
        while stride < mt {
            let mut idx = 0;
            while idx + stride < mt {
                v.push(ElimOp::new(0, (idx + stride) as u32, idx as u32, false));
                idx += 2 * stride;
            }
            stride *= 2;
        }
        v
    }

    #[test]
    fn total_weight_invariant_flat_vs_binary_single_panel() {
        // §II: total weight is 6mn² − 2n³ regardless of the tree.
        let mt = 8;
        let g_flat = TaskGraph::build(mt, 1, 2, &flat_elims(mt, 1));
        let g_bin = TaskGraph::build(mt, 1, 2, &binary_elims_panel0(mt));
        let sf = dag_stats(&g_flat);
        let sb = dag_stats(&g_bin);
        let expect = (6 * mt - 2) as u64; // n = 1
        assert_eq!(sf.total_weight, expect);
        assert_eq!(sb.total_weight, expect);
    }

    #[test]
    fn binary_tree_has_shorter_critical_path_tall_panel() {
        let mt = 32;
        let g_flat = TaskGraph::build(mt, 1, 2, &flat_elims(mt, 1));
        let g_bin = TaskGraph::build(mt, 1, 2, &binary_elims_panel0(mt));
        let cp_flat = dag_stats(&g_flat).critical_path_weight;
        let cp_bin = dag_stats(&g_bin).critical_path_weight;
        assert!(
            cp_bin < cp_flat,
            "binary CP {cp_bin} should beat flat CP {cp_flat} on a tall panel"
        );
    }

    #[test]
    fn flat_critical_path_single_panel_formula() {
        // Flat tree, single column: GEQRT (4) then a chain of (m−1) TSQRT (6).
        let mt = 10;
        let g = TaskGraph::build(mt, 1, 2, &flat_elims(mt, 1));
        let s = dag_stats(&g);
        assert_eq!(s.critical_path_weight, 4 + 6 * (mt as u64 - 1));
    }

    #[test]
    fn counts_flat_tree() {
        let g = TaskGraph::build(4, 2, 2, &flat_elims(4, 2));
        let s = dag_stats(&g);
        assert_eq!(s.counts[kind_index(hqr_kernels::KernelKind::Geqrt)], 2);
        assert_eq!(s.counts[kind_index(hqr_kernels::KernelKind::Tsqrt)], 3 + 2);
        assert_eq!(s.counts[kind_index(hqr_kernels::KernelKind::Ttqrt)], 0);
    }

    #[test]
    fn single_node_layout_needs_no_messages() {
        let g = TaskGraph::build(6, 2, 2, &flat_elims(6, 2));
        let (msgs, _) = comm_messages(&g, &Layout::Single);
        assert_eq!(msgs, 0);
    }

    #[test]
    fn block_flat_panel_uses_few_messages() {
        // §III-A: block distribution + flat tree ⇒ the pivot crosses each
        // cluster boundary once: p−1 kill-chain messages for one panel
        // (plus update-related traffic when nt > 1; here nt = 1 and the
        // graph has kills only, so exactly p−1 = 2 crossings).
        let mt = 12;
        let g = TaskGraph::build(mt, 1, 2, &flat_elims(mt, 1));
        // Re-order: flat tree with natural order already proceeds top-to-
        // bottom so the pivot visits clusters in order.
        let layout = Layout::block_rows(3, mt);
        let (msgs, _) = comm_messages(&g, &layout);
        assert_eq!(msgs, 2, "pivot should cross each boundary once");
    }

    #[test]
    fn cyclic_flat_panel_communicates_every_elimination() {
        // §III-A: cyclic distribution + naturally-ordered flat tree is
        // communication-intensive: every elimination crosses nodes.
        let mt = 12;
        let g = TaskGraph::build(mt, 1, 2, &flat_elims(mt, 1));
        let layout = Layout::cyclic_rows(3);
        let (msgs, _) = comm_messages(&g, &layout);
        assert!(msgs >= mt - 2, "expected ~one message per elimination, got {msgs}");
    }

    #[test]
    fn comm_is_zero_when_grid_is_one() {
        let g = TaskGraph::build(5, 3, 2, &flat_elims(5, 3));
        let layout = Layout::Cyclic2D(ProcessGrid::new(1, 1));
        assert_eq!(comm_messages(&g, &layout).0, 0);
    }

    #[test]
    fn paths_to_exit_max_is_critical_path_weight() {
        for (mt, nt) in [(8, 1), (6, 3), (5, 5)] {
            let g = TaskGraph::build(mt, nt, 2, &flat_elims(mt, nt));
            let up = paths_to_exit(&g);
            assert_eq!(up.iter().copied().max().unwrap_or(0), dag_stats(&g).critical_path_weight);
            // Every rank is at least the task's own weight and at most the CP.
            for (tid, t) in g.tasks().iter().enumerate() {
                assert!(up[tid] >= t.kind.weight());
            }
        }
    }

    #[test]
    fn critical_path_len_at_least_panels() {
        let g = TaskGraph::build(6, 6, 2, &flat_elims(6, 6));
        let s = dag_stats(&g);
        assert!(s.critical_path_len >= 6);
    }

    #[test]
    fn dot_export_mentions_every_task() {
        let g = TaskGraph::build(3, 2, 2, &flat_elims(3, 2));
        let dot = to_dot(&g, 100).unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("GEQRT(0,0)"));
        assert!(dot.contains("TSQRT(1<-0;0)"));
        assert!(dot.contains("TSMQR"));
        assert_eq!(dot.matches(" [label=").count(), g.tasks().len());
        assert!(dot.contains("->"), "edges rendered");
    }

    #[test]
    fn dot_export_refuses_large_graphs() {
        let g = TaskGraph::build(20, 20, 2, &flat_elims(20, 20));
        assert!(to_dot(&g, 100).is_err());
    }
}
