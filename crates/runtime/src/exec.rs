//! Serial and multithreaded DAG executors.
//!
//! Two families of entry points share one engine:
//!
//! * the legacy `execute_*` functions, which panic on failure (kept for
//!   compatibility with existing callers), and
//! * the `try_execute_*` functions, which report every failure — kernel
//!   panics, exhausted retry budgets, scheduler stalls — as a typed
//!   [`ExecError`], and accept an [`ExecOptions`] enabling bounded per-task
//!   retry with write-set rollback, deterministic fault injection
//!   ([`FaultPlan`]) and a stall watchdog.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use crossbeam_utils::Backoff;

use crate::error::{ExecError, StallCause, StallReport};
use crate::fault::{ExecOptions, FaultStats, QuietPanics, INJECTED_FAULT_PREFIX, POISON_STRIKES};
use crate::graph::TaskGraph;
use crate::integrity::{GuardStore, IntegrityMode};
use crate::sched::{self, SchedPolicy};
use crate::store::TileStore;
use crate::task::Task;
use hqr_kernels::KernelKind;
use hqr_tile::TiledMatrix;

/// The Householder factor buffers produced by a factorization: the V copies
/// and T factors of every GEQRT, and the T factors of every kill kernel.
/// Together with the factored matrix (V/V2 blocks in place, R in the upper
/// triangle) and the elimination list, they fully determine Q.
#[derive(Clone)]
pub struct TFactors {
    pub(crate) b: usize,
    pub(crate) mt: usize,
    pub(crate) nt: usize,
    pub(crate) vg: Vec<Option<Box<[f64]>>>,
    pub(crate) tg: Vec<Option<Box<[f64]>>>,
    pub(crate) tk: Vec<Option<Box<[f64]>>>,
}

impl std::fmt::Debug for TFactors {
    /// Summarized (the buffers hold O(mt·nt·b²) floats).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let count = |v: &[Option<Box<[f64]>>]| v.iter().filter(|o| o.is_some()).count();
        f.debug_struct("TFactors")
            .field("b", &self.b)
            .field("mt", &self.mt)
            .field("nt", &self.nt)
            .field("vg_buffers", &count(&self.vg))
            .field("tg_buffers", &count(&self.tg))
            .field("tk_buffers", &count(&self.tk))
            .finish()
    }
}

impl TFactors {
    /// Allocate exactly the buffers the graph's tasks will write.
    pub fn allocate_for(graph: &TaskGraph) -> Self {
        let (mt, nt, b) = (graph.mt(), graph.nt(), graph.b());
        let mut vg: Vec<Option<Box<[f64]>>> = (0..mt * nt).map(|_| None).collect();
        let mut tg: Vec<Option<Box<[f64]>>> = (0..mt * nt).map(|_| None).collect();
        let mut tk: Vec<Option<Box<[f64]>>> = (0..mt * nt).map(|_| None).collect();
        let zero = || Some(vec![0.0; b * b].into_boxed_slice());
        for t in graph.tasks() {
            let idx = t.i as usize + (t.k as usize) * mt;
            match t.kind {
                KernelKind::Geqrt => {
                    vg[idx] = zero();
                    tg[idx] = zero();
                }
                KernelKind::Tsqrt | KernelKind::Ttqrt => {
                    tk[idx] = zero();
                }
                _ => {}
            }
        }
        TFactors { b, mt, nt, vg, tg, tk }
    }

    /// Tile size.
    pub fn b(&self) -> usize {
        self.b
    }

    fn get(v: &[Option<Box<[f64]>>], mt: usize, i: usize, k: usize) -> Option<&[f64]> {
        v[i + k * mt].as_deref()
    }

    /// V factor (full tile copy; V in the strict lower triangle) of the
    /// GEQRT applied to row `i` in panel `k`.
    pub fn vg(&self, i: usize, k: usize) -> Option<&[f64]> {
        Self::get(&self.vg, self.mt, i, k)
    }

    /// T factor of the GEQRT applied to row `i` in panel `k`.
    pub fn tg(&self, i: usize, k: usize) -> Option<&[f64]> {
        Self::get(&self.tg, self.mt, i, k)
    }

    /// T factor of the kill (TSQRT/TTQRT) whose victim was row `i`, panel `k`.
    pub fn tk(&self, i: usize, k: usize) -> Option<&[f64]> {
        Self::get(&self.tk, self.mt, i, k)
    }

    /// Mutable view of an allocated factor buffer, for callers (the
    /// distributed gather step) that fill a [`TFactors`] from bytes
    /// computed elsewhere. `None` when the graph never writes that slot.
    pub fn slot_mut(
        &mut self,
        fam: crate::task::SlotFamily,
        i: usize,
        k: usize,
    ) -> Option<&mut [f64]> {
        let idx = i + k * self.mt;
        let v = match fam {
            crate::task::SlotFamily::Vg => &mut self.vg,
            crate::task::SlotFamily::Tg => &mut self.tg,
            crate::task::SlotFamily::Tk => &mut self.tk,
            crate::task::SlotFamily::A => return None,
        };
        v.get_mut(idx).and_then(|o| o.as_deref_mut())
    }

    /// Bit-exact equality of every allocated factor buffer (comparing
    /// `f64::to_bits`, so `-0.0 != 0.0` and NaNs compare by payload) — the
    /// check behind the "resume is bitwise-identical" guarantee.
    pub fn bitwise_eq(&self, other: &TFactors) -> bool {
        fn family_eq(a: &[Option<Box<[f64]>>], b: &[Option<Box<[f64]>>]) -> bool {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| match (x, y) {
                    (None, None) => true,
                    (Some(x), Some(y)) => {
                        x.len() == y.len()
                            && x.iter().zip(y.iter()).all(|(p, q)| p.to_bits() == q.to_bits())
                    }
                    _ => false,
                })
        }
        self.b == other.b
            && self.mt == other.mt
            && self.nt == other.nt
            && family_eq(&self.vg, &other.vg)
            && family_eq(&self.tg, &other.tg)
            && family_eq(&self.tk, &other.tk)
    }
}

/// Execute the DAG on the calling thread, in program order (which
/// [`TaskGraph::build`] guarantees is topological).
pub fn execute_serial(graph: &TaskGraph, a: &mut TiledMatrix) -> TFactors {
    execute_serial_ib(graph, a, graph.b())
}

/// [`execute_serial`] with an explicit inner block size (PLASMA's IB);
/// `ib == b` selects the unblocked kernels.
pub fn execute_serial_ib(graph: &TaskGraph, a: &mut TiledMatrix, ib: usize) -> TFactors {
    let mut f = TFactors::allocate_for(graph);
    let store = TileStore::with_ib(a, &mut f, ib);
    for t in graph.tasks() {
        // SAFETY: single-threaded, topological order.
        unsafe { store.run_task(t) };
    }
    f
}

/// One executed task in an execution trace: which worker ran it and when
/// (seconds since the executor started).
#[derive(Clone, Copy, Debug)]
pub struct TaskRecord {
    /// Index into [`TaskGraph::tasks`].
    pub task: u32,
    /// Worker thread that executed it.
    pub worker: u16,
    /// Start time (s).
    pub start: f64,
    /// End time (s).
    pub end: f64,
}

/// Per-worker scheduler counters, accumulated by the work-stealing loop.
///
/// Together they attribute every task acquisition to its source — the
/// worker's own LIFO deque (data-reuse hits), the global injector (initial
/// frontier and poison re-enqueues), or a peer's deque (load-balancing
/// steals) — and count the recovery events the fault layer triggered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Tasks popped from the worker's own LIFO deque.
    pub local_pops: u64,
    /// Tasks taken from the global injector.
    pub injector_pops: u64,
    /// Tasks stolen FIFO from a peer worker's deque.
    pub steals: u64,
    /// Panics caught while running tasks (injected and genuine).
    pub panics_caught: u64,
    /// Failed attempts rolled back and retried on this worker.
    pub retries: u64,
    /// Tasks this (poisoned) worker handed back to its peers.
    pub requeues: u64,
    /// Paged runs only: tiles this worker faulted in from the spill file
    /// on demand (the prefetcher missed them).
    pub tile_faults: u64,
    /// Paged runs only: pins that found their tile already resident
    /// because the background prefetcher loaded it.
    pub prefetch_hits: u64,
    /// Paged runs only: evictions this worker's pins triggered to make
    /// room in the resident tier.
    pub tile_spills: u64,
}

/// What a scheduler instant event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstantKind {
    /// A task attempt panicked and the panic was caught.
    PanicCaught,
    /// A rolled-back task attempt is about to re-run on the same worker.
    Retry,
    /// A poisoned worker pushed the task back for healthy peers.
    Requeue,
    /// A consistent checkpoint was written to disk (the `task` field holds
    /// the number of completed tasks it covers).
    Checkpoint,
    /// Execution resumed from an on-disk checkpoint (the `task` field holds
    /// the number of tasks restored as already complete).
    Resume,
    /// A tile-guard verification caught silent data corruption.
    SdcDetected,
    /// A corrupted task attempt was rolled back and is about to recompute.
    SdcRecomputed,
    /// Paged runs only: a task's pin pass demand-faulted at least one
    /// tile in from the spill file.
    TileFaulted,
    /// Paged runs only: a task's pin pass evicted (spilled) at least one
    /// resident tile to make room.
    TileSpilled,
}

/// A point event on a worker's timeline (fault/retry markers).
#[derive(Clone, Copy, Debug)]
pub struct ExecInstant {
    /// What happened.
    pub kind: InstantKind,
    /// Task involved.
    pub task: u32,
    /// Worker it happened on.
    pub worker: u16,
    /// Seconds since the executor started.
    pub time: f64,
}

/// Timeline of a traced parallel execution.
#[derive(Clone, Debug)]
pub struct ExecTrace {
    /// Number of worker threads.
    pub nthreads: usize,
    /// Scheduling policy the run used for its shared ready queue.
    pub policy: SchedPolicy,
    /// Per-task records, sorted by start time.
    pub records: Vec<TaskRecord>,
    /// Fault/retry instants, sorted by time.
    pub instants: Vec<ExecInstant>,
    /// Scheduler counters, one per worker.
    pub counters: Vec<WorkerCounters>,
    /// Wall-clock duration of the whole execution (s).
    pub wall: f64,
    /// Spill-traffic totals when the run used the paged (two-tier) tile
    /// store; `None` for fully-resident runs.
    pub spill: Option<crate::spill::SpillSummary>,
}

impl ExecTrace {
    /// Total peer-deque steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.counters.iter().map(|c| c.steals).sum()
    }

    /// Total injector pops across all workers.
    pub fn total_injector_pops(&self) -> u64 {
        self.counters.iter().map(|c| c.injector_pops).sum()
    }

    /// Busy seconds per worker.
    pub fn per_worker_busy(&self) -> Vec<f64> {
        let mut busy = vec![0.0; self.nthreads];
        for r in &self.records {
            busy[r.worker as usize] += r.end - r.start;
        }
        busy
    }

    /// Average worker utilization over the wall-clock span.
    pub fn utilization(&self) -> f64 {
        if self.wall == 0.0 {
            return 0.0;
        }
        self.per_worker_busy().iter().sum::<f64>() / (self.wall * self.nthreads as f64)
    }

    /// Busy seconds per kernel kind, indexed by
    /// [`crate::analysis::kind_index`].
    pub fn kernel_seconds(&self, tasks: &[Task]) -> [f64; 6] {
        let mut out = [0.0; 6];
        for r in &self.records {
            out[crate::analysis::kind_index(tasks[r.task as usize].kind)] += r.end - r.start;
        }
        out
    }
}

/// Execute the DAG on `nthreads` worker threads with work stealing.
///
/// Newly-enabled tasks go to the completing worker's LIFO deque, so a core
/// preferentially runs close successors of the task it just finished — the
/// data-reuse heuristic of DAGuE (§IV-C). Idle workers steal FIFO from
/// peers or from the global injector.
pub fn execute_parallel(graph: &TaskGraph, a: &mut TiledMatrix, nthreads: usize) -> TFactors {
    let b = graph.b();
    let (f, _) = run_parallel(graph, a, nthreads, false, b);
    f
}

/// [`execute_parallel`] with an explicit inner block size (PLASMA's IB).
pub fn execute_parallel_ib(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    nthreads: usize,
    ib: usize,
) -> TFactors {
    let (f, _) = run_parallel(graph, a, nthreads, false, ib);
    f
}

/// [`execute_parallel`] with a full execution trace (per-task worker and
/// timestamps) for scheduling analysis.
pub fn execute_parallel_traced(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    nthreads: usize,
) -> (TFactors, ExecTrace) {
    let b = graph.b();
    let (f, t) = run_parallel(graph, a, nthreads, true, b);
    (f, t.expect("tracing requested"))
}

/// Execute with typed errors: a kernel panic is reported as
/// [`ExecError::WorkerPanicked`] instead of unwinding through the caller.
pub fn try_execute_serial(graph: &TaskGraph, a: &mut TiledMatrix) -> Result<TFactors, ExecError> {
    try_execute_with(graph, a, &ExecOptions::with_threads(1)).map(|(f, _)| f)
}

/// Execute on `nthreads` workers with typed errors: a kernel panic halts
/// the sibling workers and is reported as [`ExecError::WorkerPanicked`]
/// instead of deadlocking the pool.
pub fn try_execute_parallel(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    nthreads: usize,
) -> Result<TFactors, ExecError> {
    try_execute_with(graph, a, &ExecOptions::with_threads(nthreads)).map(|(f, _)| f)
}

/// Fault-tolerant execution with full control: worker count, inner block
/// size, per-task retry with write-set rollback, deterministic fault
/// injection and a stall watchdog. Returns the factors plus recovery
/// accounting.
///
/// Because a failed attempt is rolled back to the task's pre-execution
/// state before re-running, and the kernels are deterministic, a recovered
/// run produces a factorization bitwise-identical to a fault-free run.
pub fn try_execute_with(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    opts: &ExecOptions,
) -> Result<(TFactors, FaultStats), ExecError> {
    let (f, stats, _) = run_engine(graph, a, opts, false)?;
    Ok((f, stats))
}

/// [`try_execute_with`] plus a full [`ExecTrace`]: per-task spans,
/// fault/retry instants, and per-worker scheduler counters — everything
/// [`crate::trace::chrome_trace_from_exec`] needs to render a Perfetto
/// timeline.
pub fn try_execute_traced(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    opts: &ExecOptions,
) -> Result<(TFactors, FaultStats, ExecTrace), ExecError> {
    let (f, stats, trace) = run_engine(graph, a, opts, true)?;
    Ok((f, stats, trace.expect("tracing requested")))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast_ref::<&str>() {
        Some(s) => (*s).to_string(),
        None => match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "non-string panic payload".to_string(),
        },
    }
}

/// Lock a mutex, tolerating poisoning: the engine's own `catch_unwind`
/// keeps kernel panics from unwinding through a held lock, but a daemon
/// hosting many jobs must never let one panicked thread wedge the whole
/// process behind a poisoned mutex.
pub(crate) fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn set_error(slot: &Mutex<Option<ExecError>>, e: ExecError) {
    let mut guard = relock(slot);
    if guard.is_none() {
        *guard = Some(e);
    }
}

/// Diagnostic snapshot of the scheduler state for [`ExecError::Stalled`].
fn stall_report(
    cause: StallCause,
    timeout: Duration,
    indeg: &[AtomicU32],
    done: &[AtomicBool],
    remaining: usize,
) -> StallReport {
    const CAP: usize = 16;
    let mut completed = 0;
    let mut stuck_frontier = Vec::new();
    let mut blocked = Vec::new();
    let mut truncated = false;
    for tid in 0..indeg.len() {
        if done[tid].load(Ordering::Acquire) {
            completed += 1;
            continue;
        }
        let d = indeg[tid].load(Ordering::Acquire);
        if d == 0 {
            if stuck_frontier.len() < CAP {
                stuck_frontier.push(tid as u32);
            } else {
                truncated = true;
            }
        } else if blocked.len() < CAP {
            blocked.push((tid as u32, d));
        } else {
            truncated = true;
        }
    }
    StallReport { cause, timeout, completed, remaining, stuck_frontier, blocked, truncated }
}

/// Nap length for an idle worker whose exponential backoff ladder is
/// exhausted: long enough to stop burning the core through a serial tail,
/// short enough that newly released work (and `halt`) is observed almost
/// immediately.
pub(crate) const IDLE_PARK: Duration = Duration::from_micros(100);

/// The shared ready queue feeding idle workers: the legacy FIFO injector
/// (with batch steals into the thief's deque), or — under a prioritizing
/// [`SchedPolicy`] — a heap ordered by the policy's static priority keys,
/// so releases are handed out best-priority-first instead of in arrival
/// order.
enum GlobalQueue {
    Fifo(Injector<u32>),
    Prio(Mutex<BinaryHeap<Reverse<(u64, u32)>>>),
}

impl GlobalQueue {
    fn new(policy: SchedPolicy) -> GlobalQueue {
        match policy {
            SchedPolicy::Fifo => GlobalQueue::Fifo(Injector::new()),
            _ => GlobalQueue::Prio(Mutex::new(BinaryHeap::new())),
        }
    }

    /// Enqueue `tid` under its priority key (ignored by the FIFO queue).
    fn push(&self, tid: u32, ranks: &[u64]) {
        match self {
            GlobalQueue::Fifo(inj) => inj.push(tid),
            GlobalQueue::Prio(q) => relock(q).push(Reverse((ranks[tid as usize], tid))),
        }
    }

    /// Take the next task: lowest key first for the heap; for the FIFO
    /// injector a batch is stolen into `dest` and its first task returned.
    fn take(&self, dest: &Worker<u32>) -> Steal<u32> {
        match self {
            GlobalQueue::Fifo(inj) => inj.steal_batch_and_pop(dest),
            GlobalQueue::Prio(q) => match relock(q).pop() {
                Some(Reverse((_, tid))) => Steal::Success(tid),
                None => Steal::Empty,
            },
        }
    }
}

/// Acquire one task for worker `me` from the global queue or a peer's
/// deque, attributing the source in `counters`. Retries transient races
/// ([`Steal::Retry`]) until every source reports a definite answer;
/// returns `None` only when the global queue and all peers were empty.
fn steal_one(
    global: &GlobalQueue,
    stealers: &[Stealer<u32>],
    me: usize,
    worker: &Worker<u32>,
    counters: &mut WorkerCounters,
) -> Option<u32> {
    loop {
        let mut contended = false;
        match global.take(worker) {
            Steal::Success(tid) => {
                counters.injector_pops += 1;
                return Some(tid);
            }
            Steal::Retry => contended = true,
            Steal::Empty => {}
        }
        // Start the victim scan just past `me` and wrap, so a herd of idle
        // workers fans out across victims instead of all draining the
        // lowest-index deques first.
        let n = stealers.len();
        for off in 1..n {
            match stealers[(me + off) % n].steal() {
                Steal::Success(tid) => {
                    counters.steals += 1;
                    return Some(tid);
                }
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
    }
}

/// Everything one worker thread accumulates privately and hands back when
/// the scope joins.
#[derive(Default)]
struct WorkerLog {
    records: Vec<TaskRecord>,
    instants: Vec<ExecInstant>,
    counters: WorkerCounters,
    stats: FaultStats,
}

/// Everything the shared attempt ladder needs, independent of which
/// executor is driving it — the single-job engine below or the multi-job
/// [`crate::pool::JobPool`]. Both push a ready task through the exact same
/// sequence: optional input-guard pre-check, write-set snapshot,
/// `catch_unwind` around the kernel (with planned fault/SDC injection),
/// output-guard verification, and rollback + bounded retry.
pub(crate) struct AttemptCtx<'a> {
    pub store: &'a TileStore,
    pub guards: Option<&'a GuardStore>,
    pub plan: Option<&'a crate::fault::FaultPlan>,
    /// Per-task retry budget after a caught panic or detected corruption.
    pub max_retries: u32,
    /// Snapshot/rollback enabled (retries or a fault plan are configured).
    pub recovery: bool,
    /// [`IntegrityMode::Full`]: verify input guards before launching.
    pub full_integrity: bool,
    /// This worker is poisoned by the fault plan (engine only).
    pub poisoned: bool,
    /// Worker index, for injected panic messages.
    pub me: usize,
    /// Run-level halt flag, re-checked between retry attempts so a long
    /// retry ladder yields promptly to cancel/deadline/drain instead of
    /// burning through its whole budget first.
    pub halt: Option<&'a AtomicBool>,
}

/// How one task's execution attempt sequence ended.
pub(crate) enum AttemptEnd {
    /// Completed (after `retried` ≥ 1 rolled-back attempts, possibly 0).
    Done { retried: bool, recomputed_sdc: bool },
    /// A poisoned worker gave the task back to its peers.
    Requeue,
    /// Out of retry budget (or no recovery enabled): abort the run.
    /// `attempts` counts every attempt made (initial try plus retries).
    Fail { attempts: u32, message: String },
    /// A commit-time guard mismatch persisted past the recompute budget
    /// (or no snapshot was available to recompute from): abort the run.
    /// `attempts` counts the recompute attempts made.
    Sdc { attempts: u32, slot: String, message: String },
    /// A pre-launch check found the task's *inputs* corrupted — damage
    /// re-running this task cannot heal.
    InputSdc { slot: String, message: String },
    /// Paged runs only: pinning the task's slots failed — a spill-file
    /// I/O error or an at-rest checksum mismatch. Nothing ran; abort.
    SpillFault { message: String },
    /// The run was halted (cancel, deadline, drain, or a sibling's error)
    /// between attempts; the task's write set is back in its pre-attempt
    /// state and the task is NOT done.
    Aborted,
}

/// Run one ready task through the full attempt ladder.
///
/// # Safety (discharged by the caller's scheduler)
/// `t` must be ready — every predecessor completed, `t` itself not — so
/// DAG order guarantees this worker holds exclusive access to `t`'s
/// read/write sets for the kernel, the snapshot, and the guard updates.
pub(crate) fn attempt_task(
    ctx: &AttemptCtx<'_>,
    t: &Task,
    tid: u32,
    wstats: &mut FaultStats,
    counters: &mut WorkerCounters,
    instant: &mut dyn FnMut(InstantKind),
) -> AttemptEnd {
    // Paged runs: pin every slot the task touches (faulting misses in from
    // the spill file) before anything — guard checks, snapshot, kernel —
    // reads or writes them. The pins outlive the whole ladder, so evicted
    // buffers can't move under a snapshot's raw pointers. Fallible, not
    // panicking: this runs outside the `catch_unwind` perimeter below.
    let pins = match ctx.store.pin_task(t) {
        Ok(p) => p,
        Err(message) => return AttemptEnd::SpillFault { message },
    };
    if let Some(p) = &pins {
        counters.tile_faults += p.demand_faults;
        counters.prefetch_hits += p.prefetch_hits;
        counters.tile_spills += p.evictions;
        if p.demand_faults > 0 {
            instant(InstantKind::TileFaulted);
        }
        if p.evictions > 0 {
            instant(InstantKind::TileSpilled);
        }
    }
    if ctx.full_integrity {
        // SAFETY: `tid` is ready, so DAG order guarantees no concurrent
        // writer of its read or write set.
        if let Some(m) = ctx.guards.and_then(|g| unsafe { g.verify_inputs(ctx.store, t) }) {
            // Corrupted *inputs* cannot be healed by re-running this task.
            wstats.sdc_detected += 1;
            instant(InstantKind::SdcDetected);
            return AttemptEnd::InputSdc { slot: m.label(), message: m.mismatch.to_string() };
        }
    }
    // SAFETY: exclusive access per the function contract — for the kernel
    // and the snapshot alike.
    let snap = ctx.recovery.then(|| unsafe { ctx.store.snapshot(t) });
    let mut attempt = 0u32;
    let mut recomputed_sdc = false;
    loop {
        // Between attempts the write set is consistent (pristine or rolled
        // back), so this is a safe point to yield to a run-level halt.
        if ctx.halt.is_some_and(|h| h.load(Ordering::Acquire)) {
            return AttemptEnd::Aborted;
        }
        let inject = ctx.poisoned || ctx.plan.is_some_and(|p| p.should_fail_attempt(tid, attempt));
        let run = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!(
                    "{INJECTED_FAULT_PREFIX}: task {tid} attempt {attempt} on worker {}",
                    ctx.me
                );
            }
            // SAFETY: DAG order, as above.
            unsafe { ctx.store.run_task(t) };
        }));
        match run {
            Ok(()) => {
                // Kernel-postcondition hook: refresh the write-set guards
                // from the fresh output while it is "hot". The window
                // between this hook and the commit-time check below is
                // where an SDC strike lands.
                if let Some(g) = ctx.guards {
                    // SAFETY: DAG order, as above.
                    unsafe { g.refresh_task(ctx.store, t) };
                }
                if attempt == 0 {
                    if let Some(fault) = ctx.plan.and_then(|p| p.sdc_for(tid)) {
                        // The strike happens regardless of the integrity
                        // mode — only the *verification* is optional.
                        // SAFETY: DAG order, as above.
                        unsafe { ctx.store.apply_sdc(t, &fault) };
                        wstats.sdc_injected += 1;
                    }
                }
                let found = ctx.guards.and_then(|g| unsafe { g.verify_outputs(ctx.store, t) });
                let Some(m) = found else {
                    return AttemptEnd::Done { retried: attempt > 0, recomputed_sdc };
                };
                wstats.sdc_detected += 1;
                instant(InstantKind::SdcDetected);
                if let Some(s) = &snap {
                    // SAFETY: exclusive access, as above.
                    unsafe { ctx.store.rollback(s) };
                    wstats.tiles_rolled_back += s.tiles() as u32;
                }
                if snap.is_some() && attempt < ctx.max_retries {
                    attempt += 1;
                    wstats.tasks_reexecuted += 1;
                    counters.retries += 1;
                    recomputed_sdc = true;
                    instant(InstantKind::SdcRecomputed);
                    continue;
                }
                return AttemptEnd::Sdc {
                    attempts: attempt,
                    slot: m.label(),
                    message: m.mismatch.to_string(),
                };
            }
            Err(payload) => {
                wstats.panics_caught += 1;
                counters.panics_caught += 1;
                instant(InstantKind::PanicCaught);
                if let Some(s) = &snap {
                    // SAFETY: exclusive access, as above.
                    unsafe { ctx.store.rollback(s) };
                    wstats.tiles_rolled_back += s.tiles() as u32;
                }
                if ctx.poisoned {
                    return AttemptEnd::Requeue;
                }
                if snap.is_some() && attempt < ctx.max_retries {
                    attempt += 1;
                    wstats.tasks_reexecuted += 1;
                    counters.retries += 1;
                    instant(InstantKind::Retry);
                    continue;
                }
                return AttemptEnd::Fail { attempts: attempt + 1, message: panic_message(payload) };
            }
        }
    }
}

/// The shared executor engine behind every parallel entry point.
///
/// Workers pull tasks work-stealing style exactly as before; on top of
/// that, each task runs inside `catch_unwind` so a panicking kernel (real
/// or injected by the [`crate::FaultPlan`]) can be retried against a
/// pre-execution snapshot of its write-set, reported as a typed error, or —
/// for poisoned workers — handed back to healthy peers. A watchdog thread
/// converts lack of progress into [`ExecError::Stalled`], and the final
/// "pending tasks" state of the old executor is a typed error instead of
/// an assert.
fn run_engine(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    opts: &ExecOptions,
    trace: bool,
) -> Result<(TFactors, FaultStats, Option<ExecTrace>), ExecError> {
    let mut f = TFactors::allocate_for(graph);
    let limit = graph.tasks().len();
    let (stats, exec_trace) = run_engine_segment(graph, a, &mut f, opts, trace, None, limit)?;
    Ok((f, stats, exec_trace))
}

/// The engine behind [`run_engine`] and the checkpoint/resume drivers in
/// [`crate::checkpoint`]: run the sub-DAG of tasks with index `< limit`
/// that are not already marked in `completed`, writing into a
/// caller-provided [`TFactors`].
///
/// Program order is panel-major and topological, and every predecessor of
/// a task precedes it in the task list, so a prefix `0..limit` at a panel
/// boundary is dependency-closed: running it to quiescence yields a
/// consistent state that can be serialized and later resumed. `completed`
/// must be closed under predecessors (every predecessor of a completed
/// task is completed); the ready frontier is reconstructed by discounting
/// completed predecessors from each remaining task's in-degree.
pub(crate) fn run_engine_segment(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    f: &mut TFactors,
    opts: &ExecOptions,
    trace: bool,
    completed: Option<&[bool]>,
    limit: usize,
) -> Result<(FaultStats, Option<ExecTrace>), ExecError> {
    let nthreads = opts.nthreads.max(1);
    let b = graph.b();
    let ib = opts.ib.unwrap_or(b);
    if a.mt() != graph.mt() || a.nt() != graph.nt() || a.b() != b {
        return Err(ExecError::Config {
            message: format!(
                "matrix is {}x{} tiles of size {} but the graph was built for {}x{} of size {b}",
                a.mt(),
                a.nt(),
                a.b(),
                graph.mt(),
                graph.nt()
            ),
        });
    }
    if ib == 0 || ib > b {
        return Err(ExecError::Config {
            message: format!("inner block size {ib} must be in 1..={b}"),
        });
    }
    let n = graph.tasks().len();
    if limit > n {
        return Err(ExecError::Config {
            message: format!("segment limit {limit} exceeds the task count {n}"),
        });
    }
    if completed.is_some_and(|c| c.len() != n) {
        return Err(ExecError::Config {
            message: format!(
                "completed bitmap has {} entries for {n} tasks",
                completed.map_or(0, <[bool]>::len)
            ),
        });
    }
    let plan = opts.plan.as_ref().filter(|p| !p.is_empty());
    if plan.is_some_and(|p| p.loses_any_completion()) && opts.watchdog.is_none() {
        return Err(ExecError::Config {
            message: "a fault plan that loses completions requires a watchdog".to_string(),
        });
    }
    let recovery = opts.recovery_enabled();
    let is_done = |tid: usize| completed.is_some_and(|c| c[tid]);

    let epoch = Instant::now();
    // Page the tile store when a resident budget is set and the run's
    // allocated buffers exceed it; otherwise keep the flat resident store
    // (zero per-access overhead, bitwise-identical results either way).
    let tile_bytes = (b * b * 8) as u64;
    let allocated_slots = a.mt() * a.nt()
        + [&f.vg, &f.tg, &f.tk]
            .iter()
            .map(|fam| fam.iter().filter(|s| s.is_some()).count())
            .sum::<usize>();
    let allocated_bytes = allocated_slots as u64 * tile_bytes;
    let mut store = match opts.resident_budget.filter(|&rb| rb < allocated_bytes) {
        Some(rb) => TileStore::paged_with_ib(a, f, ib, rb, opts.spill_dir.as_deref())
            .map_err(|message| ExecError::SpillIo { message })?,
        None => TileStore::with_ib(a, f, ib),
    };
    // One guard per slot, shared by all workers under the same DAG
    // exclusive-writer discipline as the tile buffers themselves.
    let guard_store = opts.integrity.is_on().then(|| GuardStore::new(graph.mt(), graph.nt()));
    // Reconstruct the frontier: a remaining task's effective in-degree
    // counts only its not-yet-completed predecessors.
    let mut indeg0: Vec<u32> = graph.in_degrees().to_vec();
    if completed.is_some() {
        for t in 0..n {
            if is_done(t) {
                for &s in graph.successors(t) {
                    indeg0[s as usize] -= 1;
                }
            }
        }
    }
    let active = (0..limit).filter(|&t| !is_done(t)).count();
    let indeg: Vec<AtomicU32> = indeg0.iter().map(|&d| AtomicU32::new(d)).collect();
    let done: Vec<AtomicBool> = (0..n).map(|t| AtomicBool::new(is_done(t))).collect();
    let remaining = AtomicUsize::new(active);
    let alive = AtomicUsize::new(nthreads);
    let halt = AtomicBool::new(false);
    let error: Mutex<Option<ExecError>> = Mutex::new(None);
    // Static priority keys under the active policy (lower sorts first);
    // the FIFO queue ignores them.
    let ranks: Vec<u64> = sched::priorities(graph, opts.policy);
    let global = GlobalQueue::new(opts.policy);
    for (tid, &d) in indeg0.iter().enumerate().take(limit) {
        if d == 0 && !is_done(tid) {
            // Ready-frontier lookahead: queue the seed tasks' slots for
            // background fault-in before any worker runs.
            store.prefetch_task(&graph.tasks()[tid]);
            global.push(tid as u32, &ranks);
        }
    }
    let workers: Vec<Worker<u32>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = workers.iter().map(|w| w.stealer()).collect();
    let mut logs: Vec<WorkerLog> = (0..nthreads).map(|_| WorkerLog::default()).collect();

    std::thread::scope(|scope| {
        if let Some(window) = opts.watchdog {
            let (remaining, halt, error) = (&remaining, &halt, &error);
            let (indeg, done) = (&indeg, &done);
            scope.spawn(move || {
                // Short poll slices, and shutdown checked *before* each
                // sleep: a worker error (`halt`) or completion must not pay
                // another full poll interval of join latency. The stall
                // window itself is still measured against `last_change`, so
                // polling more often than window/8 only sharpens detection.
                let poll = (window / 8).clamp(Duration::from_millis(1), Duration::from_millis(5));
                let mut last = remaining.load(Ordering::Acquire);
                let mut last_change = Instant::now();
                loop {
                    let rem = remaining.load(Ordering::Acquire);
                    if rem == 0 || halt.load(Ordering::Acquire) {
                        break;
                    }
                    if rem != last {
                        last = rem;
                        last_change = Instant::now();
                    } else if last_change.elapsed() >= window {
                        set_error(
                            error,
                            ExecError::Stalled(stall_report(
                                StallCause::WatchdogTimeout,
                                window,
                                indeg,
                                done,
                                rem,
                            )),
                        );
                        halt.store(true, Ordering::Release);
                        break;
                    }
                    std::thread::sleep(poll);
                }
            });
        }
        for ((me, worker), log) in workers.into_iter().enumerate().zip(logs.iter_mut()) {
            let store = &store;
            let guards = guard_store.as_ref();
            let (indeg, done) = (&indeg, &done);
            let (remaining, alive, halt, error) = (&remaining, &alive, &halt, &error);
            let global = &global;
            // Under a prioritizing policy the release path consults the
            // rank table; `None` selects the legacy all-local FIFO path.
            let prio: Option<&[u64]> =
                (opts.policy != SchedPolicy::Fifo).then_some(ranks.as_slice());
            let ranks = ranks.as_slice();
            let stealers = &stealers;
            let tasks: &[Task] = graph.tasks();
            let graph = &*graph;
            scope.spawn(move || {
                // Expected (caught) panics shouldn't spam stderr through
                // the panic hook while recovery is handling them — but
                // only on this worker thread; the rest of the process
                // keeps its backtraces.
                let _quiet = recovery.then(QuietPanics::engage);
                let backoff = Backoff::new();
                let poisoned = plan.is_some_and(|p| p.is_poisoned(me));
                let mut strikes = 0u32;
                let wstats = &mut log.stats;
                let counters = &mut log.counters;
                let mut instant = |kind: InstantKind, task: u32| {
                    if trace {
                        log.instants.push(ExecInstant {
                            kind,
                            task,
                            worker: me as u16,
                            time: epoch.elapsed().as_secs_f64(),
                        });
                    }
                };
                loop {
                    if halt.load(Ordering::Acquire) {
                        break;
                    }
                    let next = match worker.pop() {
                        Some(tid) => {
                            counters.local_pops += 1;
                            Some(tid)
                        }
                        None => steal_one(global, stealers, me, &worker, counters),
                    };
                    let Some(tid) = next else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        if backoff.is_completed() {
                            // The spin/yield ladder is exhausted: park in
                            // bounded naps instead of burning the core
                            // through a long serial tail. New work is still
                            // picked up within ~IDLE_PARK. Re-check `halt`
                            // first: a cancel/abort raised while this worker
                            // was scanning must not pay another park of
                            // shutdown latency.
                            if halt.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(IDLE_PARK);
                        } else {
                            backoff.snooze();
                        }
                        continue;
                    };
                    backoff.reset();
                    let t = &tasks[tid as usize];
                    let ctx = AttemptCtx {
                        store,
                        guards,
                        plan,
                        max_retries: opts.max_retries,
                        recovery,
                        full_integrity: opts.integrity == IntegrityMode::Full,
                        poisoned,
                        me,
                        halt: Some(halt),
                    };
                    let t0 = trace.then(|| epoch.elapsed().as_secs_f64());
                    // SAFETY contract of `attempt_task`: every predecessor
                    // of `tid` has completed (its in-degree reached 0) and
                    // `tid` has not, so its read/write sets are exclusively
                    // this worker's until completion.
                    let outcome =
                        attempt_task(&ctx, t, tid, wstats, counters, &mut |k| instant(k, tid));
                    match outcome {
                        AttemptEnd::Done { retried, recomputed_sdc } => {
                            if retried {
                                wstats.tasks_recovered += 1;
                            }
                            if recomputed_sdc {
                                wstats.sdc_recomputed += 1;
                            }
                            if let Some(start) = t0 {
                                log.records.push(TaskRecord {
                                    task: tid,
                                    worker: me as u16,
                                    start,
                                    end: epoch.elapsed().as_secs_f64(),
                                });
                            }
                            done[tid as usize].store(true, Ordering::Release);
                            if plan.is_some_and(|p| p.loses_completion(tid)) {
                                // Dropped completion: successors are never
                                // released and `remaining` stays high; the
                                // (mandatory) watchdog reports the stall.
                                continue;
                            }
                            // Successors past the segment limit stay
                            // pending for the next segment/resume. Under
                            // FIFO every released successor goes to this
                            // worker's LIFO deque (the data-reuse heuristic
                            // of DAGuE §IV-C); under a prioritizing policy
                            // the worker keeps only the best-ranked release
                            // for itself and publishes the rest on the
                            // shared priority queue, so the globally most
                            // urgent work is never buried in one deque.
                            let mut keep: Option<u32> = None;
                            for &s in graph.successors(tid as usize) {
                                if indeg[s as usize].fetch_sub(1, Ordering::AcqRel) == 1
                                    && (s as usize) < limit
                                {
                                    // The successor just became ready:
                                    // prefetch its slots so the fault-in
                                    // overlaps whatever runs before it.
                                    store.prefetch_task(&tasks[s as usize]);
                                    match prio {
                                        None => worker.push(s),
                                        Some(p) => match keep {
                                            Some(k) if p[s as usize] < p[k as usize] => {
                                                global.push(k, p);
                                                keep = Some(s);
                                            }
                                            Some(_) => global.push(s, p),
                                            None => keep = Some(s),
                                        },
                                    }
                                }
                            }
                            if let Some(s) = keep {
                                worker.push(s);
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        AttemptEnd::Requeue => {
                            strikes += 1;
                            wstats.tasks_reexecuted += 1;
                            counters.requeues += 1;
                            instant(InstantKind::Requeue, tid);
                            global.push(tid, ranks);
                            if strikes >= POISON_STRIKES {
                                // The poisoned worker "dies"; its queued
                                // work stays stealable by healthy peers.
                                wstats.workers_lost += 1;
                                break;
                            }
                        }
                        AttemptEnd::Sdc { attempts, slot, message } => {
                            set_error(
                                error,
                                ExecError::SdcDetected {
                                    task: tid,
                                    kernel: t.kind,
                                    slot,
                                    attempts,
                                    message,
                                },
                            );
                            halt.store(true, Ordering::Release);
                            break;
                        }
                        AttemptEnd::InputSdc { slot, message } => {
                            set_error(
                                error,
                                ExecError::SdcDetected {
                                    task: tid,
                                    kernel: t.kind,
                                    slot,
                                    attempts: 0,
                                    message,
                                },
                            );
                            halt.store(true, Ordering::Release);
                            break;
                        }
                        AttemptEnd::Aborted => {
                            // Someone else halted the run and recorded why;
                            // the task is untouched and not done.
                            break;
                        }
                        AttemptEnd::SpillFault { message } => {
                            set_error(error, ExecError::SpillIo { message });
                            halt.store(true, Ordering::Release);
                            break;
                        }
                        AttemptEnd::Fail { attempts, message } => {
                            let e = if recovery {
                                ExecError::TaskFailed {
                                    task: tid,
                                    kernel: t.kind,
                                    attempts,
                                    message,
                                }
                            } else {
                                ExecError::WorkerPanicked {
                                    task: tid,
                                    kernel: t.kind,
                                    worker: me,
                                    message,
                                }
                            };
                            set_error(error, e);
                            halt.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                if alive.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let rem = remaining.load(Ordering::Acquire);
                    if rem > 0 && !halt.load(Ordering::Acquire) {
                        set_error(
                            error,
                            ExecError::Stalled(stall_report(
                                StallCause::AllWorkersExited,
                                Duration::ZERO,
                                indeg,
                                done,
                                rem,
                            )),
                        );
                        halt.store(true, Ordering::Release);
                    }
                }
            });
        }
    });
    // Dissolve the paged cache before anything touches `a`/`f` again —
    // on success *and* on error paths, so the matrix is never left hollow.
    // The traffic summary is snapshotted first: unpage mass-faults every
    // slot back in and would otherwise inflate the counters.
    let spill = store.spill_summary();
    let unpage_err = store.unpage(a, f).err();
    if let Some(e) = error.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        return Err(e);
    }
    if let Some(message) = unpage_err {
        return Err(ExecError::SpillIo { message });
    }
    let rem = remaining.load(Ordering::Acquire);
    if rem != 0 {
        // Unreachable by construction (every exit path above reports an
        // error first), but kept as a typed error rather than an assert.
        return Err(ExecError::Stalled(stall_report(
            StallCause::AllWorkersExited,
            Duration::ZERO,
            &indeg,
            &done,
            rem,
        )));
    }
    let mut stats = FaultStats::default();
    for log in &logs {
        stats.merge(&log.stats);
    }
    let exec_trace = trace.then(|| {
        let wall = epoch.elapsed().as_secs_f64();
        let counters = logs.iter().map(|l| l.counters).collect();
        let mut records = Vec::new();
        let mut instants = Vec::new();
        for log in logs {
            records.extend(log.records);
            instants.extend(log.instants);
        }
        records.sort_by(|a, b| a.start.total_cmp(&b.start));
        instants.sort_by(|a, b| a.time.total_cmp(&b.time));
        ExecTrace { nthreads, policy: opts.policy, records, instants, counters, wall, spill }
    });
    Ok((stats, exec_trace))
}

fn run_parallel(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    nthreads: usize,
    trace: bool,
    ib: usize,
) -> (TFactors, Option<ExecTrace>) {
    assert!(nthreads > 0, "need at least one thread");
    if nthreads == 1 && !trace {
        return (execute_serial_ib(graph, a, ib), None);
    }
    let opts = ExecOptions { nthreads, ib: Some(ib), ..Default::default() };
    match run_engine(graph, a, &opts, trace) {
        Ok((f, _, t)) => (f, t),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::ElimOp;
    use hqr_tile::DenseMatrix;

    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        v
    }

    fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        // Per-panel binary tree with TT kernels.
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            let rows: Vec<u32> = (k as u32..mt as u32).collect();
            let mut stride = 1;
            while stride < rows.len() {
                let mut idx = 0;
                while idx + stride < rows.len() {
                    v.push(ElimOp::new(k as u32, rows[idx + stride], rows[idx], false));
                    idx += 2 * stride;
                }
                stride *= 2;
            }
        }
        v
    }

    /// R from the serial tile factorization must match the dense reference
    /// up to row signs, and the norm must be preserved.
    fn check_r_against_reference(mt: usize, nt: usize, b: usize, elims: &[ElimOp]) {
        let mut a = hqr_tile::TiledMatrix::random(mt, nt, b, 7);
        let a0 = a.to_dense();
        let g = TaskGraph::build(mt, nt, b, elims);
        let _f = execute_serial(&g, &mut a);
        let r = a.to_dense().upper_triangle();
        let (_, r_ref) = hqr_kernels::reference::dense_householder_qr(&a0);
        for d in 0..(nt * b).min(mt * b) {
            let sign = if r.get(d, d) * r_ref.get(d, d) >= 0.0 { 1.0 } else { -1.0 };
            for j in d..nt * b {
                let diff = (r.get(d, j) - sign * r_ref.get(d, j)).abs();
                assert!(diff < 1e-11, "R mismatch at ({d},{j}): {diff}");
            }
        }
    }

    #[test]
    fn serial_flat_tree_r_matches_reference() {
        check_r_against_reference(4, 3, 4, &flat_elims(4, 3));
    }

    #[test]
    fn serial_binary_tree_r_matches_reference() {
        check_r_against_reference(5, 3, 4, &binary_elims(5, 3));
    }

    #[test]
    fn serial_square_matrix() {
        check_r_against_reference(4, 4, 3, &flat_elims(4, 4));
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // The DAG fixes the arithmetic: any execution order produces
        // bitwise-identical tiles.
        let (mt, nt, b) = (6, 4, 4);
        let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
        let mut a1 = hqr_tile::TiledMatrix::random(mt, nt, b, 11);
        let mut a2 = a1.clone();
        let _f1 = execute_serial(&g, &mut a1);
        let _f2 = execute_parallel(&g, &mut a2, 4);
        assert_eq!(a1.to_dense().data(), a2.to_dense().data(), "parallel != serial");
    }

    #[test]
    fn parallel_flat_matches_serial() {
        let (mt, nt, b) = (8, 2, 3);
        let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
        let mut a1 = hqr_tile::TiledMatrix::random(mt, nt, b, 13);
        let mut a2 = a1.clone();
        let _ = execute_serial(&g, &mut a1);
        let _ = execute_parallel(&g, &mut a2, 3);
        assert_eq!(a1.to_dense().data(), a2.to_dense().data());
    }

    #[test]
    fn factorization_preserves_column_norms_of_r() {
        // ‖R e_j‖ = ‖A e_j‖ since Q is orthogonal — true per panel head.
        let (mt, nt, b) = (4, 2, 4);
        let mut a = hqr_tile::TiledMatrix::random(mt, nt, b, 17);
        let a0 = a.to_dense();
        let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
        let _ = execute_serial(&g, &mut a);
        let r = a.to_dense().upper_triangle();
        // First column: |r00| == ‖a[:,0]‖.
        let col0: f64 = (0..mt * b).map(|i| a0.get(i, 0).powi(2)).sum::<f64>().sqrt();
        assert!((r.get(0, 0).abs() - col0).abs() < 1e-12);
    }

    #[test]
    fn tfactors_allocation_is_sparse() {
        let g = TaskGraph::build(3, 2, 2, &flat_elims(3, 2));
        let f = TFactors::allocate_for(&g);
        // GEQRT only on diagonal rows (flat tree = TS everywhere).
        assert!(f.tg(0, 0).is_some());
        assert!(f.tg(1, 1).is_some());
        assert!(f.tg(2, 0).is_none(), "TS victims have no GEQRT T");
        assert!(f.tk(1, 0).is_some());
        assert!(f.tk(0, 0).is_none(), "the diagonal row is never killed");
    }

    #[test]
    fn single_thread_parallel_falls_back_to_serial() {
        let g = TaskGraph::build(3, 3, 2, &flat_elims(3, 3));
        let mut a1 = hqr_tile::TiledMatrix::random(3, 3, 2, 19);
        let mut a2 = a1.clone();
        let _ = execute_serial(&g, &mut a1);
        let _ = execute_parallel(&g, &mut a2, 1);
        assert_eq!(a1.to_dense().data(), a2.to_dense().data());
    }

    #[test]
    fn traced_execution_matches_untraced() {
        let (mt, nt, b) = (6, 4, 4);
        let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
        let mut a1 = hqr_tile::TiledMatrix::random(mt, nt, b, 29);
        let mut a2 = a1.clone();
        let _ = execute_parallel(&g, &mut a1, 3);
        let (_, trace) = execute_parallel_traced(&g, &mut a2, 3);
        assert_eq!(a1.to_dense().data(), a2.to_dense().data());
        assert_eq!(trace.records.len(), g.tasks().len(), "every task recorded");
        assert_eq!(trace.nthreads, 3);
        let util = trace.utilization();
        assert!(util > 0.0 && util <= 1.0 + 1e-9, "utilization {util}");
        // Records are non-overlapping per worker.
        let mut last_end = [0.0f64; 3];
        for r in &trace.records {
            assert!(r.start >= last_end[r.worker as usize] - 1e-9);
            assert!(r.end >= r.start);
            last_end[r.worker as usize] = r.end;
        }
        // Kernel-time histogram covers all busy time.
        let per_kind: f64 = trace.kernel_seconds(g.tasks()).iter().sum();
        let busy: f64 = trace.per_worker_busy().iter().sum();
        assert!((per_kind - busy).abs() < 1e-9);
    }

    #[test]
    fn traced_single_thread_works() {
        let g = TaskGraph::build(3, 2, 3, &flat_elims(3, 2));
        let mut a = hqr_tile::TiledMatrix::random(3, 2, 3, 30);
        let (_, trace) = execute_parallel_traced(&g, &mut a, 1);
        assert_eq!(trace.records.len(), g.tasks().len());
        assert_eq!(trace.nthreads, 1);
    }

    #[test]
    fn steal_scan_starts_past_self() {
        // Regression: the victim scan used to start at index 0, so every
        // idle worker hammered the lowest-index deques first.
        let global = GlobalQueue::new(SchedPolicy::Fifo);
        let workers: Vec<Worker<u32>> = (0..4).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<u32>> = workers.iter().map(|w| w.stealer()).collect();
        for (i, w) in workers.iter().enumerate() {
            if i != 1 {
                w.push(i as u32 * 10);
            }
        }
        let mut c = WorkerCounters::default();
        let got = steal_one(&global, &stealers, 1, &workers[1], &mut c);
        assert_eq!(got, Some(20), "worker 1 must try worker 2 first, not worker 0");
        assert_eq!(c.steals, 1);
        assert_eq!(c.injector_pops, 0);
    }

    #[test]
    fn steal_scan_wraps_around() {
        let global = GlobalQueue::new(SchedPolicy::Fifo);
        let workers: Vec<Worker<u32>> = (0..4).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<u32>> = workers.iter().map(|w| w.stealer()).collect();
        workers[0].push(7); // only worker 0 has work
        let mut c = WorkerCounters::default();
        let got = steal_one(&global, &stealers, 2, &workers[2], &mut c);
        assert_eq!(got, Some(7), "scan from worker 2 must wrap 3 -> 0");
        assert_eq!(c.steals, 1);
        // Nothing anywhere: a definite miss, with counters untouched.
        assert_eq!(steal_one(&global, &stealers, 2, &workers[2], &mut c), None);
        assert_eq!(c.steals, 1);
    }

    #[test]
    fn priority_queue_pops_best_rank_first() {
        let global = GlobalQueue::new(SchedPolicy::CriticalPath);
        let ranks = [5u64, 1, 9, 3];
        for t in 0..4u32 {
            global.push(t, &ranks);
        }
        let w = Worker::new_lifo();
        let mut order = Vec::new();
        while let Steal::Success(t) = global.take(&w) {
            order.push(t);
        }
        assert_eq!(order, vec![1, 3, 0, 2], "lowest key first");
    }

    #[test]
    fn all_policies_produce_identical_factorizations_and_report_themselves() {
        let (mt, nt, b) = (8, 3, 4);
        let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
        let a0 = hqr_tile::TiledMatrix::random(mt, nt, b, 37);
        let mut serial = a0.clone();
        let _ = execute_serial(&g, &mut serial);
        let reference = serial.to_dense();
        for policy in SchedPolicy::ALL {
            let mut a = a0.clone();
            let opts = ExecOptions { nthreads: 4, policy, ..Default::default() };
            let (_, _, tr) = try_execute_traced(&g, &mut a, &opts).unwrap();
            assert_eq!(tr.policy, policy, "trace must report the policy that ran");
            assert_eq!(reference.data(), a.to_dense().data(), "{policy:?} diverged from serial");
            // Counter accounting holds under every acquisition path.
            let acquired: u64 =
                tr.counters.iter().map(|c| c.local_pops + c.injector_pops + c.steals).sum();
            assert_eq!(acquired, g.tasks().len() as u64);
        }
    }

    #[test]
    fn zero_matrix_stays_zero() {
        let (mt, nt, b) = (3, 2, 3);
        let mut a = hqr_tile::TiledMatrix::zeros(mt, nt, b);
        let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
        let _ = execute_serial(&g, &mut a);
        assert_eq!(a.frob_norm(), 0.0);
    }

    #[test]
    fn orthogonal_transform_preserves_total_norm() {
        let (mt, nt, b) = (5, 2, 3);
        let mut a = hqr_tile::TiledMatrix::random(mt, nt, b, 23);
        let before = a.frob_norm();
        let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
        let _ = execute_serial(&g, &mut a);
        // After factorization the matrix holds R (upper) and V blocks; the
        // R part alone cannot exceed, and its columns' norms match A's.
        let r = a.to_dense().upper_triangle();
        assert!(r.frob_norm() <= before + 1e-12);
        let _ = DenseMatrix::zeros(1, 1);
    }
}
