//! Durable checkpoint/restart for tiled QR factorizations.
//!
//! The elimination-list DAGs of the paper have a structural property this
//! module exploits: tasks are emitted panel-major, and every dependency of
//! a panel-`k` task lives in a panel `≤ k`.  The task prefix belonging to
//! panels `0..=p` is therefore dependency-closed, and quiescing the
//! executor at a panel boundary yields a globally consistent state with no
//! in-flight coordination — exactly the "natural quiescent points" that
//! make consistent checkpoints cheap for tiled QR.
//!
//! A checkpoint is a single binary file (section container from
//! [`hqr_tile::io`], FNV-1a checksummed, written atomically via a sibling
//! temp file + rename) holding:
//!
//! * a header (`mt`, `nt`, `b`, `ib`, task count, completed count, graph
//!   fingerprint, caller seed),
//! * the elimination list (so `resume` can rebuild the identical graph),
//! * the completed-task bitmap,
//! * the tile store, and
//! * the three `TFactors` buffer families (presence bitmap + packed
//!   payloads).
//!
//! The [`graph_fingerprint`] binds a checkpoint to the exact plan that
//! produced it: resuming against a different elimination list, tile
//! layout, or inner block size is rejected with
//! [`CheckpointError::FingerprintMismatch`] instead of producing silent
//! numerical garbage.

use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant};

use hqr_tile::io::{
    bytes_of_f64s, bytes_of_u64s, f64s_of_bytes, fnv1a64, tiled_from_bytes, tiled_to_bytes,
    u64s_of_bytes, BinFormatError, SectionReader, SectionWriter,
};
use hqr_tile::TiledMatrix;

use crate::analysis::kind_index;
use crate::elim::ElimOp;
use crate::error::ExecError;
use crate::exec::{
    run_engine_segment, ExecInstant, ExecTrace, InstantKind, TFactors, WorkerCounters,
};
use crate::fault::{ExecOptions, FaultStats};
use crate::graph::TaskGraph;

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"HQRCKPT\0";
/// Checkpoint container version.
pub const CHECKPOINT_VERSION: u32 = 1;

const SEC_HEADER: u32 = 1;
const SEC_ELIMS: u32 = 2;
const SEC_DONE: u32 = 3;
const SEC_TILES: u32 = 4;
const SEC_VG: u32 = 5;
const SEC_TG: u32 = 6;
const SEC_TK: u32 = 7;

/// Why a checkpoint could not be written, read, or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The on-disk container is unreadable, truncated, corrupt, or
    /// malformed (see [`BinFormatError`] for the exact failure).
    Format(BinFormatError),
    /// The checkpoint was taken for a different plan (elimination list,
    /// tile layout, or inner block size changed since it was written).
    FingerprintMismatch {
        /// Fingerprint recomputed from the graph being resumed.
        expected: u64,
        /// Fingerprint stored in the checkpoint file.
        found: u64,
    },
    /// The file decoded but its contents are not a consistent runtime
    /// state (bitmap not closed under dependencies, factor buffers that
    /// don't match the graph's allocation pattern, bad policy, …).
    Inconsistent {
        /// What invariant failed.
        message: String,
    },
    /// Execution failed after the checkpoint machinery handed control to
    /// the engine.
    Exec(ExecError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: graph expects {expected:#018x}, \
                 file holds {found:#018x} (elimination list, tile layout, or ib changed)"
            ),
            CheckpointError::Inconsistent { message } => {
                write!(f, "inconsistent checkpoint: {message}")
            }
            CheckpointError::Exec(e) => write!(f, "execution error during resume: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Format(e) => Some(e),
            CheckpointError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BinFormatError> for CheckpointError {
    fn from(e: BinFormatError) -> Self {
        CheckpointError::Format(e)
    }
}

impl From<ExecError> for CheckpointError {
    fn from(e: ExecError) -> Self {
        CheckpointError::Exec(e)
    }
}

fn inconsistent(message: impl Into<String>) -> CheckpointError {
    CheckpointError::Inconsistent { message: message.into() }
}

/// Structural fingerprint of a task graph plus the inner block size it
/// will be executed with.
///
/// FNV-1a over `(mt, nt, b, ib)` and every task's `(kind, k, i, piv, j)`.
/// Two graphs share a fingerprint iff they would run the same kernels on
/// the same tiles in the same program order — the condition under which a
/// checkpoint of one is a valid mid-run state of the other.
pub fn graph_fingerprint(graph: &TaskGraph, ib: usize) -> u64 {
    let mut words: Vec<u64> = Vec::with_capacity(5 + 2 * graph.tasks().len());
    words.extend([
        graph.mt() as u64,
        graph.nt() as u64,
        graph.b() as u64,
        ib as u64,
        graph.tasks().len() as u64,
    ]);
    for t in graph.tasks() {
        words.push(
            ((kind_index(t.kind) as u64) << 48)
                | ((t.k as u64) << 32)
                | ((t.i as u64) << 16)
                | t.piv as u64,
        );
        words.push(t.j as u64);
    }
    fnv1a64(&bytes_of_u64s(&words))
}

/// When the checkpoint driver writes a checkpoint.
///
/// Both knobs must hold for a write to happen: the run has crossed
/// `every_panels` more panel boundaries since the last write, AND at least
/// `min_interval` wall-clock time has elapsed.  The default (`every
/// panel`, no minimum interval) checkpoints at every quiescent point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `every_panels` completed panels (≥ 1).
    pub every_panels: usize,
    /// Skip a due checkpoint if the previous one was written less than
    /// this long ago (rate limiting for fast panels).
    pub min_interval: Duration,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every_panels: 1, min_interval: Duration::ZERO }
    }
}

impl CheckpointPolicy {
    /// Checkpoint at every `every_panels`-th panel boundary.
    pub fn every(every_panels: usize) -> Self {
        CheckpointPolicy { every_panels, ..Default::default() }
    }
}

/// A fully decoded checkpoint: everything needed to rebuild the graph and
/// continue the factorization.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Tile rows of the checkpointed matrix.
    pub mt: usize,
    /// Tile columns.
    pub nt: usize,
    /// Tile size.
    pub b: usize,
    /// Inner block size the run was using (`== b` for unblocked kernels).
    pub ib: usize,
    /// Fingerprint of the graph + `ib` this state belongs to.
    pub fingerprint: u64,
    /// Caller-supplied metadata word (the CLI stores the input RNG seed).
    pub input_seed: u64,
    /// The elimination list the graph was built from.
    pub elims: Vec<ElimOp>,
    /// Per-task completion bitmap, program order.
    pub completed: Vec<bool>,
    /// The tile store at the quiescent point.
    pub a: TiledMatrix,
    /// Householder reflectors and T factors accumulated so far.
    pub factors: TFactors,
}

impl Checkpoint {
    /// Number of tasks marked complete.
    pub fn completed_tasks(&self) -> usize {
        self.completed.iter().filter(|&&d| d).count()
    }

    /// Rebuild the task graph this checkpoint was taken for.
    pub fn rebuild_graph(&self) -> Result<TaskGraph, CheckpointError> {
        let graph = TaskGraph::try_build(self.mt, self.nt, self.b, &self.elims)
            .map_err(|e| inconsistent(format!("stored elimination list is invalid: {e}")))?;
        if graph.tasks().len() != self.completed.len() {
            return Err(inconsistent(format!(
                "stored bitmap covers {} tasks but the elimination list builds {}",
                self.completed.len(),
                graph.tasks().len()
            )));
        }
        Ok(graph)
    }

    /// Check this checkpoint is a valid mid-run state of `graph` executed
    /// with inner block size `ib`.
    pub fn validate_against(&self, graph: &TaskGraph, ib: usize) -> Result<(), CheckpointError> {
        let expected = graph_fingerprint(graph, ib);
        if expected != self.fingerprint {
            return Err(CheckpointError::FingerprintMismatch { expected, found: self.fingerprint });
        }
        if graph.tasks().len() != self.completed.len() {
            return Err(inconsistent("bitmap length does not match task count"));
        }
        // Closure under dependencies: no completed task may have a
        // pending predecessor.
        for p in 0..graph.tasks().len() {
            if self.completed[p] {
                continue;
            }
            for &s in graph.successors(p) {
                if self.completed[s as usize] {
                    return Err(inconsistent(format!(
                        "completed task {s} depends on pending task {p}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Pack an elimination list as `[count, (k, victim, killer, ts)*]` words —
/// the encoding shared by checkpoint files and the service queue format.
pub(crate) fn elims_to_words(elims: &[ElimOp]) -> Vec<u64> {
    let mut words: Vec<u64> = Vec::with_capacity(1 + 4 * elims.len());
    words.push(elims.len() as u64);
    for e in elims {
        words.extend([e.k as u64, e.victim as u64, e.killer as u64, e.ts as u64]);
    }
    words
}

/// Decode the inverse of [`elims_to_words`], reporting malformed input
/// against section `tag`.
pub(crate) fn elims_from_words(tag: u32, words: &[u64]) -> Result<Vec<ElimOp>, CheckpointError> {
    let count = *words.first().ok_or_else(|| {
        CheckpointError::Format(BinFormatError::BadSection {
            tag,
            message: "missing elimination count".into(),
        })
    })? as usize;
    if words.len() != 1 + 4 * count {
        return Err(CheckpointError::Format(BinFormatError::BadSection {
            tag,
            message: format!("{} words for {count} eliminations", words.len()),
        }));
    }
    let mut elims = Vec::with_capacity(count);
    for chunk in words[1..].chunks_exact(4) {
        let narrow = |v: u64, what: &str| {
            u32::try_from(v).map_err(|_| {
                CheckpointError::Format(BinFormatError::BadSection {
                    tag,
                    message: format!("{what} {v} overflows u32"),
                })
            })
        };
        elims.push(ElimOp::new(
            narrow(chunk[0], "panel")?,
            narrow(chunk[1], "victim")?,
            narrow(chunk[2], "killer")?,
            chunk[3] != 0,
        ));
    }
    Ok(elims)
}

fn bitmap_to_words(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

fn bitmap_from_words(tag: u32, words: &[u64], nbits: usize) -> Result<Vec<bool>, CheckpointError> {
    if words.len() != nbits.div_ceil(64) {
        return Err(CheckpointError::Format(BinFormatError::BadSection {
            tag,
            message: format!("bitmap holds {} words, expected {}", words.len(), nbits.div_ceil(64)),
        }));
    }
    let bits: Vec<bool> = (0..nbits).map(|i| words[i / 64] >> (i % 64) & 1 == 1).collect();
    // Padding bits past `nbits` must be zero, or the file was tampered with.
    for (w, &word) in words.iter().enumerate() {
        let live = if (w + 1) * 64 <= nbits { 64 } else { nbits.saturating_sub(w * 64) };
        if live < 64 && word >> live != 0 {
            return Err(CheckpointError::Format(BinFormatError::BadSection {
                tag,
                message: "nonzero padding bits in bitmap".into(),
            }));
        }
    }
    Ok(bits)
}

/// Serialize one `TFactors` family: presence bitmap words, then the
/// packed `b*b` payloads of present slots in index order — shared with the
/// service's durable result containers (`journal::result_to_bytes`).
pub(crate) fn family_to_bytes(family: &[Option<Box<[f64]>>]) -> Vec<u8> {
    let present: Vec<bool> = family.iter().map(|o| o.is_some()).collect();
    let mut out = bytes_of_u64s(&bitmap_to_words(&present));
    let payload: Vec<f64> =
        family.iter().filter_map(|o| o.as_deref()).flat_map(|s| s.iter().copied()).collect();
    out.extend_from_slice(&bytes_of_f64s(&payload));
    out
}

pub(crate) fn family_from_bytes(
    tag: u32,
    bytes: &[u8],
    slots: usize,
    b: usize,
) -> Result<Vec<Option<Box<[f64]>>>, CheckpointError> {
    let words = slots.div_ceil(64);
    if bytes.len() < words * 8 {
        return Err(CheckpointError::Format(BinFormatError::BadSection {
            tag,
            message: format!("family section too short for {slots}-slot bitmap"),
        }));
    }
    let (bitmap_bytes, payload_bytes) = bytes.split_at(words * 8);
    let present = bitmap_from_words(tag, &u64s_of_bytes(tag, bitmap_bytes)?, slots)?;
    let payload = f64s_of_bytes(tag, payload_bytes)?;
    let count = present.iter().filter(|&&p| p).count();
    if payload.len() != count * b * b {
        return Err(CheckpointError::Format(BinFormatError::BadSection {
            tag,
            message: format!(
                "family payload holds {} floats, expected {} ({} buffers of {}²)",
                payload.len(),
                count * b * b,
                count,
                b
            ),
        }));
    }
    let mut family: Vec<Option<Box<[f64]>>> = Vec::with_capacity(slots);
    let mut off = 0;
    for &p in &present {
        if p {
            family.push(Some(payload[off..off + b * b].to_vec().into_boxed_slice()));
            off += b * b;
        } else {
            family.push(None);
        }
    }
    Ok(family)
}

/// Stage a checkpoint into a section container, ready for
/// [`SectionWriter::into_bytes`] or [`SectionWriter::write_atomic`].
fn checkpoint_writer(ckpt: &Checkpoint) -> SectionWriter {
    let header = [
        ckpt.mt as u64,
        ckpt.nt as u64,
        ckpt.b as u64,
        ckpt.ib as u64,
        ckpt.completed.len() as u64,
        ckpt.completed_tasks() as u64,
        ckpt.fingerprint,
        ckpt.input_seed,
    ];
    let elims = elims_to_words(&ckpt.elims);
    let mut w = SectionWriter::new(CHECKPOINT_MAGIC, CHECKPOINT_VERSION);
    w.section(SEC_HEADER, &bytes_of_u64s(&header))
        .section(SEC_ELIMS, &bytes_of_u64s(&elims))
        .section(SEC_DONE, &bytes_of_u64s(&bitmap_to_words(&ckpt.completed)))
        .section(SEC_TILES, &tiled_to_bytes(&ckpt.a))
        .section(SEC_VG, &family_to_bytes(&ckpt.factors.vg))
        .section(SEC_TG, &family_to_bytes(&ckpt.factors.tg))
        .section(SEC_TK, &family_to_bytes(&ckpt.factors.tk));
    w
}

/// Write `ckpt` to `path` atomically (sibling temp file + rename).
pub fn write_checkpoint(path: &Path, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    checkpoint_writer(ckpt).write_atomic(path)?;
    Ok(())
}

/// Serialize a checkpoint into the same checksummed container bytes
/// [`write_checkpoint`] puts on disk — used to embed suspended jobs inside
/// the service's persisted queue file.
pub fn checkpoint_to_bytes(ckpt: &Checkpoint) -> Vec<u8> {
    checkpoint_writer(ckpt).into_bytes()
}

/// Decode checkpoint container bytes (the inverse of
/// [`checkpoint_to_bytes`]), verifying the container checksum and every
/// section's internal consistency.
pub fn checkpoint_from_bytes(bytes: Vec<u8>) -> Result<Checkpoint, CheckpointError> {
    decode_checkpoint(SectionReader::from_bytes(bytes, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?)
}

/// Read and fully decode a checkpoint file, verifying the container
/// checksum and every section's internal consistency.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    decode_checkpoint(SectionReader::read(path, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?)
}

fn decode_checkpoint(r: SectionReader) -> Result<Checkpoint, CheckpointError> {
    let header = u64s_of_bytes(SEC_HEADER, r.require(SEC_HEADER)?)?;
    if header.len() != 8 {
        return Err(CheckpointError::Format(BinFormatError::BadSection {
            tag: SEC_HEADER,
            message: format!("header holds {} words, expected 8", header.len()),
        }));
    }
    let [mt, nt, b, ib, ntasks, ncompleted, fingerprint, input_seed] =
        [header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7]];
    let (mt, nt, b, ib, ntasks) =
        (mt as usize, nt as usize, b as usize, ib as usize, ntasks as usize);
    if mt == 0 || nt == 0 || b == 0 || ib == 0 || ib > b {
        return Err(inconsistent(format!("degenerate shape mt={mt} nt={nt} b={b} ib={ib}")));
    }

    let elim_words = u64s_of_bytes(SEC_ELIMS, r.require(SEC_ELIMS)?)?;
    let elims = elims_from_words(SEC_ELIMS, &elim_words)?;

    let completed =
        bitmap_from_words(SEC_DONE, &u64s_of_bytes(SEC_DONE, r.require(SEC_DONE)?)?, ntasks)?;
    let found_done = completed.iter().filter(|&&d| d).count();
    if found_done as u64 != ncompleted {
        return Err(inconsistent(format!(
            "header claims {ncompleted} completed tasks, bitmap holds {found_done}"
        )));
    }

    let a = tiled_from_bytes(SEC_TILES, r.require(SEC_TILES)?)?;
    if a.mt() != mt || a.nt() != nt || a.b() != b {
        return Err(inconsistent(format!(
            "tile store is {}x{} tiles of {} but header says {mt}x{nt} of {b}",
            a.mt(),
            a.nt(),
            a.b()
        )));
    }

    let slots = mt * nt;
    let factors = TFactors {
        b,
        mt,
        nt,
        vg: family_from_bytes(SEC_VG, r.require(SEC_VG)?, slots, b)?,
        tg: family_from_bytes(SEC_TG, r.require(SEC_TG)?, slots, b)?,
        tk: family_from_bytes(SEC_TK, r.require(SEC_TK)?, slots, b)?,
    };

    Ok(Checkpoint { mt, nt, b, ib, fingerprint, input_seed, elims, completed, a, factors })
}

/// What [`try_execute_checkpointed`] returns.
#[derive(Debug)]
pub struct CheckpointRun {
    /// Factors accumulated so far (complete iff `!interrupted`).
    pub factors: TFactors,
    /// Fault-recovery accounting across all executed segments.
    pub stats: FaultStats,
    /// Stitched execution trace (if tracing was requested), covering every
    /// segment plus `Checkpoint` instants at each write.
    pub trace: Option<ExecTrace>,
    /// Checkpoints written to disk.
    pub checkpoints_written: usize,
    /// Tasks completed before returning.
    pub completed_tasks: usize,
    /// True when the run stopped early at `stop_after_panel` (simulated
    /// kill) with work remaining.
    pub interrupted: bool,
}

/// Checkpoint placement and (for tests/CLI) a simulated mid-run kill.
#[derive(Clone, Debug)]
pub struct CheckpointSpec<'a> {
    /// Where to write checkpoints (overwritten in place, atomically).
    pub path: &'a Path,
    /// The elimination list `graph` was built from (stored in the file so
    /// `resume` can rebuild the graph without the caller).
    pub elims: &'a [ElimOp],
    /// When to checkpoint.
    pub policy: CheckpointPolicy,
    /// Caller metadata stored verbatim (the CLI stores the input seed).
    pub input_seed: u64,
    /// Stop after this panel completes — quiesce, force a final
    /// checkpoint, and return with `interrupted = true`.  Simulates a
    /// kill at a quiescent point.
    pub stop_after_panel: Option<usize>,
}

/// Index after the last task of each panel, in panel order.
fn panel_boundaries(graph: &TaskGraph) -> Vec<usize> {
    let tasks = graph.tasks();
    let mut out = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        if i + 1 == tasks.len() || tasks[i + 1].k != t.k {
            out.push(i + 1);
        }
    }
    out
}

/// Run the factorization with periodic durable checkpoints.
///
/// Execution proceeds in segments between quiescent panel boundaries
/// chosen by the policy; at each chosen boundary the engine quiesces
/// (worker threads join) and the full runtime state is written to
/// `spec.path`.  With `stop_after_panel` set the driver abandons the run
/// after that panel's checkpoint, simulating a killed process whose last
/// checkpoint survived — [`resume_from_checkpoint`] then finishes the
/// factorization to bitwise-identical factors.
pub fn try_execute_checkpointed(
    graph: &TaskGraph,
    a: &mut TiledMatrix,
    opts: &ExecOptions,
    spec: &CheckpointSpec<'_>,
    trace: bool,
) -> Result<CheckpointRun, CheckpointError> {
    if spec.policy.every_panels == 0 {
        return Err(inconsistent("CheckpointPolicy.every_panels must be >= 1"));
    }
    let check = TaskGraph::try_build(graph.mt(), graph.nt(), graph.b(), spec.elims)
        .map_err(|e| inconsistent(format!("spec.elims does not build a graph: {e}")))?;
    if check.tasks() != graph.tasks() {
        return Err(inconsistent("spec.elims does not generate the supplied graph"));
    }
    let n = graph.tasks().len();
    let boundaries = panel_boundaries(graph);
    if let Some(p) = spec.stop_after_panel {
        if p >= boundaries.len() {
            return Err(inconsistent(format!(
                "stop_after_panel {p} out of range: graph has {} panels",
                boundaries.len()
            )));
        }
    }
    let ib = opts.ib.unwrap_or(graph.b());
    let fingerprint = graph_fingerprint(graph, ib);

    let nthreads = opts.nthreads.max(1);
    let mut completed = vec![false; n];
    let mut factors = TFactors::allocate_for(graph);
    let mut stats = FaultStats::default();
    let mut stitched = trace.then(|| ExecTrace {
        nthreads,
        policy: opts.policy,
        records: Vec::new(),
        instants: Vec::new(),
        counters: vec![WorkerCounters::default(); nthreads],
        wall: 0.0,
        spill: None,
    });
    let epoch = Instant::now();
    let mut written = 0usize;
    let mut last_write: Option<Instant> = None;
    let mut cursor = 0usize;

    for (panel, &end) in boundaries.iter().enumerate() {
        let stop_here = spec.stop_after_panel == Some(panel);
        let last = panel + 1 == boundaries.len();
        let ckpt_here = (panel + 1) % spec.policy.every_panels == 0;
        if !(stop_here || last || ckpt_here) {
            continue; // keep the engine running through this boundary
        }
        if end > cursor {
            let offset = epoch.elapsed().as_secs_f64();
            let (seg_stats, seg_trace) =
                run_engine_segment(graph, a, &mut factors, opts, trace, Some(&completed), end)?;
            stats.merge(&seg_stats);
            for slot in completed[cursor..end].iter_mut() {
                *slot = true;
            }
            cursor = end;
            if let (Some(acc), Some(seg)) = (stitched.as_mut(), seg_trace) {
                for mut r in seg.records {
                    r.start += offset;
                    r.end += offset;
                    acc.records.push(r);
                }
                for mut i in seg.instants {
                    i.time += offset;
                    acc.instants.push(i);
                }
                for (total, c) in acc.counters.iter_mut().zip(seg.counters) {
                    total.local_pops += c.local_pops;
                    total.injector_pops += c.injector_pops;
                    total.steals += c.steals;
                    total.panics_caught += c.panics_caught;
                    total.retries += c.retries;
                    total.requeues += c.requeues;
                    total.tile_faults += c.tile_faults;
                    total.prefetch_hits += c.prefetch_hits;
                    total.tile_spills += c.tile_spills;
                }
                // Each segment pages and unpages independently; the
                // stitched trace accumulates their spill traffic.
                if let Some(seg_spill) = seg.spill {
                    acc.spill.get_or_insert_with(Default::default).merge(&seg_spill);
                }
            }
        }
        // A due policy checkpoint, or the forced pre-kill checkpoint.  A
        // run that completes naturally skips the final (fully-done)
        // checkpoint — there is nothing left to resume.
        let due = ckpt_here
            && !last
            && last_write.is_none_or(|t| t.elapsed() >= spec.policy.min_interval);
        if due || stop_here {
            let ckpt = Checkpoint {
                mt: graph.mt(),
                nt: graph.nt(),
                b: graph.b(),
                ib,
                fingerprint,
                input_seed: spec.input_seed,
                elims: spec.elims.to_vec(),
                completed: completed.clone(),
                a: a.clone(),
                factors: factors.clone(),
            };
            write_checkpoint(spec.path, &ckpt)?;
            written += 1;
            last_write = Some(Instant::now());
            if let Some(acc) = stitched.as_mut() {
                acc.instants.push(ExecInstant {
                    kind: InstantKind::Checkpoint,
                    task: cursor as u32,
                    worker: 0,
                    time: epoch.elapsed().as_secs_f64(),
                });
            }
        }
        if stop_here {
            break;
        }
    }

    if let Some(acc) = stitched.as_mut() {
        acc.records.sort_by(|x, y| x.start.total_cmp(&y.start));
        acc.instants.sort_by(|x, y| x.time.total_cmp(&y.time));
        acc.wall = epoch.elapsed().as_secs_f64();
    }
    Ok(CheckpointRun {
        factors,
        stats,
        trace: stitched,
        checkpoints_written: written,
        completed_tasks: cursor,
        interrupted: cursor < n,
    })
}

/// What [`resume_from_checkpoint`] returns.
#[derive(Debug)]
pub struct ResumedRun {
    /// The graph rebuilt from the stored elimination list.
    pub graph: TaskGraph,
    /// The tile store after the factorization finished.
    pub a: TiledMatrix,
    /// The completed factors.
    pub factors: TFactors,
    /// Fault-recovery accounting for the resumed segment.
    pub stats: FaultStats,
    /// Execution trace of the resumed segment (if requested), opening
    /// with a `Resume` instant.
    pub trace: Option<ExecTrace>,
    /// Tasks that were already complete in the checkpoint.
    pub resumed_from: usize,
    /// Caller metadata stored at checkpoint time.
    pub input_seed: u64,
    /// The inner block size the checkpointed factors were computed with.
    pub ib: usize,
}

/// Load a checkpoint and run the remaining tasks to completion.
///
/// The graph is rebuilt from the stored elimination list, revalidated
/// against the stored fingerprint, and the bitmap is checked for closure
/// under dependencies before any kernel runs.  `opts.ib`, if set, must
/// match the checkpointed inner block size (factors computed with one `ib`
/// cannot be extended with another).
pub fn resume_from_checkpoint(
    path: &Path,
    opts: &ExecOptions,
    trace: bool,
) -> Result<ResumedRun, CheckpointError> {
    let ckpt = read_checkpoint(path)?;
    let graph = ckpt.rebuild_graph()?;
    ckpt.validate_against(&graph, ckpt.ib)?;
    if let Some(ib) = opts.ib {
        if ib != ckpt.ib {
            return Err(inconsistent(format!(
                "resume requested ib={ib} but the checkpoint was taken with ib={}",
                ckpt.ib
            )));
        }
    }
    // The stored factor allocation must match what this graph allocates —
    // a slot mismatch means the file pairs a bitmap with foreign buffers.
    let fresh = TFactors::allocate_for(&graph);
    let same_slots = |x: &[Option<Box<[f64]>>], y: &[Option<Box<[f64]>>]| {
        x.iter().zip(y).all(|(a, b)| a.is_some() == b.is_some())
    };
    if !(same_slots(&fresh.vg, &ckpt.factors.vg)
        && same_slots(&fresh.tg, &ckpt.factors.tg)
        && same_slots(&fresh.tk, &ckpt.factors.tk))
    {
        return Err(inconsistent("factor buffers do not match the graph's allocation pattern"));
    }

    let mut opts = opts.clone();
    opts.ib = Some(ckpt.ib);
    let n = graph.tasks().len();
    let resumed_from = ckpt.completed_tasks();
    let Checkpoint { mut a, mut factors, completed, input_seed, ib, .. } = ckpt;
    let (stats, mut exec_trace) =
        run_engine_segment(&graph, &mut a, &mut factors, &opts, trace, Some(&completed), n)?;
    if let Some(tr) = exec_trace.as_mut() {
        tr.instants.insert(
            0,
            ExecInstant {
                kind: InstantKind::Resume,
                task: resumed_from as u32,
                worker: 0,
                time: 0.0,
            },
        );
    }
    Ok(ResumedRun { graph, a, factors, stats, trace: exec_trace, resumed_from, input_seed, ib })
}
