//! Execution-timeline export in Chrome Trace Format (Perfetto-loadable)
//! plus realized-critical-path extraction.
//!
//! Both execution backends — the real work-stealing executor
//! ([`crate::exec::try_execute_traced`]) and the `hqr-sim` discrete-event
//! simulator — record timelines of *what actually ran where and when*. This
//! module is the shared serialization layer: a [`ChromeTraceBuilder`] that
//! emits the JSON object form of the Trace Event Format (`ph: "X"` complete
//! spans, `ph: "i"` instants, `ph: "C"` counters, `ph: "M"` metadata), a
//! structural validator for tests and CI, and a [`realized_critical_path`]
//! extractor that walks the DAG over the *recorded* spans to find the
//! longest weighted chain of task + communication time actually scheduled —
//! the measured counterpart of the analytic critical-path bounds of
//! Bouwmeester et al. (arXiv:1104.4475).
//!
//! Open the emitted `.trace.json` at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one process per node, one lane per worker / core /
//! GPU / NIC, spans colored by kernel kind.

use crate::exec::ExecTrace;
use crate::graph::TaskGraph;
use crate::task::Task;
use hqr_kernels::KernelKind;

/// Chrome's reserved color name (`cname`) for a kernel kind, so the two
/// kernel families are visually separable in a timeline: factor kernels in
/// the saturated colors, updates in the muted ones.
pub fn kind_cname(kind: KernelKind) -> &'static str {
    match kind {
        KernelKind::Geqrt => "good",     // green
        KernelKind::Unmqr => "olive",    // muted green
        KernelKind::Tsqrt => "bad",      // orange-red
        KernelKind::Tsmqr => "yellow",   // muted orange
        KernelKind::Ttqrt => "terrible", // red
        KernelKind::Ttmqr => "grey",     // muted
    }
}

/// Escape a string for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render seconds as integer microseconds (the `ts`/`dur` unit of the
/// Trace Event Format). Sub-microsecond spans are kept visible by rounding
/// durations *up* to 1 µs — a lie of at most 1 µs that beats invisible
/// zero-width spans in the viewer.
fn micros(seconds: f64) -> i64 {
    (seconds * 1e6).round() as i64
}

/// Incremental builder for a Chrome Trace Format JSON document.
///
/// Events are appended pre-rendered; [`ChromeTraceBuilder::finish`] wraps
/// them in the `{"traceEvents": [...]}` object form, which both Perfetto
/// and `chrome://tracing` accept.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name process `pid` (a metadata event; Perfetto shows it as the
    /// group header).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Name lane `tid` of process `pid` and fix its display order.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str, sort_index: i64) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\"args\":{{\"sort_index\":{sort_index}}}}}"
        ));
    }

    /// A complete span (`ph: "X"`) on lane `(pid, tid)`. `args` are
    /// attached as string key/values shown in the viewer's detail pane.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        cname: Option<&str>,
        start_s: f64,
        end_s: f64,
        args: &[(&str, String)],
    ) {
        let ts = micros(start_s);
        let dur = (micros(end_s) - ts).max(1);
        let mut ev = format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}",
            json_escape(name),
            json_escape(cat)
        );
        if let Some(c) = cname {
            ev.push_str(&format!(",\"cname\":\"{}\"", json_escape(c)));
        }
        ev.push_str(&render_args(args));
        ev.push('}');
        self.events.push(ev);
    }

    /// An instant event (`ph: "i"`, thread scope) on lane `(pid, tid)`.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        at_s: f64,
        args: &[(&str, String)],
    ) {
        let mut ev = format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}",
            json_escape(name),
            json_escape(cat),
            micros(at_s)
        );
        ev.push_str(&render_args(args));
        ev.push('}');
        self.events.push(ev);
    }

    /// A counter sample (`ph: "C"`): one stacked series per `(name, value)`
    /// pair, sampled at `at_s`.
    pub fn counter(&mut self, pid: u32, name: &str, at_s: f64, series: &[(&str, f64)]) {
        let body: Vec<String> = series
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), render_number(*v)))
            .collect();
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{{}}}}}",
            json_escape(name),
            micros(at_s),
            body.join(",")
        ));
    }

    /// Serialize to the JSON object form of the Trace Event Format.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

fn render_args(args: &[(&str, String)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!(",\"args\":{{{}}}", body.join(","))
}

fn render_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serialize a real-executor [`ExecTrace`] to Chrome Trace Format: one
/// process ("executor"), one lane per worker thread, task spans colored by
/// kernel kind, instant events for caught panics / retries / poison
/// requeues, and per-worker scheduler counters sampled at start and end.
pub fn chrome_trace_from_exec(trace: &ExecTrace, tasks: &[Task]) -> String {
    let mut b = ChromeTraceBuilder::new();
    let pid = 0u32;
    b.process_name(pid, &format!("executor (work-stealing, {} policy)", trace.policy));
    for w in 0..trace.nthreads {
        b.thread_name(pid, w as u32, &format!("worker {w}"), w as i64);
    }
    for r in &trace.records {
        let t = &tasks[r.task as usize];
        b.span(
            pid,
            r.worker as u32,
            &t.label(),
            t.kind.name(),
            Some(kind_cname(t.kind)),
            r.start,
            r.end,
            &[("task", r.task.to_string()), ("kernel", t.kind.name().to_string())],
        );
    }
    for i in &trace.instants {
        let (name, category) = match i.kind {
            crate::exec::InstantKind::PanicCaught => ("panic caught", "fault"),
            crate::exec::InstantKind::Retry => ("retry after rollback", "fault"),
            crate::exec::InstantKind::Requeue => ("requeued (poisoned worker)", "fault"),
            crate::exec::InstantKind::Checkpoint => ("checkpoint written", "checkpoint"),
            crate::exec::InstantKind::Resume => ("resumed from checkpoint", "checkpoint"),
            crate::exec::InstantKind::SdcDetected => ("sdc detected", "sdc"),
            crate::exec::InstantKind::SdcRecomputed => ("sdc recomputed", "sdc"),
            crate::exec::InstantKind::TileFaulted => ("tile faulted", "spill"),
            crate::exec::InstantKind::TileSpilled => ("tile spilled", "spill"),
        };
        // Checkpoint/resume instants mark completed-task counts, not tasks.
        let arg = match i.kind {
            crate::exec::InstantKind::Checkpoint | crate::exec::InstantKind::Resume => "completed",
            _ => "task",
        };
        b.instant(pid, i.worker as u32, name, category, i.time, &[(arg, i.task.to_string())]);
    }
    let paged = trace.spill.is_some();
    for (w, c) in trace.counters.iter().enumerate() {
        let series: [(&str, f64); 3] = [
            ("steals", c.steals as f64),
            ("injector pops", c.injector_pops as f64),
            ("retries", c.retries as f64),
        ];
        b.counter(
            pid,
            &format!("worker {w} scheduler"),
            0.0,
            &[("steals", 0.0), ("injector pops", 0.0), ("retries", 0.0)],
        );
        b.counter(pid, &format!("worker {w} scheduler"), trace.wall, &series);
        if paged {
            // Spill traffic gets its own per-worker counter track so the
            // paged store's demand faults / prefetch hits / evictions are
            // visible next to the scheduler series.
            let spill_series: [(&str, f64); 3] = [
                ("tile faults", c.tile_faults as f64),
                ("prefetch hits", c.prefetch_hits as f64),
                ("tile spills", c.tile_spills as f64),
            ];
            b.counter(
                pid,
                &format!("worker {w} spill"),
                0.0,
                &[("tile faults", 0.0), ("prefetch hits", 0.0), ("tile spills", 0.0)],
            );
            b.counter(pid, &format!("worker {w} spill"), trace.wall, &spill_series);
        }
    }
    b.finish()
}

/// One step of a realized critical path: a task span plus the
/// communication (or release) delay that preceded it on the chain.
#[derive(Clone, Copy, Debug)]
pub struct PathStep {
    /// Index into [`TaskGraph::tasks`].
    pub task: u32,
    /// Kernel executed.
    pub kind: KernelKind,
    /// Realized start time (s).
    pub start: f64,
    /// Realized end time (s).
    pub end: f64,
    /// Communication seconds between the previous chain task's completion
    /// and this task's data availability (0 within a node / worker).
    pub comm: f64,
}

/// The longest weighted chain of task + communication spans actually
/// scheduled in a recorded execution — the *realized* critical path, as
/// opposed to the analytic DAG critical path of
/// [`crate::analysis::dag_stats`]. Its length is at least the longest
/// single task span and never exceeds the makespan.
#[derive(Clone, Debug, Default)]
pub struct RealizedPath {
    /// Total chain weight: task seconds plus comm seconds.
    pub length: f64,
    /// Task-execution seconds on the chain.
    pub task_seconds: f64,
    /// Communication seconds on the chain.
    pub comm_seconds: f64,
    /// Chain steps, entry task first.
    pub steps: Vec<PathStep>,
}

impl RealizedPath {
    /// The `n` longest task steps on the chain, by span duration.
    pub fn top_tasks(&self, n: usize) -> Vec<PathStep> {
        let mut v = self.steps.clone();
        v.sort_by(|a, b| (b.end - b.start).total_cmp(&(a.end - a.start)));
        v.truncate(n);
        v
    }
}

/// Extract the realized critical path from recorded spans.
///
/// * `span(t)` returns the final recorded `(start, end)` of task `t`, or
///   `None` if the task never completed (it is then skipped).
/// * `comm(p, s)` returns the communication seconds charged on edge
///   `p -> s` (time from `p`'s completion to the data's availability at
///   `s`'s execution site; 0 for same-site edges).
///
/// One forward sweep in program order (which is topological):
/// `path(t) = dur(t) + max over preds p of (path(p) + comm(p, t))`.
/// Each `path(t)` is clamped to `end(t)` — data availability precedes the
/// realized start, so the clamp only binds when a fault re-executed a
/// producer *after* its consumer ran off a surviving copy — which keeps
/// the chain weight within the makespan by construction.
pub fn realized_critical_path(
    graph: &TaskGraph,
    span: impl Fn(u32) -> Option<(f64, f64)>,
    comm: impl Fn(u32, u32) -> f64,
) -> RealizedPath {
    let n = graph.tasks().len();
    // Best incoming chain weight and its predecessor, per task.
    let mut best_in = vec![0.0f64; n];
    let mut best_pred: Vec<Option<u32>> = vec![None; n];
    let mut path = vec![0.0f64; n];
    let mut argmax: Option<usize> = None;
    for t in 0..n {
        let Some((start, end)) = span(t as u32) else { continue };
        path[t] = (best_in[t] + (end - start)).min(end.max(0.0));
        if argmax.is_none_or(|a| path[t] > path[a]) {
            argmax = Some(t);
        }
        for &s in graph.successors(t) {
            let c = comm(t as u32, s).max(0.0);
            let cand = path[t] + c;
            if cand > best_in[s as usize] {
                best_in[s as usize] = cand;
                best_pred[s as usize] = Some(t as u32);
            }
        }
    }
    let Some(exit) = argmax else { return RealizedPath::default() };
    // Reconstruct the chain backwards from the heaviest path end.
    let mut steps = Vec::new();
    let mut cur = exit as u32;
    loop {
        let (start, end) = span(cur).expect("chain tasks have spans");
        let pred = best_pred[cur as usize];
        let c = pred.map_or(0.0, |p| comm(p, cur).max(0.0));
        steps.push(PathStep {
            task: cur,
            kind: graph.tasks()[cur as usize].kind,
            start,
            end,
            comm: c,
        });
        match pred {
            Some(p) => cur = p,
            None => break,
        }
    }
    steps.reverse();
    let task_seconds: f64 = steps.iter().map(|s| s.end - s.start).sum();
    let comm_seconds: f64 = steps.iter().map(|s| s.comm).sum();
    RealizedPath { length: path[exit], task_seconds, comm_seconds, steps }
}

// ---------------------------------------------------------------------------
// Structural validation (used by tests and the CI trace-artifact job).
// ---------------------------------------------------------------------------

/// A minimal JSON value, produced by the self-contained parser below (the
/// build environment is offline, so no serde).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 code point.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Validate that `text` parses as Chrome Trace Format JSON: a top-level
/// object with a `traceEvents` array whose every element carries the
/// required `ph`/`pid`/`tid`/`ts` fields (plus `dur` for complete events).
/// Returns the event count. Used by the test suites and the CI
/// trace-artifact job; intentionally strict about structure, permissive
/// about extra fields.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let mut p = Parser::new(text);
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("`traceEvents` is not an array".into()),
        None => return Err("missing top-level `traceEvents`".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        for key in ["pid", "tid", "ts"] {
            if ev.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("event {i} (ph={ph}): missing numeric `{key}`"));
            }
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: complete event missing `dur`"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
            }
            "i" | "I" | "M" | "C" | "B" | "E" => {}
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    Ok(events.len())
}

/// Validate the SDC instant events of a Chrome trace: every event with
/// `cat == "sdc"` must be an instant (`ph: "i"`) named `"sdc detected"` or
/// `"sdc recomputed"` carrying a `task` argument, and recomputes cannot
/// outnumber detections (each recompute follows a detection). Returns
/// `(detected, recomputed)` counts — both zero for a clean trace.
pub fn validate_sdc_instants(text: &str) -> Result<(usize, usize), String> {
    let mut p = Parser::new(text);
    let doc = p.value()?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing top-level `traceEvents` array".into()),
    };
    let (mut detected, mut recomputed) = (0usize, 0usize);
    for (i, ev) in events.iter().enumerate() {
        if ev.get("cat").and_then(Json::as_str) != Some("sdc") {
            continue;
        }
        if ev.get("ph").and_then(Json::as_str) != Some("i") {
            return Err(format!("event {i}: sdc event is not an instant"));
        }
        if ev.get("args").and_then(|a| a.get("task")).is_none() {
            return Err(format!("event {i}: sdc instant missing `args.task`"));
        }
        match ev.get("name").and_then(Json::as_str) {
            Some("sdc detected") => detected += 1,
            Some("sdc recomputed") => recomputed += 1,
            other => return Err(format!("event {i}: unknown sdc instant name {other:?}")),
        }
    }
    if recomputed > detected {
        return Err(format!(
            "{recomputed} sdc recomputes but only {detected} detections — every \
             recompute must follow a detection"
        ));
    }
    Ok((detected, recomputed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::ElimOp;

    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        v
    }

    #[test]
    fn builder_emits_valid_chrome_trace() {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(0, "node \"zero\"");
        b.thread_name(0, 1, "core 1", 1);
        b.span(0, 1, "GEQRT(0,0)", "GEQRT", Some("good"), 0.0, 1.5e-3, &[("task", "0".into())]);
        b.instant(0, 1, "panic caught", "fault", 1e-3, &[]);
        b.counter(0, "steals", 2e-3, &[("steals", 3.0)]);
        assert!(!b.is_empty());
        let json = b.finish();
        let n = validate_chrome_trace(&json).expect("builder output validates");
        assert_eq!(n, 6, "process + 2 thread metadata + span + instant + counter");
    }

    #[test]
    fn sdc_instant_validation_counts_and_rejects() {
        let mut b = ChromeTraceBuilder::new();
        b.instant(0, 1, "sdc detected", "sdc", 1e-3, &[("task", "4".into())]);
        b.instant(0, 1, "sdc recomputed", "sdc", 2e-3, &[("task", "4".into())]);
        b.instant(0, 1, "panic caught", "fault", 3e-3, &[("task", "5".into())]);
        let json = b.finish();
        assert_eq!(validate_sdc_instants(&json), Ok((1, 1)));

        // A recompute without a detection is structurally impossible.
        let mut b = ChromeTraceBuilder::new();
        b.instant(0, 1, "sdc recomputed", "sdc", 1e-3, &[("task", "4".into())]);
        assert!(validate_sdc_instants(&b.finish()).is_err());

        // Unknown sdc names and missing task args are rejected.
        let mut b = ChromeTraceBuilder::new();
        b.instant(0, 1, "sdc exploded", "sdc", 1e-3, &[("task", "4".into())]);
        assert!(validate_sdc_instants(&b.finish()).is_err());
        let mut b = ChromeTraceBuilder::new();
        b.instant(0, 1, "sdc detected", "sdc", 1e-3, &[]);
        assert!(validate_sdc_instants(&b.finish()).is_err());
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let mut b = ChromeTraceBuilder::new();
        b.span(0, 0, "evil \"name\"\\with\nnewline", "cat", None, 0.0, 1.0, &[]);
        let json = b.finish();
        assert!(validate_chrome_trace(&json).is_ok());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        // Complete event without dur.
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Unknown phase.
        let bad = "{\"traceEvents\":[{\"ph\":\"?\",\"pid\":0,\"tid\":0,\"ts\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Trailing garbage.
        assert!(validate_chrome_trace("{\"traceEvents\":[]} x").is_err());
    }

    #[test]
    fn validator_accepts_minimal_document() {
        let ok = "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":3.5}]}";
        assert_eq!(validate_chrome_trace(ok), Ok(1));
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn realized_cp_on_serial_chain_is_sum_of_durations() {
        // A 3×1 flat tree on one worker: GEQRT then two TSQRTs, strictly
        // sequential — the realized CP is the whole schedule.
        let g = TaskGraph::build(3, 1, 2, &flat_elims(3, 1));
        let n = g.tasks().len();
        // Synthetic spans: task t runs [t, t+1).
        let cp = realized_critical_path(&g, |t| Some((t as f64, t as f64 + 1.0)), |_, _| 0.0);
        assert!((cp.length - n as f64).abs() < 1e-12, "length {}", cp.length);
        assert_eq!(cp.steps.len(), n);
        assert!((cp.task_seconds - n as f64).abs() < 1e-12);
        assert_eq!(cp.comm_seconds, 0.0);
        // Chain respects program (topological) order.
        for w in cp.steps.windows(2) {
            assert!(w[0].task < w[1].task);
        }
    }

    #[test]
    fn realized_cp_includes_comm_and_stays_below_makespan() {
        let g = TaskGraph::build(4, 2, 3, &flat_elims(4, 2));
        // Spans: 0.5 s each, spaced 1 s apart; comm 0.25 s on every edge.
        let span = |t: u32| Some((t as f64, t as f64 + 0.5));
        let cp = realized_critical_path(&g, span, |_, _| 0.25);
        let makespan = g.tasks().len() as f64 - 0.5;
        assert!(cp.length <= makespan + 1e-12);
        assert!(cp.length >= 0.5, "at least one task span");
        assert!(cp.comm_seconds > 0.0);
        assert!((cp.task_seconds + cp.comm_seconds - cp.length).abs() < 1e-9);
    }

    #[test]
    fn top_tasks_sorts_by_duration() {
        let g = TaskGraph::build(3, 1, 2, &flat_elims(3, 1));
        // Make the middle task the longest.
        let span = |t: u32| match t {
            1 => Some((10.0, 13.0)),
            t => Some((t as f64, t as f64 + 1.0)),
        };
        let cp = realized_critical_path(&g, span, |_, _| 0.0);
        let top = cp.top_tasks(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].task, 1);
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let g = TaskGraph::build(2, 1, 2, &flat_elims(2, 1));
        let cp = realized_critical_path(&g, |_| None, |_, _| 0.0);
        assert_eq!(cp.steps.len(), 0);
        assert_eq!(cp.length, 0.0);
    }
}
