//! Shared retry/backoff policy.
//!
//! One implementation of capped exponential backoff with *decorrelated
//! jitter* serves every retry loop in the workspace — the job pool's
//! job-level retries and the network layer's RPC retries. Before this
//! module each site carried its own copy of the constants, which had
//! already started to drift; the policy is now a value both hand around.
//!
//! The jitter is deterministic: the scale factor is derived by hashing
//! `(salt, attempt)` with FNV-1a, so a given caller retries on a
//! reproducible schedule (seeded chaos tests depend on this) while
//! *different* callers that fail together — a shared fault, a mass
//! deadline miss, a severed link hitting every in-flight RPC — hash to
//! different factors and spread out instead of re-colliding in lockstep.

use hqr_tile::io::{bytes_of_u64s, fnv1a64};
use std::time::Duration;

/// Capped exponential backoff with deterministic decorrelated jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the second attempt (the first retry); doubles per
    /// subsequent attempt.
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Total attempts allowed, including the first (so `max_attempts == 1`
    /// means "never retry"). Enforced by callers via
    /// [`RetryPolicy::allows`]; [`RetryPolicy::backoff`] itself is total.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            max_attempts: 3,
        }
    }
}

impl RetryPolicy {
    /// True when attempt number `attempt` (1-based) may still run.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt <= self.max_attempts
    }

    /// Delay to wait *after* failed attempt `attempt` (1-based):
    /// `base * 2^(attempt-1)` capped at `cap`, then scaled by a
    /// deterministic decorrelation factor in `[0.5, 1.0]` derived from
    /// `(salt, attempt)`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        let raw = self.base.saturating_mul(1u32 << shift).min(self.cap);
        Duration::from_secs_f64(raw.as_secs_f64() * jitter_frac(salt, attempt))
    }
}

/// The decorrelation factor in `[0.5, 1.0]` for `(salt, attempt)`.
fn jitter_frac(salt: u64, attempt: u32) -> f64 {
    let h = fnv1a64(&bytes_of_u64s(&[salt, attempt as u64]));
    0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(base_ms: u64, cap_ms: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            max_attempts: 5,
        }
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = policy(10, 1000);
        for attempt in 1..6 {
            for salt in [0u64, 7, 42, u64::MAX] {
                assert_eq!(p.backoff(attempt, salt), p.backoff(attempt, salt));
            }
        }
    }

    #[test]
    fn backoff_stays_within_half_to_full_of_capped_exponential() {
        let p = policy(10, 65);
        for attempt in 1..12 {
            for salt in 0..64u64 {
                let d = p.backoff(attempt, salt);
                let raw = p.base.saturating_mul(1u32 << (attempt - 1).min(20)).min(p.cap);
                assert!(d <= raw, "attempt {attempt} salt {salt}: {d:?} > {raw:?}");
                assert!(
                    d.as_secs_f64() >= 0.5 * raw.as_secs_f64() - 1e-12,
                    "attempt {attempt} salt {salt}: {d:?} below half of {raw:?}"
                );
            }
        }
    }

    #[test]
    fn backoff_caps_for_large_attempts() {
        let p = policy(10, 80);
        // Past the cap the un-jittered delay is constant; huge attempt
        // numbers must not overflow.
        for attempt in [10u32, 100, u32::MAX] {
            assert!(p.backoff(attempt, 3) <= p.cap);
            assert!(p.backoff(attempt, 3).as_secs_f64() >= 0.5 * p.cap.as_secs_f64() - 1e-12);
        }
    }

    #[test]
    fn jitter_actually_varies_with_salt_and_attempt() {
        let p = policy(64, 10_000);
        let d0 = p.backoff(1, 0);
        assert!((1..64).any(|s| p.backoff(1, s) != d0), "salt never changes the delay");
        assert!(
            (0..64).any(|s| jitter_frac(s, 1) != jitter_frac(s, 2)),
            "attempt never changes the fraction"
        );
    }

    #[test]
    fn jitter_frac_range() {
        for salt in 0..256u64 {
            for attempt in 1..8u32 {
                let f = jitter_frac(salt, attempt);
                assert!((0.5..=1.0).contains(&f), "frac {f} out of range");
            }
        }
    }

    #[test]
    fn allows_counts_the_first_attempt() {
        let p = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        assert!(p.allows(1));
        assert!(p.allows(3));
        assert!(!p.allows(4));
        let never = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
        assert!(never.allows(1));
        assert!(!never.allows(2));
    }
}
