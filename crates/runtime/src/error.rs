//! Typed failure modes for DAG construction and execution.
//!
//! The executors' historical failure behavior was a panic in whichever
//! worker thread hit the problem (and, for the work-stealing executor, a
//! deadlocked sibling pool). The `try_*` entry points route every failure —
//! kernel panics, exhausted retry budgets, scheduler stalls — through
//! [`ExecError`] instead, and [`crate::graph::TaskGraph::try_build`] reports
//! malformed elimination lists through [`GraphError`].

use std::fmt;
use std::time::Duration;

use hqr_kernels::KernelKind;

/// Why a fault-tolerant execution did not produce a factorization.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Invalid execution configuration (shape mismatch, bad inner block
    /// size); nothing was executed.
    Config {
        /// Human-readable description of the rejected configuration.
        message: String,
    },
    /// A task panicked and no recovery (retry budget or fault plan) was
    /// enabled. Siblings halt instead of deadlocking; the final
    /// `remaining == 0` invariant of the old executor is replaced by this
    /// variant, making the "exited with pending tasks" assert unreachable.
    WorkerPanicked {
        /// Index of the failing task in [`crate::TaskGraph::tasks`].
        task: u32,
        /// Kernel the task was running.
        kernel: KernelKind,
        /// Worker thread that caught the panic.
        worker: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A task kept panicking after exhausting its per-task retry budget.
    /// The store was rolled back to the task's pre-execution state after
    /// every attempt, so the matrix is consistent but incomplete.
    TaskFailed {
        /// Index of the failing task in [`crate::TaskGraph::tasks`].
        task: u32,
        /// Kernel the task was running.
        kernel: KernelKind,
        /// Number of attempts made (initial try plus retries).
        attempts: u32,
        /// The last panic payload, if it was a string.
        message: String,
    },
    /// A guard verification caught silent data corruption that
    /// detect-recompute could not (or was not allowed to) repair: either
    /// a commit-time mismatch persisted past the retry budget, or a
    /// pre-launch check found the task's *inputs* corrupted — damage that
    /// re-running the current task cannot heal.
    SdcDetected {
        /// Index of the detecting task in [`crate::TaskGraph::tasks`].
        task: u32,
        /// Kernel the task runs.
        kernel: KernelKind,
        /// Label of the mismatching slot, e.g. `"A(2,1)"`.
        slot: String,
        /// Recompute attempts made before giving up (0 for a pre-launch
        /// input mismatch).
        attempts: u32,
        /// The guard mismatch description.
        message: String,
    },
    /// The scheduler stopped making progress: either the stall watchdog saw
    /// no task complete within its window, or every worker exited with
    /// tasks still pending.
    Stalled(StallReport),
    /// The paged (spill-to-disk) tile store failed to move a tile between
    /// its resident and on-disk tiers: an I/O failure, or a checksum
    /// mismatch in an at-rest spill record (the sectioned container's
    /// FNV-1a trailer doubles as the at-rest corruption guard).
    SpillIo {
        /// Human-readable description (slot, path, underlying error).
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Config { message } => write!(f, "invalid execution config: {message}"),
            ExecError::WorkerPanicked { task, kernel, worker, message } => {
                write!(f, "worker {worker} panicked in task {task} ({kernel:?}): {message}")
            }
            ExecError::TaskFailed { task, kernel, attempts, message } => {
                write!(f, "task {task} ({kernel:?}) failed after {attempts} attempts: {message}")
            }
            ExecError::SdcDetected { task, kernel, slot, attempts, message } => write!(
                f,
                "silent data corruption detected at {slot} by task {task} ({kernel:?}), \
                 not recovered after {attempts} recompute attempt(s): {message}"
            ),
            ExecError::Stalled(report) => write!(f, "execution stalled: {report}"),
            ExecError::SpillIo { message } => write!(f, "spill store failure: {message}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What stopped the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The watchdog observed no completion for its configured window.
    WatchdogTimeout,
    /// Every worker thread exited (e.g. all were poisoned by a fault plan)
    /// while tasks were still pending.
    AllWorkersExited,
}

/// Structured diagnostic produced when execution stops making progress:
/// which tasks were runnable but never completed, and which were still
/// blocked (with their remaining in-degrees).
#[derive(Debug, Clone)]
pub struct StallReport {
    /// What detected the stall.
    pub cause: StallCause,
    /// The watchdog window (zero for [`StallCause::AllWorkersExited`]).
    pub timeout: Duration,
    /// Tasks whose completion was delivered to the scheduler.
    pub completed: usize,
    /// Tasks whose completion was never delivered.
    pub remaining: usize,
    /// Tasks with in-degree 0 that never completed — the stuck frontier.
    pub stuck_frontier: Vec<u32>,
    /// `(task, remaining in-degree)` for tasks still waiting on
    /// predecessors.
    pub blocked: Vec<(u32, u32)>,
    /// True when `stuck_frontier`/`blocked` were truncated to keep the
    /// report small.
    pub truncated: bool,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cause = match self.cause {
            StallCause::WatchdogTimeout => format!("no progress for {:?}", self.timeout),
            StallCause::AllWorkersExited => "all workers exited".to_string(),
        };
        write!(
            f,
            "{cause}; {} completed, {} pending, frontier {:?}, blocked {:?}{}",
            self.completed,
            self.remaining,
            self.stuck_frontier,
            self.blocked,
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// Why an elimination list was rejected by
/// [`crate::graph::TaskGraph::try_build`].
///
/// The `Display` messages deliberately contain the same phrases the
/// panicking [`crate::graph::TaskGraph::build`] has always used (it now
/// panics with exactly these messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `mt == 0` or `nt == 0`.
    EmptyMatrix,
    /// Tile size `b == 0`.
    ZeroTileSize,
    /// Tile counts do not fit the `u16` task coordinates.
    TileCountOverflow {
        /// Requested tile rows.
        mt: usize,
        /// Requested tile columns.
        nt: usize,
    },
    /// The elimination list is not sorted panel-major.
    UnsortedPanels {
        /// Index of the offending op in the elimination list.
        index: usize,
        /// Its panel.
        panel: u32,
        /// The panel of the op before it.
        previous: u32,
    },
    /// An op names a panel outside `0..min(mt, nt)`.
    PanelOutOfRange {
        /// Index of the offending op in the elimination list.
        index: usize,
        /// The out-of-range panel.
        panel: u32,
        /// Number of panels.
        kmax: usize,
    },
    /// An op names a victim or killer row outside `0..mt`.
    RowOutOfRange {
        /// Index of the offending op in the elimination list.
        index: usize,
        /// The op's victim row.
        victim: u32,
        /// The op's killer row.
        killer: u32,
        /// Number of tile rows.
        mt: usize,
    },
    /// A TS victim is elsewhere triangularized (used as a killer or TT
    /// victim) in the same panel — TS kills require a square victim.
    TsVictimTriangular {
        /// The panel.
        panel: u32,
        /// The victim row that must stay square.
        victim: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyMatrix => write!(f, "matrix must be non-empty"),
            GraphError::ZeroTileSize => write!(f, "tile size must be nonzero"),
            GraphError::TileCountOverflow { mt, nt } => {
                write!(f, "tile counts must fit u16 (got {mt}x{nt})")
            }
            GraphError::UnsortedPanels { index, panel, previous } => write!(
                f,
                "elimination list must be sorted by panel (op {index} has panel {panel} after panel {previous})"
            ),
            GraphError::PanelOutOfRange { index, panel, kmax } => {
                write!(f, "panel {panel} out of range (op {index}; panels are 0..{kmax})")
            }
            GraphError::RowOutOfRange { index, victim, killer, mt } => write!(
                f,
                "row out of range (op {index}: victim {victim}, killer {killer}, rows are 0..{mt})"
            ),
            GraphError::TsVictimTriangular { panel, victim } => {
                write!(f, "TS victim row {victim} of panel {panel} must stay square")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_error_messages_keep_legacy_phrases() {
        // `build`'s #[should_panic] tests (and downstream callers matching
        // on messages) rely on these substrings.
        let e = GraphError::TsVictimTriangular { panel: 0, victim: 1 };
        assert!(e.to_string().contains("must stay square"));
        let e = GraphError::UnsortedPanels { index: 1, panel: 0, previous: 1 };
        assert!(e.to_string().contains("sorted by panel"));
        let e = GraphError::EmptyMatrix;
        assert!(e.to_string().contains("matrix must be non-empty"));
        let e = GraphError::RowOutOfRange { index: 0, victim: 9, killer: 0, mt: 3 };
        assert!(e.to_string().contains("row out of range"));
        let e = GraphError::PanelOutOfRange { index: 0, panel: 7, kmax: 2 };
        assert!(e.to_string().contains("panel 7 out of range"));
    }

    #[test]
    fn exec_error_display_names_the_task() {
        let e = ExecError::TaskFailed {
            task: 42,
            kernel: KernelKind::Tsqrt,
            attempts: 3,
            message: "injected".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("3 attempts"), "{s}");
    }

    #[test]
    fn sdc_error_display_names_slot_and_task() {
        let e = ExecError::SdcDetected {
            task: 7,
            kernel: KernelKind::Tsmqr,
            slot: "A(2,1)".into(),
            attempts: 1,
            message: "tile guard mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("A(2,1)") && s.contains("task 7") && s.contains("corruption"), "{s}");
    }

    #[test]
    fn stall_report_display_summarizes() {
        let r = StallReport {
            cause: StallCause::WatchdogTimeout,
            timeout: Duration::from_millis(50),
            completed: 7,
            remaining: 3,
            stuck_frontier: vec![8],
            blocked: vec![(9, 2)],
            truncated: false,
        };
        let s = ExecError::Stalled(r).to_string();
        assert!(s.contains("7 completed") && s.contains("3 pending"), "{s}");
    }
}
