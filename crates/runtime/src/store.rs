//! Shared tile storage for concurrent kernel execution.
//!
//! The DAG guarantees exclusive-writer discipline: two tasks may only touch
//! the same buffer concurrently if both only read it. The executor therefore
//! hands kernels plain `&mut [f64]` views manufactured from raw pointers;
//! the safety argument is the data-flow construction in [`crate::graph`]
//! (every read and every write of a slot is ordered after the slot's last
//! writer). This is precisely the contract DAGuE's runtime relies on.
//!
//! The store has two modes:
//!
//! * **Resident** (the default): a flat pointer table over buffers that
//!   stay allocated for the whole run — zero per-access overhead.
//! * **Paged**: buffers live in a two-tier cache ([`crate::spill`]) with
//!   an LRU-resident working set bounded by a byte budget and a spill
//!   file for the rest. The executor pins every slot a task touches
//!   ([`TileStore::pin_task`]) before running it — faulting misses in
//!   from disk — and releases the pins when the attempt ends, so kernels
//!   still see plain stable `&mut [f64]` views and the factorization
//!   stays bitwise identical to the resident run.

use std::path::Path;

use crate::exec::TFactors;
use crate::fault::{SdcFault, SdcPattern, SDC_SCALE_FACTOR};
use crate::spill::{PagedStore, SpillSummary};
use crate::task::{SlotFamily, Task};
use hqr_kernels::blocked::{geqrt_ib, tsmqr_ib, tsqrt_ib, ttmqr_ib, ttqrt_ib, unmqr_ib};
use hqr_kernels::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr, KernelKind, Trans};
use hqr_tile::TiledMatrix;

/// Raw-pointer view over the matrix tiles and the factor buffers.
pub struct TileStore {
    b: usize,
    /// Inner block size; `ib == b` selects the unblocked kernels.
    ib: usize,
    mt: usize,
    a: Vec<*mut f64>,
    vg: Vec<*mut f64>,
    tg: Vec<*mut f64>,
    tk: Vec<*mut f64>,
    /// Two-tier backing cache; `None` in resident mode (the pointer
    /// tables above are empty when this is `Some`).
    paged: Option<PagedStore>,
}

/// Pins held over every slot one task touches in a paged store; dropping
/// releases them. Carries what the pin pass observed for the executor's
/// per-worker counters.
pub struct TaskPins {
    core: std::sync::Arc<crate::spill::PagedCore>,
    idxs: Vec<usize>,
    /// Slots this task had to fault in from disk on demand.
    pub demand_faults: u64,
    /// Slots found resident because the prefetcher loaded them.
    pub prefetch_hits: u64,
    /// Evictions (spills) triggered to make room for this task's slots.
    pub evictions: u64,
}

impl Drop for TaskPins {
    fn drop(&mut self) {
        for &idx in &self.idxs {
            self.core.unpin(idx);
        }
    }
}

// SAFETY: the store is only used by the executors, which enforce the DAG's
// exclusive-writer discipline; distinct tasks running concurrently never
// obtain overlapping mutable views.
unsafe impl Send for TileStore {}
unsafe impl Sync for TileStore {}

/// A pre-execution copy of one task's tile write-set (see
/// [`TileStore::snapshot`]). Holds raw pointers into the store, so it is
/// deliberately `!Send`: it lives and dies on the worker that took it.
pub struct TaskSnapshot {
    saved: Vec<(*mut f64, Box<[f64]>)>,
    len: usize,
}

impl TaskSnapshot {
    /// Number of tile buffers captured.
    pub fn tiles(&self) -> usize {
        self.saved.len()
    }
}

fn ptrs(v: &mut [Option<Box<[f64]>>]) -> Vec<*mut f64> {
    v.iter_mut().map(|o| o.as_mut().map_or(std::ptr::null_mut(), |b| b.as_mut_ptr())).collect()
}

impl TileStore {
    /// Build a store over a matrix and its (pre-allocated) factor buffers,
    /// using the unblocked kernels.
    pub fn new(a: &mut TiledMatrix, f: &mut TFactors) -> Self {
        let b = a.b();
        Self::with_ib(a, f, b)
    }

    /// [`TileStore::new`] with an explicit inner block size (PLASMA's IB);
    /// `ib == b` selects the unblocked kernels.
    pub fn with_ib(a: &mut TiledMatrix, f: &mut TFactors, ib: usize) -> Self {
        Self::check_shapes(a, f, ib);
        TileStore {
            b: a.b(),
            ib,
            mt: a.mt(),
            a: a.tile_ptrs(),
            vg: ptrs(&mut f.vg),
            tg: ptrs(&mut f.tg),
            tk: ptrs(&mut f.tk),
            paged: None,
        }
    }

    /// Build a *paged* store: buffers move into a two-tier cache whose
    /// resident tier is bounded by `budget` bytes, with the rest spilled
    /// to a checksummed file under `spill_dir` (OS temp dir when `None`).
    /// The matrix and factors are hollow until [`TileStore::unpage`]
    /// returns their buffers — callers must unpage on every exit path.
    pub fn paged_with_ib(
        a: &mut TiledMatrix,
        f: &mut TFactors,
        ib: usize,
        budget: u64,
        spill_dir: Option<&Path>,
    ) -> Result<Self, String> {
        Self::check_shapes(a, f, ib);
        let (b, mt) = (a.b(), a.mt());
        let paged = PagedStore::build(a, f, budget, spill_dir)?;
        Ok(TileStore {
            b,
            ib,
            mt,
            a: Vec::new(),
            vg: Vec::new(),
            tg: Vec::new(),
            tk: Vec::new(),
            paged: Some(paged),
        })
    }

    fn check_shapes(a: &TiledMatrix, f: &TFactors, ib: usize) {
        assert_eq!(a.mt(), f.mt, "matrix/factor shape mismatch");
        assert_eq!(a.nt(), f.nt, "matrix/factor shape mismatch");
        assert_eq!(a.b(), f.b, "tile size mismatch");
        assert!(ib > 0 && ib <= a.b(), "inner block size must be in 1..=b");
    }

    /// True when the store runs over the two-tier (spill-to-disk) cache.
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Pin every slot `t` touches, faulting evicted slots in from disk.
    /// Returns `Ok(None)` in resident mode (nothing to pin). The returned
    /// guard must stay alive for as long as `t` may run, be verified, be
    /// snapshotted, or be rolled back; dropping it releases the pins.
    ///
    /// Errors are real I/O failures or at-rest checksum mismatches —
    /// fallible (not panicking) because the executor calls this outside
    /// its `catch_unwind` perimeter.
    pub fn pin_task(&self, t: &Task) -> Result<Option<TaskPins>, String> {
        let Some(paged) = &self.paged else { return Ok(None) };
        let core = &paged.core;
        let mut pins = TaskPins {
            core: std::sync::Arc::clone(core),
            idxs: Vec::new(),
            demand_faults: 0,
            prefetch_hits: 0,
            evictions: 0,
        };
        // Writes first (they set the dirty bit), then any read-only slots
        // not already pinned. At most one slot lock is held at a time, so
        // concurrent pinners cannot deadlock.
        for (will_write, set) in [(true, t.writes()), (false, t.reads())] {
            for (fam, i, j) in set {
                let idx = core.slot_index(fam, i, j);
                if pins.idxs.contains(&idx) {
                    continue;
                }
                match core.pin(fam, i, j, will_write) {
                    Ok(ev) => {
                        pins.idxs.push(idx);
                        pins.demand_faults += u64::from(ev.demand_fault);
                        pins.prefetch_hits += u64::from(ev.prefetch_hit);
                        pins.evictions += ev.evictions;
                    }
                    // Drop releases the pins taken so far.
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(Some(pins))
    }

    /// Hint that `t` is about to become runnable: queue its slots for
    /// background fault-in so disk reads overlap compute. No-op in
    /// resident mode.
    pub fn prefetch_task(&self, t: &Task) {
        if let Some(paged) = &self.paged {
            paged.core.enqueue_prefetch(t);
        }
    }

    /// Fault every slot back in and return ownership of all buffers to
    /// the matrix and factors, dissolving the cache. Must be called (on
    /// success *and* error paths) before `a`/`f` are used again; no-op in
    /// resident mode. On a checksum/I/O failure the affected buffers are
    /// zero-filled so `a`/`f` stay structurally whole, and the first
    /// error is returned.
    pub fn unpage(&mut self, a: &mut TiledMatrix, f: &mut TFactors) -> Result<(), String> {
        match self.paged.take() {
            Some(mut paged) => paged.unpage(a, f),
            None => Ok(()),
        }
    }

    /// Snapshot of the spill-traffic totals (paged mode only).
    pub fn spill_summary(&self) -> Option<SpillSummary> {
        self.paged.as_ref().map(|p| p.core.summary())
    }

    // The `&self -> &mut` shape is deliberate: exclusivity is established
    // by the DAG (exclusive-writer discipline), not by the borrow checker —
    // the same contract an UnsafeCell-based store would express.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    fn slice(&self, ptr: *mut f64) -> &mut [f64] {
        debug_assert!(!ptr.is_null(), "kernel touched an unallocated buffer");
        // SAFETY: buffers are b*b doubles, alive for the store's lifetime;
        // exclusivity is guaranteed by the caller (DAG discipline).
        unsafe { std::slice::from_raw_parts_mut(ptr, self.b * self.b) }
    }

    #[inline]
    fn a(&self, i: usize, j: usize) -> &mut [f64] {
        self.slice(self.slot_ptr((SlotFamily::A, i, j)))
    }

    #[inline]
    fn slot_ptr(&self, (fam, i, j): (SlotFamily, usize, usize)) -> *mut f64 {
        if let Some(paged) = &self.paged {
            // Pinned by the executor before the task ran, so the buffer
            // is resident and its address is stable for the pin's life.
            return paged.core.resident_ptr(fam, i, j);
        }
        let idx = i + j * self.mt;
        match fam {
            SlotFamily::A => self.a[idx],
            SlotFamily::Vg => self.vg[idx],
            SlotFamily::Tg => self.tg[idx],
            SlotFamily::Tk => self.tk[idx],
        }
    }

    /// Tile side length.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Read-only view of one slot's `b * b` buffer (guard computation).
    ///
    /// # Safety
    /// Same contract as [`TileStore::run_task`]: no concurrent writer of
    /// the slot, which DAG ordering of the calling task provides.
    pub(crate) unsafe fn slot_data(&self, s: (SlotFamily, usize, usize)) -> &[f64] {
        let p = self.slot_ptr(s);
        debug_assert!(!p.is_null(), "slot has no buffer");
        std::slice::from_raw_parts(p, self.b * self.b)
    }

    /// Apply a planned silent-data-corruption strike to one element of
    /// `t`'s write set: the raw `slot`/`element` picks are reduced modulo
    /// the write-set size and `b²` here, where both are known.
    ///
    /// # Safety
    /// Same contract as [`TileStore::run_task`] for `t`'s write set.
    pub(crate) unsafe fn apply_sdc(&self, t: &Task, f: &SdcFault) {
        let writes = t.writes();
        let s = writes[f.slot as usize % writes.len()];
        let buf = self.slice(self.slot_ptr(s));
        let x = &mut buf[f.element as usize % (self.b * self.b)];
        match f.pattern {
            SdcPattern::BitFlip(bit) => *x = f64::from_bits(x.to_bits() ^ (1u64 << (bit % 64))),
            // A zero element would make scaling a no-op; plant a tiny
            // non-zero instead so every strike really corrupts.
            SdcPattern::Scale => *x = if *x == 0.0 { 1.0e-300 } else { *x * SDC_SCALE_FACTOR },
        }
    }

    /// Copy every buffer in `t`'s write-set, so a failed (panicked)
    /// execution of `t` can be undone with [`TileStore::rollback`] before
    /// re-running it. Taken *before* the first attempt; kernels may
    /// read-modify-write their outputs, so re-execution is only idempotent
    /// from the restored state.
    ///
    /// # Safety
    /// Same contract as [`TileStore::run_task`]: no concurrent task may
    /// touch `t`'s write set — which DAG order provides, since `t` has not
    /// completed.
    pub unsafe fn snapshot(&self, t: &Task) -> TaskSnapshot {
        let len = self.b * self.b;
        let saved = t
            .writes()
            .into_iter()
            .map(|s| {
                let p = self.slot_ptr(s);
                debug_assert!(!p.is_null(), "write-set slot has no buffer");
                (p, std::slice::from_raw_parts(p, len).to_vec().into_boxed_slice())
            })
            .collect();
        TaskSnapshot { saved, len }
    }

    /// Restore the buffers captured by [`TileStore::snapshot`].
    ///
    /// # Safety
    /// Same contract as [`TileStore::snapshot`], with `snap` taken from
    /// this store.
    pub unsafe fn rollback(&self, snap: &TaskSnapshot) {
        for (p, data) in &snap.saved {
            std::ptr::copy_nonoverlapping(data.as_ptr(), *p, snap.len);
        }
    }

    /// Execute one kernel task against the store.
    ///
    /// # Safety
    /// The caller must guarantee that no other thread concurrently executes
    /// a task whose read/write set overlaps this task's write set — which is
    /// exactly what executing tasks in DAG order provides.
    pub unsafe fn run_task(&self, t: &Task) {
        let (b, ib) = (self.b, self.ib);
        let blocked = ib < b;
        let (k, i, piv, j) = (t.k as usize, t.i as usize, t.piv as usize, t.j as usize);
        let fslot = |fam: SlotFamily| self.slice(self.slot_ptr((fam, i, k)));
        match t.kind {
            KernelKind::Geqrt => {
                let tile = self.a(i, k);
                if blocked {
                    geqrt_ib(b, ib, tile, fslot(SlotFamily::Tg));
                } else {
                    geqrt(b, tile, fslot(SlotFamily::Tg));
                }
                // Copy V out so UNMQRs read it while kills rewrite the
                // tile's R part (the logical V/R tile split of the DAG).
                fslot(SlotFamily::Vg).copy_from_slice(tile);
            }
            KernelKind::Unmqr => {
                if blocked {
                    unmqr_ib(
                        b,
                        ib,
                        fslot(SlotFamily::Vg),
                        fslot(SlotFamily::Tg),
                        self.a(i, j),
                        Trans::Trans,
                    );
                } else {
                    unmqr(
                        b,
                        fslot(SlotFamily::Vg),
                        fslot(SlotFamily::Tg),
                        self.a(i, j),
                        Trans::Trans,
                    );
                }
            }
            KernelKind::Tsqrt => {
                if blocked {
                    tsqrt_ib(b, ib, self.a(piv, k), self.a(i, k), fslot(SlotFamily::Tk));
                } else {
                    tsqrt(b, self.a(piv, k), self.a(i, k), fslot(SlotFamily::Tk));
                }
            }
            KernelKind::Ttqrt => {
                if blocked {
                    ttqrt_ib(b, ib, self.a(piv, k), self.a(i, k), fslot(SlotFamily::Tk));
                } else {
                    ttqrt(b, self.a(piv, k), self.a(i, k), fslot(SlotFamily::Tk));
                }
            }
            KernelKind::Tsmqr => {
                if blocked {
                    tsmqr_ib(
                        b,
                        ib,
                        self.a(i, k),
                        fslot(SlotFamily::Tk),
                        self.a(piv, j),
                        self.a(i, j),
                        Trans::Trans,
                    );
                } else {
                    tsmqr(
                        b,
                        self.a(i, k),
                        fslot(SlotFamily::Tk),
                        self.a(piv, j),
                        self.a(i, j),
                        Trans::Trans,
                    );
                }
            }
            KernelKind::Ttmqr => {
                if blocked {
                    ttmqr_ib(
                        b,
                        ib,
                        self.a(i, k),
                        fslot(SlotFamily::Tk),
                        self.a(piv, j),
                        self.a(i, j),
                        Trans::Trans,
                    );
                } else {
                    ttmqr(
                        b,
                        self.a(i, k),
                        fslot(SlotFamily::Tk),
                        self.a(piv, j),
                        self.a(i, j),
                        Trans::Trans,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::ElimOp;
    use crate::graph::TaskGraph;

    #[test]
    fn snapshot_rollback_restores_write_set() {
        let (mt, nt, b) = (2, 2, 3);
        let elims = vec![ElimOp::new(0, 1, 0, true)];
        let g = TaskGraph::build(mt, nt, b, &elims);
        let mut a = TiledMatrix::random(mt, nt, b, 5);
        let before = a.to_dense();
        let mut f = TFactors::allocate_for(&g);
        let store = TileStore::new(&mut a, &mut f);
        for t in g.tasks() {
            // SAFETY: single-threaded, topological order.
            unsafe {
                let snap = store.snapshot(t);
                assert_eq!(snap.tiles(), t.writes().len());
                store.run_task(t);
                store.rollback(&snap);
                // Rolling back before "completion" must restore the exact
                // pre-task bytes, so re-running is idempotent.
                let again = store.snapshot(t);
                store.run_task(t);
                store.rollback(&again);
                store.run_task(t);
            }
        }
        drop(store);
        // One clean execution of the same graph must match bitwise.
        let mut a2 = TiledMatrix::from_dense(&before, b);
        let _ = crate::exec::execute_serial(&g, &mut a2);
        assert_eq!(a.to_dense().data(), a2.to_dense().data());
    }
}
