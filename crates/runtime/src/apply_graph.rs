//! Task DAG for applying op(Q) of a completed factorization to a tiled
//! matrix C — the DPLASMA `unmqr`/`ungqr` counterpart.
//!
//! The factored tiles (V blocks) and T factors are immutable inputs here,
//! so dependencies arise only from the C tiles: per trailing column `jc`,
//! the update kernels touching rows (piv, i) chain in elimination order
//! (or reverse order when applying Q). Distinct columns of C are fully
//! independent — exactly the parallelism a runtime exploits when building
//! Q "by applying the reverse trees to the identity" (§V-A).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::Backoff;

use crate::elim::ElimOp;
use crate::exec::TFactors;
use hqr_kernels::blocked::{tsmqr_ib, ttmqr_ib, unmqr_ib};
use hqr_kernels::{tsmqr, ttmqr, unmqr, Trans};
use hqr_tile::TiledMatrix;

/// One kernel application in the apply-Q DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyTask {
    /// Apply row `i`'s GEQRT reflectors to C(i, jc).
    Geqrt { k: u16, i: u16, jc: u16 },
    /// Apply a kill's stacked reflectors to C(piv, jc) / C(i, jc).
    Kill { k: u16, i: u16, piv: u16, jc: u16, ts: bool },
}

/// The apply-Q DAG: tasks in a valid topological order plus CSR edges.
pub struct ApplyGraph {
    tasks: Vec<ApplyTask>,
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    in_degree: Vec<u32>,
}

impl ApplyGraph {
    /// Build the DAG applying op(Q) of the factorization described by
    /// `ops` (panel-major elimination list) to an `mt × ntc` tiled C.
    pub fn build(mt: usize, kmax: usize, ntc: usize, ops: &[ElimOp], trans: Trans) -> Self {
        // Panel-grouped view.
        let mut by_panel: Vec<Vec<&ElimOp>> = vec![Vec::new(); kmax];
        for o in ops {
            by_panel[o.k as usize].push(o);
        }
        let mut tasks: Vec<ApplyTask> = Vec::new();
        let mut tri = vec![false; mt];
        let panel_order: Vec<usize> = match trans {
            Trans::Trans => (0..kmax).collect(),
            Trans::NoTrans => (0..kmax).rev().collect(),
        };
        for &k in &panel_order {
            tri[k..mt].fill(false);
            tri[k] = true;
            for o in &by_panel[k] {
                tri[o.killer as usize] = true;
                if !o.ts {
                    tri[o.victim as usize] = true;
                }
            }
            let geqrts = |tasks: &mut Vec<ApplyTask>, tri: &[bool]| {
                for (i, &is_tri) in tri.iter().enumerate().take(mt).skip(k) {
                    if is_tri {
                        for jc in 0..ntc {
                            tasks.push(ApplyTask::Geqrt {
                                k: k as u16,
                                i: i as u16,
                                jc: jc as u16,
                            });
                        }
                    }
                }
            };
            let kills = |tasks: &mut Vec<ApplyTask>, reverse: bool| {
                let mut panel: Vec<&&ElimOp> = by_panel[k].iter().collect();
                if reverse {
                    panel.reverse();
                }
                for o in panel {
                    for jc in 0..ntc {
                        tasks.push(ApplyTask::Kill {
                            k: k as u16,
                            i: o.victim as u16,
                            piv: o.killer as u16,
                            jc: jc as u16,
                            ts: o.ts,
                        });
                    }
                }
            };
            match trans {
                Trans::Trans => {
                    geqrts(&mut tasks, &tri);
                    kills(&mut tasks, false);
                }
                Trans::NoTrans => {
                    kills(&mut tasks, true);
                    geqrts(&mut tasks, &tri);
                }
            }
        }
        // Data-flow edges: last writer per C tile.
        const NONE: u32 = u32::MAX;
        let n = tasks.len();
        let mut out_deg = vec![0u32; n];
        let mut in_degree = vec![0u32; n];
        let touched = |t: &ApplyTask| -> (usize, Option<usize>, usize) {
            match *t {
                ApplyTask::Geqrt { i, jc, .. } => (i as usize, None, jc as usize),
                ApplyTask::Kill { i, piv, jc, .. } => (i as usize, Some(piv as usize), jc as usize),
            }
        };
        for pass in 0..2 {
            let mut writer = vec![NONE; mt * ntc];
            let mut cursor: Vec<u32> = if pass == 1 {
                let mut off = vec![0u32; n + 1];
                for i in 0..n {
                    off[i + 1] = off[i] + out_deg[i];
                }
                off[..n].to_vec()
            } else {
                Vec::new()
            };
            let mut succ_build: Vec<u32> = if pass == 1 {
                vec![0u32; out_deg.iter().map(|&d| d as usize).sum()]
            } else {
                Vec::new()
            };
            for (tid, t) in tasks.iter().enumerate() {
                let (i, piv, jc) = touched(t);
                let mut preds = [NONE, NONE];
                preds[0] = writer[i + jc * mt];
                if let Some(p) = piv {
                    preds[1] = writer[p + jc * mt];
                }
                if preds[0] == preds[1] {
                    preds[1] = NONE;
                }
                for &p in preds.iter().filter(|&&p| p != NONE) {
                    if pass == 0 {
                        out_deg[p as usize] += 1;
                        in_degree[tid] += 1;
                    } else {
                        succ_build[cursor[p as usize] as usize] = tid as u32;
                        cursor[p as usize] += 1;
                    }
                }
                writer[i + jc * mt] = tid as u32;
                if let Some(p) = piv {
                    writer[p + jc * mt] = tid as u32;
                }
            }
            if pass == 1 {
                let mut succ_off = vec![0u32; n + 1];
                for i in 0..n {
                    succ_off[i + 1] = succ_off[i] + out_deg[i];
                }
                return ApplyGraph { tasks, succ_off, succ: succ_build, in_degree };
            }
        }
        unreachable!()
    }

    /// Tasks in topological (program) order.
    pub fn tasks(&self) -> &[ApplyTask] {
        &self.tasks
    }

    fn successors(&self, t: usize) -> &[u32] {
        &self.succ[self.succ_off[t] as usize..self.succ_off[t + 1] as usize]
    }
}

/// Immutable inputs of an apply-Q execution.
struct ApplySources<'f> {
    factored: &'f TiledMatrix,
    factors: &'f TFactors,
    ib: usize,
    trans: Trans,
}

struct CStore {
    b: usize,
    mt: usize,
    tiles: Vec<*mut f64>,
}
// SAFETY: exclusive-writer discipline is enforced by the apply DAG.
unsafe impl Send for CStore {}
unsafe impl Sync for CStore {}

impl CStore {
    // `&self -> &mut` is deliberate: exclusivity comes from the apply DAG,
    // not the borrow checker (see the struct-level safety invariant).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    fn tile(&self, i: usize, j: usize) -> &mut [f64] {
        // SAFETY: see struct-level invariant.
        unsafe { std::slice::from_raw_parts_mut(self.tiles[i + j * self.mt], self.b * self.b) }
    }
}

fn run_apply_task(t: &ApplyTask, src: &ApplySources<'_>, c: &CStore) {
    let b = src.factored.b();
    let blocked = src.ib < b;
    match *t {
        ApplyTask::Geqrt { k, i, jc } => {
            let (k, i, jc) = (k as usize, i as usize, jc as usize);
            let vg = src.factors.vg(i, k).expect("GEQRT V present");
            let tg = src.factors.tg(i, k).expect("GEQRT T present");
            if blocked {
                unmqr_ib(b, src.ib, vg, tg, c.tile(i, jc), src.trans);
            } else {
                unmqr(b, vg, tg, c.tile(i, jc), src.trans);
            }
        }
        ApplyTask::Kill { k, i, piv, jc, ts } => {
            let (k, i, piv, jc) = (k as usize, i as usize, piv as usize, jc as usize);
            let v2 = src.factored.tile(i, k);
            let tk = src.factors.tk(i, k).expect("kill T present");
            let (c1, c2) = (c.tile(piv, jc), c.tile(i, jc));
            match (ts, blocked) {
                (true, false) => tsmqr(b, v2, tk, c1, c2, src.trans),
                (true, true) => tsmqr_ib(b, src.ib, v2, tk, c1, c2, src.trans),
                (false, false) => ttmqr(b, v2, tk, c1, c2, src.trans),
                (false, true) => ttmqr_ib(b, src.ib, v2, tk, c1, c2, src.trans),
            }
        }
    }
}

/// Apply op(Q) of a factorization to `c` on `nthreads` workers.
///
/// `factored` is the factored matrix (V blocks in place), `factors` its T
/// buffers, `ops` the elimination list that produced them, `ib` the inner
/// block size used during factorization.
#[allow(clippy::too_many_arguments)]
pub fn apply_q_parallel(
    factored: &TiledMatrix,
    factors: &TFactors,
    ops: &[ElimOp],
    ib: usize,
    c: &mut TiledMatrix,
    trans: Trans,
    nthreads: usize,
) {
    assert_eq!(c.mt(), factored.mt(), "C must share the tile-row count");
    assert_eq!(c.b(), factored.b(), "tile sizes must match");
    assert!(nthreads > 0);
    let kmax = factored.mt().min(factored.nt());
    let graph = ApplyGraph::build(factored.mt(), kmax, c.nt(), ops, trans);
    let src = ApplySources { factored, factors, ib, trans };
    let store = CStore { b: c.b(), mt: c.mt(), tiles: c.tile_ptrs() };
    if nthreads == 1 {
        for t in graph.tasks() {
            run_apply_task(t, &src, &store);
        }
        return;
    }
    let n = graph.tasks().len();
    let indeg: Vec<AtomicU32> = graph.in_degree.iter().map(|&d| AtomicU32::new(d)).collect();
    let remaining = AtomicUsize::new(n);
    let injector: Injector<u32> = Injector::new();
    for (tid, &d) in graph.in_degree.iter().enumerate() {
        if d == 0 {
            injector.push(tid as u32);
        }
    }
    let workers: Vec<Worker<u32>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = workers.iter().map(|w| w.stealer()).collect();
    // A panicking kernel halts the sibling workers instead of deadlocking
    // them; the first panic is re-raised on the calling thread.
    let halt = AtomicBool::new(false);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let graph = &graph;
            let src = &src;
            let store = &store;
            let indeg = &indeg;
            let remaining = &remaining;
            let injector = &injector;
            let stealers = &stealers;
            let (halt, panicked) = (&halt, &panicked);
            scope.spawn(move || {
                let backoff = Backoff::new();
                loop {
                    if halt.load(Ordering::Acquire) {
                        break;
                    }
                    let next = worker.pop().or_else(|| {
                        std::iter::repeat_with(|| {
                            injector.steal_batch_and_pop(&worker).or_else(|| {
                                stealers
                                    .iter()
                                    .enumerate()
                                    .filter(|(idx, _)| *idx != me)
                                    .map(|(_, s)| s.steal())
                                    .collect()
                            })
                        })
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                    });
                    match next {
                        Some(tid) => {
                            backoff.reset();
                            let run =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_apply_task(&graph.tasks[tid as usize], src, store)
                                }));
                            if let Err(payload) = run {
                                let mut slot = panicked.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                halt.store(true, Ordering::Release);
                                break;
                            }
                            for &s in graph.successors(tid as usize) {
                                if indeg[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    worker.push(s);
                                }
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            backoff.snooze();
                        }
                    }
                }
            });
        }
    });
    if let Some(payload) = panicked.into_inner().unwrap() {
        std::panic::resume_unwind(payload);
    }
    assert_eq!(remaining.load(Ordering::Acquire), 0, "apply-Q deadlocked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_serial;
    use crate::graph::TaskGraph;

    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        v
    }

    #[test]
    fn apply_graph_is_topological_and_complete() {
        let (mt, nt, ntc) = (6usize, 3usize, 2usize);
        let ops = flat_elims(mt, nt);
        for trans in [Trans::Trans, Trans::NoTrans] {
            let g = ApplyGraph::build(mt, nt, ntc, &ops, trans);
            // One task per (GEQRT row, column) + (kill, column).
            let expected = nt * ntc + ops.len() * ntc;
            assert_eq!(g.tasks().len(), expected);
            for t in 0..g.tasks().len() {
                for &s in g.successors(t) {
                    assert!((s as usize) > t, "edge {t}->{s} backwards");
                }
            }
        }
    }

    #[test]
    fn parallel_apply_matches_serial_apply() {
        let (mt, nt, b) = (8usize, 3usize, 4usize);
        let ops = flat_elims(mt, nt);
        let graph = TaskGraph::build(mt, nt, b, &ops);
        let mut a = TiledMatrix::random(mt, nt, b, 71);
        let factors = execute_serial(&graph, &mut a);
        let c0 = TiledMatrix::random(mt, 2, b, 72);
        for trans in [Trans::Trans, Trans::NoTrans] {
            let mut c1 = c0.clone();
            let mut c4 = c0.clone();
            apply_q_parallel(&a, &factors, &ops, b, &mut c1, trans, 1);
            apply_q_parallel(&a, &factors, &ops, b, &mut c4, trans, 4);
            assert_eq!(c1.to_dense().data(), c4.to_dense().data(), "{trans:?}");
        }
    }

    #[test]
    fn parallel_apply_roundtrips() {
        let (mt, nt, b) = (6usize, 2usize, 4usize);
        let ops = flat_elims(mt, nt);
        let graph = TaskGraph::build(mt, nt, b, &ops);
        let mut a = TiledMatrix::random(mt, nt, b, 73);
        let factors = execute_serial(&graph, &mut a);
        let c0 = TiledMatrix::random(mt, 1, b, 74);
        let mut c = c0.clone();
        apply_q_parallel(&a, &factors, &ops, b, &mut c, Trans::Trans, 3);
        apply_q_parallel(&a, &factors, &ops, b, &mut c, Trans::NoTrans, 3);
        let diff = c.to_dense().sub(&c0.to_dense()).frob_norm();
        assert!(diff < 1e-11, "Q Qᵀ C != C: {diff}");
    }

    #[test]
    fn columns_are_independent() {
        // Applying to a 2-column C equals applying to each column alone.
        let (mt, nt, b) = (5usize, 2usize, 3usize);
        let ops = flat_elims(mt, nt);
        let graph = TaskGraph::build(mt, nt, b, &ops);
        let mut a = TiledMatrix::random(mt, nt, b, 75);
        let factors = execute_serial(&graph, &mut a);
        let c0 = TiledMatrix::random(mt, 2, b, 76);
        let mut whole = c0.clone();
        apply_q_parallel(&a, &factors, &ops, b, &mut whole, Trans::Trans, 2);
        for col in 0..2 {
            let mut single = TiledMatrix::zeros(mt, 1, b);
            for i in 0..mt {
                single.tile_mut(i, 0).copy_from_slice(c0.tile(i, col));
            }
            apply_q_parallel(&a, &factors, &ops, b, &mut single, Trans::Trans, 2);
            for i in 0..mt {
                assert_eq!(single.tile(i, 0), whole.tile(i, col), "column {col}, row {i}");
            }
        }
    }
}
