//! Task-DAG runtime for tiled QR factorizations — the reproduction's
//! substitute for the DAGuE/PaRSEC scheduling environment (§IV-C).
//!
//! As in DAGuE, "a tiled QR algorithm is fully determined by its elimination
//! list": callers hand the runtime an ordered list of [`ElimOp`]s and the
//! runtime derives every kernel task and every dependency from the data flow
//! (which tile each task reads and writes). The same [`TaskGraph`] feeds
//! three consumers:
//!
//! * [`exec::execute_serial`] — in-order execution on one thread;
//! * [`exec::execute_parallel`] — a work-stealing multithreaded executor
//!   with data-reuse (LIFO) scheduling, mirroring DAGuE's "each core will
//!   try to execute close successors of the last task it ran";
//! * the `hqr-sim` crate — a discrete-event cluster simulator that replays
//!   the DAG on a modeled distributed machine.

//!
//! Execution is fault-tolerant on request: the `try_execute_*` entry
//! points report failures as typed [`ExecError`]s, and
//! [`exec::try_execute_with`] adds bounded per-task retry with write-set
//! rollback, a deterministic seeded [`FaultPlan`] for fault injection, and
//! a stall watchdog (see `DESIGN.md`, "Fault tolerance"). Silent data
//! corruption is covered by checksum [`hqr_tile::TileGuard`]s on every
//! tile-sized buffer: an [`IntegrityMode`] on [`ExecOptions`] verifies
//! guards around each task and routes mismatches into the same
//! rollback/recompute path (see `DESIGN.md`, "Data integrity").

pub mod analysis;
pub mod apply_graph;
pub mod checkpoint;
pub mod elim;
pub mod error;
pub mod exec;
pub mod fault;
pub mod graph;
pub mod integrity;
pub mod journal;
pub mod lineage;
pub mod pool;
pub mod retry;
pub mod sched;
pub mod spill;
pub mod store;
pub mod task;
pub mod trace;

pub use apply_graph::{apply_q_parallel, ApplyGraph, ApplyTask};
pub use checkpoint::{
    graph_fingerprint, read_checkpoint, resume_from_checkpoint, try_execute_checkpointed,
    write_checkpoint, Checkpoint, CheckpointError, CheckpointPolicy, CheckpointRun, CheckpointSpec,
    ResumedRun, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use elim::ElimOp;
pub use error::{ExecError, GraphError, StallCause, StallReport};
pub use exec::{
    execute_parallel, execute_parallel_ib, execute_parallel_traced, execute_serial,
    execute_serial_ib, try_execute_parallel, try_execute_serial, try_execute_traced,
    try_execute_with, ExecInstant, ExecTrace, InstantKind, TFactors, TaskRecord, WorkerCounters,
};
pub use fault::{ExecOptions, FaultPlan, FaultStats, SdcFault, SdcPattern, SDC_SCALE_FACTOR};
pub use graph::TaskGraph;
pub use integrity::IntegrityMode;
pub use journal::{
    replay, result_from_bytes, result_to_bytes, Journal, JournalError, JournalEvent, RecoveredJob,
    ResultStore, StoredResult, JOURNAL_MAGIC, JOURNAL_VERSION, RESULT_MAGIC, RESULT_VERSION,
};
pub use lineage::{last_writers, rebuild_closure, recompute_slots, Slot};
pub use pool::{
    load_queue, DrainReport, DurabilityConfig, JobId, JobInput, JobOutcome, JobPool, JobResult,
    JobSpec, JobState, JobView, PoolConfig, QosClass, QueueEntry, QueueFormatError, RecoveryReport,
    SubmitError, SuspendKind, CKPT_DIR, JOURNAL_FILE, QUEUE_MAGIC, QUEUE_VERSION, RESULTS_DIR,
};
pub use retry::RetryPolicy;
pub use sched::SchedPolicy;
pub use spill::{SpillSummary, SPILL_MAGIC, SPILL_VERSION};
pub use task::Task;
pub use trace::{
    chrome_trace_from_exec, realized_critical_path, validate_chrome_trace, validate_sdc_instants,
    ChromeTraceBuilder, PathStep, RealizedPath,
};
