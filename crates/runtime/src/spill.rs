//! The disk tier of the two-tier tile store: an LRU-resident working set
//! of pinned/unpinned tile slots backed by one checksummed spill file.
//!
//! Production-scale matrices do not fit in RAM; tile algorithms were
//! designed for exactly this regime (block data layout gives out-of-core
//! execution its contiguous, fine-grained transfer unit). This module
//! turns the flat pointer table of [`crate::store::TileStore`] into a
//! cache: every `b × b` buffer of the matrix and the factor families
//! becomes a [`Slot`] that is either *resident* (heap `Box<[f64]>`) or
//! *spilled* (a fixed-offset record in the per-run spill file). The
//! executor pins a task's read/write slots before the attempt ladder runs
//! and unpins them after, so eviction can never pull a buffer out from
//! under a running kernel; a background prefetch thread faults in the
//! read-sets of tasks entering the ready frontier so disk reads overlap
//! compute.
//!
//! ## On-disk format
//!
//! The spill file is an array of fixed-length records, one per slot,
//! at offset `slot_index * record_len`. Each record is a complete
//! sectioned container from [`hqr_tile::io`] (magic `HQRSPILL`, one
//! payload section, FNV-1a trailer), so every fault-in re-verifies the
//! checksum: the container trailer doubles as the at-rest
//! silent-data-corruption guard. A mismatch surfaces as a typed error
//! ([`crate::ExecError::SpillIo`]), never as silent numerical garbage.
//!
//! ## Locking and liveness
//!
//! Each slot has its own mutex. A pin blocks on exactly one slot lock at
//! a time; eviction scans candidates with `try_lock` only, so no thread
//! ever blocks on a second slot lock while holding a first — the
//! classic two-lock deadlock is structurally impossible. The resident
//! budget is *soft*: pinned bytes may exceed it (correctness first), and
//! the evictor brings residency back under budget as pins release.

use std::collections::VecDeque;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hqr_tile::io::{bytes_of_f64s, f64s_of_bytes, SectionReader, SectionWriter};
use hqr_tile::TiledMatrix;

use crate::exec::TFactors;
use crate::task::{SlotFamily, Task, SLOT_FAMILIES};

/// Magic bytes opening every spill record.
pub const SPILL_MAGIC: [u8; 8] = *b"HQRSPILL";
/// Spill record version.
pub const SPILL_VERSION: u32 = 1;

const S_TILE: u32 = 1;

/// Container overhead around one tile payload: magic (8) + version (4)
/// + section tag (4) + section length (8) + checksum trailer (8).
const RECORD_OVERHEAD: usize = 32;

/// Per-run totals of the paged store's tier traffic, snapshotted into
/// [`crate::exec::ExecTrace::spill`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillSummary {
    /// Resident-budget bytes the run was configured with.
    pub budget: u64,
    /// Unpinned slots evicted from the resident tier (buffer dropped).
    pub evictions: u64,
    /// Evictions that had to write the buffer back to disk (dirty).
    pub writebacks: u64,
    /// Slots faulted in on demand by a pinning worker (cache misses).
    pub demand_faults: u64,
    /// Slots faulted in ahead of use by the prefetch thread.
    pub prefetches: u64,
    /// Pins that found their slot resident *because* prefetch loaded it.
    pub prefetch_hits: u64,
}

impl SpillSummary {
    pub(crate) fn merge(&mut self, other: &SpillSummary) {
        self.budget = self.budget.max(other.budget);
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.demand_faults += other.demand_faults;
        self.prefetches += other.prefetches;
        self.prefetch_hits += other.prefetch_hits;
    }
}

/// One slot of the paged store.
struct Slot {
    /// Resident buffer, if any.
    buf: Option<Box<[f64]>>,
    /// True once a valid record for this slot exists in the spill file.
    on_disk: bool,
    /// Resident copy differs from (or predates) the disk copy.
    dirty: bool,
    /// Pin count; a pinned slot is never evicted.
    pins: u32,
    /// Loaded by the prefetch thread and not yet claimed by a pin.
    prefetched: bool,
    /// LRU clock stamp of the last pin.
    epoch: u64,
    /// The slot is backed by a real buffer (factor families only allocate
    /// the slots their graph writes).
    exists: bool,
}

/// What one [`PagedCore::pin`] observed, for per-worker counters.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PinEvents {
    pub demand_fault: bool,
    pub prefetch_hit: bool,
    pub evictions: u64,
}

/// Shared state of the paged store: slot table, spill file, budget
/// accounting, traffic counters, and the prefetch queue.
pub(crate) struct PagedCore {
    b: usize,
    mt: usize,
    slots_per_family: usize,
    tile_bytes: u64,
    record_len: u64,
    budget: u64,
    file: File,
    path: PathBuf,
    slots: Vec<Mutex<Slot>>,
    resident: AtomicU64,
    clock: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    demand_faults: AtomicU64,
    prefetches: AtomicU64,
    prefetch_hits: AtomicU64,
    queue: Mutex<VecDeque<usize>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

/// Owning handle: the core plus the prefetch thread's join handle. The
/// spill file is removed on drop.
pub(crate) struct PagedStore {
    pub(crate) core: Arc<PagedCore>,
    prefetcher: Option<std::thread::JoinHandle<()>>,
}

fn slot_label(b: usize, mt: usize, spf: usize, idx: usize) -> String {
    let fam = match idx / spf {
        0 => SlotFamily::A,
        1 => SlotFamily::Vg,
        2 => SlotFamily::Tg,
        _ => SlotFamily::Tk,
    };
    let local = idx % spf;
    let _ = b;
    format!("{}({},{})", fam.name(), local % mt, local / mt)
}

impl PagedCore {
    #[inline]
    pub(crate) fn slot_index(&self, fam: SlotFamily, i: usize, j: usize) -> usize {
        (fam as usize) * self.slots_per_family + i + j * self.mt
    }

    fn label(&self, idx: usize) -> String {
        slot_label(self.b, self.mt, self.slots_per_family, idx)
    }

    /// Raw pointer to a pinned slot's resident buffer. Panics if the slot
    /// is not resident — callers must hold a pin (the executor's attempt
    /// ladder pins every slot a task touches before running it).
    pub(crate) fn resident_ptr(&self, fam: SlotFamily, i: usize, j: usize) -> *mut f64 {
        let idx = self.slot_index(fam, i, j);
        let mut s = lock(&self.slots[idx]);
        debug_assert!(s.pins > 0, "unpinned access to paged slot {}", self.label(idx));
        s.buf
            .as_mut()
            .unwrap_or_else(|| panic!("paged slot {} accessed while evicted", self.label(idx)))
            .as_mut_ptr()
    }

    fn record_bytes(&self, buf: &[f64]) -> Vec<u8> {
        let mut w = SectionWriter::new(SPILL_MAGIC, SPILL_VERSION);
        w.section(S_TILE, &bytes_of_f64s(buf));
        w.into_bytes()
    }

    fn write_record(&self, idx: usize, buf: &[f64]) -> Result<(), String> {
        let bytes = self.record_bytes(buf);
        debug_assert_eq!(bytes.len() as u64, self.record_len);
        self.file.write_all_at(&bytes, idx as u64 * self.record_len).map_err(|e| {
            format!("spill write for {} ({}): {e}", self.label(idx), self.path.display())
        })
    }

    fn read_record(&self, idx: usize) -> Result<Box<[f64]>, String> {
        let mut bytes = vec![0u8; self.record_len as usize];
        self.file.read_exact_at(&mut bytes, idx as u64 * self.record_len).map_err(|e| {
            format!("spill read for {} ({}): {e}", self.label(idx), self.path.display())
        })?;
        let r = SectionReader::from_bytes(bytes, SPILL_MAGIC, SPILL_VERSION)
            .map_err(|e| format!("spill record for {} is corrupt: {e}", self.label(idx)))?;
        let payload = r
            .require(S_TILE)
            .map_err(|e| format!("spill record for {} is corrupt: {e}", self.label(idx)))?;
        let floats = f64s_of_bytes(S_TILE, payload)
            .map_err(|e| format!("spill record for {} is corrupt: {e}", self.label(idx)))?;
        if floats.len() != self.b * self.b {
            return Err(format!(
                "spill record for {} holds {} floats, expected {}",
                self.label(idx),
                floats.len(),
                self.b * self.b
            ));
        }
        Ok(floats.into_boxed_slice())
    }

    /// Evict unpinned resident slots (LRU first) until residency plus
    /// `incoming` fits the budget or no evictable slot remains. Returns
    /// the number of slots evicted. Never blocks on a slot lock.
    fn make_room(&self, incoming: u64) -> Result<u64, String> {
        let mut evicted = 0u64;
        while self.resident.load(Ordering::Acquire).saturating_add(incoming) > self.budget {
            // Pick the least-recently-pinned unpinned resident slot among
            // those we can inspect without blocking.
            let mut best: Option<(u64, usize)> = None;
            for idx in 0..self.slots.len() {
                let Ok(s) = self.slots[idx].try_lock() else { continue };
                if s.exists && s.pins == 0 && s.buf.is_some() {
                    let stamp = s.epoch;
                    if best.is_none_or(|(e, _)| stamp < e) {
                        best = Some((stamp, idx));
                    }
                }
            }
            let Some((stamp, idx)) = best else { return Ok(evicted) };
            let Ok(mut s) = self.slots[idx].try_lock() else { continue };
            // Re-check under the lock: a pin or another evictor may have
            // raced us since the scan.
            if !(s.exists && s.pins == 0 && s.buf.is_some() && s.epoch == stamp) {
                continue;
            }
            if s.dirty {
                let buf = s.buf.as_ref().unwrap();
                self.write_record(idx, buf)?;
                s.on_disk = true;
                s.dirty = false;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            debug_assert!(s.on_disk, "evicting a clean slot with no disk copy");
            s.buf = None;
            s.prefetched = false;
            drop(s);
            self.resident.fetch_sub(self.tile_bytes, Ordering::AcqRel);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Pin one slot, faulting it in from disk if evicted. Returns the
    /// events observed (for per-worker counters).
    pub(crate) fn pin(
        &self,
        fam: SlotFamily,
        i: usize,
        j: usize,
        will_write: bool,
    ) -> Result<PinEvents, String> {
        let idx = self.slot_index(fam, i, j);
        let mut ev = PinEvents::default();
        let mut s = lock(&self.slots[idx]);
        if !s.exists {
            return Err(format!("task pinned unallocated slot {}", self.label(idx)));
        }
        if s.buf.is_none() {
            // Demand fault. Make room without holding this slot's lock —
            // the evictor only try_locks, but spill writes are slow and
            // other pins of this same slot would serialize behind them
            // anyway; more importantly `make_room` must observe this slot
            // as un-evictable, which `pins > 0` below guarantees, so
            // release-and-retry keeps the invariant simple.
            drop(s);
            ev.evictions += self.make_room(self.tile_bytes)?;
            s = lock(&self.slots[idx]);
            if s.buf.is_none() {
                let buf = self.read_record(idx)?;
                s.buf = Some(buf);
                s.dirty = false;
                s.prefetched = false;
                self.resident.fetch_add(self.tile_bytes, Ordering::AcqRel);
                self.demand_faults.fetch_add(1, Ordering::Relaxed);
                ev.demand_fault = true;
            }
        }
        if s.prefetched {
            s.prefetched = false;
            self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
            ev.prefetch_hit = true;
        }
        s.pins += 1;
        s.dirty |= will_write;
        s.epoch = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(ev)
    }

    pub(crate) fn unpin(&self, idx: usize) {
        let mut s = lock(&self.slots[idx]);
        debug_assert!(s.pins > 0, "unpin of unpinned slot {}", self.label(idx));
        s.pins = s.pins.saturating_sub(1);
    }

    /// Queue the slots a ready task touches for background fault-in.
    pub(crate) fn enqueue_prefetch(&self, t: &Task) {
        let mut wanted = Vec::new();
        for (fam, i, j) in t.reads().into_iter().chain(t.writes()) {
            let idx = self.slot_index(fam, i, j);
            // Cheap pre-filter: skip slots already resident right now.
            if let Ok(s) = self.slots[idx].try_lock() {
                if !s.exists || s.buf.is_some() {
                    continue;
                }
            }
            wanted.push(idx);
        }
        if wanted.is_empty() {
            return;
        }
        let mut q = lock(&self.queue);
        q.extend(wanted);
        drop(q);
        self.queue_cv.notify_one();
    }

    /// Body of the background prefetch thread: fault queued slots in ahead
    /// of their pins, without ever pushing residency over budget.
    fn prefetch_loop(&self) {
        loop {
            let idx = {
                let mut q = lock(&self.queue);
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(idx) = q.pop_front() {
                        break idx;
                    }
                    q = self.queue_cv.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            // Best-effort: a prefetch that cannot make room (everything
            // pinned) or hits an I/O error is skipped; the pin path will
            // fault the slot in on demand and surface any real error.
            if self.make_room(self.tile_bytes).is_err() {
                continue;
            }
            if self.resident.load(Ordering::Acquire).saturating_add(self.tile_bytes) > self.budget {
                continue;
            }
            let mut s = lock(&self.slots[idx]);
            if !s.exists || s.buf.is_some() || s.pins > 0 {
                continue;
            }
            let Ok(buf) = self.read_record(idx) else { continue };
            s.buf = Some(buf);
            s.dirty = false;
            s.prefetched = true;
            self.resident.fetch_add(self.tile_bytes, Ordering::AcqRel);
            self.prefetches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the traffic totals.
    pub(crate) fn summary(&self) -> SpillSummary {
        SpillSummary {
            budget: self.budget,
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            demand_faults: self.demand_faults.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Process-unique spill file names (several paged runs may share a dir).
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Pick a spill file path under `dir` (or the OS temp dir).
pub(crate) fn spill_file_path(dir: Option<&Path>) -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!("hqr-spill-{}-{}.tiles", std::process::id(), seq);
    dir.map_or_else(std::env::temp_dir, Path::to_path_buf).join(name)
}

impl PagedStore {
    /// Build the paged store over a matrix and its factor buffers: take
    /// ownership of every allocated `b × b` buffer, then evict down to
    /// `budget` bytes so the run starts inside its residency target. The
    /// matrix and factors are hollow until [`PagedStore::unpage`] returns
    /// their buffers.
    pub(crate) fn build(
        a: &mut TiledMatrix,
        f: &mut TFactors,
        budget: u64,
        dir: Option<&Path>,
    ) -> Result<PagedStore, String> {
        let (mt, nt, b) = (a.mt(), a.nt(), a.b());
        let spf = mt * nt;
        let tile_bytes = (b * b * 8) as u64;
        let path = spill_file_path(dir);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| format!("cannot create spill file {}: {e}", path.display()))?;
        let mut slots = Vec::with_capacity(SLOT_FAMILIES * spf);
        let mut resident = 0u64;
        let absent = || Slot {
            buf: None,
            on_disk: false,
            dirty: false,
            pins: 0,
            prefetched: false,
            epoch: 0,
            exists: false,
        };
        // Family A first, in slot-index order (i fastest — idx = i + j*mt).
        for j in 0..nt {
            for i in 0..mt {
                let buf = a.take_tile_buf(i, j);
                resident += tile_bytes;
                slots.push(Mutex::new(Slot {
                    buf: Some(buf),
                    dirty: true,
                    exists: true,
                    ..absent()
                }));
            }
        }
        for fam in [&mut f.vg, &mut f.tg, &mut f.tk] {
            for slot in fam.iter_mut() {
                match slot.take() {
                    Some(buf) => {
                        resident += tile_bytes;
                        slots.push(Mutex::new(Slot {
                            buf: Some(buf),
                            dirty: true,
                            exists: true,
                            ..absent()
                        }));
                    }
                    None => slots.push(Mutex::new(absent())),
                }
            }
        }
        let core = Arc::new(PagedCore {
            b,
            mt,
            slots_per_family: spf,
            tile_bytes,
            record_len: (RECORD_OVERHEAD + b * b * 8) as u64,
            budget: budget.max(tile_bytes), // at least one resident tile
            file,
            path,
            slots,
            resident: AtomicU64::new(resident),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            demand_faults: AtomicU64::new(0),
            prefetches: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // Establish the initial residency: everything starts resident
        // (the caller allocated the full matrix), so spill cold slots
        // until the working set fits. Errors here are real I/O failures.
        core.make_room(0)?;
        let worker = Arc::clone(&core);
        let prefetcher = std::thread::Builder::new()
            .name("hqr-spill-prefetch".into())
            .spawn(move || worker.prefetch_loop())
            .map_err(|e| format!("cannot spawn prefetch thread: {e}"))?;
        Ok(PagedStore { core, prefetcher: Some(prefetcher) })
    }

    /// Fault every slot back in and return the buffers to the matrix and
    /// factor families, then stop the prefetch thread. Called exactly once
    /// when execution (or the owning job) finishes — on success *and* on
    /// error paths, so callers never observe a hollow matrix. Slots whose
    /// spill records fail their checksum are restored as zero buffers and
    /// reported in the returned error.
    pub(crate) fn unpage(&mut self, a: &mut TiledMatrix, f: &mut TFactors) -> Result<(), String> {
        self.stop_prefetcher();
        let core = &self.core;
        let (mt, spf, b) = (core.mt, core.slots_per_family, core.b);
        let nt = spf / mt;
        let mut first_err: Option<String> = None;
        let mut recover = |idx: usize, core: &PagedCore| -> Box<[f64]> {
            let mut s = lock(&core.slots[idx]);
            debug_assert!(s.exists, "unpaging an absent slot");
            match s.buf.take() {
                Some(buf) => buf,
                None => match core.read_record(idx) {
                    Ok(buf) => buf,
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        vec![0.0; b * b].into_boxed_slice()
                    }
                },
            }
        };
        for j in 0..nt {
            for i in 0..mt {
                let idx = core.slot_index(SlotFamily::A, i, j);
                a.put_tile_buf(i, j, recover(idx, core));
            }
        }
        for (fam, family) in
            [(SlotFamily::Vg, &mut f.vg), (SlotFamily::Tg, &mut f.tg), (SlotFamily::Tk, &mut f.tk)]
        {
            for j in 0..nt {
                for i in 0..mt {
                    let idx = core.slot_index(fam, i, j);
                    if lock(&core.slots[idx]).exists {
                        family[i + j * mt] = Some(recover(idx, core));
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn stop_prefetcher(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.queue_cv.notify_all();
        if let Some(h) = self.prefetcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PagedStore {
    fn drop(&mut self) {
        self.stop_prefetcher();
        let _ = std::fs::remove_file(&self.core.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::ElimOp;
    use crate::graph::TaskGraph;

    fn fixture(mt: usize, nt: usize, b: usize) -> (TaskGraph, TiledMatrix, TFactors) {
        let mut elims = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                elims.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        let g = TaskGraph::build(mt, nt, b, &elims);
        let a = TiledMatrix::random(mt, nt, b, 42);
        let f = TFactors::allocate_for(&g);
        (g, a, f)
    }

    #[test]
    fn build_unpage_roundtrips_bitwise() {
        let (_g, mut a, mut f) = fixture(3, 2, 4);
        let before = a.to_dense();
        let tile_bytes = (4 * 4 * 8) as u64;
        // Budget of two tiles: almost everything spills at build time.
        let mut store = PagedStore::build(&mut a, &mut f, 2 * tile_bytes, None).unwrap();
        assert!(store.core.resident.load(Ordering::Relaxed) <= 2 * tile_bytes);
        store.unpage(&mut a, &mut f).unwrap();
        assert_eq!(a.to_dense().data(), before.data(), "spill roundtrip must be bitwise");
        let s = store.core.summary();
        assert!(s.evictions > 0 && s.writebacks > 0, "build under budget must evict");
    }

    #[test]
    fn pin_faults_in_and_blocks_eviction() {
        let (_g, mut a, mut f) = fixture(3, 2, 3);
        let tile_bytes = (3 * 3 * 8) as u64;
        let mut store = PagedStore::build(&mut a, &mut f, 2 * tile_bytes, None).unwrap();
        let core = Arc::clone(&store.core);
        let ev = core.pin(SlotFamily::A, 2, 1, false).unwrap();
        assert!(ev.demand_fault, "evicted slot must fault in on pin");
        let idx = core.slot_index(SlotFamily::A, 2, 1);
        // A pinned slot survives any amount of eviction pressure.
        core.make_room(u64::MAX / 2).unwrap();
        assert!(lock(&core.slots[idx]).buf.is_some(), "pinned slot evicted");
        core.unpin(idx);
        core.make_room(u64::MAX / 2).unwrap();
        assert!(lock(&core.slots[idx]).buf.is_none(), "unpinned slot must evict");
        store.unpage(&mut a, &mut f).unwrap();
    }

    #[test]
    fn corrupt_record_is_a_typed_fault() {
        let (_g, mut a, mut f) = fixture(2, 2, 3);
        let tile_bytes = (3 * 3 * 8) as u64;
        let mut store = PagedStore::build(&mut a, &mut f, tile_bytes, None).unwrap();
        let core = Arc::clone(&store.core);
        // Ensure the victim slot is on disk and evicted.
        let idx = core.slot_index(SlotFamily::A, 1, 1);
        assert!(lock(&core.slots[idx]).buf.is_none());
        // Flip one payload byte of its record: the FNV-1a trailer must
        // catch the at-rest corruption on the next fault-in.
        let off = idx as u64 * core.record_len + 20;
        let mut byte = [0u8; 1];
        core.file.read_exact_at(&mut byte, off).unwrap();
        byte[0] ^= 0x10;
        core.file.write_all_at(&byte, off).unwrap();
        let err = core.pin(SlotFamily::A, 1, 1, false).unwrap_err();
        assert!(err.contains("corrupt"), "error must name the corruption: {err}");
        // Unpage restores what it can and reports the bad slot.
        let err = store.unpage(&mut a, &mut f).unwrap_err();
        assert!(err.contains("A(1,1)"), "error must name the slot: {err}");
    }
}
