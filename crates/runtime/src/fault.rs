//! Deterministic fault injection and recovery policy for the executors.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic schedule of injected
//! failures: fail a given task's first K attempts, poison a worker thread
//! (every task it touches fails until it "crashes"), or drop a task's
//! completion notification (to exercise the stall watchdog). Injected
//! failures are real `panic!`s raised inside the kernel-execution
//! `catch_unwind` scope, so they exercise exactly the recovery path a real
//! kernel panic would take: write-set rollback plus bounded retry.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Once;
use std::time::Duration;

use crate::integrity::IntegrityMode;
use crate::sched::SchedPolicy;

/// Marker prefix used by every injected panic, so logs distinguish
/// simulated faults from genuine kernel failures.
pub const INJECTED_FAULT_PREFIX: &str = "injected fault";

/// How many failures a poisoned worker inflicts before it stops taking
/// work (simulating the worker dying): each failed task is re-enqueued for
/// healthy peers, so a run with at least one healthy worker always makes
/// progress.
pub(crate) const POISON_STRIKES: u32 = 3;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Multiplier used by [`SdcPattern::Scale`] strikes — a silent ~0.1%
/// scaling error, the "kernel produced slightly wrong numbers" corruption
/// class (vs. the sharp bit flip).
pub const SDC_SCALE_FACTOR: f64 = 1.0 + 1.0 / 1024.0;

/// The corruption a silent-data-corruption strike applies to one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdcPattern {
    /// XOR one bit (0..64, taken mod 64) of the element's IEEE-754 bit
    /// pattern.
    BitFlip(u32),
    /// Multiply the element by [`SDC_SCALE_FACTOR`]; a zero element is
    /// replaced by a tiny non-zero so the strike is never a no-op.
    Scale,
}

/// One planned silent-data-corruption strike against a task's freshly
/// written output. `slot` and `element` are raw picks reduced modulo the
/// task's write-set size and the tile's element count at injection time,
/// so a plan can be built without knowing the tile size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcFault {
    /// Picks which write-set buffer is struck (mod the task's write count).
    pub slot: u32,
    /// Picks which element within the `b × b` buffer is struck (mod `b²`).
    pub element: u32,
    /// The corruption applied to that element.
    pub pattern: SdcPattern,
}

/// A deterministic, seeded schedule of injected execution faults.
///
/// Plans are value types built with a fluent API:
///
/// ```
/// use hqr_runtime::FaultPlan;
/// let plan = FaultPlan::new(42).fail_task(3, 1).fail_random_tasks(100, 3, 1);
/// assert!(plan.planned_failures() >= 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// task id -> number of initial attempts that must fail.
    fail_first: BTreeMap<u32, u32>,
    /// Worker threads whose every attempt fails.
    poisoned: BTreeSet<usize>,
    /// Tasks whose completion notification is dropped (the task runs, its
    /// successors are never released) — watchdog-test fuel.
    lost: BTreeSet<u32>,
    /// task id -> silent-data-corruption strike against its first
    /// completed attempt's output.
    corrupt: BTreeMap<u32, SdcFault>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` for its randomized builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// The seed the randomized builders derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fail task `task`'s first `attempts` attempts.
    pub fn fail_task(mut self, task: u32, attempts: u32) -> Self {
        if attempts > 0 {
            *self.fail_first.entry(task).or_insert(0) += attempts;
        }
        self
    }

    /// Pick `count` distinct tasks out of `n_tasks` (deterministically from
    /// the seed) and fail each one's first `attempts` attempts.
    pub fn fail_random_tasks(mut self, n_tasks: usize, count: usize, attempts: u32) -> Self {
        let mut state = self.seed ^ 0xfa17_fa17_fa17_fa17;
        let want = count.min(n_tasks);
        let mut picked = BTreeSet::new();
        while picked.len() < want {
            let tid = (splitmix64(&mut state) % n_tasks.max(1) as u64) as u32;
            picked.insert(tid);
        }
        for tid in picked {
            self = self.fail_task(tid, attempts);
        }
        self
    }

    /// Poison worker thread `worker`: every task attempt it makes fails
    /// (without consuming the tasks' retry budgets; failed tasks are handed
    /// back to healthy peers). After a few strikes the worker stops taking
    /// work, modeling a dying worker.
    pub fn poison_worker(mut self, worker: usize) -> Self {
        self.poisoned.insert(worker);
        self
    }

    /// Drop task `task`'s completion: it executes, but its successors are
    /// never released. Pair with a watchdog to observe the resulting stall.
    pub fn lose_completion(mut self, task: u32) -> Self {
        self.lost.insert(task);
        self
    }

    /// Schedule a silent-data-corruption strike against task `task`: after
    /// its first attempt's kernel completes (and the postcondition guards
    /// are published), one element of its write set is corrupted per
    /// `fault`. Retries re-run the kernel clean, so detect-recompute
    /// recovery converges.
    pub fn corrupt_task(mut self, task: u32, fault: SdcFault) -> Self {
        self.corrupt.insert(task, fault);
        self
    }

    /// Pick `count` distinct victim tasks out of `n_tasks`
    /// (deterministically from the plan seed) and schedule a seeded
    /// single-bit-flip corruption against each: random write-set buffer,
    /// random element, random bit.
    pub fn corrupt_random_tasks(self, n_tasks: usize, count: usize) -> Self {
        let seed = self.seed;
        self.corrupt_random_tasks_seeded(seed, n_tasks, count)
    }

    /// [`FaultPlan::corrupt_random_tasks`] drawing from an explicit seed
    /// (the CLI's `--sdc-seed`), so corruption picks decouple from the
    /// panic-injection picks of [`FaultPlan::fail_random_tasks`].
    pub fn corrupt_random_tasks_seeded(mut self, seed: u64, n_tasks: usize, count: usize) -> Self {
        let mut state = seed ^ 0x5dc0_5dc0_5dc0_5dc0;
        let want = count.min(n_tasks);
        let mut picked = BTreeSet::new();
        while picked.len() < want {
            let tid = (splitmix64(&mut state) % n_tasks.max(1) as u64) as u32;
            picked.insert(tid);
        }
        for tid in picked {
            let fault = SdcFault {
                slot: splitmix64(&mut state) as u32,
                element: splitmix64(&mut state) as u32,
                pattern: SdcPattern::BitFlip((splitmix64(&mut state) % 64) as u32),
            };
            self.corrupt.insert(tid, fault);
        }
        self
    }

    /// Tasks with scheduled attempt failures, as `(task, attempts)` pairs.
    pub fn failing_tasks(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.fail_first.iter().map(|(&t, &k)| (t, k))
    }

    /// Total number of scheduled attempt failures (excluding poison).
    pub fn planned_failures(&self) -> usize {
        self.fail_first.values().map(|&k| k as usize).sum()
    }

    /// Tasks with a scheduled corruption strike, as `(task, fault)` pairs.
    pub fn corrupted_tasks(&self) -> impl Iterator<Item = (u32, SdcFault)> + '_ {
        self.corrupt.iter().map(|(&t, &f)| (t, f))
    }

    /// Number of scheduled corruption strikes.
    pub fn planned_corruptions(&self) -> usize {
        self.corrupt.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.fail_first.is_empty()
            && self.poisoned.is_empty()
            && self.lost.is_empty()
            && self.corrupt.is_empty()
    }

    pub(crate) fn should_fail_attempt(&self, task: u32, attempt: u32) -> bool {
        self.fail_first.get(&task).is_some_and(|&k| attempt < k)
    }

    pub(crate) fn sdc_for(&self, task: u32) -> Option<SdcFault> {
        self.corrupt.get(&task).copied()
    }

    pub(crate) fn is_poisoned(&self, worker: usize) -> bool {
        self.poisoned.contains(&worker)
    }

    pub(crate) fn loses_completion(&self, task: u32) -> bool {
        self.lost.contains(&task)
    }

    pub(crate) fn loses_any_completion(&self) -> bool {
        !self.lost.is_empty()
    }

    /// True when the plan poisons at least one worker thread. Poisoning is
    /// a per-engine-run concept (worker indices belong to one engine's
    /// thread pool), so the multi-job [`crate::pool::JobPool`] rejects such
    /// plans at submission.
    pub(crate) fn poisons_any_worker(&self) -> bool {
        !self.poisoned.is_empty()
    }
}

/// Per-run recovery accounting, returned alongside the factors by
/// [`crate::exec::try_execute_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Panics caught by the executor (injected and genuine).
    pub panics_caught: u32,
    /// Tasks that completed after at least one failed attempt.
    pub tasks_recovered: u32,
    /// Task re-executions (retries plus poison re-enqueues).
    pub tasks_reexecuted: u32,
    /// Tile buffers restored from pre-execution snapshots.
    pub tiles_rolled_back: u32,
    /// Workers that stopped taking work after repeated poison strikes.
    pub workers_lost: u32,
    /// Silent-data-corruption strikes actually applied by the plan.
    pub sdc_injected: u32,
    /// Corruptions caught by a guard verification (integrity mode on).
    pub sdc_detected: u32,
    /// Tasks whose output was re-produced clean after an SDC detection
    /// (detect-recompute recoveries).
    pub sdc_recomputed: u32,
}

impl FaultStats {
    pub(crate) fn merge(&mut self, other: &FaultStats) {
        self.panics_caught += other.panics_caught;
        self.tasks_recovered += other.tasks_recovered;
        self.tasks_reexecuted += other.tasks_reexecuted;
        self.tiles_rolled_back += other.tiles_rolled_back;
        self.workers_lost += other.workers_lost;
        self.sdc_injected += other.sdc_injected;
        self.sdc_detected += other.sdc_detected;
        self.sdc_recomputed += other.sdc_recomputed;
    }
}

/// Options for the fault-tolerant execution entry point
/// [`crate::exec::try_execute_with`].
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker threads; `0` and `1` both run a single worker.
    pub nthreads: usize,
    /// Inner block size (PLASMA's IB); `None` selects the unblocked
    /// kernels (`ib == b`).
    pub ib: Option<usize>,
    /// Per-task retry budget after a caught panic; `0` fails fast.
    pub max_retries: u32,
    /// Injected fault schedule, if any.
    pub plan: Option<FaultPlan>,
    /// Abort (with a [`crate::StallReport`]) when no task completes within
    /// this window.
    pub watchdog: Option<Duration>,
    /// How released tasks are ranked on the shared ready queue (the
    /// per-worker LIFO deques keep their data-reuse behavior regardless).
    /// Defaults to [`SchedPolicy::Fifo`], the executor's historical
    /// behavior.
    pub policy: SchedPolicy,
    /// Guard-based silent-data-corruption checking; defaults to
    /// [`IntegrityMode::Off`] (no guards, no verification cost).
    pub integrity: IntegrityMode,
    /// Resident-tier byte budget for the two-tier tile store. When set
    /// and smaller than the run's allocated tile footprint, the engine
    /// pages tiles between an LRU-resident working set and a checksummed
    /// spill file (see `DESIGN.md`, "Storage tiers"), keeping the
    /// factorization bitwise identical. `None` (the default) keeps every
    /// buffer resident.
    pub resident_budget: Option<u64>,
    /// Directory for spill files in paged runs; `None` uses the OS temp
    /// dir. (The pool routes this to `--state-dir/spill`.)
    pub spill_dir: Option<std::path::PathBuf>,
}

impl ExecOptions {
    /// Options for a plain `nthreads`-worker run with no fault handling
    /// beyond typed errors.
    pub fn with_threads(nthreads: usize) -> Self {
        ExecOptions { nthreads, ..Default::default() }
    }

    /// True when panics must be recovered (snapshot + retry) rather than
    /// reported immediately.
    pub(crate) fn recovery_enabled(&self) -> bool {
        self.max_retries > 0 || self.plan.is_some()
    }
}

static QUIET_INSTALL: Once = Once::new();

thread_local! {
    /// Panic-hook suppression depth for the current thread only. A
    /// process-wide counter would swallow panics from *unrelated* threads
    /// (e.g. concurrent tests) for as long as any engine run is in flight.
    static QUIET_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard that silences the panic hook *for the engaging thread only*
/// while fault-tolerant execution is active, so expected (caught) panics
/// don't spam stderr. Each engine worker thread engages its own guard;
/// panics raised on any other thread still reach the previous hook with a
/// full backtrace. Nested guards on one thread stack; the hook prints
/// again once the last one drops. The caught panic's message is preserved
/// in the returned [`crate::ExecError`] either way.
pub(crate) struct QuietPanics {
    /// Pins the guard to the engaging thread (thread-local depth must be
    /// decremented where it was incremented).
    _not_send: std::marker::PhantomData<*const ()>,
}

impl QuietPanics {
    pub(crate) fn engage() -> QuietPanics {
        QUIET_INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            // The hook-info type is inferred (it was renamed to
            // `PanicHookInfo` in recent toolchains; not naming it keeps
            // this building on both sides of the rename).
            std::panic::set_hook(Box::new(move |info| {
                if QUIET_DEPTH.with(Cell::get) == 0 {
                    prev(info);
                }
            }));
        });
        QUIET_DEPTH.with(|d| d.set(d.get() + 1));
        QuietPanics { _not_send: std::marker::PhantomData }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_task_schedules_attempts() {
        let p = FaultPlan::new(1).fail_task(5, 2);
        assert!(p.should_fail_attempt(5, 0));
        assert!(p.should_fail_attempt(5, 1));
        assert!(!p.should_fail_attempt(5, 2));
        assert!(!p.should_fail_attempt(6, 0));
        assert_eq!(p.planned_failures(), 2);
    }

    #[test]
    fn random_tasks_are_deterministic_and_distinct() {
        let a = FaultPlan::new(99).fail_random_tasks(50, 5, 1);
        let b = FaultPlan::new(99).fail_random_tasks(50, 5, 1);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.failing_tasks().count(), 5);
        assert!(a.failing_tasks().all(|(t, k)| (t as usize) < 50 && k == 1));
        let c = FaultPlan::new(100).fail_random_tasks(50, 5, 1);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn random_tasks_clamps_to_population() {
        let p = FaultPlan::new(7).fail_random_tasks(3, 10, 1);
        assert_eq!(p.failing_tasks().count(), 3);
    }

    #[test]
    fn poison_and_lose_are_recorded() {
        let p = FaultPlan::new(0).poison_worker(2).lose_completion(9);
        assert!(p.is_poisoned(2));
        assert!(!p.is_poisoned(0));
        assert!(p.loses_completion(9));
        assert!(!p.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    fn random_corruptions_are_deterministic_and_distinct() {
        let a = FaultPlan::new(7).corrupt_random_tasks(40, 6);
        let b = FaultPlan::new(7).corrupt_random_tasks(40, 6);
        assert_eq!(a, b, "same seed, same strikes");
        assert_eq!(a.planned_corruptions(), 6);
        assert!(a.corrupted_tasks().all(|(t, f)| {
            (t as usize) < 40 && matches!(f.pattern, SdcPattern::BitFlip(bit) if bit < 64)
        }));
        let c = FaultPlan::new(7).corrupt_random_tasks_seeded(8, 40, 6);
        assert_ne!(a, c, "explicit seed decouples the picks");
        assert!(!a.is_empty());
        assert_eq!(
            a.sdc_for(a.corrupted_tasks().next().unwrap().0),
            Some(a.corrupted_tasks().next().unwrap().1)
        );
    }

    #[test]
    fn corrupt_task_records_the_strike() {
        let f = SdcFault { slot: 0, element: 3, pattern: SdcPattern::Scale };
        let p = FaultPlan::new(0).corrupt_task(9, f);
        assert_eq!(p.sdc_for(9), Some(f));
        assert_eq!(p.sdc_for(8), None);
        assert_eq!(p.planned_corruptions(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn recovery_enabled_conditions() {
        assert!(!ExecOptions::with_threads(2).recovery_enabled());
        let o = ExecOptions { max_retries: 1, ..Default::default() };
        assert!(o.recovery_enabled());
        let o = ExecOptions { plan: Some(FaultPlan::new(0)), ..Default::default() };
        assert!(o.recovery_enabled());
    }
}
