//! Executor-side silent-data-corruption (SDC) defense.
//!
//! Every tile-sized buffer the engine touches (matrix tiles and the
//! `Vg`/`Tg`/`Tk` factor slots) gets a [`hqr_tile::TileGuard`] — a
//! column-sum checksum vector plus an FNV bit digest. The lifecycle per
//! task, under [`IntegrityMode::Spot`] or [`IntegrityMode::Full`]:
//!
//! 1. *(full only)* before launch, verify the guards of the task's
//!    read set and of its write-set pre-images — corruption of data at
//!    rest is caught before it can propagate;
//! 2. run the kernel;
//! 3. **postcondition hook**: refresh the write-set guards from the fresh
//!    output while it is still "hot" (the trusted production boundary);
//! 4. verify the write set at *commit* time — the window between the
//!    hook and the commit is where an SDC strike lands, so a flipped bit
//!    surfaces as a digest mismatch before the task's successors are
//!    released.
//!
//! A commit-time mismatch routes into the existing write-set
//! snapshot/rollback retry path (detect-recompute); a pre-launch mismatch
//! cannot be healed by re-running the *current* task (its inputs are the
//! damaged data) and surfaces as a typed
//! [`crate::ExecError::SdcDetected`].

use std::cell::UnsafeCell;

use crate::store::TileStore;
use crate::task::{SlotFamily, Task, SLOT_FAMILIES};
use hqr_tile::{GuardMismatch, TileGuard};

/// How much guard-based SDC checking the executor performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No guards, no verification cost — corruption propagates silently.
    #[default]
    Off,
    /// Commit-time checking only: refresh and verify each task's
    /// write-set guards when it completes.
    Spot,
    /// [`IntegrityMode::Spot`] plus pre-launch verification of each
    /// task's read set and write-set pre-images (data-at-rest coverage).
    Full,
}

impl IntegrityMode {
    /// Parse a CLI spelling (`off` / `spot` / `full`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(IntegrityMode::Off),
            "spot" => Some(IntegrityMode::Spot),
            "full" => Some(IntegrityMode::Full),
            _ => None,
        }
    }

    /// True unless the mode is [`IntegrityMode::Off`].
    pub fn is_on(self) -> bool {
        self != IntegrityMode::Off
    }
}

impl std::fmt::Display for IntegrityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IntegrityMode::Off => "off",
            IntegrityMode::Spot => "spot",
            IntegrityMode::Full => "full",
        })
    }
}

/// A guard verification failure, located at a slot.
pub(crate) struct SlotMismatch {
    pub slot: (SlotFamily, usize, usize),
    pub mismatch: GuardMismatch,
}

impl SlotMismatch {
    /// `"A(2,1)"`-style location label.
    pub(crate) fn label(&self) -> String {
        let (fam, i, j) = self.slot;
        format!("{}({i},{j})", fam.name())
    }
}

/// One [`TileGuard`] per store slot (4 families × `mt·nt` coordinates),
/// populated lazily: a slot is guarded from its first writer's commit on.
///
/// Concurrency contract: a slot's guard is written at its writer task's
/// commit and read at dependent tasks' launches — the same DAG
/// exclusive-writer ordering that makes [`TileStore`]'s raw views sound,
/// hence the same `UnsafeCell` + `unsafe fn` shape.
pub(crate) struct GuardStore {
    slots: Vec<UnsafeCell<Option<TileGuard>>>,
    per_family: usize,
    mt: usize,
}

// SAFETY: access is ordered by the task DAG exactly like the tile buffers
// themselves (see the struct docs).
unsafe impl Sync for GuardStore {}

impl GuardStore {
    pub(crate) fn new(mt: usize, nt: usize) -> Self {
        let per_family = mt * nt;
        GuardStore {
            slots: (0..SLOT_FAMILIES * per_family).map(|_| UnsafeCell::new(None)).collect(),
            per_family,
            mt,
        }
    }

    fn idx(&self, (fam, i, j): (SlotFamily, usize, usize)) -> usize {
        fam as usize * self.per_family + i + j * self.mt
    }

    /// The kernel-postcondition hook: recompute the guards of `t`'s
    /// write set from the freshly produced output.
    ///
    /// # Safety
    /// Same contract as [`TileStore::run_task`]: `t` has not completed, so
    /// no concurrent task touches its write set (or those slots' guards).
    pub(crate) unsafe fn refresh_task(&self, store: &TileStore, t: &Task) {
        for s in t.writes() {
            let data = store.slot_data(s);
            let cell = &mut *self.slots[self.idx(s)].get();
            match cell {
                Some(g) => g.refresh(data),
                None => *cell = Some(TileGuard::compute(store.b(), data)),
            }
        }
    }

    /// Commit-time verification of `t`'s write-set guards against the
    /// buffers as found (after the SDC-vulnerable window).
    ///
    /// # Safety
    /// Same contract as [`GuardStore::refresh_task`].
    pub(crate) unsafe fn verify_outputs(
        &self,
        store: &TileStore,
        t: &Task,
    ) -> Option<SlotMismatch> {
        self.verify_slots(store, t.writes())
    }

    /// Pre-launch verification of `t`'s read set and write-set pre-images.
    /// Unguarded slots (no writer has committed them yet — e.g. pristine
    /// input tiles) are skipped.
    ///
    /// # Safety
    /// `t` is about to run: DAG order guarantees no concurrent writer of
    /// any slot in its read or write set.
    pub(crate) unsafe fn verify_inputs(&self, store: &TileStore, t: &Task) -> Option<SlotMismatch> {
        self.verify_slots(store, t.reads()).or_else(|| self.verify_slots(store, t.writes()))
    }

    unsafe fn verify_slots(
        &self,
        store: &TileStore,
        slots: Vec<(SlotFamily, usize, usize)>,
    ) -> Option<SlotMismatch> {
        for s in slots {
            if let Some(g) = &*self.slots[self.idx(s)].get() {
                if let Err(mismatch) = g.verify(store.slot_data(s)) {
                    return Some(SlotMismatch { slot: s, mismatch });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_displays() {
        for (s, m) in [
            ("off", IntegrityMode::Off),
            ("spot", IntegrityMode::Spot),
            ("full", IntegrityMode::Full),
        ] {
            assert_eq!(IntegrityMode::parse(s), Some(m));
            assert_eq!(m.to_string(), s);
        }
        assert_eq!(IntegrityMode::parse("paranoid"), None);
        assert_eq!(IntegrityMode::default(), IntegrityMode::Off);
        assert!(!IntegrityMode::Off.is_on());
        assert!(IntegrityMode::Spot.is_on());
        assert!(IntegrityMode::Full.is_on());
    }
}
