//! Kernel tasks and their data-access footprints.

use hqr_kernels::KernelKind;

/// A single kernel invocation in the factorization DAG.
///
/// Fields are `u16` tile indices — tiled matrices beyond 65k×65k tiles are
/// far outside the paper's regime (the largest experiment is 1024 tile
/// rows) and the compact layout keeps multi-million-task DAGs in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Task {
    /// Kernel to run.
    pub kind: KernelKind,
    /// Panel index.
    pub k: u16,
    /// Row operated on (the triangularized row for GEQRT/UNMQR, the victim
    /// row for kill/update kernels).
    pub i: u16,
    /// Pivot (killer) row; unused (= `i`) for GEQRT/UNMQR.
    pub piv: u16,
    /// Trailing column for update kernels; unused (= `k`) for factor kernels.
    pub j: u16,
}

/// Slot families used for data-flow dependency tracking. Each family holds
/// one slot per tile coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlotFamily {
    /// The matrix tile itself.
    A = 0,
    /// The copy of GEQRT's V factor (strict lower triangle), copied out so
    /// UNMQRs can read it while kill kernels rewrite the tile's R part —
    /// the same logical-tile split DAGuE expresses through its data-flow
    /// descriptions.
    Vg = 1,
    /// GEQRT's T factor.
    Tg = 2,
    /// TSQRT/TTQRT's T factor (one per victim tile).
    Tk = 3,
}

/// Number of slot families.
pub const SLOT_FAMILIES: usize = 4;

impl SlotFamily {
    /// Short display name, e.g. for slot labels in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SlotFamily::A => "A",
            SlotFamily::Vg => "Vg",
            SlotFamily::Tg => "Tg",
            SlotFamily::Tk => "Tk",
        }
    }
}

impl Task {
    /// GEQRT task.
    pub fn geqrt(k: u16, i: u16) -> Self {
        Task { kind: KernelKind::Geqrt, k, i, piv: i, j: k }
    }

    /// UNMQR task (apply row `i`'s GEQRT to trailing column `j`).
    pub fn unmqr(k: u16, i: u16, j: u16) -> Self {
        Task { kind: KernelKind::Unmqr, k, i, piv: i, j }
    }

    /// TSQRT or TTQRT kill task.
    pub fn kill(k: u16, victim: u16, piv: u16, ts: bool) -> Self {
        let kind = if ts { KernelKind::Tsqrt } else { KernelKind::Ttqrt };
        Task { kind, k, i: victim, piv, j: k }
    }

    /// TSMQR or TTMQR update task.
    pub fn update(k: u16, victim: u16, piv: u16, j: u16, ts: bool) -> Self {
        let kind = if ts { KernelKind::Tsmqr } else { KernelKind::Ttmqr };
        Task { kind, k, i: victim, piv, j }
    }

    /// Human-readable label, `KERNEL(coords)` — the same naming the DOT
    /// export and the Chrome-trace export use, so a node in a Graphviz dump
    /// and a span in a Perfetto timeline can be matched by eye.
    pub fn label(&self) -> String {
        match self.kind {
            KernelKind::Geqrt => format!("GEQRT({},{})", self.i, self.k),
            KernelKind::Unmqr => format!("UNMQR({},{};{})", self.i, self.k, self.j),
            KernelKind::Tsqrt => format!("TSQRT({}<-{};{})", self.i, self.piv, self.k),
            KernelKind::Ttqrt => format!("TTQRT({}<-{};{})", self.i, self.piv, self.k),
            KernelKind::Tsmqr => format!("TSMQR({},{};{})", self.i, self.piv, self.j),
            KernelKind::Ttmqr => format!("TTMQR({},{};{})", self.i, self.piv, self.j),
        }
    }

    /// The tile whose owner node executes this task (owner-computes rule,
    /// matching DAGuE's data/task affinity: the task runs where its dominant
    /// output lives).
    pub fn affinity_tile(&self) -> (usize, usize) {
        match self.kind {
            KernelKind::Geqrt | KernelKind::Tsqrt | KernelKind::Ttqrt => {
                (self.i as usize, self.k as usize)
            }
            KernelKind::Unmqr | KernelKind::Tsmqr | KernelKind::Ttmqr => {
                (self.i as usize, self.j as usize)
            }
        }
    }

    /// Slots read by this task (excluding read-write slots listed in
    /// [`Task::writes`]); each entry is `(family, row, col)`.
    pub fn reads(&self) -> Vec<(SlotFamily, usize, usize)> {
        let (k, i) = (self.k as usize, self.i as usize);
        match self.kind {
            KernelKind::Geqrt => vec![],
            KernelKind::Unmqr => vec![(SlotFamily::Vg, i, k), (SlotFamily::Tg, i, k)],
            KernelKind::Tsqrt | KernelKind::Ttqrt => vec![],
            KernelKind::Tsmqr | KernelKind::Ttmqr => {
                vec![(SlotFamily::A, i, k), (SlotFamily::Tk, i, k)]
            }
        }
    }

    /// Slots written (or read-written) by this task.
    pub fn writes(&self) -> Vec<(SlotFamily, usize, usize)> {
        let (k, i, piv, j) = (self.k as usize, self.i as usize, self.piv as usize, self.j as usize);
        match self.kind {
            KernelKind::Geqrt => {
                vec![(SlotFamily::A, i, k), (SlotFamily::Vg, i, k), (SlotFamily::Tg, i, k)]
            }
            KernelKind::Unmqr => vec![(SlotFamily::A, i, j)],
            KernelKind::Tsqrt | KernelKind::Ttqrt => {
                vec![(SlotFamily::A, piv, k), (SlotFamily::A, i, k), (SlotFamily::Tk, i, k)]
            }
            KernelKind::Tsmqr | KernelKind::Ttmqr => {
                vec![(SlotFamily::A, piv, j), (SlotFamily::A, i, j)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_is_compact() {
        // Multi-million-task DAGs depend on this staying small.
        assert!(
            std::mem::size_of::<Task>() <= 12,
            "Task grew to {} bytes",
            std::mem::size_of::<Task>()
        );
    }

    #[test]
    fn affinity_follows_owner_computes() {
        assert_eq!(Task::geqrt(1, 3).affinity_tile(), (3, 1));
        assert_eq!(Task::kill(0, 5, 2, true).affinity_tile(), (5, 0));
        assert_eq!(Task::update(0, 5, 2, 4, false).affinity_tile(), (5, 4));
        assert_eq!(Task::unmqr(2, 2, 7).affinity_tile(), (2, 7));
    }

    #[test]
    fn kill_selects_kernel_family() {
        assert_eq!(Task::kill(0, 1, 0, true).kind, KernelKind::Tsqrt);
        assert_eq!(Task::kill(0, 1, 0, false).kind, KernelKind::Ttqrt);
        assert_eq!(Task::update(0, 1, 0, 1, true).kind, KernelKind::Tsmqr);
        assert_eq!(Task::update(0, 1, 0, 1, false).kind, KernelKind::Ttmqr);
    }

    #[test]
    fn geqrt_reads_nothing_but_rewrites_its_tile() {
        let t = Task::geqrt(0, 0);
        assert!(t.reads().is_empty());
        assert!(t.writes().contains(&(SlotFamily::A, 0, 0)));
        assert!(t.writes().contains(&(SlotFamily::Vg, 0, 0)));
    }

    #[test]
    fn update_reads_v_and_t_of_its_kill() {
        let t = Task::update(1, 4, 2, 3, true);
        let r = t.reads();
        assert!(r.contains(&(SlotFamily::A, 4, 1)));
        assert!(r.contains(&(SlotFamily::Tk, 4, 1)));
        let w = t.writes();
        assert!(w.contains(&(SlotFamily::A, 2, 3)));
        assert!(w.contains(&(SlotFamily::A, 4, 3)));
    }

    #[test]
    fn unmqr_reads_vg_copy_not_tile() {
        // The V copy is what lets UNMQR run concurrently with kills that
        // rewrite the pivot tile's R part.
        let t = Task::unmqr(0, 0, 2);
        let r = t.reads();
        assert!(r.contains(&(SlotFamily::Vg, 0, 0)));
        assert!(!r.iter().any(|&(f, _, _)| f == SlotFamily::A));
    }
}
