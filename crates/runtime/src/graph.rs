//! DAG construction: from an elimination list to kernel tasks and
//! data-flow dependencies.
//!
//! Dependencies are discovered exactly the way DAGuE's symbolic data-flow
//! representation does: every task declares the tile slots it reads and
//! writes; a task depends on the last writer of each slot it touches. The
//! slot model (see [`crate::task::SlotFamily`]) splits a panel tile's V and
//! R parts so that trailing updates and kill kernels overlap, matching the
//! parallelism a real dataflow runtime extracts.

use crate::elim::ElimOp;
use crate::error::GraphError;
use crate::task::{SlotFamily, Task, SLOT_FAMILIES};

/// An immutable task DAG in CSR form.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    mt: usize,
    nt: usize,
    b: usize,
    tasks: Vec<Task>,
    /// CSR offsets into `succ`, length `tasks.len() + 1`.
    succ_off: Vec<u32>,
    /// Successor task ids (with multiplicity; a successor depending on two
    /// outputs of the same predecessor appears twice, and its in-degree
    /// counts both).
    succ: Vec<u32>,
    /// Number of incoming dependency edges per task.
    in_degree: Vec<u32>,
}

impl TaskGraph {
    /// Build the full task DAG for an `mt × nt` tiled matrix (tile size `b`)
    /// from an elimination list ordered panel-major (all panel-k operations
    /// before panel-k+1 operations, and in execution-priority order within
    /// a panel).
    ///
    /// # Panics
    /// Panics if the shape or elimination list is rejected by
    /// [`TaskGraph::try_build`], with that error's message.
    pub fn build(mt: usize, nt: usize, b: usize, elims: &[ElimOp]) -> Self {
        match Self::try_build(mt, nt, b, elims) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`TaskGraph::build`] with validated input: a malformed shape or
    /// elimination list (empty matrix, zero tile size, unsorted panels, a
    /// TS victim used as a killer, indices out of range) is reported as a
    /// [`GraphError`] instead of a panic.
    pub fn try_build(mt: usize, nt: usize, b: usize, elims: &[ElimOp]) -> Result<Self, GraphError> {
        if mt == 0 || nt == 0 {
            return Err(GraphError::EmptyMatrix);
        }
        if b == 0 {
            return Err(GraphError::ZeroTileSize);
        }
        if mt >= u16::MAX as usize || nt >= u16::MAX as usize {
            return Err(GraphError::TileCountOverflow { mt, nt });
        }
        let tasks = generate_tasks(mt, nt, elims)?;
        let (succ_off, succ, in_degree) = build_edges(mt, nt, &tasks);
        Ok(TaskGraph { mt, nt, b, tasks, succ_off, succ, in_degree })
    }

    /// Number of tile rows.
    pub fn mt(&self) -> usize {
        self.mt
    }

    /// Number of tile columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Tile size the DAG was built for.
    pub fn b(&self) -> usize {
        self.b
    }

    /// All tasks, in a valid topological (program) order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Successors of task `t` (with multiplicity).
    pub fn successors(&self, t: usize) -> &[u32] {
        &self.succ[self.succ_off[t] as usize..self.succ_off[t + 1] as usize]
    }

    /// In-degrees (number of dependency edges) per task.
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degree
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.succ.len()
    }

    /// Predecessor count of task `t`.
    pub fn in_degree(&self, t: usize) -> u32 {
        self.in_degree[t]
    }

    /// Sum of kernel floating-point operations over all tasks.
    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.kind.flops(self.b)).sum()
    }
}

/// Expand an elimination list into the full kernel-task list of
/// Algorithms 1+2, in a topological program order.
fn generate_tasks(mt: usize, nt: usize, elims: &[ElimOp]) -> Result<Vec<Task>, GraphError> {
    let kmax = mt.min(nt);
    // Group eliminations by panel, preserving order.
    let mut by_panel: Vec<Vec<&ElimOp>> = vec![Vec::new(); kmax];
    let mut last_k = 0u32;
    for (index, e) in elims.iter().enumerate() {
        if e.k < last_k {
            return Err(GraphError::UnsortedPanels { index, panel: e.k, previous: last_k });
        }
        last_k = e.k;
        if e.k as usize >= kmax {
            return Err(GraphError::PanelOutOfRange { index, panel: e.k, kmax });
        }
        if e.victim as usize >= mt || e.killer as usize >= mt {
            return Err(GraphError::RowOutOfRange {
                index,
                victim: e.victim,
                killer: e.killer,
                mt,
            });
        }
        by_panel[e.k as usize].push(e);
    }
    let mut tasks = Vec::new();
    let mut is_triangle = vec![false; mt];
    for k in 0..kmax {
        let panel = &by_panel[k];
        // Rows needing GEQRT: the diagonal row plus every killer and every
        // TT victim. TS victims are killed as squares and must never be
        // triangularized.
        is_triangle[k..mt].fill(false);
        is_triangle[k] = true;
        for e in panel {
            is_triangle[e.killer as usize] = true;
            if !e.ts {
                is_triangle[e.victim as usize] = true;
            }
        }
        for e in panel {
            if e.ts && is_triangle[e.victim as usize] {
                return Err(GraphError::TsVictimTriangular { panel: k as u32, victim: e.victim });
            }
        }
        for (i, &tri) in is_triangle.iter().enumerate().take(mt).skip(k) {
            if tri {
                tasks.push(Task::geqrt(k as u16, i as u16));
                for j in (k + 1)..nt {
                    tasks.push(Task::unmqr(k as u16, i as u16, j as u16));
                }
            }
        }
        for e in panel {
            tasks.push(Task::kill(e.k as u16, e.victim as u16, e.killer as u16, e.ts));
            for j in (k + 1)..nt {
                tasks.push(Task::update(
                    e.k as u16,
                    e.victim as u16,
                    e.killer as u16,
                    j as u16,
                    e.ts,
                ));
            }
        }
    }
    Ok(tasks)
}

/// Two-pass CSR edge construction from last-writer tracking.
fn build_edges(mt: usize, nt: usize, tasks: &[Task]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    const NONE: u32 = u32::MAX;
    let slots = SLOT_FAMILIES * mt * nt;
    let slot_of = |(f, i, j): (SlotFamily, usize, usize)| (f as usize) * mt * nt + j * mt + i;

    let n = tasks.len();
    let mut out_deg = vec![0u32; n];
    let mut in_degree = vec![0u32; n];
    // Pass 1: count out-degrees.
    {
        let mut writer = vec![NONE; slots];
        let mut preds = [0u32; 8];
        for (tid, t) in tasks.iter().enumerate() {
            let mut np = 0;
            for s in t.reads().into_iter().chain(t.writes()) {
                let w = writer[slot_of(s)];
                if w != NONE {
                    preds[np] = w;
                    np += 1;
                }
            }
            // Dedup (a task may read two slots produced by one predecessor);
            // counted once so in-degree matches completion decrements.
            preds[..np].sort_unstable();
            let mut prev = NONE;
            for &p in &preds[..np] {
                if p != prev {
                    out_deg[p as usize] += 1;
                    in_degree[tid] += 1;
                    prev = p;
                }
            }
            for s in t.writes() {
                writer[slot_of(s)] = tid as u32;
            }
        }
    }
    let mut succ_off = vec![0u32; n + 1];
    for i in 0..n {
        succ_off[i + 1] = succ_off[i] + out_deg[i];
    }
    let mut succ = vec![0u32; succ_off[n] as usize];
    // Pass 2: fill.
    {
        let mut writer = vec![NONE; slots];
        let mut cursor: Vec<u32> = succ_off[..n].to_vec();
        let mut preds = [0u32; 8];
        for (tid, t) in tasks.iter().enumerate() {
            let mut np = 0;
            for s in t.reads().into_iter().chain(t.writes()) {
                let w = writer[slot_of(s)];
                if w != NONE {
                    preds[np] = w;
                    np += 1;
                }
            }
            preds[..np].sort_unstable();
            let mut prev = NONE;
            for &p in &preds[..np] {
                if p != prev {
                    succ[cursor[p as usize] as usize] = tid as u32;
                    cursor[p as usize] += 1;
                    prev = p;
                }
            }
            for s in t.writes() {
                writer[slot_of(s)] = tid as u32;
            }
        }
    }
    (succ_off, succ, in_degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_kernels::KernelKind;

    /// Flat-tree elimination list for an `mt × nt` matrix (the [BBD+10]
    /// sequence: in every panel, the diagonal row kills all rows below with
    /// TS kernels, top to bottom).
    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        v
    }

    #[test]
    fn single_tile_has_one_task() {
        let g = TaskGraph::build(1, 1, 4, &[]);
        assert_eq!(g.tasks().len(), 1);
        assert_eq!(g.tasks()[0].kind, KernelKind::Geqrt);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn flat_tree_task_counts() {
        // For m×n flat tree: per panel k: 1 GEQRT + (nt-1-k) UNMQR +
        // (mt-1-k) TSQRT + (mt-1-k)(nt-1-k) TSMQR.
        let (mt, nt) = (4, 3);
        let g = TaskGraph::build(mt, nt, 2, &flat_elims(mt, nt));
        let count = |kind: KernelKind| g.tasks().iter().filter(|t| t.kind == kind).count();
        assert_eq!(count(KernelKind::Geqrt), 3);
        assert_eq!(count(KernelKind::Unmqr), 2 + 1); // panels 0,1 (panel 2 has none)
        assert_eq!(count(KernelKind::Tsqrt), 3 + 2 + 1);
        assert_eq!(count(KernelKind::Tsmqr), 3 * 2 + 2); // (mt-1-k)(nt-1-k) per panel
        assert_eq!(count(KernelKind::Ttqrt), 0);
    }

    #[test]
    fn program_order_is_topological() {
        let (mt, nt) = (6, 4);
        let g = TaskGraph::build(mt, nt, 2, &flat_elims(mt, nt));
        // every edge must go forward in task order
        for t in 0..g.tasks().len() {
            for &s in g.successors(t) {
                assert!((s as usize) > t, "edge {t} -> {s} goes backwards");
            }
        }
    }

    #[test]
    fn in_degree_matches_edges() {
        let (mt, nt) = (5, 5);
        let g = TaskGraph::build(mt, nt, 2, &flat_elims(mt, nt));
        let mut indeg = vec![0u32; g.tasks().len()];
        for t in 0..g.tasks().len() {
            for &s in g.successors(t) {
                indeg[s as usize] += 1;
            }
        }
        assert_eq!(indeg, g.in_degrees());
    }

    #[test]
    fn first_geqrt_has_no_dependencies() {
        let g = TaskGraph::build(3, 3, 2, &flat_elims(3, 3));
        assert_eq!(g.tasks()[0], Task::geqrt(0, 0));
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn kill_chain_serializes_on_pivot() {
        // Flat tree on a single panel: TSQRT(1) -> TSQRT(2) -> TSQRT(3)
        // must form a chain through the pivot tile.
        let g = TaskGraph::build(4, 1, 2, &flat_elims(4, 1));
        let ids: Vec<usize> = g
            .tasks()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == KernelKind::Tsqrt)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ids.len(), 3);
        for w in ids.windows(2) {
            assert!(g.successors(w[0]).contains(&(w[1] as u32)), "kill chain broken");
        }
    }

    #[test]
    fn unmqr_does_not_block_kills() {
        // The V-copy slot means TSQRT(k=0, i=1, piv=0) must NOT depend on
        // UNMQR(0, 0, j) — only on GEQRT(0,0).
        let g = TaskGraph::build(2, 2, 2, &flat_elims(2, 2));
        let tsqrt_id = g.tasks().iter().position(|t| t.kind == KernelKind::Tsqrt).unwrap();
        let unmqr_id = g.tasks().iter().position(|t| t.kind == KernelKind::Unmqr).unwrap();
        assert!(
            !g.successors(unmqr_id).contains(&(tsqrt_id as u32)),
            "UNMQR must not gate the kill chain"
        );
        assert_eq!(g.in_degree(tsqrt_id), 1, "TSQRT depends only on GEQRT");
    }

    #[test]
    fn tt_victim_gets_geqrt() {
        // Binary-tree single panel on 2 rows with TT kernels: both rows
        // triangularized.
        let elims = vec![ElimOp::new(0, 1, 0, false)];
        let g = TaskGraph::build(2, 1, 2, &elims);
        let geqrts = g.tasks().iter().filter(|t| t.kind == KernelKind::Geqrt).count();
        assert_eq!(geqrts, 2);
        assert_eq!(g.tasks().iter().filter(|t| t.kind == KernelKind::Ttqrt).count(), 1);
    }

    #[test]
    #[should_panic(expected = "must stay square")]
    fn ts_victim_that_kills_is_rejected() {
        // Row 1 is TS-killed but also kills row 2 -> invalid.
        let elims = vec![ElimOp::new(0, 2, 1, true), ElimOp::new(0, 1, 0, true)];
        let _ = TaskGraph::build(3, 1, 2, &elims);
    }

    #[test]
    #[should_panic(expected = "sorted by panel")]
    fn unsorted_panels_rejected() {
        let elims = vec![ElimOp::new(1, 2, 1, true), ElimOp::new(0, 1, 0, true)];
        let _ = TaskGraph::build(3, 2, 2, &elims);
    }

    #[test]
    fn try_build_reports_typed_errors() {
        use crate::error::GraphError;
        assert_eq!(TaskGraph::try_build(0, 1, 2, &[]).unwrap_err(), GraphError::EmptyMatrix);
        assert_eq!(TaskGraph::try_build(2, 2, 0, &[]).unwrap_err(), GraphError::ZeroTileSize);
        let unsorted = vec![ElimOp::new(1, 2, 1, true), ElimOp::new(0, 1, 0, true)];
        assert!(matches!(
            TaskGraph::try_build(3, 2, 2, &unsorted).unwrap_err(),
            GraphError::UnsortedPanels { index: 1, .. }
        ));
        let bad_panel = vec![ElimOp::new(5, 1, 0, true)];
        assert!(matches!(
            TaskGraph::try_build(3, 2, 2, &bad_panel).unwrap_err(),
            GraphError::PanelOutOfRange { panel: 5, .. }
        ));
        let bad_row = vec![ElimOp::new(0, 9, 0, true)];
        assert!(matches!(
            TaskGraph::try_build(3, 2, 2, &bad_row).unwrap_err(),
            GraphError::RowOutOfRange { victim: 9, .. }
        ));
        let ts_killer = vec![ElimOp::new(0, 2, 1, true), ElimOp::new(0, 1, 0, true)];
        assert!(matches!(
            TaskGraph::try_build(3, 1, 2, &ts_killer).unwrap_err(),
            GraphError::TsVictimTriangular { victim: 1, .. }
        ));
    }

    #[test]
    fn try_build_accepts_valid_lists() {
        let g = TaskGraph::try_build(4, 3, 2, &flat_elims(4, 3)).unwrap();
        let g2 = TaskGraph::build(4, 3, 2, &flat_elims(4, 3));
        assert_eq!(g.tasks(), g2.tasks());
        assert_eq!(g.in_degrees(), g2.in_degrees());
    }

    #[test]
    fn total_flops_matches_weight_invariant() {
        // §II: total weight = 6mn² − 2n³ in b³/3 units, for any list.
        let (mt, nt) = (6, 4);
        let g = TaskGraph::build(mt, nt, 3, &flat_elims(mt, nt));
        let expected_weight = 6.0 * (mt * nt * nt) as f64 - 2.0 * (nt * nt * nt) as f64;
        let expected = expected_weight * 27.0 / 3.0;
        assert!((g.total_flops() - expected).abs() < 1e-9, "{} vs {expected}", g.total_flops());
    }

    #[test]
    fn square_matrix_last_panel_only_geqrt() {
        let g = TaskGraph::build(3, 3, 2, &flat_elims(3, 3));
        let last = g.tasks().last().unwrap();
        assert_eq!(*last, Task::geqrt(2, 2));
    }
}
