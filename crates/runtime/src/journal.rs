//! Crash-safe service durability: the write-ahead job journal and the
//! durable result store behind `hqr serve`.
//!
//! The journal is the daemon's source of truth for job lifecycles. Every
//! transition — accepted, started, panel-checkpointed, suspended,
//! completed, failed, quarantined, cancelled, shed — is appended as one
//! self-contained record *before* the transition is acknowledged, and each
//! append is `fsync`ed, so a SIGKILL (or power loss) at any instant loses
//! at most the record being written. A restarted daemon replays the
//! journal ([`replay`]) and drives every previously-accepted job back to a
//! terminal state: completed jobs keep their stored results, running jobs
//! resume from their last panel checkpoint, queued jobs are resubmitted
//! from their recorded specs.
//!
//! ## Record framing
//!
//! The journal file is a sequence of length-prefixed records:
//!
//! ```text
//! (len: u64 LE | record bytes)*
//! ```
//!
//! where each record is a complete checksummed section container
//! ([`hqr_tile::io`], magic `HQRJRNL\0`) holding meta words plus optional
//! text / spec / dedup-key sections. Because every record carries its own
//! FNV-1a trailer, a torn tail — the expected state after a crash
//! mid-append — is detected and discarded by [`Journal::read`] without
//! losing any earlier record; there is no window in which the whole file
//! is unverifiable.
//!
//! Appends go to the live file with `fdatasync`; the only whole-file
//! rewrite is [`Journal::compact`], which uses the shared
//! [`atomic_write`] fsync-then-rename discipline.
//!
//! ## Result store
//!
//! Completed factorizations persist R (and the V/T factor families) to
//! per-job result containers (`job-<id>.result`, magic `HQRRSLT\0`) in a
//! flat directory with an optional retention cap: when more than `cap`
//! results are stored the oldest (smallest job id) are pruned, each prune
//! journaled so replay knows the result is gone rather than lost.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use hqr_tile::io::{
    atomic_write, bytes_of_u64s, tiled_from_bytes, tiled_to_bytes, u64s_of_bytes, BinFormatError,
    SectionReader, SectionWriter,
};

use crate::checkpoint::{family_from_bytes, family_to_bytes};
use crate::exec::TFactors;
use crate::pool::{JobResult, JobState};

/// Magic bytes opening every journal record container.
pub const JOURNAL_MAGIC: [u8; 8] = *b"HQRJRNL\0";
/// Journal record version.
pub const JOURNAL_VERSION: u32 = 1;

/// Magic bytes opening a durable result container.
pub const RESULT_MAGIC: [u8; 8] = *b"HQRRSLT\0";
/// Result container version.
pub const RESULT_VERSION: u32 = 1;

const J_META: u32 = 1;
const J_TEXT: u32 = 2;
const J_SPEC: u32 = 3;
const J_DEDUP: u32 = 4;

const R_HEADER: u32 = 1;
const R_TILES: u32 = 2;
const R_VG: u32 = 3;
const R_TG: u32 = 4;
const R_TK: u32 = 5;

/// Why the journal or a result container could not be used.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure, with the path involved.
    Io {
        /// The path being written or read.
        path: String,
        /// The underlying OS error.
        message: String,
    },
    /// A record or container is corrupt or malformed.
    Format(BinFormatError),
    /// A record decoded but its contents are inconsistent.
    Inconsistent {
        /// What invariant failed.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, message } => write!(f, "{path}: {message}"),
            JournalError::Format(e) => write!(f, "journal format error: {e}"),
            JournalError::Inconsistent { message } => {
                write!(f, "inconsistent journal record: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<BinFormatError> for JournalError {
    fn from(e: BinFormatError) -> Self {
        JournalError::Format(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io { path: path.display().to_string(), message: e.to_string() }
}

fn inconsistent(message: impl Into<String>) -> JournalError {
    JournalError::Inconsistent { message: message.into() }
}

/// One job lifecycle transition, as recorded in the write-ahead journal.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// The pool accepted a job. `spec` holds the serialized [`crate::pool::JobSpec`]
    /// (so replay can resubmit it); compaction of already-terminal jobs
    /// drops the payload and keeps only the metadata.
    Accepted {
        /// The job's stable id.
        id: u64,
        /// Attempts already consumed when accepted (nonzero after recovery).
        attempts: u32,
        /// Tasks in the job's DAG (for restored listings).
        tasks_total: u64,
        /// Client-supplied idempotency key, if any.
        dedup: Option<String>,
        /// Serialized spec, absent once the job is terminal and compacted.
        spec: Option<Vec<u8>>,
    },
    /// An attempt of the job was activated onto the pool.
    Started {
        /// The job's stable id.
        id: u64,
        /// Attempts started so far, including this one.
        attempt: u32,
    },
    /// A panel-boundary checkpoint of the running job was persisted.
    Checkpointed {
        /// The job's stable id.
        id: u64,
        /// Tasks complete in the checkpoint.
        tasks_done: u64,
        /// Checkpoint file name, relative to the state directory.
        file: String,
    },
    /// The job was halted at a quiescent point and its state captured.
    Suspended {
        /// The job's stable id.
        id: u64,
        /// Why (drain, explicit suspend, preemption, periodic checkpoint).
        reason: String,
    },
    /// The job completed; its factors may be in the result store.
    Completed {
        /// The job's stable id.
        id: u64,
        /// Result file name relative to the state directory, if persisted.
        file: Option<String>,
    },
    /// An attempt failed; the job is waiting out a retry backoff.
    Failed {
        /// The job's stable id.
        id: u64,
        /// Attempts consumed so far.
        attempts: u32,
        /// The failure message.
        error: String,
    },
    /// The job exhausted its retry budget.
    Quarantined {
        /// The job's stable id.
        id: u64,
        /// The final failure message.
        error: String,
    },
    /// The tenant cancelled the job.
    Cancelled {
        /// The job's stable id.
        id: u64,
    },
    /// The job was evicted by load shedding or shutdown.
    Shed {
        /// The job's stable id.
        id: u64,
        /// Why it was shed.
        reason: String,
    },
    /// The retention policy removed the job's stored result.
    ResultPruned {
        /// The job's stable id.
        id: u64,
    },
    /// The admission escape hatch fired: a job whose working-set demand
    /// exceeds the pool's memory budget was admitted anyway because the
    /// pool was idle (nothing else to wait for). Informational — replay
    /// does not change the job's state — but durable, so an operator can
    /// see that the over-budget path was taken deliberately.
    OverBudgetAdmitted {
        /// The job's stable id.
        id: u64,
        /// Bytes the job needed.
        need: u64,
        /// The configured budget it exceeded.
        budget: u64,
    },
}

impl JournalEvent {
    fn kind_word(&self) -> u64 {
        match self {
            JournalEvent::Accepted { .. } => 1,
            JournalEvent::Started { .. } => 2,
            JournalEvent::Checkpointed { .. } => 3,
            JournalEvent::Suspended { .. } => 4,
            JournalEvent::Completed { .. } => 5,
            JournalEvent::Failed { .. } => 6,
            JournalEvent::Quarantined { .. } => 7,
            JournalEvent::Cancelled { .. } => 8,
            JournalEvent::Shed { .. } => 9,
            JournalEvent::ResultPruned { .. } => 10,
            JournalEvent::OverBudgetAdmitted { .. } => 11,
        }
    }

    /// The stable job id this event concerns.
    pub fn job_id(&self) -> u64 {
        match self {
            JournalEvent::Accepted { id, .. }
            | JournalEvent::Started { id, .. }
            | JournalEvent::Checkpointed { id, .. }
            | JournalEvent::Suspended { id, .. }
            | JournalEvent::Completed { id, .. }
            | JournalEvent::Failed { id, .. }
            | JournalEvent::Quarantined { id, .. }
            | JournalEvent::Cancelled { id }
            | JournalEvent::Shed { id, .. }
            | JournalEvent::ResultPruned { id }
            | JournalEvent::OverBudgetAdmitted { id, .. } => *id,
        }
    }

    /// Serialize into one self-checksummed record container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (x1, x2): (u64, u64) = match self {
            JournalEvent::Accepted { attempts, tasks_total, .. } => {
                (*attempts as u64, *tasks_total)
            }
            JournalEvent::Started { attempt, .. } => (*attempt as u64, 0),
            JournalEvent::Checkpointed { tasks_done, .. } => (*tasks_done, 0),
            JournalEvent::Failed { attempts, .. } => (*attempts as u64, 0),
            JournalEvent::OverBudgetAdmitted { need, budget, .. } => (*need, *budget),
            _ => (0, 0),
        };
        let mut w = SectionWriter::new(JOURNAL_MAGIC, JOURNAL_VERSION);
        w.section(J_META, &bytes_of_u64s(&[self.kind_word(), self.job_id(), x1, x2]));
        let text: Option<&str> = match self {
            JournalEvent::Checkpointed { file, .. } => Some(file),
            JournalEvent::Suspended { reason, .. } => Some(reason),
            JournalEvent::Completed { file, .. } => file.as_deref(),
            JournalEvent::Failed { error, .. } => Some(error),
            JournalEvent::Quarantined { error, .. } => Some(error),
            JournalEvent::Shed { reason, .. } => Some(reason),
            _ => None,
        };
        if let Some(t) = text {
            w.section(J_TEXT, t.as_bytes());
        }
        if let JournalEvent::Accepted { dedup, spec, .. } = self {
            if let Some(k) = dedup {
                w.section(J_DEDUP, k.as_bytes());
            }
            if let Some(s) = spec {
                w.section(J_SPEC, s);
            }
        }
        w.into_bytes()
    }

    /// Decode the inverse of [`JournalEvent::to_bytes`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<JournalEvent, JournalError> {
        let r = SectionReader::from_bytes(bytes, JOURNAL_MAGIC, JOURNAL_VERSION)?;
        let meta = u64s_of_bytes(J_META, r.require(J_META)?)?;
        if meta.len() != 4 {
            return Err(inconsistent(format!("meta holds {} words, expected 4", meta.len())));
        }
        let [kind, id, x1, x2] = [meta[0], meta[1], meta[2], meta[3]];
        let text = |what: &str| -> Result<String, JournalError> {
            let bytes = r.require(J_TEXT)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| inconsistent(format!("{what} is not UTF-8")))
        };
        let ev = match kind {
            1 => {
                let dedup = match r.section(J_DEDUP) {
                    Some(b) => Some(
                        String::from_utf8(b.to_vec())
                            .map_err(|_| inconsistent("dedup key is not UTF-8"))?,
                    ),
                    None => None,
                };
                let spec = r.section(J_SPEC).map(|b| b.to_vec());
                JournalEvent::Accepted { id, attempts: x1 as u32, tasks_total: x2, dedup, spec }
            }
            2 => JournalEvent::Started { id, attempt: x1 as u32 },
            3 => JournalEvent::Checkpointed { id, tasks_done: x1, file: text("checkpoint file")? },
            4 => JournalEvent::Suspended { id, reason: text("suspend reason")? },
            5 => {
                let file = match r.section(J_TEXT) {
                    Some(b) => Some(
                        String::from_utf8(b.to_vec())
                            .map_err(|_| inconsistent("result file is not UTF-8"))?,
                    ),
                    None => None,
                };
                JournalEvent::Completed { id, file }
            }
            6 => JournalEvent::Failed { id, attempts: x1 as u32, error: text("error")? },
            7 => JournalEvent::Quarantined { id, error: text("error")? },
            8 => JournalEvent::Cancelled { id },
            9 => JournalEvent::Shed { id, reason: text("shed reason")? },
            10 => JournalEvent::ResultPruned { id },
            11 => JournalEvent::OverBudgetAdmitted { id, need: x1, budget: x2 },
            other => return Err(inconsistent(format!("unknown record kind {other}"))),
        };
        Ok(ev)
    }
}

/// Append-only handle on the write-ahead journal file.
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    /// File length right after the last [`Journal::rotate`] (0 before the
    /// first). Rotation hysteresis: a journal dominated by one large live
    /// job compacts to roughly its previous size, and re-rotating on every
    /// subsequent append would rewrite the whole file each time.
    floor: u64,
}

impl Journal {
    /// Open (creating if absent) the journal at `path` for appending.
    ///
    /// A leftover rotate-in-progress marker (from a crash mid-
    /// [`Journal::rotate`]) is removed here: the rewrite itself is the
    /// atomic fsync-then-rename of [`Journal::compact`], so whichever of
    /// the old or the rotated file survived the crash is complete and
    /// self-checksummed — the marker only records that a rotation was
    /// underway, never an inconsistent file.
    pub fn open(path: &Path) -> Result<Journal, JournalError> {
        let marker = Self::rotate_marker(path);
        if marker.exists() {
            std::fs::remove_file(&marker).map_err(|e| io_err(&marker, e))?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Journal { path: path.to_path_buf(), file, floor: 0 })
    }

    /// True when size-threshold rotation should run: the file has grown
    /// `rotate_at` bytes past the last compacted snapshot (or past zero,
    /// before any rotation). Without the floor a journal whose live
    /// records alone exceed the threshold would rewrite itself in full on
    /// every append.
    pub fn rotate_due(&self, rotate_at: u64) -> bool {
        rotate_at > 0 && self.len() > self.floor.saturating_add(rotate_at)
    }

    /// Sibling marker file that exists exactly while a rotation is in
    /// progress.
    fn rotate_marker(path: &Path) -> PathBuf {
        let mut name = path
            .file_name()
            .map_or_else(|| std::ffi::OsString::from("journal"), std::ffi::OsStr::to_os_string);
        name.push(".rotating");
        path.with_file_name(name)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and `fdatasync` it to stable storage. The record
    /// is durable when this returns: a crash one instant later replays it.
    pub fn append(&mut self, ev: &JournalEvent) -> Result<(), JournalError> {
        let body = ev.to_bytes();
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame).map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }

    /// Read every intact record from the journal at `path`, oldest first.
    ///
    /// A missing file is an empty journal. A torn or corrupt *tail*
    /// (truncated length prefix, short record, failed checksum — the
    /// expected residue of a crash mid-append) ends the scan without an
    /// error: everything before it was fsynced and is returned.
    pub fn read(path: &Path) -> Result<Vec<JournalEvent>, JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(path, e)),
        };
        let mut events = Vec::new();
        let mut off = 0usize;
        while bytes.len() - off >= 8 {
            let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let Ok(len) = usize::try_from(len) else { break };
            let start = off + 8;
            if len > bytes.len() - start {
                break; // torn tail: record longer than what survived
            }
            match JournalEvent::from_bytes(bytes[start..start + len].to_vec()) {
                Ok(ev) => events.push(ev),
                Err(_) => break, // corrupt tail record: discard it and stop
            }
            off = start + len;
        }
        Ok(events)
    }

    /// Atomically rewrite the journal to hold exactly `events` (the
    /// fsync-then-rename discipline of [`atomic_write`]), then reopen the
    /// append handle on the new file. Used after replay to drop records
    /// for jobs that are gone and re-seed the log with the live set.
    pub fn compact(&mut self, events: &[JournalEvent]) -> Result<(), JournalError> {
        let mut bytes = Vec::new();
        for ev in events {
            let body = ev.to_bytes();
            bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        atomic_write(&self.path, &bytes)?;
        self.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        Ok(())
    }

    /// Current journal file size in bytes (what size-threshold rotation
    /// compares against).
    pub fn len(&self) -> u64 {
        self.file.metadata().map_or(0, |m| m.len())
    }

    /// True when the journal file is empty (or unreadable).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size-threshold rotation: atomically rewrite the journal down to a
    /// compacted snapshot — live jobs in full (acceptance, attempt count,
    /// last checkpoint), terminal jobs only as a summary when their stored
    /// result still matters (completed with a result file), everything
    /// else dropped. This is what bounds journal growth under sustained
    /// churn (ROADMAP item 2): the spec payloads and per-transition
    /// records of settled jobs dominate the file and are all elided.
    ///
    /// Crash safety: a `<journal>.rotating` marker is created and synced
    /// before the rewrite and removed after. The rewrite itself is the
    /// atomic rename of [`Journal::compact`], so a kill at any instant
    /// leaves either the complete old file or the complete new one;
    /// [`Journal::open`] clears a stale marker on the next start, and
    /// replay of either file drives every accepted job terminal.
    ///
    /// Returns the number of bytes the rotation reclaimed.
    pub fn rotate(&mut self) -> Result<u64, JournalError> {
        let before = self.len();
        let marker = Self::rotate_marker(&self.path);
        {
            let f = std::fs::File::create(&marker).map_err(|e| io_err(&marker, e))?;
            f.sync_all().map_err(|e| io_err(&marker, e))?;
        }
        let events = Journal::read(&self.path)?;
        let jobs = replay(&events);
        let mut keep: Vec<JournalEvent> = Vec::new();
        for (&id, j) in &jobs {
            match j.terminal {
                // Live job: keep everything a replay needs to resume it.
                None => {
                    keep.push(JournalEvent::Accepted {
                        id,
                        attempts: j.attempts,
                        tasks_total: j.tasks_total,
                        dedup: j.dedup.clone(),
                        spec: j.spec.clone(),
                    });
                    if j.attempts > 0 {
                        keep.push(JournalEvent::Started { id, attempt: j.attempts });
                    }
                    if let Some(file) = &j.ckpt_file {
                        keep.push(JournalEvent::Checkpointed {
                            id,
                            tasks_done: j.ckpt_tasks_done,
                            file: file.clone(),
                        });
                    }
                }
                // Completed with a live result: keep a two-record summary
                // so the result stays listed/fetchable after a restart.
                Some(JobState::Completed) if j.result_file.is_some() => {
                    keep.push(JournalEvent::Accepted {
                        id,
                        attempts: j.attempts,
                        tasks_total: j.tasks_total,
                        dedup: j.dedup.clone(),
                        spec: None,
                    });
                    keep.push(JournalEvent::Completed { id, file: j.result_file.clone() });
                }
                // Settled with nothing durable left: drop the records.
                Some(_) => {}
            }
        }
        self.compact(&keep)?;
        std::fs::remove_file(&marker).map_err(|e| io_err(&marker, e))?;
        self.floor = self.len();
        Ok(before.saturating_sub(self.floor))
    }
}

/// The reconstructed fate of one journaled job after [`replay`].
#[derive(Clone, Debug, Default)]
pub struct RecoveredJob {
    /// Attempts consumed before the crash.
    pub attempts: u32,
    /// Tasks in the job's DAG, as recorded at acceptance.
    pub tasks_total: u64,
    /// Client-supplied idempotency key, if any.
    pub dedup: Option<String>,
    /// Serialized spec to resubmit from, if still present.
    pub spec: Option<Vec<u8>>,
    /// Terminal state reached before the crash, if any. `None` means the
    /// job was still live (queued, running, suspended, or in backoff) and
    /// must be driven to a terminal state by the recovered pool.
    pub terminal: Option<JobState>,
    /// Last recorded error message.
    pub error: Option<String>,
    /// Last persisted checkpoint file (relative to the state dir).
    pub ckpt_file: Option<String>,
    /// Tasks complete in that checkpoint.
    pub ckpt_tasks_done: u64,
    /// Stored result file for a completed job (relative to the state dir).
    pub result_file: Option<String>,
}

/// Fold a journal into per-job final states, oldest event first.
///
/// Jobs with `terminal: None` were accepted but not settled — the
/// recovered pool must resubmit them (from `ckpt_file` when present, else
/// from `spec`) so every accepted job still reaches a terminal state.
pub fn replay(events: &[JournalEvent]) -> BTreeMap<u64, RecoveredJob> {
    let mut jobs: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
    for ev in events {
        let j = jobs.entry(ev.job_id()).or_default();
        match ev {
            JournalEvent::Accepted { attempts, tasks_total, dedup, spec, .. } => {
                j.attempts = (*attempts).max(j.attempts);
                j.tasks_total = *tasks_total;
                j.dedup = dedup.clone();
                if spec.is_some() {
                    j.spec = spec.clone();
                }
            }
            JournalEvent::Started { attempt, .. } => {
                j.attempts = (*attempt).max(j.attempts);
            }
            JournalEvent::Checkpointed { tasks_done, file, .. } => {
                j.ckpt_file = Some(file.clone());
                j.ckpt_tasks_done = *tasks_done;
            }
            // Suspension is not terminal for recovery: the checkpoint (or
            // the original spec) makes the job resumable.
            JournalEvent::Suspended { reason, .. } => {
                j.error = Some(reason.clone());
            }
            JournalEvent::Completed { file, .. } => {
                j.terminal = Some(JobState::Completed);
                j.result_file = file.clone();
                j.error = None;
            }
            JournalEvent::Failed { attempts, error, .. } => {
                j.attempts = (*attempts).max(j.attempts);
                j.error = Some(error.clone());
            }
            JournalEvent::Quarantined { error, .. } => {
                j.terminal = Some(JobState::Quarantined);
                j.error = Some(error.clone());
            }
            JournalEvent::Cancelled { .. } => {
                j.terminal = Some(JobState::Cancelled);
            }
            JournalEvent::Shed { reason, .. } => {
                j.terminal = Some(JobState::Shed);
                j.error = Some(reason.clone());
            }
            JournalEvent::ResultPruned { .. } => {
                j.result_file = None;
            }
            // Informational: the admission decision, not a state change.
            JournalEvent::OverBudgetAdmitted { .. } => {}
        }
    }
    jobs
}

// ---------------------------------------------------------------------------
// Durable result containers
// ---------------------------------------------------------------------------

/// Serialize a completed factorization into a durable result container:
/// header words, the factored tiles (R in the upper triangle, V blocks
/// below), and the three Householder factor families — bit-exact, so a
/// result fetched after a daemon restart is byte-identical to one fetched
/// before.
pub fn result_to_bytes(id: u64, result: &JobResult) -> Vec<u8> {
    let (mt, nt, b) = (result.a.mt(), result.a.nt(), result.a.b());
    let mut w = SectionWriter::new(RESULT_MAGIC, RESULT_VERSION);
    w.section(R_HEADER, &bytes_of_u64s(&[id, mt as u64, nt as u64, b as u64]))
        .section(R_TILES, &tiled_to_bytes(&result.a))
        .section(R_VG, &family_to_bytes(&result.factors.vg))
        .section(R_TG, &family_to_bytes(&result.factors.tg))
        .section(R_TK, &family_to_bytes(&result.factors.tk));
    w.into_bytes()
}

/// A decoded result container.
#[derive(Debug)]
pub struct StoredResult {
    /// The job the result belongs to.
    pub id: u64,
    /// The factorization.
    pub result: JobResult,
}

/// Decode the inverse of [`result_to_bytes`], verifying the container
/// checksum and internal consistency.
pub fn result_from_bytes(bytes: Vec<u8>) -> Result<StoredResult, JournalError> {
    let r = SectionReader::from_bytes(bytes, RESULT_MAGIC, RESULT_VERSION)?;
    let header = u64s_of_bytes(R_HEADER, r.require(R_HEADER)?)?;
    if header.len() != 4 {
        return Err(inconsistent(format!("header holds {} words, expected 4", header.len())));
    }
    let (id, mt, nt, b) = (header[0], header[1] as usize, header[2] as usize, header[3] as usize);
    let a = tiled_from_bytes(R_TILES, r.require(R_TILES)?)?;
    if a.mt() != mt || a.nt() != nt || a.b() != b {
        return Err(inconsistent(format!(
            "tiles are {}x{} of {} but header says {mt}x{nt} of {b}",
            a.mt(),
            a.nt(),
            a.b()
        )));
    }
    let slots = mt * nt;
    let fam = |tag: u32| -> Result<Vec<Option<Box<[f64]>>>, JournalError> {
        family_from_bytes(tag, r.require(tag)?, slots, b)
            .map_err(|e| inconsistent(format!("factor family {tag}: {e}")))
    };
    let factors = TFactors { b, mt, nt, vg: fam(R_VG)?, tg: fam(R_TG)?, tk: fam(R_TK)? };
    Ok(StoredResult { id, result: JobResult { a, factors } })
}

/// Flat directory of per-job result containers with count, byte, and age
/// retention limits (each `0`/`None` disables that limit).
pub struct ResultStore {
    dir: PathBuf,
    cap: usize,
    max_bytes: u64,
    max_age: Option<std::time::Duration>,
}

impl ResultStore {
    /// Open (creating if absent) the store rooted at `dir`. `cap` bounds
    /// how many results are retained; `0` disables pruning.
    pub fn open(dir: &Path, cap: usize) -> Result<ResultStore, JournalError> {
        Self::with_retention(dir, cap, 0, None)
    }

    /// [`ResultStore::open`] with the full retention policy: `cap` bounds
    /// the result *count*, `max_bytes` the directory's total size (a few
    /// huge R/V/T containers can fill a disk long before any count cap
    /// trips), and `max_age` the age of the oldest retained file. Zero /
    /// `None` disables the corresponding limit.
    pub fn with_retention(
        dir: &Path,
        cap: usize,
        max_bytes: u64,
        max_age: Option<std::time::Duration>,
    ) -> Result<ResultStore, JournalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        Ok(ResultStore { dir: dir.to_path_buf(), cap, max_bytes, max_age })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical file name for a job's result.
    pub fn file_name(id: u64) -> String {
        format!("job-{id}.result")
    }

    /// Full path of a job's result file.
    pub fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(Self::file_name(id))
    }

    /// Durably store container bytes for `id` (fsync-then-rename) and
    /// return the file name relative to the store.
    pub fn put(&self, id: u64, bytes: &[u8]) -> Result<String, JournalError> {
        atomic_write(&self.path_of(id), bytes)?;
        Ok(Self::file_name(id))
    }

    /// Raw container bytes for `id`, if stored.
    pub fn get(&self, id: u64) -> Option<Vec<u8>> {
        std::fs::read(self.path_of(id)).ok()
    }

    /// Remove `id`'s result. Returns true if a file was deleted.
    pub fn remove(&self, id: u64) -> bool {
        std::fs::remove_file(self.path_of(id)).is_ok()
    }

    /// Job ids with stored results, ascending.
    pub fn list(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return ids };
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("job-")
                .and_then(|s| s.strip_suffix(".result"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Enforce every configured retention limit, oldest (smallest-id)
    /// results first: drop files older than `max_age`, then shrink to at
    /// most `cap` results, then shrink the directory's total size to at
    /// most `max_bytes`. Returns the pruned ids (for journaling as
    /// `result-pruned`, exactly like the count cap always was).
    pub fn prune_over_cap(&self) -> Vec<u64> {
        let mut pruned = Vec::new();
        let ids = self.list();
        // (id, bytes) for the files that still exist; pruning walks this
        // front-to-back so every limit removes oldest-first.
        let mut live: Vec<(u64, u64)> = ids
            .iter()
            .filter_map(|&id| std::fs::metadata(self.path_of(id)).ok().map(|m| (id, m.len())))
            .collect();
        if let Some(max_age) = self.max_age {
            let now = std::time::SystemTime::now();
            live.retain(|&(id, _)| {
                let too_old = std::fs::metadata(self.path_of(id))
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| now.duration_since(t).ok())
                    .is_some_and(|age| age > max_age);
                if too_old && self.remove(id) {
                    pruned.push(id);
                    return false;
                }
                true
            });
        }
        if self.cap > 0 && live.len() > self.cap {
            let drop_n = live.len() - self.cap;
            for &(id, _) in &live[..drop_n] {
                if self.remove(id) {
                    pruned.push(id);
                }
            }
            live.drain(..drop_n);
        }
        if self.max_bytes > 0 {
            let mut total: u64 = live.iter().map(|&(_, n)| n).sum();
            let mut i = 0;
            while total > self.max_bytes && i < live.len() {
                let (id, n) = live[i];
                if self.remove(id) {
                    pruned.push(id);
                    total -= n;
                }
                i += 1;
            }
        }
        pruned.sort_unstable();
        pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_event() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Accepted {
                id: 1,
                attempts: 0,
                tasks_total: 12,
                dedup: Some("key-a".into()),
                spec: Some(vec![1, 2, 3, 4]),
            },
            JournalEvent::Accepted { id: 2, attempts: 3, tasks_total: 7, dedup: None, spec: None },
            JournalEvent::Started { id: 1, attempt: 1 },
            JournalEvent::Checkpointed { id: 1, tasks_done: 5, file: "ckpt/job-1.ckpt".into() },
            JournalEvent::Suspended { id: 1, reason: "drain".into() },
            JournalEvent::Completed { id: 2, file: Some("results/job-2.result".into()) },
            JournalEvent::Completed { id: 3, file: None },
            JournalEvent::Failed { id: 1, attempts: 2, error: "task 4 panicked".into() },
            JournalEvent::Quarantined { id: 1, error: "budget exhausted".into() },
            JournalEvent::Cancelled { id: 4 },
            JournalEvent::Shed { id: 5, reason: "higher-QoS arrival".into() },
            JournalEvent::ResultPruned { id: 2 },
            JournalEvent::OverBudgetAdmitted { id: 6, need: 1 << 30, budget: 1 << 20 },
        ]
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for ev in every_event() {
            let back = JournalEvent::from_bytes(ev.to_bytes()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn corrupt_record_is_typed() {
        let mut bytes = JournalEvent::Cancelled { id: 9 }.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(JournalEvent::from_bytes(bytes).is_err());
    }

    #[test]
    fn journal_appends_replay_in_order() {
        let dir = std::env::temp_dir().join(format!("hqr_journal_t{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("order.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        let events = every_event();
        for ev in &events {
            j.append(ev).unwrap();
        }
        assert_eq!(Journal::read(&path).unwrap(), events);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty() {
        assert!(Journal::read(Path::new("/no/such/journal.wal")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_at_every_byte_keeps_the_fsynced_prefix() {
        // A crash mid-append can leave any prefix of the file; every such
        // truncation must yield exactly the records whose frames survived
        // intact — never an error, never a phantom record.
        let events = every_event();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for ev in &events {
            let body = ev.to_bytes();
            bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&body);
            boundaries.push(bytes.len());
        }
        let dir = std::env::temp_dir().join(format!("hqr_journal_torn{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        for cut in 0..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let got = Journal::read(&path).unwrap();
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(got.len(), intact, "cut at {cut}");
            assert_eq!(got[..], events[..intact], "cut at {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_in_tail_record_discards_only_the_tail() {
        let events = every_event();
        let dir = std::env::temp_dir().join(format!("hqr_journal_flip{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        for ev in &events {
            j.append(ev).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // corrupt inside the last record's checksum
        std::fs::write(&path, &bytes).unwrap();
        let got = Journal::read(&path).unwrap();
        assert_eq!(got[..], events[..events.len() - 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_and_keeps_appending() {
        let dir = std::env::temp_dir().join(format!("hqr_journal_compact{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        for ev in every_event() {
            j.append(&ev).unwrap();
        }
        let keep = vec![JournalEvent::Accepted {
            id: 7,
            attempts: 0,
            tasks_total: 3,
            dedup: None,
            spec: None,
        }];
        j.compact(&keep).unwrap();
        // Appends after compaction must land in the *new* file, not the
        // renamed-away inode.
        j.append(&JournalEvent::Started { id: 7, attempt: 1 }).unwrap();
        let got = Journal::read(&path).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], keep[0]);
        assert_eq!(got[1], JournalEvent::Started { id: 7, attempt: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_folds_lifecycles() {
        let events = vec![
            JournalEvent::Accepted {
                id: 1,
                attempts: 0,
                tasks_total: 9,
                dedup: Some("k".into()),
                spec: Some(vec![1]),
            },
            JournalEvent::Started { id: 1, attempt: 1 },
            JournalEvent::Checkpointed { id: 1, tasks_done: 4, file: "c1".into() },
            JournalEvent::Checkpointed { id: 1, tasks_done: 6, file: "c1".into() },
            JournalEvent::Accepted {
                id: 2,
                attempts: 0,
                tasks_total: 5,
                dedup: None,
                spec: Some(vec![2]),
            },
            JournalEvent::Started { id: 2, attempt: 1 },
            JournalEvent::Completed { id: 2, file: Some("r2".into()) },
            JournalEvent::Accepted {
                id: 3,
                attempts: 0,
                tasks_total: 5,
                dedup: None,
                spec: Some(vec![3]),
            },
        ];
        let jobs = replay(&events);
        assert_eq!(jobs.len(), 3);
        let j1 = &jobs[&1];
        assert!(j1.terminal.is_none(), "running job is not terminal");
        assert_eq!(j1.ckpt_file.as_deref(), Some("c1"));
        assert_eq!(j1.ckpt_tasks_done, 6);
        assert_eq!(j1.dedup.as_deref(), Some("k"));
        let j2 = &jobs[&2];
        assert_eq!(j2.terminal, Some(JobState::Completed));
        assert_eq!(j2.result_file.as_deref(), Some("r2"));
        let j3 = &jobs[&3];
        assert!(j3.terminal.is_none());
        assert!(j3.ckpt_file.is_none(), "never ran: resubmit from spec");
        assert_eq!(j3.spec.as_deref(), Some(&[3u8][..]));
    }

    #[test]
    fn rotation_keeps_live_jobs_and_stored_results_only() {
        let dir = std::env::temp_dir().join(format!("hqr_journal_rot{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        // 50 settled jobs with fat specs (the unbounded-growth pattern),
        // one live job mid-flight, one completed job with a stored result,
        // one completed job whose result was pruned.
        for id in 1..=50u64 {
            j.append(&JournalEvent::Accepted {
                id,
                attempts: 0,
                tasks_total: 100,
                dedup: None,
                spec: Some(vec![0xAB; 4096]),
            })
            .unwrap();
            j.append(&JournalEvent::Started { id, attempt: 1 }).unwrap();
            j.append(&JournalEvent::Cancelled { id }).unwrap();
        }
        j.append(&JournalEvent::Accepted {
            id: 90,
            attempts: 0,
            tasks_total: 7,
            dedup: Some("live".into()),
            spec: Some(vec![1, 2, 3]),
        })
        .unwrap();
        j.append(&JournalEvent::Started { id: 90, attempt: 1 }).unwrap();
        j.append(&JournalEvent::Checkpointed { id: 90, tasks_done: 3, file: "c90".into() })
            .unwrap();
        j.append(&JournalEvent::Accepted {
            id: 91,
            attempts: 0,
            tasks_total: 7,
            dedup: None,
            spec: Some(vec![9; 2048]),
        })
        .unwrap();
        j.append(&JournalEvent::Completed { id: 91, file: Some("r91".into()) }).unwrap();
        j.append(&JournalEvent::Accepted {
            id: 92,
            attempts: 0,
            tasks_total: 7,
            dedup: None,
            spec: Some(vec![9; 2048]),
        })
        .unwrap();
        j.append(&JournalEvent::Completed { id: 92, file: Some("r92".into()) }).unwrap();
        j.append(&JournalEvent::ResultPruned { id: 92 }).unwrap();
        let before = j.len();
        let reclaimed = j.rotate().unwrap();
        assert!(reclaimed > 0 && j.len() < before / 10, "rotation must shrink the file");
        assert!(!Journal::rotate_marker(&path).exists(), "marker must be cleaned up");
        let jobs = replay(&Journal::read(&path).unwrap());
        // Settled jobs (cancelled; completed-then-pruned) are gone.
        assert_eq!(jobs.keys().copied().collect::<Vec<_>>(), vec![90, 91]);
        let live = &jobs[&90];
        assert!(live.terminal.is_none());
        assert_eq!(live.spec.as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(live.ckpt_file.as_deref(), Some("c90"));
        assert_eq!(live.ckpt_tasks_done, 3);
        assert_eq!(live.attempts, 1);
        assert_eq!(live.dedup.as_deref(), Some("live"));
        let done = &jobs[&91];
        assert_eq!(done.terminal, Some(JobState::Completed));
        assert_eq!(done.result_file.as_deref(), Some("r91"));
        // The journal still appends after rotation.
        j.append(&JournalEvent::Cancelled { id: 90 }).unwrap();
        let jobs = replay(&Journal::read(&path).unwrap());
        assert_eq!(jobs[&90].terminal, Some(JobState::Cancelled));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_rotate_marker_is_cleared_on_open() {
        // A kill between marker creation and marker removal leaves the
        // marker on disk next to a complete (old or new) journal file —
        // open must clear it and replay normally.
        let dir = std::env::temp_dir().join(format!("hqr_journal_marker{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("marked.wal");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.append(&JournalEvent::Accepted {
            id: 1,
            attempts: 0,
            tasks_total: 4,
            dedup: None,
            spec: Some(vec![7]),
        })
        .unwrap();
        drop(j);
        std::fs::write(Journal::rotate_marker(&path), b"").unwrap();
        let j = Journal::open(&path).unwrap();
        assert!(!Journal::rotate_marker(&path).exists());
        assert_eq!(Journal::read(&path).unwrap().len(), 1);
        drop(j);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_store_byte_and_age_retention() {
        let dir = std::env::temp_dir().join(format!("hqr_results_bytes{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Byte cap of 40: four 16-byte results exceed it; the two oldest
        // must go even though the count cap (10) is nowhere near tripped.
        let store = ResultStore::with_retention(&dir, 10, 40, None).unwrap();
        for id in 1..=4u64 {
            store.put(id, &[id as u8; 16]).unwrap();
        }
        let pruned = store.prune_over_cap();
        assert_eq!(pruned, vec![1, 2]);
        assert_eq!(store.list(), vec![3, 4]);
        // Age cap of zero: everything still stored is older than the
        // limit and is pruned regardless of count/byte headroom.
        let aged =
            ResultStore::with_retention(&dir, 0, 0, Some(std::time::Duration::ZERO)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let pruned = aged.prune_over_cap();
        assert_eq!(pruned, vec![3, 4]);
        assert!(aged.list().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_store_retention_prunes_oldest() {
        let dir = std::env::temp_dir().join(format!("hqr_results_t{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir, 2).unwrap();
        for id in 1..=4u64 {
            store.put(id, &[id as u8; 16]).unwrap();
        }
        let pruned = store.prune_over_cap();
        assert_eq!(pruned, vec![1, 2]);
        assert_eq!(store.list(), vec![3, 4]);
        assert!(store.get(1).is_none());
        assert_eq!(store.get(4).unwrap(), vec![4u8; 16]);
        assert!(store.remove(4));
        assert!(!store.remove(4));
        let unlimited = ResultStore::open(&dir, 0).unwrap();
        assert!(unlimited.prune_over_cap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
