//! Multi-job work-stealing pool: one shared set of worker threads
//! multiplexing many concurrent factorization jobs.
//!
//! This is the structural refactor behind the `hqr serve` daemon. The
//! single-job engine in [`crate::exec`] borrows its graph and matrix from
//! the caller and dies with the call; the pool instead *owns* every
//! admitted job (graph, tile store, factor buffers) behind an `Arc`, so a
//! long-running process can interleave tasks from many tenants on one set
//! of cores — the paper's "keep every core busy" goal lifted from one DAG
//! to a population of DAGs.
//!
//! Robustness is per-tenant policy, reusing the PR 1–5 substrate through
//! the shared attempt ladder ([`crate::exec`]'s `attempt_task`):
//!
//! * **admission control** — a job's working-set footprint is priced at
//!   submission; jobs that can never fit the memory budget are rejected,
//!   jobs that don't fit *right now* wait in a bounded queue;
//! * **backpressure + load shedding** — when the queue is full, an arriving
//!   higher-QoS job evicts the lowest-QoS queued job (marked [`JobState::Shed`]);
//!   equal-or-lower QoS arrivals are rejected with a typed error;
//! * **deadlines** — a per-job deadline halts the job's tasks and routes it
//!   into the retry/quarantine path, generalizing the engine watchdog;
//! * **job-level retry** — a failed or timed-out job is re-run from its
//!   pristine payload after a capped exponential backoff, and quarantined
//!   ([`JobState::Quarantined`]) once its retry budget is exhausted;
//! * **graceful drain** — stop admitting, let running jobs finish within a
//!   grace period, checkpoint the stragglers at a quiescent point (the
//!   PR-3 machinery), and persist the whole queue to one container file
//!   that a restarted service can resubmit from.
//!
//! Scheduling across jobs is QoS-major: the shared ready heap orders tasks
//! by (QoS class, admission order, per-job policy rank), so interactive
//! jobs preempt batch work at task granularity while each job internally
//! honors its own [`SchedPolicy`]. Workers keep the data-reuse LIFO deque
//! of the single-job engine: the best-ranked released successor stays
//! local, the rest are published to the shared heap.
//!
//! Fault plans are supported per job (failure and SDC strikes), with two
//! engine-only features rejected at submission: poisoned workers (worker
//! indices belong to one engine run) and lost completions (the pool's
//! progress accounting would wedge). Plans are also not serialized into
//! persisted queues — injection is in-process test machinery.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_deque::{Steal, Stealer, Worker};
use crossbeam_utils::Backoff;

use crate::checkpoint::{
    checkpoint_from_bytes, checkpoint_to_bytes, elims_from_words, elims_to_words,
    graph_fingerprint, read_checkpoint, write_checkpoint, Checkpoint, CheckpointError,
};
use crate::elim::ElimOp;
use crate::error::ExecError;
use crate::exec::{
    attempt_task, relock, AttemptCtx, AttemptEnd, TFactors, WorkerCounters, IDLE_PARK,
};
use crate::fault::{FaultPlan, FaultStats};
use crate::graph::TaskGraph;
use crate::integrity::{GuardStore, IntegrityMode};
use crate::journal::{replay, result_to_bytes, Journal, JournalError, JournalEvent, ResultStore};
use crate::sched::{self, SchedPolicy};
use crate::store::TileStore;
use hqr_kernels::KernelKind;
use hqr_tile::io::{bytes_of_u64s, u64s_of_bytes, BinFormatError, SectionReader, SectionWriter};
use hqr_tile::TiledMatrix;

/// Magic bytes opening a persisted service queue file.
pub const QUEUE_MAGIC: [u8; 8] = *b"HQRQUEUE";
/// Queue container version.
pub const QUEUE_VERSION: u32 = 1;

const QSEC_COUNT: u32 = 1;
/// Per-entry tags: entry `i` owns tags `QSEC_BASE + i*QSEC_STRIDE ..`.
const QSEC_BASE: u32 = 16;
const QSEC_STRIDE: u32 = 8;
const QOFF_META: u32 = 0;
const QOFF_TAG: u32 = 1;
const QOFF_ELIMS: u32 = 2;
const QOFF_TILES: u32 = 3;
const QOFF_CKPT: u32 = 4;
const QOFF_DEDUP: u32 = 5;

/// File name of the write-ahead journal inside a state directory.
pub const JOURNAL_FILE: &str = "journal.wal";
/// Subdirectory of the state directory holding suspension checkpoints.
pub const CKPT_DIR: &str = "ckpt";
/// Subdirectory of the state directory holding durable results.
pub const RESULTS_DIR: &str = "results";

/// Opaque identifier of a job accepted by a [`JobPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Quality-of-service class of a job — the tenant's priority tier.
///
/// Ordering is semantic: `Interactive > Normal > Batch`. The scheduler
/// serves higher classes first at *task* granularity, admission serves
/// them first from the queue, and load shedding evicts the lowest class
/// first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Throughput work; first to be shed under overload.
    Batch,
    /// The default tier.
    #[default]
    Normal,
    /// Latency-sensitive work; served first, never shed by arrivals.
    Interactive,
}

impl QosClass {
    /// Every class, lowest to highest priority.
    pub const ALL: [QosClass; 3] = [QosClass::Batch, QosClass::Normal, QosClass::Interactive];

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<QosClass> {
        match s {
            "batch" => Some(QosClass::Batch),
            "normal" => Some(QosClass::Normal),
            "interactive" => Some(QosClass::Interactive),
            _ => None,
        }
    }

    /// Canonical short name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Batch => "batch",
            QosClass::Normal => "normal",
            QosClass::Interactive => "interactive",
        }
    }

    /// Min-heap key component: lower sorts first, so higher QoS gets 0.
    fn inverted(self) -> u64 {
        2 - self as u64
    }

    fn from_index(v: u64) -> Option<QosClass> {
        QosClass::ALL.get(v as usize).copied()
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a job starts from: a fresh matrix, or a suspended checkpoint.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// Factor `a` according to `elims` from scratch.
    Fresh {
        /// The elimination list defining the factorization DAG.
        elims: Vec<ElimOp>,
        /// The matrix to factor.
        a: TiledMatrix,
    },
    /// Continue a factorization from a consistent checkpoint (produced by
    /// [`crate::checkpoint`] or by a drain suspension).
    Resume(Box<Checkpoint>),
}

/// Everything a tenant specifies about one factorization job: the input
/// plus per-job policy for every knob PRs 1–5 added to the engine.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// What to factor.
    pub input: JobInput,
    /// Inner block size; `None` selects the tile size (fresh jobs) or the
    /// checkpointed value (resumed jobs). A resumed job's `ib`, if given,
    /// must match the checkpoint.
    pub ib: Option<usize>,
    /// Priority tier for scheduling, admission, and shedding.
    pub qos: QosClass,
    /// Ready-queue ranking *within* this job's DAG.
    pub policy: SchedPolicy,
    /// Silent-data-corruption guarding for this job's tasks.
    pub integrity: IntegrityMode,
    /// Per-task retry budget after a caught panic or detected corruption.
    pub max_retries: u32,
    /// Job-level re-run budget: how many times a failed or timed-out job
    /// is re-run from its pristine payload before quarantine.
    pub job_retries: u32,
    /// Wall-clock budget per attempt; exceeding it halts the attempt and
    /// routes the job into the retry/quarantine path.
    pub deadline: Option<Duration>,
    /// Deterministic fault injection for this job only. Poisoned workers
    /// and lost completions are engine-only and rejected at submission;
    /// plans are never serialized into persisted queues.
    pub plan: Option<FaultPlan>,
    /// Free-form label shown by `hqr jobs`.
    pub tag: String,
    /// Client-supplied idempotency key. Submitting a spec whose key is
    /// already registered returns the original job's id instead of
    /// creating a duplicate — safe resubmission after a lost response.
    pub dedup_key: Option<String>,
}

impl JobSpec {
    /// A fresh job with default policy (normal QoS, FIFO, no integrity
    /// checking, no retries, no deadline).
    pub fn fresh(elims: Vec<ElimOp>, a: TiledMatrix) -> JobSpec {
        JobSpec {
            input: JobInput::Fresh { elims, a },
            ib: None,
            qos: QosClass::default(),
            policy: SchedPolicy::default(),
            integrity: IntegrityMode::default(),
            max_retries: 0,
            job_retries: 0,
            deadline: None,
            plan: None,
            tag: String::new(),
            dedup_key: None,
        }
    }

    /// A job resuming from `ckpt` with default policy.
    pub fn resume(ckpt: Checkpoint) -> JobSpec {
        JobSpec {
            input: JobInput::Resume(Box::new(ckpt)),
            ..JobSpec::fresh(Vec::new(), TiledMatrix::zeros(1, 1, 1))
        }
    }

    /// Serialize the spec (minus any fault plan) for the wire protocol and
    /// the persisted queue. The encoding is a section container:
    /// meta words, tag string, then either elims + tiles (fresh) or an
    /// embedded checkpoint container (resume).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new(QUEUE_MAGIC, QUEUE_VERSION);
        spec_sections(&mut w, self, QSEC_BASE, 0);
        w.section(QSEC_COUNT, &bytes_of_u64s(&[1]));
        w.into_bytes()
    }

    /// Decode the inverse of [`JobSpec::to_bytes`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<JobSpec, QueueFormatError> {
        let r = SectionReader::from_bytes(bytes, QUEUE_MAGIC, QUEUE_VERSION)?;
        let (spec, _) = spec_from_sections(&r, QSEC_BASE)?;
        Ok(spec)
    }

    fn policy_word(&self) -> u64 {
        match self.policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::PanelFirst => 1,
            SchedPolicy::CriticalPath => 2,
        }
    }

    fn integrity_word(&self) -> u64 {
        match self.integrity {
            IntegrityMode::Off => 0,
            IntegrityMode::Spot => 1,
            IntegrityMode::Full => 2,
        }
    }
}

/// Lifecycle state of a job, as reported by [`JobPool::status`].
///
/// ```text
///            submit                    admit
/// (arrival) ───────► Queued ─────────────────────► Running
///              │        │ shed / cancel               │
///              │        ▼                             │ finish
///   reject     │     Shed / Cancelled                 ▼
///  (typed Err) │                                  Completed
///              │     Running ──fail/deadline──► Backoff ──admit──► Running
///                       │                          │ budget exhausted
///                       │ cancel                   ▼
///                       ▼                      Quarantined
///                   Cancelled      Running ──drain grace expired──► Suspended
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for admission (memory budget / active slot).
    Queued,
    /// Tasks are being executed by the shared pool.
    Running,
    /// Failed or timed out; waiting out the retry backoff before re-running.
    Backoff,
    /// Finished; the factors are available from [`JobPool::wait`].
    Completed,
    /// Cancelled by the tenant before completion.
    Cancelled,
    /// Evicted from the full queue by a higher-QoS arrival.
    Shed,
    /// Exhausted its job-level retry budget; the last error is recorded.
    Quarantined,
    /// Halted at a quiescent point by a drain and checkpointed; the
    /// persisted queue holds its resumable state.
    Suspended,
}

impl JobState {
    /// True when the job will never run again in this pool.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running | JobState::Backoff)
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Backoff => "backoff",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Shed => "shed",
            JobState::Quarantined => "quarantined",
            JobState::Suspended => "suspended",
        }
    }

    /// Parse the inverse of [`JobState::name`].
    pub fn parse(s: &str) -> Option<JobState> {
        [
            JobState::Queued,
            JobState::Running,
            JobState::Backoff,
            JobState::Completed,
            JobState::Cancelled,
            JobState::Shed,
            JobState::Quarantined,
            JobState::Suspended,
        ]
        .into_iter()
        .find(|j| j.name() == s)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone)]
pub enum SubmitError {
    /// The spec itself is unusable (bad elimination list, bad `ib`,
    /// engine-only fault-plan features, checkpoint mismatch, ...).
    Invalid {
        /// What was wrong.
        message: String,
    },
    /// The job's working set alone exceeds the pool's memory budget; it
    /// could never be admitted.
    OverBudget {
        /// Bytes the job needs resident.
        need: u64,
        /// The pool's configured budget.
        budget: u64,
    },
    /// The submission queue is full and the job's QoS does not dominate
    /// any queued job (backpressure: the caller should retry later).
    QueueFull {
        /// The configured queue capacity.
        cap: usize,
    },
    /// The pool is draining and admits no new work.
    Draining,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid { message } => write!(f, "invalid job spec: {message}"),
            SubmitError::OverBudget { need, budget } => {
                write!(f, "job needs {need} bytes resident but the pool budget is {budget}")
            }
            SubmitError::QueueFull { cap } => {
                write!(f, "submission queue is full ({cap} jobs) and the job's QoS sheds nothing")
            }
            SubmitError::Draining => write!(f, "pool is draining; submissions are closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a persisted queue file could not be decoded.
#[derive(Debug)]
pub enum QueueFormatError {
    /// The container is unreadable or corrupt.
    Format(BinFormatError),
    /// A section decoded but its contents are inconsistent.
    Inconsistent {
        /// What invariant failed.
        message: String,
    },
    /// An embedded checkpoint failed to decode.
    Checkpoint(CheckpointError),
}

impl fmt::Display for QueueFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueFormatError::Format(e) => write!(f, "queue format error: {e}"),
            QueueFormatError::Inconsistent { message } => {
                write!(f, "inconsistent queue file: {message}")
            }
            QueueFormatError::Checkpoint(e) => write!(f, "embedded checkpoint: {e}"),
        }
    }
}

impl std::error::Error for QueueFormatError {}

impl From<BinFormatError> for QueueFormatError {
    fn from(e: BinFormatError) -> Self {
        QueueFormatError::Format(e)
    }
}

impl From<CheckpointError> for QueueFormatError {
    fn from(e: CheckpointError) -> Self {
        QueueFormatError::Checkpoint(e)
    }
}

/// Snapshot of one job for `hqr jobs` listings.
#[derive(Clone, Debug)]
pub struct JobView {
    /// The job's id.
    pub id: JobId,
    /// Tenant label.
    pub tag: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Priority tier.
    pub qos: QosClass,
    /// Attempts started (initial run plus job-level retries).
    pub attempts: u32,
    /// Tasks completed in the current/last attempt.
    pub tasks_done: usize,
    /// Tasks in the job's DAG.
    pub tasks_total: usize,
    /// Last recorded error, if any.
    pub error: Option<String>,
    /// Wall-clock from submission to terminal state (terminal jobs only).
    pub wall: Option<Duration>,
}

/// The factored output of a completed job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The factored matrix (R in the upper triangle, V blocks below).
    pub a: TiledMatrix,
    /// The Householder factor buffers.
    pub factors: TFactors,
}

/// Terminal report for one job, returned by [`JobPool::wait`].
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's id.
    pub id: JobId,
    /// The terminal state.
    pub state: JobState,
    /// Attempts started (initial run plus job-level retries).
    pub attempts: u32,
    /// The last error, if the job did not complete.
    pub error: Option<String>,
    /// Fault-recovery accounting accumulated across attempts.
    pub stats: FaultStats,
    /// The factorization (present iff `state == Completed` and this is the
    /// first waiter to claim it).
    pub result: Option<JobResult>,
    /// Wall-clock from submission to the terminal state.
    pub wall: Duration,
}

/// Pool sizing and robustness knobs.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads shared by every job.
    pub nthreads: usize,
    /// Memory budget (bytes) for the *active* working set: admitted jobs'
    /// tiles, factor buffers, and retained pristine payloads. `u64::MAX`
    /// disables the gate.
    pub mem_budget: u64,
    /// Bounded submission queue: jobs accepted but not yet admitted.
    pub queue_cap: usize,
    /// Maximum concurrently active jobs; `0` means unbounded.
    pub max_active: usize,
    /// Supervisor poll interval (admission, deadlines, finalization).
    pub tick: Duration,
    /// First job-level retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the job-level retry backoff.
    pub backoff_cap: Duration,
    /// Crash-safe durability: when set, the pool keeps a write-ahead
    /// journal of every lifecycle transition, persists completed results,
    /// and checkpoints running jobs, all under one state directory.
    pub durability: Option<DurabilityConfig>,
    /// Per-job resident cap (bytes). A job whose working set exceeds the
    /// cap runs out-of-core: its tiles live in a spill file and at most
    /// `resident_budget` bytes of them stay in memory, so admission
    /// charges `min(footprint, resident_budget)` instead of the full
    /// footprint. `None` keeps every admitted job fully resident.
    pub resident_budget: Option<u64>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            nthreads: 4,
            mem_budget: u64::MAX,
            queue_cap: 64,
            max_active: 0,
            tick: Duration::from_millis(1),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            durability: None,
            resident_budget: None,
        }
    }
}

/// Crash-safety knobs: where durable state lives and how eagerly running
/// jobs are checkpointed.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// State directory; the pool creates [`JOURNAL_FILE`], [`CKPT_DIR`],
    /// and [`RESULTS_DIR`] inside it.
    pub state_dir: PathBuf,
    /// Periodic-checkpoint interval for running jobs that have made
    /// progress since activation and carry no deadline (a deadline's
    /// wall budget is per activation, so periodic re-queuing would reset
    /// it). `Duration::ZERO` disables periodic checkpoints; suspensions
    /// and drains still checkpoint.
    pub ckpt_interval: Duration,
    /// Retention cap on stored results, oldest pruned first; `0` keeps
    /// everything.
    pub result_cap: usize,
    /// Journal size threshold (bytes) that triggers a compacting
    /// rotation after the next append; `0` lets the journal grow
    /// without bound.
    pub journal_rotate_bytes: u64,
    /// Byte ceiling on the stored-result directory, oldest pruned
    /// first; `0` keeps everything.
    pub result_max_bytes: u64,
    /// Age ceiling on stored results; `None` keeps results regardless
    /// of age.
    pub result_max_age: Option<Duration>,
}

impl DurabilityConfig {
    /// Defaults rooted at `state_dir`: 30 s periodic checkpoints,
    /// unbounded result retention, and no journal rotation.
    pub fn at(state_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            state_dir: state_dir.into(),
            ckpt_interval: Duration::from_secs(30),
            result_cap: 0,
            journal_rotate_bytes: 0,
            result_max_bytes: 0,
            result_max_age: None,
        }
    }
}

/// Why a running job is being suspended at its next quiescent point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuspendKind {
    /// A graceful drain: the checkpoint goes to the persisted queue
    /// and/or the journal for a later restart.
    Drain,
    /// An explicit suspend request: the job parks in
    /// [`JobState::Suspended`] until [`JobPool::resume_job`].
    Park,
    /// A higher-QoS arrival needs the job's memory or active slot; the
    /// job re-queues from its checkpoint and re-admits when room frees.
    Preempt,
    /// A periodic durability checkpoint; the job re-queues immediately
    /// and loses no retry budget.
    Periodic,
}

impl SuspendKind {
    fn reason(self) -> &'static str {
        match self {
            SuspendKind::Drain => "drain",
            SuspendKind::Park => "suspend request",
            SuspendKind::Preempt => "preempted by a higher-QoS job",
            SuspendKind::Periodic => "periodic durability checkpoint",
        }
    }
}

/// Why an active job was halted (set once; first writer wins).
#[derive(Debug)]
enum Verdict {
    /// A task exhausted its budgets; carries the engine error.
    Fault(ExecError),
    /// The per-attempt deadline elapsed.
    Deadline(Duration),
    /// The tenant cancelled the job.
    Cancel,
    /// Checkpoint the job at the next quiescent point, for this reason.
    Suspend(SuspendKind),
}

/// One admitted job: the pool's unit of ownership. The [`TileStore`]'s raw
/// pointers target the heap buffers owned by `a` and `factors` below —
/// tiles are independently boxed slices, so moving this struct (or the
/// `Arc` around it) never invalidates the store.
struct ActiveJob {
    /// Activation id — unique per *attempt*, so stale queue entries from a
    /// previous incarnation of a retried job can never reach a new one.
    rid: u64,
    /// Public job id (stable across retries).
    id: u64,
    /// Admission order, for FCFS tie-breaking within a QoS class.
    seq: u64,
    qos_inv: u64,
    graph: TaskGraph,
    ranks: Vec<u64>,
    store: TileStore,
    guards: Option<GuardStore>,
    plan: Option<FaultPlan>,
    max_retries: u32,
    recovery: bool,
    full_integrity: bool,
    indeg: Vec<AtomicU32>,
    done: Vec<AtomicBool>,
    remaining: AtomicUsize,
    /// Tasks remaining when this activation started — periodic
    /// checkpoints only fire once the activation has made progress.
    initial_remaining: usize,
    /// Workers currently holding (or about to run) one of this job's
    /// tasks. Finalization requires `halted-or-finished` AND `inflight == 0`.
    inflight: AtomicUsize,
    halted: AtomicBool,
    verdict: Mutex<Option<Verdict>>,
    stats: Mutex<FaultStats>,
    started: Instant,
    deadline: Option<Duration>,
    footprint: u64,
    /// Inner block size in effect (recorded into suspension checkpoints).
    ib: usize,
    /// The job's elimination list (re-serialized on suspension/retry).
    elims: Vec<ElimOp>,
    /// Policy knobs, kept for retry and suspension re-queuing.
    origin_policy: JobPolicy,
    /// Pristine payload, retained while the job may still be retried.
    origin_seed: Option<Seed>,
    /// Backing storage for `store` (kept alive for the job's lifetime).
    a: TiledMatrix,
    factors: TFactors,
}

impl ActiveJob {
    /// Record a verdict (first wins) and halt the job's tasks.
    fn halt_with(&self, v: Verdict) {
        let mut g = relock(&self.verdict);
        if g.is_none() {
            *g = Some(v);
        }
        drop(g);
        self.halted.store(true, Ordering::SeqCst);
    }
}

/// The per-job policy knobs, separated from the payload so retries and
/// persistence can carry them around cheaply.
#[derive(Clone, Debug)]
struct JobPolicy {
    ib: usize,
    qos: QosClass,
    policy: SchedPolicy,
    integrity: IntegrityMode,
    max_retries: u32,
    job_retries: u32,
    deadline: Option<Duration>,
    plan: Option<FaultPlan>,
    tag: String,
    dedup_key: Option<String>,
}

/// The pristine payload a retry re-runs from.
#[derive(Clone, Debug)]
enum Seed {
    Fresh(TiledMatrix),
    Resume(Box<Checkpoint>),
}

/// A job accepted but not currently active: waiting for admission, or
/// waiting out a retry backoff.
struct PendingJob {
    id: u64,
    seq: u64,
    policy: JobPolicy,
    elims: Vec<ElimOp>,
    seed: Seed,
    graph: TaskGraph,
    footprint: u64,
    attempts: u32,
    not_before: Option<Instant>,
    /// Whether activation counts against the record's attempt counter.
    /// Suspension re-queues (park/preempt/periodic) continue the *same*
    /// attempt and must not consume retry budget.
    count_attempt: bool,
}

/// Bookkeeping for every job the pool ever accepted.
struct JobRecord {
    state: JobState,
    qos: QosClass,
    tag: String,
    attempts: u32,
    tasks_total: usize,
    tasks_done: usize,
    error: Option<String>,
    stats: FaultStats,
    submitted: Instant,
    wall: Option<Duration>,
    outcome: Option<JobOutcome>,
}

/// A job suspended by a drain: its policy plus the resumable checkpoint.
struct SuspendedEntry {
    policy: JobPolicy,
    attempts: u32,
    ckpt: Box<Checkpoint>,
}

/// What [`JobPool::drain`] accomplished.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Jobs that reached a terminal state during the drain window.
    pub finished: usize,
    /// Jobs halted at a quiescent point and checkpointed.
    pub suspended: Vec<JobId>,
    /// Entries written to the persisted queue (queued + suspended jobs).
    pub persisted: usize,
}

/// What [`JobPool::recover`] reconstructed from the write-ahead journal.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Jobs named by the journal.
    pub total: usize,
    /// Completed jobs re-registered (results retrievable).
    pub completed_retained: usize,
    /// Other terminal jobs re-registered (quarantined, cancelled, shed).
    pub terminal_retained: usize,
    /// Live jobs resubmitted from their last durable checkpoint.
    pub resumed_from_checkpoint: usize,
    /// Live jobs resubmitted from their original spec (no usable
    /// checkpoint).
    pub restarted_fresh: usize,
    /// Live jobs whose journaled spec was unusable; quarantined so they
    /// still reach a terminal state.
    pub unrecoverable: usize,
}

/// One entry decoded from a persisted queue file.
pub struct QueueEntry {
    /// The job spec to resubmit ([`JobInput::Resume`] for suspended jobs).
    pub spec: JobSpec,
    /// Job-level attempts already consumed before persistence.
    pub attempts: u32,
}

type ReadyKey = Reverse<(u64, u64, u64, u32, u64)>;

struct Shared {
    cfg: PoolConfig,
    next_id: AtomicU64,
    next_rid: AtomicU64,
    next_seq: AtomicU64,
    pending: Mutex<Vec<PendingJob>>,
    records: Mutex<HashMap<u64, JobRecord>>,
    waiters: Condvar,
    active: RwLock<HashMap<u64, Arc<ActiveJob>>>,
    /// Shared ready heap: (qos_inv, seq, rank, tid, rid), min-ordered.
    ready: Mutex<BinaryHeap<ReadyKey>>,
    cancel_requests: Mutex<Vec<u64>>,
    suspended: Mutex<Vec<SuspendedEntry>>,
    /// Jobs parked by an explicit suspend request, keyed by job id,
    /// awaiting [`JobPool::resume_job`].
    parked: Mutex<HashMap<u64, PendingJob>>,
    suspend_requests: Mutex<Vec<u64>>,
    /// Idempotent-submission index: dedup key -> job id.
    dedup: Mutex<HashMap<String, u64>>,
    /// Write-ahead journal of lifecycle transitions (durable pools only).
    journal: Option<Mutex<Journal>>,
    /// Durable store of completed results (durable pools only).
    results: Option<ResultStore>,
    active_footprint: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
}

impl Shared {
    fn push_ready(&self, job: &ActiveJob, tid: u32) {
        relock(&self.ready).push(Reverse((
            job.qos_inv,
            job.seq,
            job.ranks[tid as usize],
            tid,
            job.rid,
        )));
    }

    fn notify_records<R>(&self, f: impl FnOnce(&mut HashMap<u64, JobRecord>) -> R) -> R {
        let mut recs = relock(&self.records);
        let r = f(&mut recs);
        drop(recs);
        self.waiters.notify_all();
        r
    }

    /// Append a lifecycle transition to the write-ahead journal. Journal
    /// IO failure degrades durability, never availability: the pool keeps
    /// running and the failure goes to stderr.
    fn log_event(&self, ev: JournalEvent) {
        if let Some(j) = &self.journal {
            let mut j = relock(j);
            if let Err(e) = j.append(&ev) {
                eprintln!("hqr-pool: journal append failed: {e}");
            }
            // Size-threshold rotation: compact away terminal noise once
            // the file outgrows the configured budget. Held under the
            // journal lock so appends never interleave with the rewrite.
            let rotate_at = self.cfg.durability.as_ref().map_or(0, |d| d.journal_rotate_bytes);
            if j.rotate_due(rotate_at) {
                match j.rotate() {
                    Ok(reclaimed) => {
                        eprintln!("hqr-pool: journal rotated, reclaimed {reclaimed} bytes");
                    }
                    Err(e) => eprintln!("hqr-pool: journal rotation failed: {e}"),
                }
            }
        }
    }
}

/// Remove a terminal job's suspension checkpoint, if one was written.
fn cleanup_ckpt(shared: &Shared, id: u64) {
    if let Some(d) = &shared.cfg.durability {
        let _ = std::fs::remove_file(d.state_dir.join(format!("{CKPT_DIR}/job-{id}.ckpt")));
    }
}

/// The multi-job pool: owned worker threads plus a supervisor enforcing
/// admission, deadlines, retry/quarantine, and drain.
pub struct JobPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Bytes resident for one admitted job: matrix tiles plus the factor
/// buffers its graph allocates (guards are negligible next to either).
fn working_set_bytes(graph: &TaskGraph) -> u64 {
    let bb = (graph.b() * graph.b() * std::mem::size_of::<f64>()) as u64;
    let tiles = (graph.mt() * graph.nt()) as u64;
    let mut factor_bufs = 0u64;
    for t in graph.tasks() {
        factor_bufs += match t.kind {
            KernelKind::Geqrt => 2,
            KernelKind::Tsqrt | KernelKind::Ttqrt => 1,
            _ => 0,
        };
    }
    (tiles + factor_bufs) * bb
}

fn invalid(message: impl Into<String>) -> SubmitError {
    SubmitError::Invalid { message: message.into() }
}

/// Validate a spec and build its graph + footprint. Shared by `submit`
/// and the retry path (which revalidated once already, but is cheap).
fn prepare(spec: &JobSpec) -> Result<(Vec<ElimOp>, TaskGraph, usize, u64), SubmitError> {
    if let Some(p) = &spec.plan {
        if p.poisons_any_worker() {
            return Err(invalid("fault plans with poisoned workers are engine-only"));
        }
        if p.loses_any_completion() {
            return Err(invalid("fault plans that lose completions are engine-only"));
        }
    }
    let (elims, mt, nt, b) = match &spec.input {
        JobInput::Fresh { elims, a } => (elims.clone(), a.mt(), a.nt(), a.b()),
        JobInput::Resume(ck) => (ck.elims.clone(), ck.mt, ck.nt, ck.b),
    };
    let graph = TaskGraph::try_build(mt, nt, b, &elims)
        .map_err(|e| invalid(format!("elimination list rejected: {e}")))?;
    let ib = effective_ib(spec, b).map_err(|message| SubmitError::Invalid { message })?;
    if let JobInput::Resume(ck) = &spec.input {
        ck.validate_against(&graph, ib)
            .map_err(|e| invalid(format!("checkpoint rejected: {e}")))?;
    }
    let footprint = working_set_bytes(&graph);
    let retain = spec.job_retries > 0;
    let need = if retain { footprint + matrix_bytes(&graph) } else { footprint };
    Ok((elims, graph, ib, need))
}

fn matrix_bytes(graph: &TaskGraph) -> u64 {
    (graph.mt() * graph.nt() * graph.b() * graph.b() * std::mem::size_of::<f64>()) as u64
}

/// Admission charge for a job needing `need` resident bytes. With a
/// resident budget the charge is capped at that budget: the job runs
/// out-of-core and keeps at most `resident_budget` bytes of tiles in
/// memory, spilling the rest.
fn chargeable(cfg: &PoolConfig, need: u64) -> u64 {
    cfg.resident_budget.map_or(need, |rb| need.min(rb.max(1)))
}

fn effective_ib(spec: &JobSpec, b: usize) -> Result<usize, String> {
    let ib = match (&spec.input, spec.ib) {
        (JobInput::Resume(ck), None) => ck.ib,
        (JobInput::Resume(ck), Some(ib)) if ib != ck.ib => {
            return Err(format!("spec ib={ib} but the checkpoint was taken with ib={}", ck.ib));
        }
        (_, Some(ib)) => ib,
        (_, None) => b,
    };
    if ib == 0 || ib > b {
        return Err(format!("inner block size {ib} must be in 1..={b}"));
    }
    Ok(ib)
}

impl JobPool {
    /// Spawn the worker threads and supervisor for a new pool.
    ///
    /// # Panics
    ///
    /// Panics when the durability state directory (if configured) cannot
    /// be created or its journal cannot be opened — a daemon that cannot
    /// keep its durability promise must not start.
    pub fn new(cfg: PoolConfig) -> JobPool {
        let nthreads = cfg.nthreads.max(1);
        let (journal, results) = match &cfg.durability {
            Some(d) => {
                std::fs::create_dir_all(d.state_dir.join(CKPT_DIR))
                    .expect("create pool state directory");
                let j = Journal::open(&d.state_dir.join(JOURNAL_FILE)).expect("open pool journal");
                let r = ResultStore::with_retention(
                    &d.state_dir.join(RESULTS_DIR),
                    d.result_cap,
                    d.result_max_bytes,
                    d.result_max_age,
                )
                .expect("open pool result store");
                (Some(Mutex::new(j)), Some(r))
            }
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            cfg: PoolConfig { nthreads, ..cfg },
            next_id: AtomicU64::new(1),
            next_rid: AtomicU64::new(1),
            next_seq: AtomicU64::new(1),
            pending: Mutex::new(Vec::new()),
            records: Mutex::new(HashMap::new()),
            waiters: Condvar::new(),
            active: RwLock::new(HashMap::new()),
            ready: Mutex::new(BinaryHeap::new()),
            cancel_requests: Mutex::new(Vec::new()),
            suspended: Mutex::new(Vec::new()),
            parked: Mutex::new(HashMap::new()),
            suspend_requests: Mutex::new(Vec::new()),
            dedup: Mutex::new(HashMap::new()),
            journal,
            results,
            active_footprint: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let workers: Vec<Worker<(u64, u32)>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
        let stealers: Arc<Vec<Stealer<(u64, u32)>>> =
            Arc::new(workers.iter().map(Worker::stealer).collect());
        let mut handles = Vec::with_capacity(nthreads + 1);
        for (me, local) in workers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let stealers = Arc::clone(&stealers);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hqr-pool-{me}"))
                    .spawn(move || worker_loop(&shared, me, &local, &stealers))
                    .expect("spawn pool worker"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("hqr-pool-supervisor".into())
                    .spawn(move || supervisor_loop(&shared))
                    .expect("spawn pool supervisor"),
            );
        }
        JobPool { shared, handles: Mutex::new(handles) }
    }

    /// Submit one job. Admission-control decisions (budget, backpressure,
    /// shedding) happen here and in the supervisor; an `Ok` id means the
    /// job was *accepted* and will reach a terminal state observable via
    /// [`JobPool::wait`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.submit_dedup(spec).map(|(id, _)| id)
    }

    /// [`JobPool::submit`] with idempotency reporting: when the spec's
    /// `dedup_key` is already registered, no new job is created and the
    /// original id is returned with `true`. On durable pools the accepted
    /// job is journaled before this returns, so a response the client
    /// receives is a response that survives a crash.
    pub fn submit_dedup(&self, spec: JobSpec) -> Result<(JobId, bool), SubmitError> {
        let s = &*self.shared;
        if s.draining.load(Ordering::SeqCst) || s.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        // The dedup guard is held through acceptance so two racing
        // submissions of the same key cannot both register.
        let mut dedup_guard = None;
        if let Some(k) = &spec.dedup_key {
            let dd = relock(&s.dedup);
            if let Some(&id) = dd.get(k) {
                return Ok((JobId(id), true));
            }
            dedup_guard = Some(dd);
        }
        let (elims, graph, ib, need) = prepare(&spec)?;
        let need = chargeable(&s.cfg, need);
        if need > s.cfg.mem_budget {
            return Err(SubmitError::OverBudget { need, budget: s.cfg.mem_budget });
        }
        // Journal payload is encoded before the spec is torn apart (and
        // only when a journal exists to receive it).
        let spec_bytes = s.journal.as_ref().map(|_| spec.to_bytes());
        let JobSpec {
            input,
            qos,
            policy,
            integrity,
            max_retries,
            job_retries,
            deadline,
            plan,
            tag,
            dedup_key,
            ..
        } = spec;
        let seed = match input {
            JobInput::Fresh { a, .. } => Seed::Fresh(a),
            JobInput::Resume(ck) => Seed::Resume(ck),
        };
        let jp = JobPolicy {
            ib,
            qos,
            policy,
            integrity,
            max_retries,
            job_retries,
            deadline,
            plan,
            tag: tag.clone(),
            dedup_key: dedup_key.clone(),
        };
        let tasks_total = graph.tasks().len();
        let mut pending = relock(&s.pending);
        if pending.len() >= s.cfg.queue_cap {
            // Load shedding: evict the lowest-QoS queued job iff the
            // arrival strictly outranks it; shed the *newest* of that
            // class so older accepted work keeps its place.
            let victim = pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.policy.qos < qos)
                .min_by_key(|(_, p)| (p.policy.qos, Reverse(p.seq)))
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let shed = pending.remove(i);
                    s.log_event(JournalEvent::Shed {
                        id: shed.id,
                        reason: "shed by a higher-QoS arrival".into(),
                    });
                    s.notify_records(|recs| {
                        if let Some(r) = recs.get_mut(&shed.id) {
                            r.state = JobState::Shed;
                            r.wall = Some(r.submitted.elapsed());
                            r.error = Some("shed by a higher-QoS arrival".into());
                            r.outcome = Some(JobOutcome {
                                id: JobId(shed.id),
                                state: JobState::Shed,
                                attempts: r.attempts,
                                error: r.error.clone(),
                                stats: r.stats,
                                result: None,
                                wall: r.wall.unwrap_or_default(),
                            });
                        }
                    });
                }
                None => return Err(SubmitError::QueueFull { cap: s.cfg.queue_cap }),
            }
        }
        let id = s.next_id.fetch_add(1, Ordering::Relaxed);
        let seq = s.next_seq.fetch_add(1, Ordering::Relaxed);
        pending.push(PendingJob {
            id,
            seq,
            policy: jp,
            elims,
            seed,
            graph,
            footprint: need,
            attempts: 0,
            not_before: None,
            count_attempt: true,
        });
        drop(pending);
        let mut recs = relock(&s.records);
        recs.insert(
            id,
            JobRecord {
                state: JobState::Queued,
                qos,
                tag,
                attempts: 0,
                tasks_total,
                tasks_done: 0,
                error: None,
                stats: FaultStats::default(),
                submitted: Instant::now(),
                wall: None,
                outcome: None,
            },
        );
        drop(recs);
        if let Some(mut dd) = dedup_guard {
            dd.insert(dedup_key.clone().expect("guard implies key"), id);
        }
        // Accepted reaches stable storage before the caller learns the id.
        s.log_event(JournalEvent::Accepted {
            id,
            attempts: 0,
            tasks_total: tasks_total as u64,
            dedup: dedup_key,
            spec: spec_bytes,
        });
        Ok((JobId(id), false))
    }

    /// Resubmit one journal-recovered job under its original id and
    /// attempt count, bypassing backpressure (it was already accepted in
    /// a previous life).
    fn resubmit_recovered(&self, spec: JobSpec, id: u64, attempts: u32) -> Result<(), SubmitError> {
        let s = &*self.shared;
        let (elims, graph, ib, need) = prepare(&spec)?;
        let need = chargeable(&s.cfg, need);
        if need > s.cfg.mem_budget {
            return Err(SubmitError::OverBudget { need, budget: s.cfg.mem_budget });
        }
        let JobSpec {
            input,
            qos,
            policy,
            integrity,
            max_retries,
            job_retries,
            deadline,
            tag,
            dedup_key,
            ..
        } = spec;
        let seed = match input {
            JobInput::Fresh { a, .. } => Seed::Fresh(a),
            JobInput::Resume(ck) => Seed::Resume(ck),
        };
        let jp = JobPolicy {
            ib,
            qos,
            policy,
            integrity,
            max_retries,
            job_retries,
            deadline,
            plan: None,
            tag: tag.clone(),
            dedup_key,
        };
        let tasks_total = graph.tasks().len();
        relock(&s.pending).push(PendingJob {
            id,
            seq: s.next_seq.fetch_add(1, Ordering::Relaxed),
            policy: jp,
            elims,
            seed,
            graph,
            footprint: need,
            attempts,
            not_before: None,
            count_attempt: true,
        });
        relock(&s.records).insert(
            id,
            JobRecord {
                state: JobState::Queued,
                qos,
                tag,
                attempts,
                tasks_total,
                tasks_done: 0,
                error: None,
                stats: FaultStats::default(),
                submitted: Instant::now(),
                wall: None,
                outcome: None,
            },
        );
        Ok(())
    }

    /// Replay the write-ahead journal after a restart (or crash): every
    /// job the old process accepted is driven back to a known state —
    /// terminal jobs re-register (completed results stay retrievable),
    /// live jobs resubmit from their last durable checkpoint when one
    /// exists, else from their original spec. The journal is compacted to
    /// terminal summaries plus the re-journaled live jobs.
    ///
    /// Call once, before accepting new submissions.
    pub fn recover(&self) -> Result<RecoveryReport, JournalError> {
        let s = &*self.shared;
        let (state_dir, jm) = match (&s.cfg.durability, &s.journal) {
            (Some(d), Some(j)) => (d.state_dir.clone(), j),
            _ => {
                return Err(JournalError::Inconsistent {
                    message: "pool has no durable state directory".into(),
                })
            }
        };
        let events = Journal::read(&state_dir.join(JOURNAL_FILE))?;
        let jobs = replay(&events);
        let mut report = RecoveryReport { total: jobs.len(), ..Default::default() };
        // Compact away everything except terminal summaries; live jobs
        // are re-journaled in full below.
        let mut keep: Vec<JournalEvent> = Vec::new();
        for (&id, j) in &jobs {
            let Some(state) = j.terminal else { continue };
            keep.push(JournalEvent::Accepted {
                id,
                attempts: j.attempts,
                tasks_total: j.tasks_total,
                dedup: j.dedup.clone(),
                spec: None,
            });
            keep.push(terminal_event(id, state, j));
        }
        relock(jm).compact(&keep)?;
        if let Some(&max_id) = jobs.keys().max() {
            s.next_id.fetch_max(max_id + 1, Ordering::SeqCst);
        }
        for (&id, j) in &jobs {
            if let Some(k) = &j.dedup {
                relock(&s.dedup).insert(k.clone(), id);
            }
            let decoded = j.spec.as_ref().and_then(|b| JobSpec::from_bytes(b.clone()).ok());
            if let Some(state) = j.terminal {
                let (qos, tag) =
                    decoded.map_or((QosClass::default(), String::new()), |sp| (sp.qos, sp.tag));
                let total = j.tasks_total as usize;
                relock(&s.records).insert(
                    id,
                    JobRecord {
                        state,
                        qos,
                        tag,
                        attempts: j.attempts,
                        tasks_total: total,
                        tasks_done: if state == JobState::Completed {
                            total
                        } else {
                            j.ckpt_tasks_done as usize
                        },
                        error: j.error.clone(),
                        stats: FaultStats::default(),
                        submitted: Instant::now(),
                        wall: Some(Duration::ZERO),
                        outcome: None,
                    },
                );
                if state == JobState::Completed {
                    report.completed_retained += 1;
                } else {
                    report.terminal_retained += 1;
                }
                continue;
            }
            // Live at the crash: prefer the last durable checkpoint so
            // completed panels are never recomputed.
            let Some(mut spec) = decoded else {
                self.quarantine_unrecoverable(j, id, "journal lost the job's spec");
                report.unrecoverable += 1;
                continue;
            };
            let mut ck_file = None;
            if let Some(f) = &j.ckpt_file {
                if let Ok(ck) = read_checkpoint(&state_dir.join(f)) {
                    spec.input = JobInput::Resume(Box::new(ck));
                    spec.ib = None; // take the checkpoint's recorded ib
                    ck_file = Some(f.clone());
                }
            }
            match self.resubmit_recovered(spec, id, j.attempts) {
                Ok(()) => {
                    s.log_event(JournalEvent::Accepted {
                        id,
                        attempts: j.attempts,
                        tasks_total: j.tasks_total,
                        dedup: j.dedup.clone(),
                        spec: j.spec.clone(),
                    });
                    match ck_file {
                        Some(file) => {
                            s.log_event(JournalEvent::Checkpointed {
                                id,
                                tasks_done: j.ckpt_tasks_done,
                                file,
                            });
                            report.resumed_from_checkpoint += 1;
                        }
                        None => report.restarted_fresh += 1,
                    }
                }
                Err(e) => {
                    self.quarantine_unrecoverable(j, id, &e.to_string());
                    report.unrecoverable += 1;
                }
            }
        }
        Ok(report)
    }

    fn quarantine_unrecoverable(&self, j: &crate::journal::RecoveredJob, id: u64, why: &str) {
        let s = &*self.shared;
        let error = format!("unrecoverable after restart: {why}");
        s.log_event(JournalEvent::Accepted {
            id,
            attempts: j.attempts,
            tasks_total: j.tasks_total,
            dedup: j.dedup.clone(),
            spec: None,
        });
        s.log_event(JournalEvent::Quarantined { id, error: error.clone() });
        relock(&s.records).insert(
            id,
            JobRecord {
                state: JobState::Quarantined,
                qos: QosClass::default(),
                tag: String::new(),
                attempts: j.attempts,
                tasks_total: j.tasks_total as usize,
                tasks_done: j.ckpt_tasks_done as usize,
                error: Some(error),
                stats: FaultStats::default(),
                submitted: Instant::now(),
                wall: Some(Duration::ZERO),
                outcome: None,
            },
        );
    }

    /// Block until `id` reaches a terminal state and return its outcome.
    /// The factored matrix is handed to the first waiter; later waiters
    /// (and waits on already-reported jobs) get a payload-less outcome.
    /// Returns `None` for ids this pool never accepted.
    pub fn wait(&self, id: JobId) -> Option<JobOutcome> {
        let s = &*self.shared;
        let mut recs = relock(&s.records);
        loop {
            let r = recs.get_mut(&id.0)?;
            if let Some(out) = r.outcome.take() {
                return Some(out);
            }
            if r.state.is_terminal() {
                return Some(JobOutcome {
                    id,
                    state: r.state,
                    attempts: r.attempts,
                    error: r.error.clone(),
                    stats: r.stats,
                    result: None,
                    wall: r.wall.unwrap_or_default(),
                });
            }
            recs = s.waiters.wait(recs).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Current snapshot of one job.
    pub fn status(&self, id: JobId) -> Option<JobView> {
        self.jobs().into_iter().find(|v| v.id == id)
    }

    /// Current snapshot of every job the pool has accepted, newest first.
    pub fn jobs(&self) -> Vec<JobView> {
        let s = &*self.shared;
        let live: HashMap<u64, usize> = {
            let active = s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            active
                .values()
                .map(|j| (j.id, j.graph.tasks().len() - j.remaining.load(Ordering::Acquire)))
                .collect()
        };
        let recs = relock(&s.records);
        let mut out: Vec<JobView> = recs
            .iter()
            .map(|(&id, r)| JobView {
                id: JobId(id),
                tag: r.tag.clone(),
                state: r.state,
                qos: r.qos,
                attempts: r.attempts,
                tasks_done: live.get(&id).copied().unwrap_or(r.tasks_done),
                tasks_total: r.tasks_total,
                error: r.error.clone(),
                wall: r.wall,
            })
            .collect();
        out.sort_by_key(|v| Reverse(v.id));
        out
    }

    /// Request cancellation. Returns `false` for unknown or already
    /// terminal jobs; otherwise the job reaches [`JobState::Cancelled`].
    /// Parked (suspended) jobs cancel immediately.
    pub fn cancel(&self, id: JobId) -> bool {
        let s = &*self.shared;
        if relock(&s.parked).remove(&id.0).is_some() {
            s.log_event(JournalEvent::Cancelled { id: id.0 });
            cleanup_ckpt(s, id.0);
            s.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id.0) {
                    r.state = JobState::Cancelled;
                    r.wall = Some(r.submitted.elapsed());
                    r.error = Some("cancelled while suspended".into());
                }
            });
            return true;
        }
        let recs = relock(&s.records);
        let Some(r) = recs.get(&id.0) else { return false };
        if r.state.is_terminal() {
            return false;
        }
        drop(recs);
        relock(&s.cancel_requests).push(id.0);
        true
    }

    /// Request suspension of `id`: a queued job parks immediately, a
    /// running job is checkpointed at its next panel-boundary quiescent
    /// point and then parks. The job sits in [`JobState::Suspended`]
    /// until [`JobPool::resume_job`] (or [`JobPool::cancel`]). Returns
    /// `false` for unknown or terminal jobs.
    pub fn suspend(&self, id: JobId) -> bool {
        let s = &*self.shared;
        let recs = relock(&s.records);
        let Some(r) = recs.get(&id.0) else { return false };
        if r.state.is_terminal() {
            return false;
        }
        drop(recs);
        relock(&s.suspend_requests).push(id.0);
        true
    }

    /// Resume a job parked by [`JobPool::suspend`]: it re-queues from its
    /// suspension checkpoint and continues bitwise-identically from the
    /// completed-panel frontier. Returns `false` when `id` is not parked.
    pub fn resume_job(&self, id: JobId) -> bool {
        let s = &*self.shared;
        let Some(p) = relock(&s.parked).remove(&id.0) else { return false };
        relock(&s.pending).push(p);
        s.notify_records(|recs| {
            if let Some(r) = recs.get_mut(&id.0) {
                r.state = JobState::Queued;
                r.error = None;
                r.wall = None;
            }
        });
        true
    }

    /// Encoded result container for a completed job — from the durable
    /// store when present, else re-encoded from the in-memory outcome.
    /// `None` when the job is unknown, not completed, or its stored
    /// result was pruned and the outcome already claimed.
    pub fn result_bytes(&self, id: JobId) -> Option<Vec<u8>> {
        let s = &*self.shared;
        if let Some(store) = &s.results {
            if let Some(bytes) = store.get(id.0) {
                return Some(bytes);
            }
        }
        let recs = relock(&s.records);
        let result = recs.get(&id.0)?.outcome.as_ref()?.result.as_ref()?;
        Some(result_to_bytes(id.0, result))
    }

    /// True when no job is queued, active, or awaiting finalization.
    pub fn is_idle(&self) -> bool {
        let s = &*self.shared;
        relock(&s.pending).is_empty()
            && s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner).is_empty()
    }

    /// Graceful drain: stop admitting, give running jobs `grace` to
    /// finish, then checkpoint the stragglers at a quiescent point and
    /// persist the whole queue (never-started + suspended jobs) to
    /// `persist`, if given. Blocks until the pool is quiet.
    pub fn drain(&self, grace: Duration, persist: Option<&Path>) -> std::io::Result<DrainReport> {
        let s = &*self.shared;
        s.draining.store(true, Ordering::SeqCst);
        let terminal_before: HashSet<u64> = {
            let recs = relock(&s.records);
            recs.iter().filter(|(_, r)| r.state.is_terminal()).map(|(&id, _)| id).collect()
        };
        let deadline = Instant::now() + grace;
        loop {
            let active_empty =
                s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner).is_empty();
            if active_empty || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(s.cfg.tick);
        }
        // Suspend whatever is still running.
        {
            let active = s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            for job in active.values() {
                job.halt_with(Verdict::Suspend(SuspendKind::Drain));
            }
        }
        // Quiesce. An empty active map is not enough: the supervisor
        // removes a job from the map *before* concluding it (pushing its
        // suspended checkpoint, settling its record), so breaking on
        // emptiness alone can snapshot mid-conclusion and silently drop
        // the last job. A record leaves `Running` only inside that
        // conclusion, so also wait for every running record to settle.
        loop {
            let active_empty =
                s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner).is_empty();
            let running_settled =
                !relock(&s.records).values().any(|r| r.state == JobState::Running);
            if active_empty && running_settled {
                break;
            }
            std::thread::sleep(s.cfg.tick);
        }
        let mut finished = 0usize;
        let suspended_ids: Vec<JobId>;
        {
            let recs = relock(&s.records);
            suspended_ids = recs
                .iter()
                .filter(|(_, r)| r.state == JobState::Suspended)
                .map(|(&id, _)| JobId(id))
                .collect();
            finished += recs
                .iter()
                .filter(|(id, r)| {
                    !terminal_before.contains(id)
                        && matches!(
                            r.state,
                            JobState::Completed | JobState::Cancelled | JobState::Quarantined
                        )
                })
                .count();
        }
        // Persist: never-started pending jobs keep their fresh payloads;
        // suspended jobs are embedded as resumable checkpoints. Parked
        // jobs ride along as pending entries (their seed already is the
        // suspension checkpoint).
        let mut pending: Vec<PendingJob> = std::mem::take(&mut *relock(&s.pending));
        pending.extend(relock(&s.parked).drain().map(|(_, p)| p));
        let suspended: Vec<SuspendedEntry> = std::mem::take(&mut *relock(&s.suspended));
        let persisted = pending.len() + suspended.len();
        if let Some(path) = persist {
            let mut w = SectionWriter::new(QUEUE_MAGIC, QUEUE_VERSION);
            let mut index = 0u32;
            for p in &pending {
                let spec = pending_to_spec(p);
                spec_sections(&mut w, &spec, QSEC_BASE + index * QSEC_STRIDE, p.attempts);
                index += 1;
            }
            for e in &suspended {
                let spec = suspended_to_spec(e);
                spec_sections(&mut w, &spec, QSEC_BASE + index * QSEC_STRIDE, e.attempts);
                index += 1;
            }
            w.section(QSEC_COUNT, &bytes_of_u64s(&[index as u64]));
            w.write_atomic(path).map_err(|e| {
                std::io::Error::other(format!("failed to persist queue to {}: {e}", path.display()))
            })?;
        }
        Ok(DrainReport { finished, suspended: suspended_ids, persisted })
    }

    /// Stop the pool: finish active jobs, mark still-queued jobs as shed,
    /// and join every thread. The pool accepts nothing afterwards.
    pub fn shutdown(&self) {
        let s = &*self.shared;
        s.draining.store(true, Ordering::SeqCst);
        loop {
            let active_empty =
                s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner).is_empty();
            if active_empty {
                break;
            }
            std::thread::sleep(s.cfg.tick);
        }
        let mut pending: Vec<PendingJob> = std::mem::take(&mut *relock(&s.pending));
        pending.extend(relock(&s.parked).drain().map(|(_, p)| p));
        if !pending.is_empty() {
            for p in &pending {
                s.log_event(JournalEvent::Shed {
                    id: p.id,
                    reason: "pool shut down before admission".into(),
                });
            }
            s.notify_records(|recs| {
                for p in &pending {
                    if let Some(r) = recs.get_mut(&p.id) {
                        r.state = JobState::Shed;
                        r.wall = Some(r.submitted.elapsed());
                        r.error = Some("pool shut down before admission".into());
                    }
                }
            });
        }
        s.stop.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *relock(&self.handles));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        let s = &*self.shared;
        // Abandon outstanding work: halt active jobs so workers stop
        // touching them, then stop the threads.
        s.draining.store(true, Ordering::SeqCst);
        {
            let active = s.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            for job in active.values() {
                job.halt_with(Verdict::Cancel);
            }
        }
        s.stop.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *relock(&self.handles));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The journal event that records a recovered job's terminal state.
fn terminal_event(id: u64, state: JobState, j: &crate::journal::RecoveredJob) -> JournalEvent {
    match state {
        JobState::Completed => JournalEvent::Completed { id, file: j.result_file.clone() },
        JobState::Quarantined => {
            JournalEvent::Quarantined { id, error: j.error.clone().unwrap_or_default() }
        }
        JobState::Cancelled => JournalEvent::Cancelled { id },
        _ => JournalEvent::Shed { id, reason: j.error.clone().unwrap_or_default() },
    }
}

/// Convert a never-started pending job back into a submittable spec.
fn pending_to_spec(p: &PendingJob) -> JobSpec {
    let input = match &p.seed {
        Seed::Fresh(a) => JobInput::Fresh { elims: p.elims.clone(), a: a.clone() },
        Seed::Resume(ck) => JobInput::Resume(ck.clone()),
    };
    policy_to_spec(input, &p.policy)
}

fn suspended_to_spec(e: &SuspendedEntry) -> JobSpec {
    policy_to_spec(JobInput::Resume(e.ckpt.clone()), &e.policy)
}

fn policy_to_spec(input: JobInput, jp: &JobPolicy) -> JobSpec {
    JobSpec {
        input,
        ib: Some(jp.ib),
        qos: jp.qos,
        policy: jp.policy,
        integrity: jp.integrity,
        max_retries: jp.max_retries,
        job_retries: jp.job_retries,
        deadline: jp.deadline,
        plan: None, // injection is in-process test machinery, never persisted
        tag: jp.tag.clone(),
        dedup_key: jp.dedup_key.clone(),
    }
}

/// Append one spec's sections to a queue container at tag `base`.
fn spec_sections(w: &mut SectionWriter, spec: &JobSpec, base: u32, attempts: u32) {
    let kind = match &spec.input {
        JobInput::Fresh { .. } => 0u64,
        JobInput::Resume(_) => 1u64,
    };
    let meta = [
        kind,
        spec.qos as u64,
        spec.policy_word(),
        spec.integrity_word(),
        spec.ib.map_or(0, |ib| ib as u64),
        spec.max_retries as u64,
        spec.job_retries as u64,
        spec.deadline.map_or(u64::MAX, |d| d.as_millis() as u64),
        attempts as u64,
    ];
    w.section(base + QOFF_META, &bytes_of_u64s(&meta));
    w.section(base + QOFF_TAG, spec.tag.as_bytes());
    if let Some(k) = &spec.dedup_key {
        w.section(base + QOFF_DEDUP, k.as_bytes());
    }
    match &spec.input {
        JobInput::Fresh { elims, a } => {
            w.section(base + QOFF_ELIMS, &bytes_of_u64s(&elims_to_words(elims)));
            w.section(base + QOFF_TILES, &hqr_tile::io::tiled_to_bytes(a));
        }
        JobInput::Resume(ck) => {
            w.section(base + QOFF_CKPT, &checkpoint_to_bytes(ck));
        }
    }
}

fn spec_from_sections(r: &SectionReader, base: u32) -> Result<(JobSpec, u32), QueueFormatError> {
    let meta = u64s_of_bytes(base + QOFF_META, r.require(base + QOFF_META)?)?;
    if meta.len() != 9 {
        return Err(QueueFormatError::Inconsistent {
            message: format!("entry meta holds {} words, expected 9", meta.len()),
        });
    }
    let qos = QosClass::from_index(meta[1]).ok_or(QueueFormatError::Inconsistent {
        message: format!("unknown QoS index {}", meta[1]),
    })?;
    let policy = match meta[2] {
        0 => SchedPolicy::Fifo,
        1 => SchedPolicy::PanelFirst,
        2 => SchedPolicy::CriticalPath,
        other => {
            return Err(QueueFormatError::Inconsistent {
                message: format!("unknown policy index {other}"),
            })
        }
    };
    let integrity = match meta[3] {
        0 => IntegrityMode::Off,
        1 => IntegrityMode::Spot,
        2 => IntegrityMode::Full,
        other => {
            return Err(QueueFormatError::Inconsistent {
                message: format!("unknown integrity index {other}"),
            })
        }
    };
    let tag = String::from_utf8(r.require(base + QOFF_TAG)?.to_vec())
        .map_err(|_| QueueFormatError::Inconsistent { message: "entry tag is not UTF-8".into() })?;
    let dedup_key = match r.section(base + QOFF_DEDUP) {
        Some(bytes) => Some(String::from_utf8(bytes.to_vec()).map_err(|_| {
            QueueFormatError::Inconsistent { message: "entry dedup key is not UTF-8".into() }
        })?),
        None => None,
    };
    let input = match meta[0] {
        0 => {
            let words = u64s_of_bytes(base + QOFF_ELIMS, r.require(base + QOFF_ELIMS)?)?;
            let elims = elims_from_words(base + QOFF_ELIMS, &words).map_err(|e| {
                QueueFormatError::Inconsistent { message: format!("entry elims: {e}") }
            })?;
            let a =
                hqr_tile::io::tiled_from_bytes(base + QOFF_TILES, r.require(base + QOFF_TILES)?)?;
            JobInput::Fresh { elims, a }
        }
        1 => {
            let ck = checkpoint_from_bytes(r.require(base + QOFF_CKPT)?.to_vec())?;
            JobInput::Resume(Box::new(ck))
        }
        other => {
            return Err(QueueFormatError::Inconsistent {
                message: format!("unknown entry kind {other}"),
            })
        }
    };
    Ok((
        JobSpec {
            input,
            ib: if meta[4] == 0 { None } else { Some(meta[4] as usize) },
            qos,
            policy,
            integrity,
            max_retries: meta[5] as u32,
            job_retries: meta[6] as u32,
            deadline: if meta[7] == u64::MAX { None } else { Some(Duration::from_millis(meta[7])) },
            plan: None,
            tag,
            dedup_key,
        },
        meta[8] as u32,
    ))
}

/// Decode a queue file written by [`JobPool::drain`]: the entries a
/// restarted service should resubmit (fresh jobs with their original
/// payloads, suspended jobs as resumable checkpoints).
pub fn load_queue(path: &Path) -> Result<Vec<QueueEntry>, QueueFormatError> {
    let r = SectionReader::read(path, QUEUE_MAGIC, QUEUE_VERSION)?;
    let count = u64s_of_bytes(QSEC_COUNT, r.require(QSEC_COUNT)?)?;
    let n = *count
        .first()
        .ok_or(QueueFormatError::Inconsistent { message: "missing entry count".into() })?
        as usize;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (spec, attempts) = spec_from_sections(&r, QSEC_BASE + (i as u32) * QSEC_STRIDE)?;
        out.push(QueueEntry { spec, attempts });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn steal_pool_task(
    shared: &Shared,
    stealers: &[Stealer<(u64, u32)>],
    me: usize,
) -> Option<(u64, u32)> {
    loop {
        let mut contended = false;
        if let Some(Reverse((_, _, _, tid, rid))) = relock(&shared.ready).pop() {
            return Some((rid, tid));
        }
        let n = stealers.len();
        for off in 1..n {
            match stealers[(me + off) % n].steal() {
                Steal::Success(e) => return Some(e),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
    }
}

fn worker_loop(
    shared: &Shared,
    me: usize,
    local: &Worker<(u64, u32)>,
    stealers: &[Stealer<(u64, u32)>],
) {
    // Caught panics (injected faults, kernel bugs) are expected events on
    // this thread for the pool's whole lifetime — keep them off stderr.
    let _quiet = crate::fault::QuietPanics::engage();
    let backoff = Backoff::new();
    loop {
        let next = match local.pop() {
            Some(e) => Some(e),
            None => steal_pool_task(shared, stealers, me),
        };
        let Some((rid, tid)) = next else {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if backoff.is_completed() {
                // Same idle discipline as the engine: bounded naps once the
                // spin ladder is exhausted, with the stop flag re-checked
                // first so shutdown never pays an extra park.
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(IDLE_PARK);
            } else {
                backoff.snooze();
            }
            continue;
        };
        backoff.reset();
        let job = {
            let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            active.get(&rid).cloned()
        };
        // A missing rid means the incarnation already finalized (or was
        // retired by a retry); the queue entry is stale — skip it.
        let Some(job) = job else { continue };
        // Inflight is raised BEFORE the halt check (and the supervisor
        // halts BEFORE reading inflight, both SeqCst), so finalization can
        // never observe inflight == 0 while this worker goes on to run a
        // task: either we see `halted` and bail, or the supervisor sees
        // our increment and waits.
        job.inflight.fetch_add(1, Ordering::SeqCst);
        if !job.halted.load(Ordering::SeqCst) && !job.done[tid as usize].load(Ordering::Acquire) {
            run_job_task(shared, &job, tid, me, local);
        }
        job.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_job_task(
    shared: &Shared,
    job: &Arc<ActiveJob>,
    tid: u32,
    me: usize,
    local: &Worker<(u64, u32)>,
) {
    let t = &job.graph.tasks()[tid as usize];
    let ctx = AttemptCtx {
        store: &job.store,
        guards: job.guards.as_ref(),
        plan: job.plan.as_ref(),
        max_retries: job.max_retries,
        recovery: job.recovery,
        full_integrity: job.full_integrity,
        poisoned: false,
        me,
        halt: Some(&job.halted),
    };
    let mut wstats = FaultStats::default();
    let mut counters = WorkerCounters::default();
    // SAFETY contract of `attempt_task`: `tid` is ready (released by its
    // last predecessor) and not done, so within this job's DAG this worker
    // holds exclusive access to its read/write sets; distinct jobs never
    // share buffers at all.
    let end = attempt_task(&ctx, t, tid, &mut wstats, &mut counters, &mut |_| {});
    if wstats != FaultStats::default() {
        relock(&job.stats).merge(&wstats);
    }
    match end {
        AttemptEnd::Done { .. } => {
            job.done[tid as usize].store(true, Ordering::Release);
            // Keep the best-ranked released successor local (data reuse),
            // publish the rest on the shared QoS-major heap.
            let mut keep: Option<u32> = None;
            for &s in job.graph.successors(tid as usize) {
                if job.indeg[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Ready-frontier lookahead for paged jobs: start the
                    // successor's fault-in while other tasks run.
                    job.store.prefetch_task(&job.graph.tasks()[s as usize]);
                    match keep {
                        Some(k) if job.ranks[s as usize] < job.ranks[k as usize] => {
                            shared.push_ready(job, k);
                            keep = Some(s);
                        }
                        Some(_) => shared.push_ready(job, s),
                        None => keep = Some(s),
                    }
                }
            }
            if let Some(s) = keep {
                local.push((job.rid, s));
            }
            job.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        AttemptEnd::Fail { attempts, message } => {
            let e = if job.recovery {
                ExecError::TaskFailed { task: tid, kernel: t.kind, attempts, message }
            } else {
                ExecError::WorkerPanicked { task: tid, kernel: t.kind, worker: me, message }
            };
            job.halt_with(Verdict::Fault(e));
        }
        AttemptEnd::Sdc { attempts, slot, message } => {
            job.halt_with(Verdict::Fault(ExecError::SdcDetected {
                task: tid,
                kernel: t.kind,
                slot,
                attempts,
                message,
            }));
        }
        AttemptEnd::InputSdc { slot, message } => {
            job.halt_with(Verdict::Fault(ExecError::SdcDetected {
                task: tid,
                kernel: t.kind,
                slot,
                attempts: 0,
                message,
            }));
        }
        AttemptEnd::SpillFault { message } => {
            job.halt_with(Verdict::Fault(ExecError::SpillIo { message }));
        }
        // The job was halted between attempts (cancel/deadline/drain);
        // whoever halted it recorded the verdict. The task is not done.
        AttemptEnd::Aborted => {}
        // Pool workers are never poisoned (rejected at submission).
        AttemptEnd::Requeue => unreachable!("pool workers are never poisoned"),
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

fn supervisor_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        supervisor_tick(shared);
        std::thread::sleep(shared.cfg.tick);
    }
}

fn supervisor_tick(shared: &Shared) {
    process_cancellations(shared);
    process_suspends(shared);
    enforce_deadlines(shared);
    periodic_checkpoints(shared);
    preempt_for_qos(shared);
    finalize_jobs(shared);
    admit_jobs(shared);
}

fn process_suspends(shared: &Shared) {
    let requests: Vec<u64> = std::mem::take(&mut *relock(&shared.suspend_requests));
    for id in requests {
        // Queued? Park as-is — nothing has run, so the pending seed is
        // already the exact resumable state.
        let taken = {
            let mut pending = relock(&shared.pending);
            pending.iter().position(|p| p.id == id).map(|i| pending.remove(i))
        };
        if let Some(p) = taken {
            shared.log_event(JournalEvent::Suspended {
                id,
                reason: SuspendKind::Park.reason().into(),
            });
            relock(&shared.parked).insert(id, p);
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Suspended;
                    r.wall = Some(r.submitted.elapsed());
                    r.error = Some("suspended by request; resume with resume-job".into());
                }
            });
            continue;
        }
        // Active? Halt at the next quiescent point; conclusion parks it.
        let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(job) = active.values().find(|j| j.id == id) {
            job.halt_with(Verdict::Suspend(SuspendKind::Park));
        }
    }
}

/// Durable pools checkpoint long-running jobs at a configured cadence so
/// a crash rolls back to the last panel boundary, not to scratch. Only
/// activations that made progress are cycled (re-queuing resets the
/// clock), and deadline-carrying jobs are exempt — their wall budget is
/// per activation.
fn periodic_checkpoints(shared: &Shared) {
    let Some(d) = &shared.cfg.durability else { return };
    if d.ckpt_interval.is_zero() {
        return;
    }
    let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    for job in active.values() {
        let rem = job.remaining.load(Ordering::Acquire);
        if !job.halted.load(Ordering::SeqCst)
            && job.deadline.is_none()
            && rem > 0
            && rem < job.initial_remaining
            && job.started.elapsed() >= d.ckpt_interval
        {
            job.halt_with(Verdict::Suspend(SuspendKind::Periodic));
        }
    }
}

/// When the best admissible pending job is blocked only by lower-QoS
/// active work, suspend one victim at its next quiescent point: the
/// newest job of the lowest class, and only if suspension can actually
/// free what the candidate needs (an active slot, or enough budget
/// across all lower-QoS jobs). The victim re-queues from its checkpoint
/// and loses no retry budget.
fn preempt_for_qos(shared: &Shared) {
    if shared.draining.load(Ordering::SeqCst) {
        return;
    }
    let (cand_qos_inv, cand_fp) = {
        let pending = relock(&shared.pending);
        let now = Instant::now();
        let best = pending
            .iter()
            .filter(|p| p.not_before.is_none_or(|t| now >= t))
            .min_by_key(|p| (p.policy.qos.inverted(), p.seq));
        let Some(p) = best else { return };
        (p.policy.qos.inverted(), p.footprint)
    };
    let in_use = shared.active_footprint.load(Ordering::SeqCst);
    let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    if active.is_empty() {
        return;
    }
    let slot_blocked = shared.cfg.max_active != 0 && active.len() >= shared.cfg.max_active;
    let budget_blocked = in_use.saturating_add(cand_fp) > shared.cfg.mem_budget;
    if !slot_blocked && !budget_blocked {
        return;
    }
    let lower: Vec<&Arc<ActiveJob>> = active
        .values()
        .filter(|j| j.qos_inv > cand_qos_inv && !j.halted.load(Ordering::SeqCst))
        .collect();
    if lower.is_empty() {
        return;
    }
    if budget_blocked && !slot_blocked {
        let reclaimable: u64 = lower.iter().map(|j| j.footprint).sum();
        if in_use.saturating_sub(reclaimable).saturating_add(cand_fp) > shared.cfg.mem_budget {
            return;
        }
    }
    let victim = lower.into_iter().max_by_key(|j| (j.qos_inv, j.seq)).expect("lower is non-empty");
    victim.halt_with(Verdict::Suspend(SuspendKind::Preempt));
}

fn process_cancellations(shared: &Shared) {
    let requests: Vec<u64> = std::mem::take(&mut *relock(&shared.cancel_requests));
    if requests.is_empty() {
        return;
    }
    for id in requests {
        // Queued? Remove and mark terminal.
        let removed = {
            let mut pending = relock(&shared.pending);
            match pending.iter().position(|p| p.id == id) {
                Some(i) => {
                    pending.remove(i);
                    true
                }
                None => false,
            }
        };
        if removed {
            shared.log_event(JournalEvent::Cancelled { id });
            cleanup_ckpt(shared, id);
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Cancelled;
                    r.wall = Some(r.submitted.elapsed());
                    r.error = Some("cancelled while queued".into());
                }
            });
            continue;
        }
        // Active? Halt; finalization turns the verdict into Cancelled.
        let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(job) = active.values().find(|j| j.id == id) {
            job.halt_with(Verdict::Cancel);
        }
    }
}

fn enforce_deadlines(shared: &Shared) {
    let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    for job in active.values() {
        if let Some(d) = job.deadline {
            // A job that already finished its last task but has not been
            // finalized yet has met its deadline — don't fail it on a
            // supervisor scheduling artifact.
            if !job.halted.load(Ordering::SeqCst)
                && job.remaining.load(Ordering::Acquire) > 0
                && job.started.elapsed() > d
            {
                job.halt_with(Verdict::Deadline(d));
            }
        }
    }
}

/// Exponential backoff for job-level retries, delegating to the shared
/// [`crate::retry::RetryPolicy`] (decorrelated jitter in [0.5, 1.0] from
/// `(salt, attempts)`) — jobs that fail together (a shared fault, a mass
/// deadline miss) spread their retries out instead of re-colliding in
/// lockstep, and the job pool and the network RPC layer stay on one
/// implementation of the constants.
fn retry_backoff(cfg: &PoolConfig, attempts: u32, salt: u64) -> Duration {
    let policy = crate::retry::RetryPolicy {
        base: cfg.backoff_base,
        cap: cfg.backoff_cap,
        max_attempts: u32::MAX,
    };
    policy.backoff(attempts, salt)
}

fn finalize_jobs(shared: &Shared) {
    // Snapshot candidate rids only — holding an Arc clone here would keep
    // the strong count above 1 and wedge the ownership-recovery spin below.
    let candidates: Vec<u64> = {
        let active = shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        active
            .iter()
            .filter(|(_, j)| {
                let finished = j.remaining.load(Ordering::Acquire) == 0;
                let halted = j.halted.load(Ordering::SeqCst);
                (finished || halted) && j.inflight.load(Ordering::SeqCst) == 0
            })
            .map(|(&rid, _)| rid)
            .collect()
    };
    for rid in candidates {
        // A worker that raced us holds only a transient Arc clone (it sees
        // `halted` or an all-done bitmap and drops it within one step);
        // the unwrap spin below absorbs it.
        let Some(arc) =
            shared.active.write().unwrap_or_else(std::sync::PoisonError::into_inner).remove(&rid)
        else {
            continue;
        };
        shared.active_footprint.fetch_sub(arc.footprint, Ordering::SeqCst);
        let mut arc = arc;
        let job = loop {
            match Arc::try_unwrap(arc) {
                Ok(job) => break job,
                Err(back) => {
                    arc = back;
                    // A worker still holds a transient clone (it will drop
                    // it within its current scheduling step).
                    std::thread::yield_now();
                }
            }
        };
        conclude_job(shared, job);
    }
}

/// Turn one quiesced, owned job into a terminal record, a retry, or a
/// suspension.
fn conclude_job(shared: &Shared, mut job: ActiveJob) {
    // An out-of-core job is hollow at quiescence: spilled tiles live only
    // in its spill file. Fault everything back in before any verdict
    // branch clones or returns `a`/`factors`. When the fault-in itself
    // fails, a clean or suspending verdict must not survive — the state
    // it would persist is zero-filled where the read failed.
    let unpage_err = {
        let ActiveJob { store, a, factors, .. } = &mut job;
        store.unpage(a, factors).err()
    };
    let verdict = relock(&job.verdict).take();
    let verdict = match (verdict, unpage_err) {
        (None, Some(message)) | (Some(Verdict::Suspend(_)), Some(message)) => {
            Some(Verdict::Fault(ExecError::SpillIo { message }))
        }
        (v, _) => v,
    };
    let stats = *relock(&job.stats);
    let tasks_total = job.graph.tasks().len();
    let tasks_done = tasks_total - job.remaining.load(Ordering::Acquire);
    let id = job.id;
    match verdict {
        None => {
            // Clean completion.
            debug_assert_eq!(tasks_done, tasks_total);
            let ActiveJob { a, factors, .. } = job;
            let result = JobResult { a, factors };
            // Durable pools persist R/V/T *before* journaling the
            // completion, so a journaled Completed always implies a
            // retrievable result.
            if let Some(store) = &shared.results {
                let bytes = result_to_bytes(id, &result);
                match store.put(id, &bytes) {
                    Ok(file) => {
                        for pruned in store.prune_over_cap() {
                            shared.log_event(JournalEvent::ResultPruned { id: pruned });
                        }
                        shared.log_event(JournalEvent::Completed { id, file: Some(file) });
                    }
                    Err(e) => {
                        eprintln!("hqr-pool: persisting result of job-{id} failed: {e}");
                        shared.log_event(JournalEvent::Completed { id, file: None });
                    }
                }
            } else {
                shared.log_event(JournalEvent::Completed { id, file: None });
            }
            cleanup_ckpt(shared, id);
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Completed;
                    r.stats.merge(&stats);
                    r.tasks_done = tasks_done;
                    r.wall = Some(r.submitted.elapsed());
                    r.outcome = Some(JobOutcome {
                        id: JobId(id),
                        state: JobState::Completed,
                        attempts: r.attempts,
                        error: None,
                        stats: r.stats,
                        result: Some(result),
                        wall: r.wall.unwrap_or_default(),
                    });
                }
            });
        }
        Some(Verdict::Cancel) => {
            shared.log_event(JournalEvent::Cancelled { id });
            cleanup_ckpt(shared, id);
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Cancelled;
                    r.stats.merge(&stats);
                    r.tasks_done = tasks_done;
                    r.wall = Some(r.submitted.elapsed());
                    r.error = Some("cancelled while running".into());
                }
            });
        }
        Some(Verdict::Suspend(kind)) => {
            suspend_job(shared, job, stats, tasks_done, kind);
        }
        Some(v) => {
            let message = match &v {
                Verdict::Fault(e) => e.to_string(),
                Verdict::Deadline(d) => format!("deadline of {d:?} exceeded"),
                _ => unreachable!(),
            };
            retry_or_quarantine(shared, job, stats, tasks_done, message);
        }
    }
}

fn suspend_job(
    shared: &Shared,
    job: ActiveJob,
    stats: FaultStats,
    tasks_done: usize,
    kind: SuspendKind,
) {
    let id = job.id;
    // At quiescence the done set is exactly the completed tasks, and a task
    // only completes after all its predecessors did — so the set is closed
    // under predecessors, which is precisely what `validate_against`
    // requires of a resumable checkpoint.
    let completed: Vec<bool> = job.done.iter().map(|d| d.load(Ordering::Acquire)).collect();
    let ckpt = Checkpoint {
        mt: job.graph.mt(),
        nt: job.graph.nt(),
        b: job.graph.b(),
        ib: job.ib,
        fingerprint: graph_fingerprint(&job.graph, job.ib),
        input_seed: 0,
        elims: job.elims.clone(),
        completed,
        a: job.a.clone(),
        factors: job.factors.clone(),
    };
    let attempts = {
        let recs = relock(&shared.records);
        recs.get(&id).map_or(0, |r| r.attempts)
    };
    // Durable pools write the checkpoint file first: once Checkpointed
    // is journaled, a crash resumes from this panel frontier.
    if let Some(d) = &shared.cfg.durability {
        let file = format!("{CKPT_DIR}/job-{id}.ckpt");
        match write_checkpoint(&d.state_dir.join(&file), &ckpt) {
            Ok(()) => shared.log_event(JournalEvent::Checkpointed {
                id,
                tasks_done: tasks_done as u64,
                file,
            }),
            Err(e) => eprintln!("hqr-pool: checkpointing job-{id} failed: {e}"),
        }
    }
    shared.log_event(JournalEvent::Suspended { id, reason: kind.reason().into() });
    let ActiveJob { seq, elims, origin_policy, graph, footprint, .. } = job;
    let requeued = PendingJob {
        id,
        seq,
        policy: origin_policy,
        elims,
        seed: Seed::Resume(Box::new(ckpt)),
        graph,
        footprint,
        attempts,
        not_before: None,
        count_attempt: false,
    };
    match kind {
        SuspendKind::Drain => {
            // The legacy persisted-queue path wants policy + checkpoint.
            let Seed::Resume(ckpt) = requeued.seed else { unreachable!() };
            relock(&shared.suspended).push(SuspendedEntry {
                policy: requeued.policy,
                attempts,
                ckpt,
            });
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Suspended;
                    r.stats.merge(&stats);
                    r.tasks_done = tasks_done;
                    r.wall = Some(r.submitted.elapsed());
                    r.error = Some("suspended by drain; state checkpointed".into());
                }
            });
        }
        SuspendKind::Park => {
            relock(&shared.parked).insert(id, requeued);
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Suspended;
                    r.stats.merge(&stats);
                    r.tasks_done = tasks_done;
                    r.wall = Some(r.submitted.elapsed());
                    r.error = Some("suspended by request; resume with resume-job".into());
                }
            });
        }
        SuspendKind::Preempt | SuspendKind::Periodic => {
            // Straight back into the queue: the same attempt continues
            // from the checkpointed frontier when room frees up.
            relock(&shared.pending).push(requeued);
            shared.notify_records(|recs| {
                if let Some(r) = recs.get_mut(&id) {
                    r.state = JobState::Queued;
                    r.stats.merge(&stats);
                    r.tasks_done = tasks_done;
                    r.error = None;
                }
            });
        }
    }
}

fn retry_or_quarantine(
    shared: &Shared,
    job: ActiveJob,
    stats: FaultStats,
    tasks_done: usize,
    message: String,
) {
    let id = job.id;
    let seq = job.seq;
    let attempts = {
        let recs = relock(&shared.records);
        recs.get(&id).map_or(1, |r| r.attempts)
    };
    // `attempts` counts runs started; the budget allows `job_retries`
    // re-runs on top of the first.
    let can_retry = attempts <= job.origin_policy.job_retries && job.origin_seed.is_some();
    if can_retry {
        shared.log_event(JournalEvent::Failed { id, attempts, error: message.clone() });
        let not_before = Instant::now() + retry_backoff(&shared.cfg, attempts, id);
        let ActiveJob { origin_policy, origin_seed, elims, graph, footprint, .. } = job;
        relock(&shared.pending).push(PendingJob {
            id,
            seq,
            policy: origin_policy,
            elims,
            seed: origin_seed.expect("checked above"),
            graph,
            footprint,
            attempts,
            not_before: Some(not_before),
            count_attempt: true,
        });
        shared.notify_records(|recs| {
            if let Some(r) = recs.get_mut(&id) {
                r.state = JobState::Backoff;
                r.stats.merge(&stats);
                r.tasks_done = 0;
                r.error = Some(message);
            }
        });
    } else {
        shared.log_event(JournalEvent::Quarantined { id, error: message.clone() });
        cleanup_ckpt(shared, id);
        shared.notify_records(|recs| {
            if let Some(r) = recs.get_mut(&id) {
                r.state = JobState::Quarantined;
                r.stats.merge(&stats);
                r.tasks_done = tasks_done;
                r.wall = Some(r.submitted.elapsed());
                r.error = Some(message);
            }
        });
    }
}

fn admit_jobs(shared: &Shared) {
    if shared.draining.load(Ordering::SeqCst) {
        return;
    }
    loop {
        let admitted = {
            let mut pending = relock(&shared.pending);
            if pending.is_empty() {
                break;
            }
            let now = Instant::now();
            let budget = shared.cfg.mem_budget;
            let in_use = shared.active_footprint.load(Ordering::SeqCst);
            let active_count = {
                let active =
                    shared.active.read().unwrap_or_else(std::sync::PoisonError::into_inner);
                active.len()
            };
            if shared.cfg.max_active != 0 && active_count >= shared.cfg.max_active {
                break;
            }
            // Highest QoS first, FCFS within a class; best-fit skip-ahead
            // past jobs that don't currently fit the budget or are waiting
            // out a retry backoff.
            let mut order: Vec<usize> = (0..pending.len()).collect();
            order.sort_by_key(|&i| (pending[i].policy.qos.inverted(), pending[i].seq));
            let pick = order.into_iter().find(|&i| {
                let p = &pending[i];
                let gated = p.not_before.is_some_and(|t| now < t);
                let fits = in_use.saturating_add(p.footprint) <= budget || active_count == 0;
                !gated && fits
            });
            pick.map(|i| {
                let p = pending.remove(i);
                // The escape hatch above admits an over-budget job when
                // the pool is otherwise idle (so one huge job cannot
                // wedge the queue forever). That bypass must be visible,
                // not silent: journal it and warn.
                let over = in_use.saturating_add(p.footprint) > budget;
                (p, over)
            })
        };
        let Some((p, over_budget)) = admitted else { break };
        if over_budget {
            eprintln!(
                "hqr-pool: job {} admitted over budget (need {} bytes, budget {}): pool was idle",
                p.id, p.footprint, shared.cfg.mem_budget
            );
            shared.log_event(JournalEvent::OverBudgetAdmitted {
                id: p.id,
                need: p.footprint,
                budget: shared.cfg.mem_budget,
            });
        }
        activate_job(shared, p);
    }
}

fn activate_job(shared: &Shared, p: PendingJob) {
    let PendingJob {
        id,
        seq,
        policy: jp,
        elims,
        seed,
        graph,
        footprint,
        attempts,
        count_attempt,
        ..
    } = p;
    let n = graph.tasks().len();
    let retain = attempts < jp.job_retries;
    // Build the working state from the seed, retaining a pristine copy
    // when the job may be retried again later.
    let (mut a, mut factors, completed, seed_back): (
        TiledMatrix,
        TFactors,
        Vec<bool>,
        Option<Seed>,
    ) = match seed {
        Seed::Fresh(m) => {
            let back = retain.then(|| Seed::Fresh(m.clone()));
            (m, TFactors::allocate_for(&graph), vec![false; n], back)
        }
        Seed::Resume(ck) => {
            let back = retain.then(|| Seed::Resume(ck.clone()));
            let Checkpoint { a, factors, completed, .. } = *ck;
            (a, factors, completed, back)
        }
    };
    // A job whose working set outgrows the resident budget runs
    // out-of-core: tiles page against a spill file under the state
    // directory (or the OS temp dir on non-durable pools). Spill-store
    // setup failure degrades to fully-resident — the job was already
    // admitted, so availability beats the memory cap here.
    let ws = working_set_bytes(&graph);
    let store = match shared.cfg.resident_budget.filter(|&rb| rb < ws) {
        Some(rb) => {
            let spill_dir = shared.cfg.durability.as_ref().map(|d| d.state_dir.join("spill"));
            match TileStore::paged_with_ib(&mut a, &mut factors, jp.ib, rb, spill_dir.as_deref()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!(
                        "hqr-pool: job {id}: spill store unavailable ({e}); running resident"
                    );
                    TileStore::with_ib(&mut a, &mut factors, jp.ib)
                }
            }
        }
        None => TileStore::with_ib(&mut a, &mut factors, jp.ib),
    };
    let guards = jp.integrity.is_on().then(|| GuardStore::new(graph.mt(), graph.nt()));
    let ranks = sched::priorities(&graph, jp.policy);
    let mut indeg0: Vec<u32> = graph.in_degrees().to_vec();
    for (t, &done) in completed.iter().enumerate() {
        if done {
            for &s in graph.successors(t) {
                indeg0[s as usize] -= 1;
            }
        }
    }
    let remaining = completed.iter().filter(|&&d| !d).count();
    let recovery = jp.max_retries > 0 || jp.plan.is_some();
    let rid = shared.next_rid.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(ActiveJob {
        rid,
        id,
        seq,
        qos_inv: jp.qos.inverted(),
        ranks,
        store,
        guards,
        plan: jp.plan.clone(),
        max_retries: jp.max_retries,
        recovery,
        full_integrity: jp.integrity == IntegrityMode::Full,
        indeg: indeg0.iter().map(|&d| AtomicU32::new(d)).collect(),
        done: completed.iter().map(|&d| AtomicBool::new(d)).collect(),
        remaining: AtomicUsize::new(remaining),
        initial_remaining: remaining,
        inflight: AtomicUsize::new(0),
        halted: AtomicBool::new(false),
        verdict: Mutex::new(None),
        stats: Mutex::new(FaultStats::default()),
        started: Instant::now(),
        deadline: jp.deadline,
        footprint,
        ib: jp.ib,
        elims,
        origin_policy: jp,
        origin_seed: seed_back,
        graph,
        a,
        factors,
    });
    shared.active_footprint.fetch_add(footprint, Ordering::SeqCst);
    {
        let mut active = shared.active.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        active.insert(rid, Arc::clone(&job));
    }
    let attempt = shared.notify_records(|recs| match recs.get_mut(&id) {
        Some(r) => {
            r.state = JobState::Running;
            if count_attempt {
                r.attempts += 1;
            }
            r.attempts
        }
        None => attempts,
    });
    shared.log_event(JournalEvent::Started { id, attempt });
    // Publish the initial frontier.
    for tid in 0..n {
        if job.indeg[tid].load(Ordering::Relaxed) == 0 && !job.done[tid].load(Ordering::Relaxed) {
            shared.push_ready(&job, tid as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_ordering_and_parsing() {
        assert!(QosClass::Interactive > QosClass::Normal);
        assert!(QosClass::Normal > QosClass::Batch);
        for q in QosClass::ALL {
            assert_eq!(QosClass::parse(q.name()), Some(q));
        }
        assert_eq!(QosClass::parse("platinum"), None);
        assert_eq!(QosClass::Interactive.inverted(), 0);
        assert_eq!(QosClass::Batch.inverted(), 2);
    }

    #[test]
    fn job_state_terminality() {
        for s in [JobState::Queued, JobState::Running, JobState::Backoff] {
            assert!(!s.is_terminal(), "{s}");
            assert_eq!(JobState::parse(s.name()), Some(s));
        }
        for s in [
            JobState::Completed,
            JobState::Cancelled,
            JobState::Shed,
            JobState::Quarantined,
            JobState::Suspended,
        ] {
            assert!(s.is_terminal(), "{s}");
            assert_eq!(JobState::parse(s.name()), Some(s));
        }
    }

    #[test]
    fn retry_backoff_doubles_caps_and_jitters() {
        let cfg = PoolConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(65),
            ..Default::default()
        };
        // Deterministic per (attempt, salt).
        assert_eq!(retry_backoff(&cfg, 1, 7), retry_backoff(&cfg, 1, 7));
        // Jitter keeps each delay inside [raw/2, raw] of the capped
        // exponential ladder.
        for (attempts, raw_ms) in [(1u32, 10u64), (2, 20), (3, 40), (4, 65), (30, 65)] {
            let raw = Duration::from_millis(raw_ms);
            for salt in 0..32u64 {
                let d = retry_backoff(&cfg, attempts, salt);
                assert!(d <= raw, "attempt {attempts} salt {salt}: {d:?} > {raw:?}");
                assert!(d >= raw / 2, "attempt {attempts} salt {salt}: {d:?} < {:?}", raw / 2);
            }
        }
        // Co-failing jobs decorrelate: salts do not all share one delay.
        let d0 = retry_backoff(&cfg, 1, 0);
        assert!((1..32).any(|s| retry_backoff(&cfg, 1, s) != d0));
    }

    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut elims = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                elims.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        elims
    }

    #[test]
    fn job_spec_roundtrips_dedup_key() {
        let a = TiledMatrix::zeros(2, 1, 4);
        let elims = flat_elims(2, 1);
        let mut spec = JobSpec::fresh(elims, a);
        spec.dedup_key = Some("tenant-42/run-7".into());
        let decoded = JobSpec::from_bytes(spec.to_bytes()).expect("roundtrip");
        assert_eq!(decoded.dedup_key.as_deref(), Some("tenant-42/run-7"));
        spec.dedup_key = None;
        let decoded = JobSpec::from_bytes(spec.to_bytes()).expect("roundtrip");
        assert_eq!(decoded.dedup_key, None);
    }

    /// The idle-pool escape hatch (`active_count == 0` in `admit_jobs`)
    /// exists so one oversized job cannot wedge the queue forever — but
    /// firing it must be loud: journaled as `OverBudgetAdmitted` and the
    /// job still driven to completion.
    #[test]
    fn idle_over_budget_admission_is_journaled_not_silent() {
        let dir = std::env::temp_dir().join(format!("hqr_pool_escape_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = JobPool::new(PoolConfig {
            nthreads: 2,
            mem_budget: 1,
            durability: Some(DurabilityConfig::at(&dir)),
            ..Default::default()
        });
        // Regular submission refuses anything over the 1-byte budget, so
        // plant the pending job directly — the shape a stale in-use
        // reading leaves behind when admission races finalization.
        let elims = flat_elims(2, 2);
        let a = TiledMatrix::random(2, 2, 4, 3);
        let graph = TaskGraph::build(2, 2, 4, &elims);
        let footprint = working_set_bytes(&graph);
        assert!(footprint > pool.shared.cfg.mem_budget);
        let id = 17u64;
        relock(&pool.shared.records).insert(
            id,
            JobRecord {
                state: JobState::Queued,
                qos: QosClass::Normal,
                tag: String::new(),
                attempts: 0,
                tasks_total: graph.tasks().len(),
                tasks_done: 0,
                error: None,
                stats: FaultStats::default(),
                submitted: Instant::now(),
                wall: None,
                outcome: None,
            },
        );
        relock(&pool.shared.pending).push(PendingJob {
            id,
            seq: 1,
            policy: JobPolicy {
                ib: 4,
                qos: QosClass::Normal,
                policy: SchedPolicy::Fifo,
                integrity: IntegrityMode::Off,
                max_retries: 0,
                job_retries: 0,
                deadline: None,
                plan: None,
                tag: String::new(),
                dedup_key: None,
            },
            elims,
            seed: Seed::Fresh(a),
            graph,
            footprint,
            attempts: 0,
            not_before: None,
            count_attempt: true,
        });
        let out = pool.wait(JobId(id)).expect("planted job reaches a terminal state");
        assert_eq!(out.state, JobState::Completed, "{:?}", out.error);
        pool.shutdown();
        let events = Journal::read(&dir.join(JOURNAL_FILE)).expect("read journal");
        let admitted = events.iter().any(|e| {
            matches!(
                e,
                JournalEvent::OverBudgetAdmitted { id: 17, need, budget: 1 }
                    if *need == footprint
            )
        });
        assert!(admitted, "escape hatch must journal OverBudgetAdmitted: {events:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
