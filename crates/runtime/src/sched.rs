//! Scheduling policies shared by the real work-stealing executor and the
//! `hqr-sim` discrete-event simulator.
//!
//! The paper attributes much of HQR's win to scheduling: DAGuE executes
//! the elimination-list DAG with critical-path-aware priorities plus a
//! data-reuse heuristic (§IV-C). Both backends rank ready tasks with the
//! same static priority keys computed here, so a policy comparison on one
//! backend transfers to the other — and a parity test can assert they
//! agree task-by-task.

use crate::analysis::paths_to_exit;
use crate::graph::TaskGraph;
use crate::task::Task;

/// Which ready task an idle core picks — the scheduler's priority
/// function, which the paper leaves as "a very promising but technically
/// challenging direction" for study. Shared by
/// [`crate::exec::try_execute_with`] (via [`crate::ExecOptions::policy`])
/// and the simulator's ready queues; the `ablations` and `policies`
/// benches compare them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Panel-first, factor kernels before updates, left-to-right trailing
    /// columns — the DAGuE-style default (§IV-C).
    PanelFirst,
    /// Plain arrival order (no priorities). The default for the real
    /// executor, matching its historical behavior.
    #[default]
    Fifo,
    /// Longest weighted path to the DAG exit first (critical-path
    /// scheduling, the static upward rank of list scheduling).
    CriticalPath,
}

impl SchedPolicy {
    /// Every policy, in comparison order (FIFO is the baseline).
    pub const ALL: [SchedPolicy; 3] =
        [SchedPolicy::Fifo, SchedPolicy::PanelFirst, SchedPolicy::CriticalPath];

    /// Parse a CLI spelling: `fifo`, `panel`/`panel-first`, or
    /// `cp`/`critical-path`.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "panel" | "panel-first" => Some(SchedPolicy::PanelFirst),
            "cp" | "critical-path" => Some(SchedPolicy::CriticalPath),
            _ => None,
        }
    }

    /// Canonical short name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::PanelFirst => "panel",
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::CriticalPath => "cp",
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Panel-first ready-queue key: lower sorts first. Orders by panel, then
/// factor kernels before updates, then left-to-right trailing columns,
/// then row.
pub fn panel_first_key(t: &Task) -> u64 {
    let upd = if t.kind.is_factor() { 0u64 } else { 1u64 };
    ((t.k as u64) << 48) | (upd << 40) | ((t.j as u64) << 20) | t.i as u64
}

/// Static priority key per task under `policy`: **lower sorts first**
/// (both backends use min-ordered ready queues). For `CriticalPath` the
/// key is `u64::MAX - upward_rank`, so the task with the longest weighted
/// path to the DAG exit runs first.
pub fn priorities(graph: &TaskGraph, policy: SchedPolicy) -> Vec<u64> {
    let tasks = graph.tasks();
    match policy {
        SchedPolicy::Fifo => (0..tasks.len() as u64).collect(),
        SchedPolicy::PanelFirst => tasks.iter().map(panel_first_key).collect(),
        SchedPolicy::CriticalPath => {
            paths_to_exit(graph).into_iter().map(|d| u64::MAX - d).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::ElimOp;

    fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
        let mut v = Vec::new();
        for k in 0..mt.min(nt) {
            for i in (k + 1)..mt {
                v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        v
    }

    #[test]
    fn parse_round_trips_every_policy() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(SchedPolicy::parse("panel-first"), Some(SchedPolicy::PanelFirst));
        assert_eq!(SchedPolicy::parse("critical-path"), Some(SchedPolicy::CriticalPath));
        assert_eq!(SchedPolicy::parse("lifo"), None);
    }

    #[test]
    fn default_policy_is_fifo() {
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }

    #[test]
    fn fifo_keys_are_program_order() {
        let g = TaskGraph::build(4, 2, 2, &flat_elims(4, 2));
        let p = priorities(&g, SchedPolicy::Fifo);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn panel_first_ranks_factors_before_updates_within_a_panel() {
        let g = TaskGraph::build(4, 2, 2, &flat_elims(4, 2));
        let p = priorities(&g, SchedPolicy::PanelFirst);
        let tasks = g.tasks();
        for (a, ta) in tasks.iter().enumerate() {
            for (b, tb) in tasks.iter().enumerate() {
                if ta.k == tb.k && ta.kind.is_factor() && !tb.kind.is_factor() {
                    assert!(p[a] < p[b], "factor {a} must outrank update {b} in panel {}", ta.k);
                }
            }
        }
    }

    #[test]
    fn critical_path_keys_are_monotone_along_edges() {
        // A task's key must sort strictly before every successor's: its
        // upward rank exceeds theirs by at least its own weight.
        let g = TaskGraph::build(6, 3, 2, &flat_elims(6, 3));
        let p = priorities(&g, SchedPolicy::CriticalPath);
        for t in 0..g.tasks().len() {
            for &s in g.successors(t) {
                assert!(p[t] < p[s as usize], "task {t} must outrank successor {s}");
            }
        }
    }

    #[test]
    fn critical_path_top_key_is_on_the_entry_of_the_longest_chain() {
        let g = TaskGraph::build(6, 1, 2, &flat_elims(6, 1));
        let p = priorities(&g, SchedPolicy::CriticalPath);
        // Single panel, flat tree: task 0 (the GEQRT) heads the only chain.
        assert!(p.iter().all(|&k| k >= p[0]));
    }
}
