//! The elimination operation — the unit in which tile QR algorithms are
//! specified (§II: "the algorithm is entirely characterized by its
//! elimination list").

/// One elimination `elim(i, killer(i,k), k)`: tile `(victim, k)` is zeroed
/// out by row `killer` within panel `k`.
///
/// `ts` selects the kernel family of Algorithm 2: `true` uses TS kernels
/// (TSQRT/TSMQR — the victim is a square tile), `false` uses TT kernels
/// (TTQRT/TTMQR — the victim has already been triangularized).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElimOp {
    /// Panel index k.
    pub k: u32,
    /// Row being zeroed out in column k.
    pub victim: u32,
    /// Row doing the killing (a triangle).
    pub killer: u32,
    /// TS kernels if true, TT kernels otherwise.
    pub ts: bool,
}

impl ElimOp {
    /// Convenience constructor.
    pub fn new(k: u32, victim: u32, killer: u32, ts: bool) -> Self {
        Self { k, victim, killer, ts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_roundtrip() {
        let e = ElimOp::new(2, 7, 3, true);
        assert_eq!(e.k, 2);
        assert_eq!(e.victim, 7);
        assert_eq!(e.killer, 3);
        assert!(e.ts);
    }
}
