//! Figure 7: influence of the low-level tree and the domino (coupling
//! level) optimization on M × 4480 matrices; a = 4, high-level tree set to
//! FIBONACCI, all four low-level trees, domino on/off.

use hqr::prelude::*;
use hqr_bench::{m_sweep, print_header, run_point, B, GRID_P, GRID_Q};
use hqr_tile::ProcessGrid;

fn main() {
    println!("# Figure 7: low-level tree x domino optimization");
    println!("# matrix: M x 4480, b = 280, grid 15x4, a = 4, high = fibonacci");
    print_header("Figure 7");
    let grid = ProcessGrid::new(GRID_P, GRID_Q);
    let n = 4480;
    let nt = n / B;
    // The paper starts this figure at M = 17920.
    for m in m_sweep().into_iter().filter(|&m| m >= 17920) {
        let mt = m / B;
        for domino in [false, true] {
            for low in TreeKind::ALL {
                let cfg = HqrConfig::new(GRID_P, GRID_Q)
                    .with_a(4)
                    .with_low(low)
                    .with_high(TreeKind::Fibonacci)
                    .with_domino(domino);
                let setup = hqr::baselines::hqr(mt, nt, grid, cfg);
                let label =
                    format!("{} domino, low={}", if domino { "w/ " } else { "w/o" }, low.name());
                run_point(&setup, &label, m, n);
            }
        }
    }
}
