//! Figure 8: HQR versus ScaLAPACK, [BBD+10] and [SLHD10] on M × 4480
//! matrices (N fixed, M varies from square to tall-and-skinny).
//!
//! Paper anchors (§V-C / conclusion): at the tall-skinny end HQR reaches
//! 57.5% of peak (2505 GFlop/s) vs 43.5% [SLHD10] (1.3x), 18.3% [BBD+10]
//! (3.1x) and 6.4% ScaLAPACK (9.0x).

use hqr::baselines::{bbd10, hqr_tall_skinny, slhd10};
use hqr_bench::{m_sweep, platform, print_header, run_point, B, GRID_P, GRID_Q};
use hqr_sim::scalapack::ScalapackModel;
use hqr_tile::ProcessGrid;

fn main() {
    println!("# Figure 8: algorithm comparison on M x 4480 (b = 280, 60 nodes)");
    print_header("Figure 8");
    let grid = ProcessGrid::new(GRID_P, GRID_Q);
    let n = 4480;
    let nt = n / B;
    let p = platform();
    let scalapack = ScalapackModel::default();
    for m in m_sweep() {
        let mt = m / B;
        run_point(&hqr_tall_skinny(mt, nt, grid), "HQR (fib/fib, a=4, domino)", m, n);
        run_point(&bbd10(mt, nt, grid), "[BBD+10] flat tree", m, n);
        run_point(&slhd10(mt, nt, GRID_P * GRID_Q), "[SLHD10] 1D block + binary", m, n);
        let r = scalapack.run(m, n, GRID_P, GRID_Q, &p);
        println!(
            "| {m:>7} | {n:>6} | {:<34} | {:>8.1} | {:>5.1}% | {:>9} |",
            "ScaLAPACK (model)",
            r.gflops,
            100.0 * r.efficiency,
            "-"
        );
    }
}
