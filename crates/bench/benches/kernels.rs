//! Criterion micro-benchmarks of the sequential tile kernels (§V-A):
//! measures the TS-vs-TT rate gap on *this* machine ("the best performance
//! for running the dTSMQR operation in a single core has been measured at
//! 7.21 GFlop/s ... dTTMQR ... 6.28 GFlop/s").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hqr_kernels::blocked::{tsmqr_ib, tsqrt_ib};
use hqr_kernels::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr, KernelKind, Trans};
use hqr_tile::DenseMatrix;

fn tile(b: usize, seed: u64) -> Vec<f64> {
    DenseMatrix::random(b, b, seed).data().to_vec()
}

fn upper(b: usize, a: &[f64]) -> Vec<f64> {
    let mut u = vec![0.0; b * b];
    for j in 0..b {
        for i in 0..=j {
            u[i + j * b] = a[i + j * b];
        }
    }
    u
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile-kernels");
    for &b in &[64usize, 128, 200] {
        // Pre-factored inputs for the update kernels.
        let mut vts = upper(b, &tile(b, 1));
        let mut v2ts = tile(b, 2);
        let mut tts = vec![0.0; b * b];
        tsqrt(b, &mut vts, &mut v2ts, &mut tts);
        let mut vtt = upper(b, &tile(b, 3));
        let mut v2tt = upper(b, &tile(b, 4));
        let mut ttt = vec![0.0; b * b];
        ttqrt(b, &mut vtt, &mut v2tt, &mut ttt);
        let mut vge = tile(b, 5);
        let mut tge = vec![0.0; b * b];
        geqrt(b, &mut vge, &mut tge);

        g.throughput(Throughput::Elements(KernelKind::Tsmqr.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("tsmqr", b), &b, |bench, &b| {
            let mut c1 = tile(b, 6);
            let mut c2 = tile(b, 7);
            bench.iter(|| tsmqr(b, &v2ts, &tts, &mut c1, &mut c2, Trans::Trans));
        });

        g.throughput(Throughput::Elements(KernelKind::Ttmqr.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("ttmqr", b), &b, |bench, &b| {
            let mut c1 = tile(b, 8);
            let mut c2 = tile(b, 9);
            bench.iter(|| ttmqr(b, &v2tt, &ttt, &mut c1, &mut c2, Trans::Trans));
        });

        g.throughput(Throughput::Elements(KernelKind::Unmqr.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("unmqr", b), &b, |bench, &b| {
            let mut c1 = tile(b, 10);
            bench.iter(|| unmqr(b, &vge, &tge, &mut c1, Trans::Trans));
        });

        g.throughput(Throughput::Elements(KernelKind::Geqrt.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("geqrt", b), &b, |bench, &b| {
            let a0 = tile(b, 11);
            bench.iter_batched(
                || (a0.clone(), vec![0.0; b * b]),
                |(mut a, mut t)| geqrt(b, &mut a, &mut t),
                criterion::BatchSize::SmallInput,
            );
        });

        g.throughput(Throughput::Elements(KernelKind::Tsqrt.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("tsqrt", b), &b, |bench, &b| {
            let a1 = upper(b, &tile(b, 12));
            let a2 = tile(b, 13);
            bench.iter_batched(
                || (a1.clone(), a2.clone(), vec![0.0; b * b]),
                |(mut a1, mut a2, mut t)| tsqrt(b, &mut a1, &mut a2, &mut t),
                criterion::BatchSize::SmallInput,
            );
        });

        g.throughput(Throughput::Elements(KernelKind::Ttqrt.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("ttqrt", b), &b, |bench, &b| {
            let a1 = upper(b, &tile(b, 14));
            let a2 = upper(b, &tile(b, 15));
            bench.iter_batched(
                || (a1.clone(), a2.clone(), vec![0.0; b * b]),
                |(mut a1, mut a2, mut t)| ttqrt(b, &mut a1, &mut a2, &mut t),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();

    // Inner-block-size sweep: the PLASMA IB trade-off on this host.
    let mut g = c.benchmark_group("inner-blocking");
    let b = 128usize;
    for ib in [8usize, 32, 64, 128] {
        let mut a1 = upper(b, &tile(b, 21));
        let mut v2 = tile(b, 22);
        let mut t = vec![0.0; b * b];
        tsqrt_ib(b, ib, &mut a1, &mut v2, &mut t);
        g.throughput(Throughput::Elements(KernelKind::Tsmqr.flops(b) as u64));
        g.bench_with_input(BenchmarkId::new("tsmqr_ib", ib), &ib, |bench, &ib| {
            let mut c1 = tile(b, 23);
            let mut c2 = tile(b, 24);
            bench.iter(|| tsmqr_ib(b, ib, &v2, &t, &mut c1, &mut c2, Trans::Trans));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(benches);
