//! Ablation studies for the design choices DESIGN.md calls out, beyond the
//! paper's own figures:
//!
//! 1. **scheduler priority** — the paper's future work ("compute critical
//!    paths and assess priorities"): panel-first (DAGuE-style) vs FIFO vs
//!    critical-path list scheduling;
//! 2. **process-grid shape** — §V-A: "More tuning could be done ... with
//!    respect to ... the process grid shape parameters": all p×q shapes of
//!    the 60 nodes;
//! 3. **tile size b** — §V-A: "b directly influences at least two key
//!    performance metrics, namely the number of messages sent and the
//!    granularity of the algorithm".

use hqr::baselines;
use hqr::prelude::*;
use hqr_bench::{platform, quick, B};
use hqr_runtime::TaskGraph;
use hqr_sim::{simulate_with_policy, Platform, SchedPolicy};
use hqr_tile::ProcessGrid;

fn grid_shapes() -> Vec<(usize, usize)> {
    if quick() {
        vec![(60, 1), (15, 4), (4, 15)]
    } else {
        vec![
            (60, 1),
            (30, 2),
            (20, 3),
            (15, 4),
            (12, 5),
            (10, 6),
            (6, 10),
            (5, 12),
            (4, 15),
            (2, 30),
            (1, 60),
        ]
    }
}

fn main() {
    let p = platform();

    println!("# Ablation 1: scheduling policy (HQR, 15x4 grid, b = 280)");
    println!("| matrix | policy | GFlop/s | % peak |");
    println!("|---|---|---|---|");
    for (mt, nt, tag) in
        [(1024usize, 16usize, "tall-skinny 286720x4480"), (240, 240, "square 67200x67200")]
    {
        let setup = if mt > nt {
            baselines::hqr_tall_skinny(mt, nt, ProcessGrid::new(15, 4))
        } else {
            baselines::hqr_square(mt, nt, ProcessGrid::new(15, 4))
        };
        let g = TaskGraph::build(mt, nt, B, &setup.elims.to_ops());
        for policy in [SchedPolicy::PanelFirst, SchedPolicy::Fifo, SchedPolicy::CriticalPath] {
            let r = simulate_with_policy(&g, &setup.layout, &p, policy);
            println!("| {tag} | {policy:?} | {:.1} | {:.1}% |", r.gflops, 100.0 * r.efficiency);
        }
    }

    println!("\n# Ablation 2: virtual/process grid shape (60 nodes, b = 280)");
    println!("| matrix | grid p x q | GFlop/s | % peak | messages |");
    println!("|---|---|---|---|---|");
    for (mt, nt, tag) in [(1024usize, 16usize, "tall-skinny"), (240, 240, "square")] {
        for (gp, gq) in grid_shapes() {
            let grid = ProcessGrid::new(gp, gq);
            let setup = if mt > nt {
                baselines::hqr_tall_skinny(mt, nt, grid)
            } else {
                baselines::hqr_square(mt, nt, grid)
            };
            let g = TaskGraph::build(mt, nt, B, &setup.elims.to_ops());
            let r = simulate_with_policy(&g, &setup.layout, &p, SchedPolicy::PanelFirst);
            println!(
                "| {tag} | {gp}x{gq} | {:.1} | {:.1}% | {} |",
                r.gflops,
                100.0 * r.efficiency,
                r.messages
            );
        }
    }

    println!("\n# Ablation 3: tile size b (71680 x 4480, 15x4 grid)");
    println!("| b | tiles | GFlop/s | % peak | messages |");
    println!("|---|---|---|---|---|");
    let (m_elems, n_elems) = (71_680usize, 4_480usize);
    for b in [140usize, 280, 560] {
        let (mt, nt) = (m_elems / b, n_elems / b);
        let setup = baselines::hqr_tall_skinny(mt, nt, ProcessGrid::new(15, 4));
        let g = TaskGraph::build(mt, nt, b, &setup.elims.to_ops());
        let r = simulate_with_policy(&g, &setup.layout, &p, SchedPolicy::PanelFirst);
        println!(
            "| {b} | {mt}x{nt} | {:.1} | {:.1}% | {} |",
            r.gflops,
            100.0 * r.efficiency,
            r.messages
        );
    }

    println!("\n# Ablation 4: the domino's cost on large square matrices");
    println!("(§V-B: \"domino optimization [has] a negative impact when the matrix");
    println!(" becomes large and square\")");
    println!("| matrix | domino | GFlop/s | % peak |");
    println!("|---|---|---|---|");
    let nt = if quick() { 120 } else { 240 };
    for domino in [false, true] {
        let cfg = HqrConfig::new(15, 4)
            .with_a(4)
            .with_low(TreeKind::Fibonacci)
            .with_high(TreeKind::Flat)
            .with_domino(domino);
        let setup = baselines::hqr(nt, nt, ProcessGrid::new(15, 4), cfg);
        let g = TaskGraph::build(nt, nt, B, &setup.elims.to_ops());
        let r = simulate_with_policy(&g, &setup.layout, &p, SchedPolicy::PanelFirst);
        println!(
            "| {0}x{0} tiles | {1} | {2:.1} | {3:.1}% |",
            nt,
            if domino { "on" } else { "off" },
            r.gflops,
            100.0 * r.efficiency
        );
    }

    println!("\n# Ablation 5: sensitivity to per-message software overhead");
    println!("(the LogGP 'o' term the baseline calibration sets to zero; rising");
    println!(" overhead penalizes the message-heavy algorithms first and probes");
    println!(" the [SLHD10]/[BBD+10] deviations recorded in EXPERIMENTS.md)");
    println!("| overhead | HQR tall | SLHD10 tall | HQR square | BBD+10 square |");
    println!("|---|---|---|---|---|");
    let grid = ProcessGrid::new(15, 4);
    let (mt_t, nt_t) = (1024usize, 16usize);
    let nsq = if quick() { 120 } else { 240 };
    let h_t = baselines::hqr_tall_skinny(mt_t, nt_t, grid);
    let s_t = baselines::slhd10(mt_t, nt_t, 60);
    let h_s = baselines::hqr_square(nsq, nsq, grid);
    let b_s = baselines::bbd10(nsq, nsq, grid);
    let g_ht = TaskGraph::build(mt_t, nt_t, B, &h_t.elims.to_ops());
    let g_st = TaskGraph::build(mt_t, nt_t, B, &s_t.elims.to_ops());
    let g_hs = TaskGraph::build(nsq, nsq, B, &h_s.elims.to_ops());
    let g_bs = TaskGraph::build(nsq, nsq, B, &b_s.elims.to_ops());
    for overhead_us in [0.0f64, 50.0, 200.0, 500.0] {
        let plat = Platform { link: p.link.with_overhead(overhead_us * 1e-6), ..p };
        let run = |g: &TaskGraph, lay: &Layout| {
            simulate_with_policy(g, lay, &plat, SchedPolicy::PanelFirst).gflops
        };
        println!(
            "| {overhead_us:>4.0} µs | {:.0} | {:.0} | {:.0} | {:.0} |",
            run(&g_ht, &h_t.layout),
            run(&g_st, &s_t.layout),
            run(&g_hs, &h_s.layout),
            run(&g_bs, &b_s.layout),
        );
    }

    println!("\n# Ablation 6: accelerators (the paper's §VI future work)");
    println!("(2 GPUs/node running update kernels 8x faster than a core: the");
    println!(" factor kernels and the reduction-tree critical path become the");
    println!(" bottleneck, amplifying the value of low-depth trees)");
    println!("| matrix | low tree | a | GPUs | GFlop/s |");
    println!("|---|---|---|---|---|");
    let (mt_g, nt_g) = (512usize, 16usize);
    for (low, a) in [
        (TreeKind::Flat, 1usize),
        (TreeKind::Flat, 4),
        (TreeKind::Greedy, 1),
        (TreeKind::Greedy, 4),
    ] {
        let cfg = HqrConfig::new(15, 4)
            .with_a(a)
            .with_low(low)
            .with_high(TreeKind::Fibonacci)
            .with_domino(true);
        let setup = baselines::hqr(mt_g, nt_g, ProcessGrid::new(15, 4), cfg);
        let g = TaskGraph::build(mt_g, nt_g, B, &setup.elims.to_ops());
        for gpus in [false, true] {
            let plat = if gpus { Platform::edel_with_accelerators(2, 8.0) } else { p };
            let r = simulate_with_policy(&g, &setup.layout, &plat, SchedPolicy::PanelFirst);
            println!(
                "| 143360x4480 | {} | {a} | {} | {:.0} |",
                low.name(),
                if gpus { "2x8.0" } else { "none" },
                r.gflops
            );
        }
    }
}
