//! Regenerates Tables I–IV and the reduction trees of Figures 1–4
//! (§III-A/B): the coarse-grain unit-time schedules for the flat, binary
//! and greedy algorithms on a 12-row tile matrix, plus the hierarchical
//! single-panel examples (flat/binary over 3 clusters, domain trees).

use hqr::prelude::*;

fn main() {
    println!("# Tables I-IV and Figures 1-4 (coarse-grain unit-time model)");

    println!("\n## Table I / Figure 1: flat tree, panel 0, m = 12");
    println!("{}", Schedule::flat(12, 1).render(1));

    println!("\n## Figure 2: binary tree, panel 0, m = 12");
    println!("{}", Schedule::binary(12, 1).render(1));

    println!("\n## Figure 3: flat/binary hierarchical tree, p = 3 clusters (cyclic)");
    let fb = HqrConfig::new(3, 1).with_a(4).with_low(TreeKind::Flat).with_high(TreeKind::Binary);
    let l = fb.elimination_list(12, 1);
    for e in l.elims() {
        println!(
            "  elim({}, {}, 0)  level={:?} kernel={}",
            e.victim,
            e.killer,
            e.level,
            if e.ts { "TS" } else { "TT" }
        );
    }

    println!("\n## Figure 4: domain tree, two domains of 2 per cluster");
    let dom = HqrConfig::new(3, 1).with_a(2).with_low(TreeKind::Binary).with_high(TreeKind::Binary);
    let l = dom.elimination_list(12, 1);
    for e in l.elims() {
        println!(
            "  elim({}, {}, 0)  level={:?} kernel={}",
            e.victim,
            e.killer,
            e.level,
            if e.ts { "TS" } else { "TT" }
        );
    }

    println!("\n## Table II: flat tree, first 3 panels, m = 12");
    println!("{}", Schedule::flat(12, 3).render(3));

    println!("\n## Table III: binary tree, first 3 panels, m = 12");
    println!("(earliest *consistent* steps; see EXPERIMENTS.md for the two");
    println!(" paper entries that violate the Sec. II aliveness conditions)");
    println!("{}", Schedule::binary(12, 3).render(3));

    println!("\n## Table IV: greedy, first 3 panels, m = 12");
    println!("{}", Schedule::greedy(12, 3).render(3));

    println!("\n## Coarse-grain makespans (m = 12, n = 3)");
    for (name, s) in [
        ("flat", Schedule::flat(12, 3)),
        ("binary", Schedule::binary(12, 3)),
        ("greedy", Schedule::greedy(12, 3)),
        ("fibonacci", Schedule::fibonacci(12, 3)),
    ] {
        println!("  {name:<10} {:>3} steps", s.makespan());
    }
}
