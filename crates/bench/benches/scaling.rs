//! Strong and weak scaling of HQR on the simulated cluster — the paper's
//! motivating scenario ("massively parallel platforms combining parallel
//! distributed multi-core nodes", §I). Not a paper figure; an extension
//! study over the same machinery.

use hqr::baselines;
use hqr::experiments::simulate_setup;
use hqr_bench::{quick, B};
use hqr_sim::Platform;
use hqr_tile::ProcessGrid;

/// Node counts and row-heavy grids (the tall-skinny-friendly shapes).
fn grids() -> Vec<(usize, usize)> {
    if quick() {
        vec![(1, 1), (4, 1), (15, 4)]
    } else {
        vec![(1, 1), (2, 2), (4, 1), (15, 1), (15, 2), (15, 4)]
    }
}

fn main() {
    println!("# Strong scaling: fixed 143360 x 4480 matrix, nodes vary");
    println!("| nodes | grid | GFlop/s | speedup | parallel eff |");
    println!("|---|---|---|---|---|");
    let (mt, nt) = (512usize, 16usize);
    let mut base = None;
    for (p, q) in grids() {
        let nodes = p * q;
        let platform = Platform { nodes, ..Platform::edel() };
        let setup = baselines::hqr_tall_skinny(mt, nt, ProcessGrid::new(p, q));
        let rep = simulate_setup(&setup, B, &platform);
        let base_gf = *base.get_or_insert(rep.gflops);
        let speedup = rep.gflops / base_gf;
        println!(
            "| {nodes} | {p}x{q} | {:.1} | {:.2}x | {:.1}% |",
            rep.gflops,
            speedup,
            100.0 * speedup / nodes as f64
        );
    }

    println!("\n# Weak scaling: rows grow with the node count (tall-skinny)");
    println!("| nodes | matrix | GFlop/s | GFlop/s per node |");
    println!("|---|---|---|---|");
    for (p, q) in grids() {
        let nodes = p * q;
        let platform = Platform { nodes, ..Platform::edel() };
        // ~17 tile rows per node, 16 tile columns — the paper's largest
        // per-node footprint.
        let mt = 17 * nodes;
        let setup = baselines::hqr_tall_skinny(mt, 16, ProcessGrid::new(p, q));
        let rep = simulate_setup(&setup, B, &platform);
        println!(
            "| {nodes} | {}x{} | {:.1} | {:.1} |",
            mt * B,
            16 * B,
            rep.gflops,
            rep.gflops / nodes as f64
        );
    }
}
