//! Figure 6: performance of HQR on M × 4480 matrices (b = 280, 15×4 grid,
//! 60 nodes × 8 cores), sweeping the TS-level parameter `a` ∈ {1,4,8} and
//! the high-level tree, with the low-level tree set to GREEDY (subfigure a)
//! or FLATTREE (subfigure b). Domino off, as in the paper.

use hqr::prelude::*;
use hqr_bench::{m_sweep, print_header, run_point, B, GRID_P, GRID_Q};
use hqr_tile::ProcessGrid;

fn sweep(low: TreeKind, highs: &[TreeKind]) {
    let grid = ProcessGrid::new(GRID_P, GRID_Q);
    let n = 4480;
    let nt = n / B;
    for m in m_sweep() {
        let mt = m / B;
        for &high in highs {
            for a in [1usize, 4, 8] {
                let cfg = HqrConfig::new(GRID_P, GRID_Q)
                    .with_a(a)
                    .with_low(low)
                    .with_high(high)
                    .with_domino(false);
                let setup = hqr::baselines::hqr(mt, nt, grid, cfg);
                let label = format!("a={a}, high={}", high.name());
                run_point(&setup, &label, m, n);
            }
        }
    }
}

fn main() {
    println!("# Figure 6: influence of the TS level (a) and the high-level tree");
    println!("# matrix: M x 4480, b = 280, grid 15x4, domino off");

    print_header("Figure 6(a): low-level tree = GREEDY");
    sweep(TreeKind::Greedy, &[TreeKind::Greedy, TreeKind::Binary]);

    print_header("Figure 6(b): low-level tree = FLATTREE");
    sweep(TreeKind::Flat, &[TreeKind::Flat, TreeKind::Fibonacci]);
}
