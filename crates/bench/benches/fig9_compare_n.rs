//! Figure 9: HQR versus ScaLAPACK, [BBD+10] and [SLHD10] on 67200 × N
//! matrices (M fixed, N varies from tall-and-skinny to square).
//!
//! Paper anchors (§V-C): on the square matrix HQR reaches ~3 TFlop/s
//! (68.7% of peak) vs 62.2% [BBD+10] (1.1x), 46.7% [SLHD10] (1.5x, the
//! §III-C 2/3 load-imbalance ratio) and 44.2% ScaLAPACK (1.6x); at
//! N = M/2 the [SLHD10]/HQR ratio is ≈ 5/6.

use hqr::baselines::{bbd10, hqr_adaptive, slhd10};
use hqr_bench::{n_sweep, platform, print_header, run_point, B, GRID_P, GRID_Q};
use hqr_sim::scalapack::ScalapackModel;
use hqr_tile::ProcessGrid;

fn main() {
    println!("# Figure 9: algorithm comparison on 67200 x N (b = 280, 60 nodes)");
    print_header("Figure 9");
    let grid = ProcessGrid::new(GRID_P, GRID_Q);
    let m = 67_200;
    let mt = m / B;
    let p = platform();
    let scalapack = ScalapackModel::default();
    for n in n_sweep() {
        let nt = n / B;
        run_point(&hqr_adaptive(mt, nt, grid), "HQR (adaptive a/trees/domino)", m, n);
        run_point(&bbd10(mt, nt, grid), "[BBD+10] flat tree", m, n);
        run_point(&slhd10(mt, nt, GRID_P * GRID_Q), "[SLHD10] 1D block + binary", m, n);
        let r = scalapack.run(m, n, GRID_P, GRID_Q, &p);
        println!(
            "| {m:>7} | {n:>6} | {:<34} | {:>8.1} | {:>5.1}% | {:>9} |",
            "ScaLAPACK (model)",
            r.gflops,
            100.0 * r.efficiency,
            "-"
        );
    }
}
