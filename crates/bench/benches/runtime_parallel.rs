//! Criterion benchmark of the shared-memory DAG executor: serial versus
//! multithreaded factorization of the same tile matrix (the intra-node
//! half of the paper's runtime story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqr::prelude::*;
use hqr_runtime::{execute_parallel, execute_serial, TaskGraph};

fn bench_runtime(c: &mut Criterion) {
    let (mt, nt, b) = (16usize, 8usize, 32usize);
    let cfg = HqrConfig::new(1, 1).with_a(4).with_low(TreeKind::Greedy);
    let elims = cfg.elimination_list(mt, nt);
    let graph = TaskGraph::build(mt, nt, b, &elims.to_ops());
    let a0 = TiledMatrix::random(mt, nt, b, 42);

    let mut g = c.benchmark_group("runtime");
    g.bench_function(BenchmarkId::new("factorize-serial", format!("{mt}x{nt}x{b}")), |bench| {
        bench.iter_batched(
            || a0.clone(),
            |mut a| execute_serial(&graph, &mut a),
            criterion::BatchSize::LargeInput,
        );
    });
    for threads in [2usize, 4] {
        g.bench_function(BenchmarkId::new("factorize-parallel", threads), |bench| {
            bench.iter_batched(
                || a0.clone(),
                |mut a| execute_parallel(&graph, &mut a, threads),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_runtime
}
criterion_main!(benches);
