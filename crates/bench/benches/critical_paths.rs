//! Critical-path study — the paper's "future work" ("compute critical
//! paths and assess priorities to the different elimination trees"):
//! weighted critical paths and available parallelism of the real task DAGs
//! for every tree and for the hierarchical configurations.

use hqr::prelude::*;
use hqr_bench::B;
use hqr_runtime::{analysis, TaskGraph};
use hqr_tile::ProcessGrid;

fn report(name: &str, mt: usize, nt: usize, elims: &ElimList) {
    let g = TaskGraph::build(mt, nt, B, &elims.to_ops());
    let s = analysis::dag_stats(&g);
    let parallelism = s.total_weight as f64 / s.critical_path_weight as f64;
    println!(
        "| {name:<34} | {mt}x{nt} | {} | {} | {} | {:.1} |",
        g.tasks().len(),
        s.total_weight,
        s.critical_path_weight,
        parallelism
    );
}

fn main() {
    println!("# Weighted critical paths of the real task DAGs");
    println!("(weights in b³/3 flop units; parallelism = total/CP)");
    println!("\n## Whole-matrix trees");
    println!("| tree | tiles | tasks | total weight | CP weight | parallelism |");
    println!("|---|---|---|---|---|---|");
    for (mt, nt) in [(68usize, 16usize), (64, 64), (256, 16)] {
        report("flat (TS)", mt, nt, &Schedule::flat(mt, nt).to_elim_list(true));
        report("binary (TT)", mt, nt, &Schedule::binary(mt, nt).to_elim_list(false));
        report("greedy (TT)", mt, nt, &Schedule::greedy(mt, nt).to_elim_list(false));
        report("fibonacci (TT)", mt, nt, &Schedule::fibonacci(mt, nt).to_elim_list(false));
    }

    println!("\n## Hierarchical configurations (virtual 15x4 grid)");
    println!("| configuration | tiles | tasks | total weight | CP weight | parallelism |");
    println!("|---|---|---|---|---|---|");
    let grid = ProcessGrid::new(15, 4);
    let _ = grid;
    for (mt, nt) in [(256usize, 16usize), (120, 120)] {
        for (label, a, low, high, domino) in [
            ("a=1, greedy/fib, no domino", 1usize, TreeKind::Greedy, TreeKind::Fibonacci, false),
            ("a=4, fib/fib, domino", 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true),
            ("a=4, flat/flat, no domino", 4, TreeKind::Flat, TreeKind::Flat, false),
            ("a=4, flat/flat, domino", 4, TreeKind::Flat, TreeKind::Flat, true),
        ] {
            let cfg =
                HqrConfig::new(15, 4).with_a(a).with_low(low).with_high(high).with_domino(domino);
            report(label, mt, nt, &cfg.elimination_list(mt, nt));
        }
    }

    println!("\n## §V-B anchor: 68x16 local matrix, flat vs greedy CP ratio");
    let cp = |l: &ElimList| {
        let g = TaskGraph::build(68, 16, B, &l.to_ops());
        analysis::dag_stats(&g).critical_path_weight as f64
    };
    let flat = cp(&Schedule::flat(68, 16).to_elim_list(true));
    let greedy = cp(&Schedule::greedy(68, 16).to_elim_list(false));
    println!(
        "flat CP = {flat}, greedy CP = {greedy}, ratio = {:.2} (paper model: 2.6)",
        flat / greedy
    );
}
