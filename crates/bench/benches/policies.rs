//! Scheduling-policy smoke benchmark: the same tall-skinny flat-tree DAG
//! (16x4 tiles, the latency-bound shape where ready-queue order matters
//! most) run under every [`SchedPolicy`] on both backends.
//!
//! Prints a markdown makespan/utilization table. With `HQR_POLICY_GATE=1`
//! the run fails (exit 1) if the critical-path policy regresses past
//! `FIFO * TOLERANCE` on the real executor — the CI bench-smoke job sets
//! this; plain `cargo bench` runs report-only because single-run wall
//! clocks on shared machines are noisy.

use hqr::prelude::*;
use hqr_runtime::{execute_serial, try_execute_traced, ExecOptions, SchedPolicy, TaskGraph};
use hqr_sim::simulate_with_policy;
use hqr_tile::ProcessGrid;

const TOLERANCE: f64 = 1.10;

fn main() {
    let (mt, nt, b, threads) = (16usize, 4usize, 64usize, 8usize);
    let reps = if hqr_bench::quick() { 3 } else { 5 };
    // Grid 1x1 with a=1 gives a single domain, so the low tree *is* the
    // whole reduction tree: a pure flat (TS) tall-skinny factorization.
    let cfg = HqrConfig::new(1, 1).with_a(1).with_low(TreeKind::Flat);
    let setup = hqr::baselines::hqr(mt, nt, ProcessGrid::new(1, 1), cfg);
    let graph = TaskGraph::build(mt, nt, b, &setup.elims.to_ops());
    let platform = hqr_bench::platform();
    let a0 = TiledMatrix::random(mt, nt, b, 42);
    let mut serial = a0.clone();
    let _ = execute_serial(&graph, &mut serial);
    let reference = serial.to_dense();

    println!("# Scheduling-policy smoke: {mt}x{nt} tiles of {b}, flat tree, {threads} threads");
    println!("({} tasks, best of {reps} runs per policy)", graph.tasks().len());
    println!();
    println!("| policy | best wall (ms) | utilization | steals | sim makespan (s) |");
    println!("|---|---|---|---|---|");

    let mut rows = Vec::new();
    for policy in SchedPolicy::ALL {
        let mut best_wall = f64::INFINITY;
        let mut utilization = 0.0;
        let mut steals = 0;
        for _ in 0..reps {
            let mut a = a0.clone();
            let opts = ExecOptions { nthreads: threads, policy, ..Default::default() };
            let (_, _, tr) = try_execute_traced(&graph, &mut a, &opts).expect("fault-free run");
            assert_eq!(reference.data(), a.to_dense().data(), "{policy} diverged from serial");
            if tr.wall < best_wall {
                best_wall = tr.wall;
                let busy: f64 = tr.records.iter().map(|r| r.end - r.start).sum();
                utilization = busy / (tr.wall * threads as f64).max(f64::MIN_POSITIVE);
                steals = tr.total_steals();
            }
        }
        let sim_makespan = simulate_with_policy(&graph, &setup.layout, &platform, policy).makespan;
        println!(
            "| {policy} | {:.3} | {:.1}% | {steals} | {sim_makespan:.4} |",
            best_wall * 1e3,
            100.0 * utilization,
        );
        rows.push((policy, best_wall));
    }

    let wall_of = |p: SchedPolicy| rows.iter().find(|r| r.0 == p).unwrap().1;
    let (fifo, cp) = (wall_of(SchedPolicy::Fifo), wall_of(SchedPolicy::CriticalPath));
    println!();
    println!("cp/fifo wall ratio: {:.3} (gate: <= {TOLERANCE})", cp / fifo);
    let gated = std::env::var("HQR_POLICY_GATE").map(|v| v == "1").unwrap_or(false);
    if cp > fifo * TOLERANCE {
        if gated {
            eprintln!("FAIL: critical-path policy regressed past {TOLERANCE}x FIFO");
            std::process::exit(1);
        }
        println!("(report-only run: set HQR_POLICY_GATE=1 to fail on regression)");
    }
}
