//! Emit a machine-readable perf baseline (`BENCH_<n>.json`).
//!
//! Criterion's HTML reports are good for humans; the repo's perf
//! *trajectory* needs small committed JSON snapshots that successive
//! sessions can diff. This harness measures, with plain wall-clock
//! medians:
//!
//! * the two §V-A update kernels (`tsmqr`, `ttmqr`) at three tile sizes,
//!   in GFlop/s — the TS/TT rate gap drives every tree trade-off in the
//!   paper;
//! * one end-to-end parallel factorization through the task-DAG executor;
//! * the same matrix pushed through the multi-job [`hqr_runtime::JobPool`]
//!   as eight concurrent jobs, measuring service throughput.
//!
//! Usage: `cargo run --release -p hqr-bench --bin perf_baseline -- \
//!   [--out BENCH_7.json]`
//!
//! The snapshot records which gemm-core dispatch arm ran (scalar or
//! AVX2/FMA — force with `HQR_SIMD=off`) so successive baselines are only
//! compared like-for-like, and measures the factor kernels alongside the
//! update kernels so `hqr-sim`'s `KernelRates::measured()` can be
//! recalibrated from committed numbers.

use hqr::baselines;
use hqr::prelude::*;
use hqr_kernels::{tsmqr, tsqrt, ttmqr, ttqrt, KernelKind, Trans};
use hqr_runtime::{execute_parallel_ib, JobPool, JobSpec, JobState, PoolConfig, TaskGraph};
use hqr_tile::{DenseMatrix, ProcessGrid, TiledMatrix};
use std::time::Instant;

fn tile(b: usize, seed: u64) -> Vec<f64> {
    DenseMatrix::random(b, b, seed).data().to_vec()
}

fn upper(b: usize, a: &[f64]) -> Vec<f64> {
    let mut u = vec![0.0; b * b];
    for j in 0..b {
        for i in 0..=j {
            u[i + j * b] = a[i + j * b];
        }
    }
    u
}

/// Median wall-clock seconds of `reps` runs of `f` (after one warmup).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Entry {
    name: String,
    metric: &'static str,
    value: f64,
    detail: String,
}

fn kernel_entries(entries: &mut Vec<Entry>, reps: usize) {
    for &b in &[64usize, 128, 200] {
        // Pre-factored inputs, mirroring the criterion kernel bench.
        let mut vts = upper(b, &tile(b, 1));
        let mut v2ts = tile(b, 2);
        let mut tts = vec![0.0; b * b];
        tsqrt(b, &mut vts, &mut v2ts, &mut tts);
        let mut vtt = upper(b, &tile(b, 3));
        let mut v2tt = upper(b, &tile(b, 4));
        let mut ttt = vec![0.0; b * b];
        ttqrt(b, &mut vtt, &mut v2tt, &mut ttt);

        let mut c1 = tile(b, 6);
        let mut c2 = tile(b, 7);
        let ts = median_secs(reps, || tsmqr(b, &v2ts, &tts, &mut c1, &mut c2, Trans::Trans));
        entries.push(Entry {
            name: format!("tsmqr_b{b}"),
            metric: "gflops",
            value: KernelKind::Tsmqr.flops(b) / ts / 1e9,
            detail: format!("median of {reps}, {:.3} ms/call", ts * 1e3),
        });

        let mut d1 = tile(b, 8);
        let mut d2 = tile(b, 9);
        let tt = median_secs(reps, || ttmqr(b, &v2tt, &ttt, &mut d1, &mut d2, Trans::Trans));
        entries.push(Entry {
            name: format!("ttmqr_b{b}"),
            metric: "gflops",
            value: KernelKind::Ttmqr.flops(b) / tt / 1e9,
            detail: format!("median of {reps}, {:.3} ms/call", tt * 1e3),
        });
    }
    // Factor kernels at the largest tile size, for the simulator's
    // factor_efficiency calibration (factor rate / update rate per class).
    let b = 200usize;
    let (r1_0, a2_0, r2_0) = (upper(b, &tile(b, 10)), tile(b, 11), upper(b, &tile(b, 13)));
    let (mut r1, mut a2, mut t) = (r1_0.clone(), a2_0.clone(), vec![0.0; b * b]);
    let tsq = median_secs(reps, || {
        r1.copy_from_slice(&r1_0);
        a2.copy_from_slice(&a2_0);
        tsqrt(b, &mut r1, &mut a2, &mut t);
    });
    entries.push(Entry {
        name: format!("tsqrt_b{b}"),
        metric: "gflops",
        value: KernelKind::Tsqrt.flops(b) / tsq / 1e9,
        detail: format!("median of {reps}, {:.3} ms/call", tsq * 1e3),
    });
    let mut r2 = r2_0.clone();
    let ttq = median_secs(reps, || {
        r1.copy_from_slice(&r1_0);
        r2.copy_from_slice(&r2_0);
        ttqrt(b, &mut r1, &mut r2, &mut t);
    });
    entries.push(Entry {
        name: format!("ttqrt_b{b}"),
        metric: "gflops",
        value: KernelKind::Ttqrt.flops(b) / ttq / 1e9,
        detail: format!("median of {reps}, {:.3} ms/call", ttq * 1e3),
    });
}

/// `mt x nt` tiles of size `b`, hqr greedy/fibonacci elimination list.
fn job(mt: usize, nt: usize, grid: (usize, usize)) -> Vec<hqr_runtime::ElimOp> {
    let cfg = HqrConfig::new(grid.0, grid.1);
    baselines::hqr(mt, nt, ProcessGrid::new(grid.0, grid.1), cfg).elims.to_ops()
}

fn end_to_end_entry(entries: &mut Vec<Entry>, threads: usize, reps: usize) {
    let (mt, nt, b) = (12, 6, 64);
    let elims = job(mt, nt, (2, 1));
    let graph = TaskGraph::try_build(mt, nt, b, &elims).expect("bench graph");
    let flops: f64 = graph.tasks().iter().map(|t| t.kind.flops(b)).sum();
    let dt = median_secs(reps, || {
        let mut a = TiledMatrix::random(mt, nt, b, 42);
        execute_parallel_ib(&graph, &mut a, threads, b);
    });
    entries.push(Entry {
        name: format!("factor_{}x{}_b{b}_t{threads}", mt * b, nt * b),
        metric: "gflops",
        value: flops / dt / 1e9,
        detail: format!("task-DAG executor, median of {reps}, {:.1} ms/run", dt * 1e3),
    });
}

fn pool_throughput_entry(entries: &mut Vec<Entry>, threads: usize, reps: usize) {
    let (mt, nt, b, jobs) = (8, 4, 64, 8);
    let elims = job(mt, nt, (2, 1));
    let graph = TaskGraph::try_build(mt, nt, b, &elims).expect("bench graph");
    let flops: f64 = graph.tasks().iter().map(|t| t.kind.flops(b)).sum();
    let dt = median_secs(reps, || {
        let pool = JobPool::new(PoolConfig { nthreads: threads, ..PoolConfig::default() });
        let ids: Vec<_> = (0..jobs)
            .map(|i| {
                let spec = JobSpec::fresh(elims.clone(), TiledMatrix::random(mt, nt, b, 100 + i));
                pool.submit(spec).expect("bench submit")
            })
            .collect();
        for id in ids {
            let outcome = pool.wait(id).expect("bench outcome");
            assert_eq!(outcome.state, JobState::Completed);
        }
        pool.shutdown();
    });
    entries.push(Entry {
        name: format!("pool_{jobs}jobs_{}x{}_b{b}_t{threads}", mt * b, nt * b),
        metric: "gflops",
        value: jobs as f64 * flops / dt / 1e9,
        detail: format!(
            "shared JobPool, {jobs} concurrent jobs incl. submit+spawn, median of {reps}, {:.1} ms/batch",
            dt * 1e3
        ),
    });
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    let threads = std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(4);
    let reps = 7;

    let mut entries = Vec::new();
    kernel_entries(&mut entries, reps);
    end_to_end_entry(&mut entries, threads, reps);
    pool_throughput_entry(&mut entries, threads, reps);

    let mut body = String::new();
    body.push_str("{\n  \"schema\": \"hqr-perf-baseline/2\",\n");
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str(&format!("  \"reps\": {reps},\n"));
    body.push_str(&format!("  \"simd\": \"{}\",\n", json_escape(&hqr_kernels::simd_description())));
    body.push_str(&format!("  \"simd_detected\": \"{}\",\n", hqr_kernels::simd_detected().name()));
    body.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"metric\": \"{}\", \"value\": {:.4}, \"detail\": \"{}\"}}{}\n",
            json_escape(&e.name),
            e.metric,
            e.value,
            json_escape(&e.detail),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&out, &body).expect("write baseline");
    println!("wrote {out}");
    for e in &entries {
        println!("  {:<28} {:>9.3} {}  ({})", e.name, e.value, e.metric, e.detail);
    }
}
