//! Shared plumbing for the figure- and table-regenerating bench harnesses.
//!
//! Every table and figure of the paper's evaluation (§V) has a bench target
//! in `benches/`:
//!
//! | target | regenerates |
//! |---|---|
//! | `table_schedules` | Tables I–IV, Figures 1–4 |
//! | `fig6_highlevel`  | Figure 6 (a)+(b) |
//! | `fig7_domino`     | Figure 7 |
//! | `fig8_compare_m`  | Figure 8 |
//! | `fig9_compare_n`  | Figure 9 |
//! | `kernels` (criterion) | §V-A kernel rates (TS vs TT) |
//! | `runtime_parallel` (criterion) | shared-memory executor scaling |
//!
//! Set `HQR_QUICK=1` to shrink the sweeps (useful in CI); the default runs
//! the paper-scale parameter sets.

use hqr::baselines::AlgorithmSetup;
use hqr::experiments::simulate_setup;
use hqr_sim::Platform;

/// The paper's tile size: "Choosing b = 280 and a process grid p × q of
/// 15 × 4 leads to values that consistently provide good performance".
pub const B: usize = 280;

/// The paper's process grid.
pub const GRID_P: usize = 15;
/// The paper's process grid.
pub const GRID_Q: usize = 4;

/// True when `HQR_QUICK=1` (reduced sweeps).
pub fn quick() -> bool {
    std::env::var("HQR_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The edel platform of §V-A.
pub fn platform() -> Platform {
    Platform::edel()
}

/// Figure 6/8 row-dimension sweep (elements): 4480 → 286720, i.e. square
/// 16×16 tiles to tall-skinny 1024×16 tiles.
pub fn m_sweep() -> Vec<usize> {
    let all = [4480, 8960, 17920, 35840, 71680, 143360, 286720];
    if quick() {
        all[..4].to_vec()
    } else {
        all.to_vec()
    }
}

/// Figure 9 column-dimension sweep (elements) at fixed M = 67200.
pub fn n_sweep() -> Vec<usize> {
    let all = [1120, 2240, 4480, 8960, 16800, 33600, 67200];
    if quick() {
        all[..4].to_vec()
    } else {
        all.to_vec()
    }
}

/// Simulate a setup at the paper's tile size and print one markdown row.
pub fn run_point(setup: &AlgorithmSetup, label: &str, m: usize, n: usize) -> f64 {
    let p = platform();
    let rep = simulate_setup(setup, B, &p);
    println!(
        "| {m:>7} | {n:>6} | {label:<34} | {:>8.1} | {:>5.1}% | {:>9} |",
        rep.gflops,
        100.0 * rep.efficiency,
        rep.messages
    );
    rep.gflops
}

/// Print the markdown header used by all figure harnesses.
pub fn print_header(title: &str) {
    println!("\n## {title}");
    println!("| M | N | algorithm | GFlop/s | % peak | messages |");
    println!("|---|---|---|---|---|---|");
}
