//! End-to-end distributed factorization tests: fault-free parity,
//! worker-loss recovery, chaos (drop/delay) runs, and heartbeat
//! false-positive safety — all against real TCP workers on loopback.

use hqr_net::{
    factorize, shutdown_workers, spawn_local, DistConfig, DistReport, NetFaultPlan, WorkerOptions,
};
use hqr_runtime::{execute_serial, ElimOp, TFactors, TaskGraph};
use hqr_tile::TiledMatrix;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::Duration;

fn random_elims(mt: usize, nt: usize, seed: u64) -> Vec<ElimOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let vpos = rng.gen_range(1..alive.len());
            let upos = rng.gen_range(0..vpos);
            out.push(ElimOp::new(k as u32, alive[vpos], alive[upos], false));
            alive.remove(vpos);
        }
        alive.shuffle(&mut rng);
    }
    out
}

fn test_config(n: usize) -> DistConfig {
    let mut cfg = DistConfig::for_workers(n);
    cfg.rpc_timeout = Duration::from_secs(2);
    cfg.hb_interval = Duration::from_millis(20);
    cfg.hb_timeout = Duration::from_millis(500);
    cfg.stall_timeout = Duration::from_secs(30);
    cfg
}

/// Spawn workers with the given options, factorize, shut the fleet down.
fn dist_run(
    opts: &[WorkerOptions],
    graph: &TaskGraph,
    input: &TiledMatrix,
    cfg: &DistConfig,
) -> (TiledMatrix, TFactors, DistReport) {
    let workers: Vec<_> = opts.iter().map(|&o| spawn_local(o).expect("spawn worker")).collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();
    let result = factorize(&addrs, graph, input, graph.b(), cfg);
    shutdown_workers(&addrs);
    for w in workers {
        let _ = w.join();
    }
    result.expect("distributed factorization")
}

fn assert_bitwise_parity(
    graph: &TaskGraph,
    input: &TiledMatrix,
    got_a: &TiledMatrix,
    got_f: &TFactors,
    context: &str,
) {
    let mut reference = input.clone();
    let ref_f = execute_serial(graph, &mut reference);
    let (d_ref, d_got) = (reference.to_dense(), got_a.to_dense());
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(d_ref.data()), bits(d_got.data()), "{context}: matrix diverged");
    assert!(ref_f.bitwise_eq(got_f), "{context}: T factors diverged");
}

#[test]
fn fault_free_four_workers_bitwise_parity() {
    let (mt, nt, b) = (6, 4, 8);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 11));
    let input = TiledMatrix::random(mt, nt, b, 42);
    let cfg = test_config(4);
    let (a, f, report) = dist_run(&[WorkerOptions::default(); 4], &graph, &input, &cfg);
    assert_bitwise_parity(&graph, &input, &a, &f, "fault-free 4 workers");
    assert!(report.recoveries.is_empty(), "no one should die: {:?}", report.recoveries);
    assert_eq!(report.tasks_by_worker.iter().sum::<u64>() as usize, report.tasks_total);
    // Owner-computes over a 2x2 grid must spread work around.
    assert!(
        report.tasks_by_worker.iter().filter(|&&c| c > 0).count() >= 2,
        "work never spread: {:?}",
        report.tasks_by_worker
    );
}

#[test]
fn single_worker_fleet_works() {
    let (mt, nt, b) = (4, 3, 4);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 5));
    let input = TiledMatrix::random(mt, nt, b, 6);
    let cfg = test_config(1);
    let (a, f, _) = dist_run(&[WorkerOptions::default()], &graph, &input, &cfg);
    assert_bitwise_parity(&graph, &input, &a, &f, "single worker");
}

#[test]
fn worker_killed_mid_run_recovers_bitwise() {
    let (mt, nt, b) = (6, 4, 6);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 3));
    let input = TiledMatrix::random(mt, nt, b, 7);
    let cfg = test_config(3);
    // Kill worker 1 after it completes 2 tasks (sever-all, the in-process
    // SIGKILL stand-in).
    let mut opts = [WorkerOptions::default(); 3];
    opts[1] = WorkerOptions { die_after_tasks: Some(2), die_hard: false, slow_task_ms: 0 };
    let (a, f, report) = dist_run(&opts, &graph, &input, &cfg);
    assert_bitwise_parity(&graph, &input, &a, &f, "kill worker 1 after 2 tasks");
    assert!(
        report.recoveries.iter().any(|r| r.worker == 1),
        "worker 1 should have been condemned: {:?}",
        report.recoveries
    );
}

#[test]
fn worker_killed_before_first_task_recovers() {
    let (mt, nt, b) = (5, 3, 4);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 9));
    let input = TiledMatrix::random(mt, nt, b, 10);
    let cfg = test_config(2);
    let mut opts = [WorkerOptions::default(); 2];
    opts[0] = WorkerOptions { die_after_tasks: Some(0), die_hard: false, slow_task_ms: 0 };
    let (a, f, report) = dist_run(&opts, &graph, &input, &cfg);
    assert_bitwise_parity(&graph, &input, &a, &f, "kill worker 0 at task 0");
    assert!(!report.recoveries.is_empty());
}

/// The acceptance-criteria property: over random trees × kill-points ×
/// worker counts, killing one worker mid-run always completes with a
/// bitwise-identical result. Deterministic seeds, exhaustive-ish sweep
/// kept small enough for CI.
#[test]
fn property_kill_points_times_trees_times_fleets() {
    let mut case = 0u64;
    for &(mt, nt, b) in &[(4usize, 3usize, 4usize), (6, 4, 3)] {
        for &workers in &[2usize, 4] {
            for &kill_point in &[1u64, 3, 7] {
                case += 1;
                let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, case));
                let input = TiledMatrix::random(mt, nt, b, case ^ 0xDEAD);
                let victim = (case as usize) % workers;
                let mut opts = vec![WorkerOptions::default(); workers];
                opts[victim] = WorkerOptions {
                    die_after_tasks: Some(kill_point),
                    die_hard: false,
                    slow_task_ms: 0,
                };
                let cfg = test_config(workers);
                let (a, f, report) = dist_run(&opts, &graph, &input, &cfg);
                let label = format!(
                    "case {case}: {mt}x{nt} b={b} workers={workers} victim={victim} kp={kill_point}"
                );
                assert_bitwise_parity(&graph, &input, &a, &f, &label);
                // The victim only dies if it was ever asked to run that
                // many tasks; when it was, recovery must have fired.
                if report.tasks_by_worker[victim] == 0 && graph.tasks().len() as u64 > kill_point {
                    assert!(
                        report.recoveries.iter().any(|r| r.worker == victim),
                        "{label}: victim ran nothing yet no recovery: {report:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_drops_and_delays_still_bitwise_correct() {
    let (mt, nt, b) = (5, 4, 4);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 21));
    let input = TiledMatrix::random(mt, nt, b, 22);
    let mut cfg = test_config(3);
    cfg.fault = NetFaultPlan {
        seed: 99,
        drop_frac: 0.08,
        delay_frac: 0.15,
        delay: Duration::from_millis(2),
    };
    // Give the retry ladder headroom so random drops rarely condemn —
    // and when they do, recovery must still land the exact result.
    cfg.retry.max_attempts = 5;
    let (a, f, report) = dist_run(&[WorkerOptions::default(); 3], &graph, &input, &cfg);
    assert_bitwise_parity(&graph, &input, &a, &f, "chaos drops+delays");
    assert!(report.rpc_retries > 0, "drop injection never engaged the retry ladder");
}

#[test]
fn heartbeat_does_not_condemn_slow_but_alive_worker() {
    let (mt, nt, b) = (3, 2, 4);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 31));
    let input = TiledMatrix::random(mt, nt, b, 32);
    let mut cfg = test_config(2);
    // Tasks take 300ms; silence tolerance is 150ms. If kernel execution
    // blocked the heartbeat path, every task would get its worker killed.
    cfg.hb_interval = Duration::from_millis(20);
    cfg.hb_timeout = Duration::from_millis(150);
    let slow = WorkerOptions { die_after_tasks: None, die_hard: false, slow_task_ms: 300 };
    let (a, f, report) = dist_run(&[slow; 2], &graph, &input, &cfg);
    assert_bitwise_parity(&graph, &input, &a, &f, "slow workers");
    assert!(
        report.recoveries.is_empty(),
        "slow-but-alive workers were condemned: {:?}",
        report.recoveries
    );
}

#[test]
fn report_accounts_for_transfers_and_elapsed() {
    let (mt, nt, b) = (4, 2, 4);
    let graph = TaskGraph::build(mt, nt, b, &random_elims(mt, nt, 41));
    let input = TiledMatrix::random(mt, nt, b, 40);
    let cfg = test_config(2);
    let (_, _, report) = dist_run(&[WorkerOptions::default(); 2], &graph, &input, &cfg);
    // At least the scatter (mt*nt tiles) and the gather moved data.
    assert!(report.transfers >= (mt * nt) as u64);
    assert!(report.floats_moved >= (mt * nt * b * b) as u64);
    assert!(report.elapsed > Duration::ZERO);
}
