//! Wire-format hardening: property tests feeding truncated, bit-flipped,
//! oversized, and arbitrary byte streams into the frame/message decoders
//! and into `hqr_tile::io` — everything must come back as a typed error
//! (or a valid message), never a panic, never an unbounded allocation.

use hqr_net::{read_frame, write_frame, Msg, NetError, MAX_FRAME};
use hqr_runtime::task::SlotFamily;
use hqr_runtime::Task;
use hqr_tile::io::{
    bytes_of_f64s, bytes_of_u64s, tiled_from_bytes, tiled_to_bytes, u64s_of_bytes, SectionReader,
    SectionWriter,
};
use hqr_tile::TiledMatrix;
use proptest::prelude::*;
use std::time::Duration;

/// Tiny splitmix-style stream for deterministic fuzz inputs (the
/// vendored proptest only generates scalars).
fn stream(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut next = stream(seed);
    (0..len).map(|_| next() as u8).collect()
}

/// Flip `n` pseudo-random bits of `buf` in place.
fn flip_bits(buf: &mut [u8], seed: u64, n: usize) {
    let mut next = stream(seed ^ 0xF11B);
    for _ in 0..n {
        let r = next();
        let pos = (r as usize >> 3) % buf.len();
        buf[pos] ^= 1 << (r & 7);
    }
}

fn sample_msgs() -> Vec<Msg> {
    vec![
        Msg::Hello { run_id: 1, mt: 4, nt: 4, b: 8, ib: 4 },
        Msg::Put { fam: SlotFamily::A, i: 1, j: 2, data: vec![1.0; 64] },
        Msg::Get { fam: SlotFamily::Tg, i: 0, j: 3 },
        Msg::Run { task_id: 17, task: Task::update(0, 2, 1, 3, false) },
        Msg::Err { detail: "boom".into() },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup never panics the message decoder.
    #[test]
    fn arbitrary_bytes_never_panic_decoder(seed in any::<u64>(), len in 0usize..512) {
        let _ = Msg::decode(random_bytes(seed, len));
    }

    /// Random mutations of valid messages never panic and — unless the
    /// flips cancelled out — never silently decode to something else.
    #[test]
    fn mutated_messages_error_or_roundtrip(
        which in 0usize..5,
        seed in any::<u64>(),
        nflips in 1usize..8,
    ) {
        let original = sample_msgs().swap_remove(which);
        let clean = original.encode();
        let mut dirty = clean.clone();
        flip_bits(&mut dirty, seed, nflips);
        if let Ok(m) = Msg::decode(dirty) {
            prop_assert_eq!(m, original, "corruption accepted");
        }
    }

    /// Truncation of valid messages at any point is a typed error.
    #[test]
    fn truncated_messages_are_typed_errors(which in 0usize..5, frac in 0.0f64..1.0) {
        let clean = sample_msgs().swap_remove(which).encode();
        let cut = (clean.len() as f64 * frac) as usize;
        if cut < clean.len() {
            prop_assert!(Msg::decode(clean[..cut].to_vec()).is_err());
        }
    }

    /// A frame header declaring any length beyond the cap is rejected
    /// before allocation, no matter the declared value.
    #[test]
    fn oversized_frame_lengths_rejected(extra in 1u64..u64::MAX - MAX_FRAME) {
        let declared = MAX_FRAME + extra;
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut wire.as_slice(), "t", Duration::ZERO).unwrap_err();
        let typed = matches!(err, NetError::FrameTooLarge { declared: d, .. } if d == declared);
        prop_assert!(typed);
    }

    /// Frames round-trip any payload; truncating the stream anywhere
    /// inside a frame is a typed error, not a hang or a panic.
    #[test]
    fn frames_roundtrip_and_reject_truncation(seed in any::<u64>(), len in 0usize..256, frac in 0.0f64..1.0) {
        let payload = random_bytes(seed, len);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let back = read_frame(&mut wire.as_slice(), "t", Duration::ZERO).unwrap();
        prop_assert_eq!(back, payload);
        let cut = (wire.len() as f64 * frac) as usize;
        if cut < wire.len() {
            prop_assert!(read_frame(&mut wire[..cut].to_vec().as_slice(), "t", Duration::ZERO).is_err());
        }
    }

    /// The same treatment for `hqr_tile::io` containers: random
    /// mutations of a valid sectioned container error out or decode to
    /// the identical content — never panic.
    #[test]
    fn tile_io_containers_survive_mutation(seed in any::<u64>(), nflips in 1usize..6) {
        const MAGIC: [u8; 8] = *b"WIRETEST";
        let m = TiledMatrix::random(2, 2, 3, seed);
        let mut w = SectionWriter::new(MAGIC, 1);
        w.section(1, &tiled_to_bytes(&m));
        w.section(2, &bytes_of_u64s(&[seed]));
        w.section(3, &bytes_of_f64s(&[1.0, -2.5]));
        let clean = w.into_bytes();
        let mut dirty = clean.clone();
        flip_bits(&mut dirty, seed, nflips);
        match SectionReader::from_bytes(dirty, MAGIC, 1) {
            Err(_) => {}
            Ok(r) => {
                // Only reachable when the flips cancelled out.
                let back = tiled_from_bytes(1, r.require(1).unwrap()).unwrap();
                let (d_back, d_m) = (back.to_dense(), m.to_dense());
                prop_assert_eq!(d_back.data(), d_m.data());
                prop_assert_eq!(u64s_of_bytes(2, r.require(2).unwrap()).unwrap(), vec![seed]);
            }
        }
    }

    /// Truncated tile-io containers are typed errors at every cut.
    #[test]
    fn tile_io_truncation_always_errors(seed in any::<u64>(), frac in 0.0f64..1.0) {
        const MAGIC: [u8; 8] = *b"WIRETEST";
        let mut w = SectionWriter::new(MAGIC, 1);
        w.section(1, &bytes_of_u64s(&[seed, seed ^ 1]));
        let clean = w.into_bytes();
        let cut = (clean.len() as f64 * frac) as usize;
        if cut < clean.len() {
            prop_assert!(SectionReader::from_bytes(clean[..cut].to_vec(), MAGIC, 1).is_err());
        }
    }

    /// Arbitrary byte soup never panics the tile-io container reader.
    #[test]
    fn arbitrary_bytes_never_panic_tile_io(seed in any::<u64>(), len in 0usize..512) {
        const MAGIC: [u8; 8] = *b"WIRETEST";
        let _ = SectionReader::from_bytes(random_bytes(seed, len), MAGIC, 1);
    }
}

/// A section declaring a giant length inside a small container must be
/// rejected by bounds checks, not by attempting the allocation.
#[test]
fn lying_section_length_rejected_without_allocation() {
    const MAGIC: [u8; 8] = *b"WIRETEST";
    let mut w = SectionWriter::new(MAGIC, 1);
    w.section(7, b"tiny");
    let clean = w.into_bytes();
    // Find the section length word (after magic[8] + version[4] + tag[4])
    // and replace it with something absurd.
    let mut dirty = clean;
    let len_off = 8 + 4 + 4;
    dirty[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(SectionReader::from_bytes(dirty, MAGIC, 1).is_err());
}
