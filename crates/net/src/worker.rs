//! The tile worker: a process (or thread) that owns a shard of tiles
//! and executes kernel tasks on command.
//!
//! One worker serves many connections concurrently — the coordinator
//! opens separate exec, data, and heartbeat connections — each handled
//! by its own thread over the shared state. Heartbeats therefore keep
//! flowing while a kernel runs: a slow worker is *slow*, not dead, and
//! the failure detector can tell the difference.
//!
//! `Run` is idempotent: task ids land in a done-set, and a re-sent id
//! (the coordinator retrying after a lost reply) waits for / reuses the
//! first execution instead of corrupting read-modify-write kernels by
//! running them twice.
//!
//! Chaos hooks: [`WorkerOptions::die_after_tasks`] makes the worker die
//! at a deterministic kill-point — `die_hard` aborts the process
//! (SIGKILL-equivalent), otherwise it severs every connection and stops
//! serving, which is the in-process stand-in the property tests use.

use crate::error::NetError;
use crate::kernel::{run_task_on_map, Slot};
use crate::msg::{recv_msg, send_msg, Msg};
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Behavior knobs, mostly for chaos testing.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerOptions {
    /// Die when asked to run a task after this many completed ones.
    pub die_after_tasks: Option<u64>,
    /// When dying, abort the whole process (SIGKILL-equivalent) instead
    /// of severing connections.
    pub die_hard: bool,
    /// Sleep this long inside every task (slow-but-alive simulation).
    pub slow_task_ms: u64,
}

#[derive(Clone, Copy)]
struct RunCfg {
    run_id: u64,
    b: usize,
    ib: usize,
}

struct WorkerState {
    opts: WorkerOptions,
    slots: Mutex<HashMap<Slot, Box<[f64]>>>,
    cfg: Mutex<Option<RunCfg>>,
    done: Mutex<HashSet<u64>>,
    running: Mutex<HashSet<u64>>,
    tasks_run: AtomicU64,
    dead: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl WorkerState {
    fn die(&self) {
        if self.opts.die_hard {
            // The real thing: no destructors, no goodbyes — indistinguishable
            // from SIGKILL for every peer.
            std::process::abort();
        }
        self.die_soft();
    }

    /// Sever every connection and stop serving — the in-process
    /// SIGKILL stand-in.
    fn die_soft(&self) {
        self.dead.store(true, Ordering::SeqCst);
        for c in self.conns.lock().unwrap().iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Serve until orderly shutdown or a (soft) death. Blocks the caller;
/// `hqr worker` calls this directly, tests use [`spawn_local`].
pub fn serve(listener: TcpListener, opts: WorkerOptions) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let state = Arc::new(WorkerState {
        opts,
        slots: Mutex::new(HashMap::new()),
        cfg: Mutex::new(None),
        done: Mutex::new(HashSet::new()),
        running: Mutex::new(HashSet::new()),
        tasks_run: AtomicU64::new(0),
        dead: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
    });
    let mut handlers = Vec::new();
    while !state.dead.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    state.conns.lock().unwrap().push(clone);
                }
                let st = Arc::clone(&state);
                handlers.push(thread::spawn(move || handle_conn(stream, &st)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

fn handle_conn(mut stream: TcpStream, state: &Arc<WorkerState>) {
    loop {
        if state.dead.load(Ordering::SeqCst) {
            return;
        }
        let msg = match recv_msg(&mut stream, "request", Duration::ZERO) {
            Ok(m) => m,
            // Peer hung up, link severed, or the frame was corrupt beyond
            // trust — drop the connection either way.
            Err(_) => return,
        };
        let reply = match msg {
            Msg::Hello { run_id, mt: _, nt: _, b, ib } => {
                let mut cfg = state.cfg.lock().unwrap();
                let fresh = cfg.is_none_or(|c| c.run_id != run_id);
                if fresh {
                    // New run: forget the previous run's shard and dedup set.
                    state.slots.lock().unwrap().clear();
                    state.done.lock().unwrap().clear();
                    state.tasks_run.store(0, Ordering::SeqCst);
                }
                *cfg = Some(RunCfg { run_id, b: b as usize, ib: ib as usize });
                Msg::HelloOk
            }
            Msg::Put { fam, i, j, data } => match state.cfg.lock().unwrap().as_ref() {
                Some(cfg) if data.len() == cfg.b * cfg.b => {
                    state
                        .slots
                        .lock()
                        .unwrap()
                        .insert((fam, i as usize, j as usize), data.into_boxed_slice());
                    Msg::PutOk
                }
                Some(cfg) => Msg::Err {
                    detail: format!(
                        "put of {} floats does not match tile size {}",
                        data.len(),
                        cfg.b
                    ),
                },
                None => Msg::Err { detail: "put before hello".into() },
            },
            Msg::Get { fam, i, j } => {
                let slots = state.slots.lock().unwrap();
                match slots.get(&(fam, i as usize, j as usize)) {
                    Some(buf) => Msg::SlotData { fam, i, j, data: buf.to_vec() },
                    None => {
                        Msg::Err { detail: format!("no such slot {fam:?}({i},{j}) on this worker") }
                    }
                }
            }
            Msg::Run { task_id, task } => run_rpc(state, task_id, &task),
            Msg::Ping { seq } => Msg::Pong { seq },
            Msg::Die { hard } => {
                if hard {
                    std::process::abort();
                }
                state.die_soft();
                return;
            }
            Msg::Shutdown => {
                let _ = send_msg(&mut stream, &Msg::Bye);
                state.die_soft();
                return;
            }
            other => Msg::Err { detail: format!("unexpected message for a worker: {other:?}") },
        };
        if send_msg(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn run_rpc(state: &Arc<WorkerState>, task_id: u64, task: &hqr_runtime::Task) -> Msg {
    // Dedup / in-progress wait: a re-sent id never re-executes.
    loop {
        if state.done.lock().unwrap().contains(&task_id) {
            return Msg::Done { task_id };
        }
        let mut running = state.running.lock().unwrap();
        if !running.contains(&task_id) {
            running.insert(task_id);
            break;
        }
        drop(running);
        thread::sleep(Duration::from_millis(2));
    }
    // Kill-point check happens only for a *first* execution, so the
    // dedup path above can still acknowledge past work.
    if let Some(limit) = state.opts.die_after_tasks {
        if state.tasks_run.load(Ordering::SeqCst) >= limit {
            state.running.lock().unwrap().remove(&task_id);
            state.die();
            return Msg::Err { detail: "worker dying at kill-point".into() };
        }
    }
    let Some(cfg) = *state.cfg.lock().unwrap() else {
        state.running.lock().unwrap().remove(&task_id);
        return Msg::Err { detail: "run before hello".into() };
    };
    if state.opts.slow_task_ms > 0 {
        thread::sleep(Duration::from_millis(state.opts.slow_task_ms));
    }
    let result = {
        let mut slots = state.slots.lock().unwrap();
        run_task_on_map(&mut slots, task, cfg.b, cfg.ib)
    };
    state.running.lock().unwrap().remove(&task_id);
    match result {
        Ok(()) => {
            state.tasks_run.fetch_add(1, Ordering::SeqCst);
            state.done.lock().unwrap().insert(task_id);
            Msg::Done { task_id }
        }
        Err(e) => Msg::Err { detail: e.to_string() },
    }
}

/// An in-process worker for tests and the spawned-workers CLI mode.
pub struct LocalWorker {
    /// Address the worker listens on.
    pub addr: SocketAddr,
    handle: thread::JoinHandle<io::Result<()>>,
}

impl LocalWorker {
    /// Wait for the worker's serve loop to end (after [`shutdown`] or a
    /// soft death).
    pub fn join(self) -> io::Result<()> {
        self.handle.join().map_err(|_| io::Error::other("worker thread panicked"))?
    }
}

/// Bind `127.0.0.1:0` and serve on a background thread.
pub fn spawn_local(opts: WorkerOptions) -> io::Result<LocalWorker> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let handle = thread::spawn(move || serve(listener, opts));
    Ok(LocalWorker { addr, handle })
}

/// Orderly shutdown of a worker by address; errors are reported but a
/// dead worker is simply already shut down.
pub fn shutdown(addr: SocketAddr) -> Result<(), NetError> {
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_millis(500))
        .map_err(|e| NetError::Io(format!("connect {addr}: {e}")))?;
    let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
    send_msg(&mut s, &Msg::Shutdown)?;
    match recv_msg(&mut s, "bye", Duration::from_millis(500))? {
        Msg::Bye => Ok(()),
        other => Err(NetError::Proto(format!("expected Bye, got {other:?}"))),
    }
}
