//! Seeded, deterministic network-fault injection.
//!
//! Chaos tests need the *same* faults on every run: a plan hashes
//! `(seed, worker, seq)` with FNV-1a and converts the hash into a
//! uniform fraction, so whether RPC number `seq` to worker `worker` is
//! dropped or delayed is a pure function of the seed — the same scheme
//! the single-process executor's `FaultPlan` uses for kernel faults.
//!
//! Drops are modeled at the coordinator's send site as an instant
//! timeout (the frame never leaves, the retry ladder engages) so tests
//! do not have to sit out real deadlines; delays are real sleeps.
//! Severed links and killed workers are driven from the worker side
//! (`WorkerOptions::die_after_tasks` / `Msg::Die`), where all of a
//! process's connections can be cut at once.

use hqr_tile::io::{bytes_of_u64s, fnv1a64};
use std::time::Duration;

/// What the plan decrees for one RPC send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// The frame is lost; the caller sees a timeout.
    Drop,
    /// Deliver after the configured delay.
    Delay(Duration),
}

/// A deterministic schedule of drops and delays.
#[derive(Clone, Copy, Debug)]
pub struct NetFaultPlan {
    /// Seed for the fault hash.
    pub seed: u64,
    /// Fraction of RPCs dropped, in `[0, 1]`.
    pub drop_frac: f64,
    /// Fraction of RPCs delayed, in `[0, 1]` (evaluated after drops).
    pub delay_frac: f64,
    /// How long a delayed RPC waits.
    pub delay: Duration,
}

impl NetFaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        NetFaultPlan { seed: 0, drop_frac: 0.0, delay_frac: 0.0, delay: Duration::ZERO }
    }

    /// The action for RPC `seq` to `worker` — a pure function of
    /// `(seed, worker, seq)`.
    pub fn action(&self, worker: usize, seq: u64) -> FaultAction {
        if self.drop_frac <= 0.0 && self.delay_frac <= 0.0 {
            return FaultAction::Deliver;
        }
        let h = fnv1a64(&bytes_of_u64s(&[self.seed, worker as u64, seq]));
        // 53 high bits -> uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.drop_frac {
            FaultAction::Drop
        } else if u < self.drop_frac + self.delay_frac {
            FaultAction::Delay(self.delay)
        } else {
            FaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let p = NetFaultPlan {
            seed: 42,
            drop_frac: 0.3,
            delay_frac: 0.2,
            delay: Duration::from_millis(5),
        };
        for w in 0..4 {
            for seq in 0..64 {
                assert_eq!(p.action(w, seq), p.action(w, seq));
            }
        }
    }

    #[test]
    fn fractions_roughly_respected() {
        let p = NetFaultPlan { seed: 7, drop_frac: 0.25, delay_frac: 0.0, delay: Duration::ZERO };
        let drops = (0..4000).filter(|&s| p.action(0, s) == FaultAction::Drop).count();
        assert!((800..1200).contains(&drops), "25% of 4000 ≈ 1000, got {drops}");
    }

    #[test]
    fn none_never_injects() {
        let p = NetFaultPlan::none();
        assert!((0..256).all(|s| p.action(3, s) == FaultAction::Deliver));
    }
}
