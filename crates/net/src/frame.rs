//! Length-prefixed frames: `len: u64 LE | payload[len]`.
//!
//! The frame layer only delimits; integrity comes from the payload, which
//! is always a checksummed `hqr_tile::io` sectioned container (see
//! [`crate::msg`]). The length is validated against [`MAX_FRAME`] *before*
//! any allocation, so a hostile or corrupt length word cannot blow up the
//! allocator, and short reads surface as typed errors.

use crate::error::NetError;
use std::io::{Read, Write};
use std::time::Duration;

/// Upper bound on a frame payload (256 MiB — far above the largest tile
/// message we ever send, far below anything that could hurt).
pub const MAX_FRAME: u64 = 1 << 28;

/// Write one frame. Flushes, so the peer's blocking read returns.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_FRAME {
        return Err(NetError::FrameTooLarge { declared: payload.len() as u64, cap: MAX_FRAME });
    }
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf).map_err(|e| NetError::from_io(e, "frame write", Duration::ZERO))?;
    w.flush().map_err(|e| NetError::from_io(e, "frame flush", Duration::ZERO))?;
    Ok(())
}

/// Read one frame under the caller-configured socket deadline.
///
/// `what` names the thing being awaited (for timeout diagnostics);
/// `deadline` is reported in the error, the enforcement is the socket's
/// own read timeout.
pub fn read_frame(r: &mut impl Read, what: &str, deadline: Duration) -> Result<Vec<u8>, NetError> {
    let mut len_bytes = [0u8; 8];
    read_exact(r, &mut len_bytes, what, deadline)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(NetError::FrameTooLarge { declared: len, cap: MAX_FRAME });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, what, deadline)?;
    Ok(payload)
}

fn read_exact(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &str,
    deadline: Duration,
) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(NetError::Io(format!(
                    "{what}: connection closed mid-frame ({filled}/{} bytes)",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io(e, what, deadline)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r, "t", Duration::ZERO).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, "t", Duration::ZERO).unwrap(), b"");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u64::MAX.to_le_bytes());
        wire.extend_from_slice(b"junk");
        let err = read_frame(&mut wire.as_slice(), "t", Duration::ZERO).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { declared: u64::MAX, .. }), "{err}");
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        for cut in 0..wire.len() {
            let err = read_frame(&mut &wire[..cut], "t", Duration::ZERO).unwrap_err();
            assert!(
                matches!(err, NetError::Io(_)),
                "cut at {cut}: expected Io(closed mid-frame), got {err}"
            );
        }
    }

    #[test]
    fn writer_refuses_oversized_payload_without_allocating_wire() {
        // Can't build a >256MiB buffer cheaply, so check the guard directly.
        struct Counted(usize);
        impl Write for Counted {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0 += b.len();
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // MAX_FRAME itself is allowed; MAX_FRAME+1 must be refused. Use a
        // zero-copy view to avoid materializing 256MiB twice: a Vec of that
        // size is fine in CI.
        let big = vec![0u8; (MAX_FRAME + 1) as usize];
        let mut sink = Counted(0);
        let err = write_frame(&mut sink, &big).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }));
        assert_eq!(sink.0, 0, "nothing may hit the wire");
    }
}
