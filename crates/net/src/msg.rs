//! Wire messages: checksummed sectioned containers inside length frames.
//!
//! Every message is one `hqr_tile::io` sectioned container — the same
//! `magic | version | (tag,len,payload)* | FNV-1a trailer` format the
//! checkpoint and journal files use on disk — carried in one
//! length-prefixed frame. Decoding therefore validates magic, version,
//! per-section bounds, and the whole-container checksum before any field
//! is believed; corruption anywhere yields a typed [`NetError::Frame`],
//! never a panic. Dispatch is by a kind word, mirroring the job-service
//! protocol in `hqr-cli`.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame};
use hqr_kernels::KernelKind;
use hqr_runtime::task::SlotFamily;
use hqr_runtime::Task;
use hqr_tile::io::{
    bytes_of_f64s, bytes_of_u64s, f64s_of_bytes, u64s_of_bytes, SectionReader, SectionWriter,
};
use std::io::{Read, Write};
use std::time::Duration;

/// Container magic for every net message.
pub const NET_MAGIC: [u8; 8] = *b"HQRNETV0";
/// Protocol version; bumped on any incompatible change.
pub const NET_VERSION: u32 = 1;

const TAG_KIND: u32 = 1;
const TAG_META: u32 = 2;
const TAG_DATA: u32 = 3;
const TAG_TEXT: u32 = 4;

const KIND_HELLO: u64 = 1;
const KIND_HELLO_OK: u64 = 2;
const KIND_PUT: u64 = 3;
const KIND_PUT_OK: u64 = 4;
const KIND_GET: u64 = 5;
const KIND_SLOT_DATA: u64 = 6;
const KIND_RUN: u64 = 7;
const KIND_DONE: u64 = 8;
const KIND_PING: u64 = 9;
const KIND_PONG: u64 = 10;
const KIND_DIE: u64 = 11;
const KIND_SHUTDOWN: u64 = 12;
const KIND_BYE: u64 = 13;
const KIND_ERR: u64 = 14;

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Coordinator introduces a run to a worker.
    Hello {
        /// Identifies the run; a worker serves one run at a time.
        run_id: u64,
        /// Tile rows of the matrix.
        mt: u64,
        /// Tile columns of the matrix.
        nt: u64,
        /// Tile side length.
        b: u64,
        /// Inner block size (`ib == b` selects unblocked kernels).
        ib: u64,
    },
    /// Worker acknowledges the run configuration.
    HelloOk,
    /// Install one slot's `b*b` buffer on the worker.
    Put {
        /// Slot family.
        fam: SlotFamily,
        /// Tile row.
        i: u64,
        /// Tile column.
        j: u64,
        /// The buffer, exactly `b*b` doubles.
        data: Vec<f64>,
    },
    /// Put acknowledged.
    PutOk,
    /// Fetch one slot's buffer.
    Get {
        /// Slot family.
        fam: SlotFamily,
        /// Tile row.
        i: u64,
        /// Tile column.
        j: u64,
    },
    /// Reply to [`Msg::Get`].
    SlotData {
        /// Slot family.
        fam: SlotFamily,
        /// Tile row.
        i: u64,
        /// Tile column.
        j: u64,
        /// The buffer.
        data: Vec<f64>,
    },
    /// Execute one kernel task (idempotent: re-sends of the same
    /// `task_id` wait for / reuse the first execution).
    Run {
        /// Coordinator's task index — the dedup key.
        task_id: u64,
        /// The kernel task itself.
        task: Task,
    },
    /// Task finished.
    Done {
        /// Echo of the request's task id.
        task_id: u64,
    },
    /// Heartbeat probe.
    Ping {
        /// Monotonic sequence number.
        seq: u64,
    },
    /// Heartbeat reply.
    Pong {
        /// Echo of the probe's sequence number.
        seq: u64,
    },
    /// Chaos kill switch: `hard` aborts the process (SIGKILL-equivalent);
    /// otherwise the worker severs every connection and stops serving.
    Die {
        /// Abort the whole process instead of severing.
        hard: bool,
    },
    /// Orderly shutdown request.
    Shutdown,
    /// Orderly shutdown acknowledged.
    Bye,
    /// Application-level failure report.
    Err {
        /// Human-readable reason.
        detail: String,
    },
}

fn fam_code(f: SlotFamily) -> u64 {
    match f {
        SlotFamily::A => 0,
        SlotFamily::Vg => 1,
        SlotFamily::Tg => 2,
        SlotFamily::Tk => 3,
    }
}

fn fam_of(code: u64) -> Result<SlotFamily, NetError> {
    Ok(match code {
        0 => SlotFamily::A,
        1 => SlotFamily::Vg,
        2 => SlotFamily::Tg,
        3 => SlotFamily::Tk,
        other => return Err(NetError::Proto(format!("unknown slot family code {other}"))),
    })
}

fn kind_code(k: KernelKind) -> u64 {
    match k {
        KernelKind::Geqrt => 0,
        KernelKind::Unmqr => 1,
        KernelKind::Tsqrt => 2,
        KernelKind::Tsmqr => 3,
        KernelKind::Ttqrt => 4,
        KernelKind::Ttmqr => 5,
    }
}

fn kind_of(code: u64) -> Result<KernelKind, NetError> {
    Ok(match code {
        0 => KernelKind::Geqrt,
        1 => KernelKind::Unmqr,
        2 => KernelKind::Tsqrt,
        3 => KernelKind::Tsmqr,
        4 => KernelKind::Ttqrt,
        5 => KernelKind::Ttmqr,
        other => return Err(NetError::Proto(format!("unknown kernel kind code {other}"))),
    })
}

fn u16_of(v: u64, what: &str) -> Result<u16, NetError> {
    u16::try_from(v).map_err(|_| NetError::Proto(format!("{what} {v} out of u16 range")))
}

impl Msg {
    /// Encode into one checksummed container.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SectionWriter::new(NET_MAGIC, NET_VERSION);
        match self {
            Msg::Hello { run_id, mt, nt, b, ib } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_HELLO]));
                w.section(TAG_META, &bytes_of_u64s(&[*run_id, *mt, *nt, *b, *ib]));
            }
            Msg::HelloOk => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_HELLO_OK]));
            }
            Msg::Put { fam, i, j, data } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_PUT]));
                w.section(TAG_META, &bytes_of_u64s(&[fam_code(*fam), *i, *j]));
                w.section(TAG_DATA, &bytes_of_f64s(data));
            }
            Msg::PutOk => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_PUT_OK]));
            }
            Msg::Get { fam, i, j } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_GET]));
                w.section(TAG_META, &bytes_of_u64s(&[fam_code(*fam), *i, *j]));
            }
            Msg::SlotData { fam, i, j, data } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_SLOT_DATA]));
                w.section(TAG_META, &bytes_of_u64s(&[fam_code(*fam), *i, *j]));
                w.section(TAG_DATA, &bytes_of_f64s(data));
            }
            Msg::Run { task_id, task } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_RUN]));
                w.section(
                    TAG_META,
                    &bytes_of_u64s(&[
                        *task_id,
                        kind_code(task.kind),
                        task.k as u64,
                        task.i as u64,
                        task.piv as u64,
                        task.j as u64,
                    ]),
                );
            }
            Msg::Done { task_id } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_DONE]));
                w.section(TAG_META, &bytes_of_u64s(&[*task_id]));
            }
            Msg::Ping { seq } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_PING]));
                w.section(TAG_META, &bytes_of_u64s(&[*seq]));
            }
            Msg::Pong { seq } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_PONG]));
                w.section(TAG_META, &bytes_of_u64s(&[*seq]));
            }
            Msg::Die { hard } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_DIE]));
                w.section(TAG_META, &bytes_of_u64s(&[u64::from(*hard)]));
            }
            Msg::Shutdown => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_SHUTDOWN]));
            }
            Msg::Bye => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_BYE]));
            }
            Msg::Err { detail } => {
                w.section(TAG_KIND, &bytes_of_u64s(&[KIND_ERR]));
                w.section(TAG_TEXT, detail.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decode a container, validating checksum and structure throughout.
    pub fn decode(bytes: Vec<u8>) -> Result<Msg, NetError> {
        let r = SectionReader::from_bytes(bytes, NET_MAGIC, NET_VERSION)?;
        let kind = *u64s_of_bytes(TAG_KIND, r.require(TAG_KIND)?)?
            .first()
            .ok_or_else(|| NetError::Proto("empty kind section".into()))?;
        let meta = |n: usize| -> Result<Vec<u64>, NetError> {
            let v = u64s_of_bytes(TAG_META, r.require(TAG_META)?)?;
            if v.len() < n {
                return Err(NetError::Proto(format!(
                    "meta section has {} words, message kind {kind} needs {n}",
                    v.len()
                )));
            }
            Ok(v)
        };
        Ok(match kind {
            KIND_HELLO => {
                let m = meta(5)?;
                Msg::Hello { run_id: m[0], mt: m[1], nt: m[2], b: m[3], ib: m[4] }
            }
            KIND_HELLO_OK => Msg::HelloOk,
            KIND_PUT => {
                let m = meta(3)?;
                let data = f64s_of_bytes(TAG_DATA, r.require(TAG_DATA)?)?;
                Msg::Put { fam: fam_of(m[0])?, i: m[1], j: m[2], data }
            }
            KIND_PUT_OK => Msg::PutOk,
            KIND_GET => {
                let m = meta(3)?;
                Msg::Get { fam: fam_of(m[0])?, i: m[1], j: m[2] }
            }
            KIND_SLOT_DATA => {
                let m = meta(3)?;
                let data = f64s_of_bytes(TAG_DATA, r.require(TAG_DATA)?)?;
                Msg::SlotData { fam: fam_of(m[0])?, i: m[1], j: m[2], data }
            }
            KIND_RUN => {
                let m = meta(6)?;
                let task = Task {
                    kind: kind_of(m[1])?,
                    k: u16_of(m[2], "k")?,
                    i: u16_of(m[3], "i")?,
                    piv: u16_of(m[4], "piv")?,
                    j: u16_of(m[5], "j")?,
                };
                Msg::Run { task_id: m[0], task }
            }
            KIND_DONE => Msg::Done { task_id: meta(1)?[0] },
            KIND_PING => Msg::Ping { seq: meta(1)?[0] },
            KIND_PONG => Msg::Pong { seq: meta(1)?[0] },
            KIND_DIE => Msg::Die { hard: meta(1)?[0] != 0 },
            KIND_SHUTDOWN => Msg::Shutdown,
            KIND_BYE => Msg::Bye,
            KIND_ERR => {
                let text = r.require(TAG_TEXT)?;
                Msg::Err {
                    detail: String::from_utf8(text.to_vec())
                        .map_err(|_| NetError::Proto("error detail is not UTF-8".into()))?,
                }
            }
            other => return Err(NetError::Proto(format!("unknown message kind {other}"))),
        })
    }
}

/// Send one message as one frame.
pub fn send_msg(w: &mut impl Write, msg: &Msg) -> Result<(), NetError> {
    write_frame(w, &msg.encode())
}

/// Receive one message under the socket's configured read deadline.
pub fn recv_msg(r: &mut impl Read, what: &str, deadline: Duration) -> Result<Msg, NetError> {
    Msg::decode(read_frame(r, what, deadline)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Hello { run_id: 7, mt: 8, nt: 4, b: 16, ib: 8 },
            Msg::HelloOk,
            Msg::Put { fam: SlotFamily::A, i: 3, j: 1, data: vec![1.5, -0.0, f64::MAX] },
            Msg::PutOk,
            Msg::Get { fam: SlotFamily::Tk, i: 0, j: 0 },
            Msg::SlotData { fam: SlotFamily::Vg, i: 2, j: 2, data: vec![0.25; 9] },
            Msg::Run { task_id: 42, task: Task::update(1, 3, 2, 5, true) },
            Msg::Done { task_id: 42 },
            Msg::Ping { seq: 9 },
            Msg::Pong { seq: 9 },
            Msg::Die { hard: true },
            Msg::Die { hard: false },
            Msg::Shutdown,
            Msg::Bye,
            Msg::Err { detail: "no such slot".into() },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for m in samples() {
            let decoded = Msg::decode(m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn run_preserves_kernel_kind_exactly() {
        for task in [
            Task::geqrt(0, 0),
            Task::unmqr(0, 0, 1),
            Task::kill(0, 1, 0, true),
            Task::kill(0, 1, 0, false),
            Task::update(0, 1, 0, 1, true),
            Task::update(0, 1, 0, 1, false),
        ] {
            let m = Msg::Run { task_id: 1, task };
            assert_eq!(Msg::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn bit_flips_are_typed_errors_never_panics() {
        for m in samples() {
            let clean = m.encode();
            for byte in 0..clean.len() {
                for bit in [0u8, 3, 7] {
                    let mut dirty = clean.clone();
                    dirty[byte] ^= 1 << bit;
                    // Magic/version flips fail structurally; any other flip
                    // fails the FNV-1a trailer (each absorb step is
                    // injective, so one flipped byte always changes the
                    // hash). Either way: typed error, no panic.
                    assert!(Msg::decode(dirty).is_err(), "flip at {byte}.{bit} accepted");
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error() {
        let clean = Msg::Put { fam: SlotFamily::A, i: 1, j: 2, data: vec![3.0; 16] }.encode();
        for cut in 0..clean.len() {
            assert!(Msg::decode(clean[..cut].to_vec()).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let clean = Msg::Ping { seq: 1 }.encode();
        let mut bad_magic = clean.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Msg::decode(bad_magic).is_err());
    }
}
