//! Distributed execution backend for the HQR reproduction.
//!
//! The paper's algorithms target a *cluster* — the hierarchical
//! elimination trees exist to minimize inter-node communication — and
//! this crate supplies the cluster: multi-process tile workers holding
//! 2D block-cyclic shards, a coordinator driving the same
//! elimination-list DAG the in-process runtime and the simulator use,
//! and tiles moving as checksummed `hqr_tile::io` containers inside
//! length-prefixed TCP frames.
//!
//! Robustness is the design center, extending the single-process
//! fault-tolerance contract across process boundaries:
//!
//! * every RPC has a deadline and a capped decorrelated-jitter retry
//!   ladder ([`hqr_runtime::RetryPolicy`]);
//! * corrupt, truncated, or oversized frames surface as typed
//!   [`NetError`]s — never panics, never unbounded allocations;
//! * workers are supervised over dedicated heartbeat connections, so a
//!   slow worker is distinguishable from a dead one;
//! * a confirmed-dead worker triggers lineage-based recovery
//!   ([`hqr_runtime::lineage`]): lost slot versions are re-executed
//!   locally from the pristine input and re-placed on survivors, and the
//!   finished factorization is bitwise-identical to a fault-free run;
//! * seeded drop/delay injection ([`NetFaultPlan`]) plus deterministic
//!   worker kill-points ([`WorkerOptions`]) make all of the above
//!   chaos-testable reproducibly.

pub mod calib;
pub mod coord;
pub mod error;
pub mod fault;
pub mod frame;
pub mod kernel;
pub mod msg;
pub mod worker;

pub use calib::{measure_loopback, CalibSample, Calibration};
pub use coord::{factorize, shutdown_workers, DistConfig, DistReport, RecoveryEvent};
pub use error::NetError;
pub use fault::{FaultAction, NetFaultPlan};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use msg::{recv_msg, send_msg, Msg, NET_MAGIC, NET_VERSION};
pub use worker::{serve, shutdown, spawn_local, LocalWorker, WorkerOptions};
