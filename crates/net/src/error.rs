//! Typed errors for the distributed backend.
//!
//! Everything the network can do to us — truncation, corruption, stalls,
//! peers dying mid-sentence — surfaces as a [`NetError`] variant, never a
//! panic. The framing layer leans on `hqr_tile::io`'s checksummed
//! container, so wire corruption arrives pre-classified as a
//! [`BinFormatError`].

use hqr_tile::io::BinFormatError;
use std::fmt;
use std::time::Duration;

/// Any failure of the distributed transport or protocol.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect refused, reset, broken pipe, ...).
    Io(String),
    /// A deadline elapsed waiting for a peer.
    Timeout {
        /// What we were waiting for.
        what: String,
        /// The deadline that elapsed.
        after: Duration,
    },
    /// The frame arrived but its payload failed container validation
    /// (bad magic/version, truncated section, checksum mismatch, ...).
    Frame(BinFormatError),
    /// A frame declared a length beyond the protocol cap — rejected
    /// before any allocation.
    FrameTooLarge {
        /// Length the peer declared.
        declared: u64,
        /// The cap it exceeded.
        cap: u64,
    },
    /// The peer spoke valid containers but violated the protocol
    /// (unknown kind word, wrong reply for the request, missing field).
    Proto(String),
    /// The peer reported an application-level error.
    Remote(String),
    /// A worker was condemned (heartbeat timeout or RPC failure after
    /// retries) and the operation cannot proceed on it.
    WorkerDead {
        /// Index of the condemned worker.
        worker: usize,
        /// Why it was condemned.
        reason: String,
    },
    /// Worker-loss recovery itself failed (no survivors, lineage error).
    Recovery(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Timeout { what, after } => {
                write!(f, "timed out after {after:?} waiting for {what}")
            }
            NetError::Frame(e) => write!(f, "malformed frame: {e}"),
            NetError::FrameTooLarge { declared, cap } => {
                write!(f, "frame declares {declared} bytes, protocol cap is {cap}")
            }
            NetError::Proto(e) => write!(f, "protocol violation: {e}"),
            NetError::Remote(e) => write!(f, "peer reported error: {e}"),
            NetError::WorkerDead { worker, reason } => {
                write!(f, "worker {worker} condemned: {reason}")
            }
            NetError::Recovery(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<BinFormatError> for NetError {
    fn from(e: BinFormatError) -> Self {
        NetError::Frame(e)
    }
}

impl NetError {
    /// Classify an `io::Error` from a socket read/write under a deadline.
    pub fn from_io(e: std::io::Error, what: &str, deadline: Duration) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                NetError::Timeout { what: what.to_string(), after: deadline }
            }
            _ => NetError::Io(format!("{what}: {e}")),
        }
    }

    /// True for failures worth retrying on a fresh connection (timeouts
    /// and socket errors); protocol violations and malformed frames are
    /// not — the peer is confused, not slow.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::Timeout { .. })
    }
}
