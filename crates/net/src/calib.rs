//! Loopback transfer measurement for LogGP calibration.
//!
//! The simulator's `LinkModel` prices a transfer as `L + n/BW`. This
//! module measures real frames over a loopback TCP socket across a
//! range of payload sizes and least-squares fits `(L, BW)`, so the
//! simulator can run with parameters calibrated against the actual
//! transport instead of the paper's quoted InfiniBand figures.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct CalibSample {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Best observed one-way seconds (half the minimum round trip).
    pub secs: f64,
}

/// A fitted latency/bandwidth pair plus the points behind it.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Fitted per-message latency, seconds.
    pub latency: f64,
    /// Fitted bandwidth, bytes/second.
    pub bandwidth: f64,
    /// The measurements the fit came from.
    pub samples: Vec<CalibSample>,
}

impl Calibration {
    /// Least-squares fit of `secs = L + bytes/BW` over the samples.
    pub fn fit(samples: Vec<CalibSample>) -> Self {
        let n = samples.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for s in &samples {
            let x = s.bytes as f64;
            sx += x;
            sy += s.secs;
            sxx += x * x;
            sxy += x * s.secs;
        }
        let denom = n * sxx - sx * sx;
        let (slope, intercept) = if denom.abs() < f64::EPSILON || samples.len() < 2 {
            (0.0, if samples.is_empty() { 0.0 } else { sy / n })
        } else {
            let m = (n * sxy - sx * sy) / denom;
            (m, (sy - m * sx) / n)
        };
        Calibration {
            latency: intercept.max(0.0),
            bandwidth: if slope > 0.0 { 1.0 / slope } else { f64::INFINITY },
            samples,
        }
    }

    /// The model's prediction for a payload of `bytes`.
    pub fn predict(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// Measure loopback round trips for each payload size (best of `reps`)
/// and fit a [`Calibration`]. The echo peer runs on a background thread
/// so this works anywhere the tests do.
pub fn measure_loopback(sizes: &[usize], reps: usize) -> Result<Calibration, NetError> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| NetError::Io(format!("bind: {e}")))?;
    let addr = listener.local_addr().map_err(|e| NetError::Io(e.to_string()))?;
    let echo = thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            let _ = s.set_nodelay(true);
            loop {
                match read_frame(&mut s, "echo", Duration::ZERO) {
                    Ok(p) => {
                        if write_frame(&mut s, &p).is_err() || p.is_empty() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    });
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| NetError::Io(format!("connect: {e}")))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| NetError::Io(e.to_string()))?;
    let mut samples = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let payload = vec![0x5Au8; size.max(1)];
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            write_frame(&mut stream, &payload)?;
            let back = read_frame(&mut stream, "echo reply", Duration::from_secs(10))?;
            let rtt = t0.elapsed().as_secs_f64();
            if back.len() != payload.len() {
                return Err(NetError::Proto("echo length mismatch".into()));
            }
            best = best.min(rtt / 2.0);
        }
        samples.push(CalibSample { bytes: payload.len() as u64, secs: best });
    }
    // Empty frame tells the echo thread to stop after echoing.
    let _ = write_frame(&mut stream, &[]);
    let _ = read_frame(&mut stream, "final echo", Duration::from_secs(2));
    let _ = stream.flush();
    let _ = echo.join();
    Ok(Calibration::fit(samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_linear_model() {
        // secs = 1e-4 + bytes / 1e9
        let samples: Vec<CalibSample> = [1_000u64, 10_000, 100_000, 1_000_000]
            .iter()
            .map(|&b| CalibSample { bytes: b, secs: 1e-4 + b as f64 / 1e9 })
            .collect();
        let c = Calibration::fit(samples);
        assert!((c.latency - 1e-4).abs() < 1e-9, "latency {}", c.latency);
        assert!((c.bandwidth - 1e9).abs() / 1e9 < 1e-6, "bandwidth {}", c.bandwidth);
        assert!((c.predict(50_000.0) - (1e-4 + 5e-5)).abs() < 1e-9);
    }

    #[test]
    fn fit_handles_degenerate_inputs() {
        let flat = Calibration::fit(vec![CalibSample { bytes: 8, secs: 1e-5 }]);
        assert!(flat.bandwidth.is_infinite());
        assert!(flat.latency > 0.0);
        let empty = Calibration::fit(Vec::new());
        assert_eq!(empty.latency, 0.0);
    }

    #[test]
    fn loopback_measurement_produces_positive_numbers() {
        let c = measure_loopback(&[64, 4096, 65_536], 3).unwrap();
        assert_eq!(c.samples.len(), 3);
        assert!(c.samples.iter().all(|s| s.secs > 0.0));
        assert!(c.bandwidth > 0.0);
    }
}
