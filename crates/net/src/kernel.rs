//! Worker-side kernel dispatch over an owned slot map.
//!
//! A worker holds its shard as `HashMap<Slot, Box<[f64]>>`. To run a
//! task it takes every distinct slot the task touches *out* of the map,
//! calls exactly the kernel sequence `hqr_runtime::store::TileStore`
//! would (same functions, same argument order, same `ib` gate — the
//! bitwise-parity guarantee rests on this), and reinserts the buffers.
//! Distinct slots are distinct boxes, so the dispatch is safe code: no
//! raw pointers, no aliasing argument to make.

use crate::error::NetError;
use hqr_kernels::blocked::{geqrt_ib, tsmqr_ib, tsqrt_ib, ttmqr_ib, ttqrt_ib, unmqr_ib};
use hqr_kernels::{geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr, KernelKind, Trans};
use hqr_runtime::task::SlotFamily;
use hqr_runtime::Task;
use std::collections::HashMap;

/// A slot coordinate, as in `hqr_runtime::lineage`.
pub type Slot = (SlotFamily, usize, usize);

/// Execute `t` against `slots`. Factor-family *write* slots are created
/// zero-filled on demand (matching `TFactors::allocate_for`); a missing
/// `A`-family operand is a typed error — the coordinator failed to stage
/// an input.
pub fn run_task_on_map(
    slots: &mut HashMap<Slot, Box<[f64]>>,
    t: &Task,
    b: usize,
    ib: usize,
) -> Result<(), NetError> {
    let (k, i, piv, j) = (t.k as usize, t.i as usize, t.piv as usize, t.j as usize);
    // Take every distinct slot out of the map as an owned buffer.
    let mut need: Vec<Slot> = t.writes();
    for s in t.reads() {
        if !need.contains(&s) {
            need.push(s);
        }
    }
    let writes = t.writes();
    let mut held: HashMap<Slot, Box<[f64]>> = HashMap::with_capacity(need.len());
    for s in &need {
        let buf = match slots.remove(s) {
            Some(buf) => buf,
            // Factor outputs start life zeroed, exactly as
            // TFactors::allocate_for zero-fills them.
            None if s.0 != SlotFamily::A && writes.contains(s) => {
                vec![0.0; b * b].into_boxed_slice()
            }
            None => {
                // Put everything back before failing.
                slots.extend(held);
                return Err(NetError::Remote(format!(
                    "task {} needs slot {:?}({},{}) which this worker does not hold",
                    t.label(),
                    s.0,
                    s.1,
                    s.2
                )));
            }
        };
        if buf.len() != b * b {
            slots.extend(held);
            slots.insert(*s, buf);
            return Err(NetError::Remote(format!(
                "slot {:?}({},{}) has wrong size for tile size {b}",
                s.0, s.1, s.2
            )));
        }
        held.insert(*s, buf);
    }
    // Pull the operands out of `held` (distinct keys -> distinct boxes).
    macro_rules! take {
        ($s:expr) => {
            held.remove(&$s).expect("operand collected above")
        };
    }
    let blocked = ib < b;
    match t.kind {
        KernelKind::Geqrt => {
            let mut tile = take!((SlotFamily::A, i, k));
            let mut vg = take!((SlotFamily::Vg, i, k));
            let mut tg = take!((SlotFamily::Tg, i, k));
            if blocked {
                geqrt_ib(b, ib, &mut tile, &mut tg);
            } else {
                geqrt(b, &mut tile, &mut tg);
            }
            vg.copy_from_slice(&tile);
            held.insert((SlotFamily::A, i, k), tile);
            held.insert((SlotFamily::Vg, i, k), vg);
            held.insert((SlotFamily::Tg, i, k), tg);
        }
        KernelKind::Unmqr => {
            let vg = take!((SlotFamily::Vg, i, k));
            let tg = take!((SlotFamily::Tg, i, k));
            let mut a = take!((SlotFamily::A, i, j));
            if blocked {
                unmqr_ib(b, ib, &vg, &tg, &mut a, Trans::Trans);
            } else {
                unmqr(b, &vg, &tg, &mut a, Trans::Trans);
            }
            held.insert((SlotFamily::Vg, i, k), vg);
            held.insert((SlotFamily::Tg, i, k), tg);
            held.insert((SlotFamily::A, i, j), a);
        }
        KernelKind::Tsqrt | KernelKind::Ttqrt => {
            let mut top = take!((SlotFamily::A, piv, k));
            let mut bot = take!((SlotFamily::A, i, k));
            let mut tk = take!((SlotFamily::Tk, i, k));
            match (t.kind, blocked) {
                (KernelKind::Tsqrt, true) => tsqrt_ib(b, ib, &mut top, &mut bot, &mut tk),
                (KernelKind::Tsqrt, false) => tsqrt(b, &mut top, &mut bot, &mut tk),
                (_, true) => ttqrt_ib(b, ib, &mut top, &mut bot, &mut tk),
                (_, false) => ttqrt(b, &mut top, &mut bot, &mut tk),
            }
            held.insert((SlotFamily::A, piv, k), top);
            held.insert((SlotFamily::A, i, k), bot);
            held.insert((SlotFamily::Tk, i, k), tk);
        }
        KernelKind::Tsmqr | KernelKind::Ttmqr => {
            let v2 = take!((SlotFamily::A, i, k));
            let tk = take!((SlotFamily::Tk, i, k));
            let mut top = take!((SlotFamily::A, piv, j));
            let mut bot = take!((SlotFamily::A, i, j));
            match (t.kind, blocked) {
                (KernelKind::Tsmqr, true) => {
                    tsmqr_ib(b, ib, &v2, &tk, &mut top, &mut bot, Trans::Trans)
                }
                (KernelKind::Tsmqr, false) => tsmqr(b, &v2, &tk, &mut top, &mut bot, Trans::Trans),
                (_, true) => ttmqr_ib(b, ib, &v2, &tk, &mut top, &mut bot, Trans::Trans),
                (_, false) => ttmqr(b, &v2, &tk, &mut top, &mut bot, Trans::Trans),
            }
            held.insert((SlotFamily::A, i, k), v2);
            held.insert((SlotFamily::Tk, i, k), tk);
            held.insert((SlotFamily::A, piv, j), top);
            held.insert((SlotFamily::A, i, j), bot);
        }
    }
    slots.extend(held);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_runtime::{execute_serial, ElimOp, TaskGraph};
    use hqr_tile::TiledMatrix;

    /// Running a whole DAG through the map dispatcher must match the
    /// raw-pointer TileStore path bit for bit — this is the foundation of
    /// the distributed backend's parity guarantee.
    #[test]
    fn map_dispatch_matches_tilestore_bitwise() {
        let (mt, nt, b) = (4, 3, 8);
        let mut elims = Vec::new();
        for k in 0..nt {
            for i in (k + 1)..mt {
                elims.push(ElimOp::new(k as u32, i as u32, k as u32, i % 2 == 0));
            }
        }
        let g = TaskGraph::build(mt, nt, b, &elims);
        let input = TiledMatrix::random(mt, nt, b, 3);

        let mut reference = input.clone();
        let f = execute_serial(&g, &mut reference);

        let mut slots: HashMap<Slot, Box<[f64]>> = HashMap::new();
        for j in 0..nt {
            for i in 0..mt {
                slots.insert((SlotFamily::A, i, j), input.tile(i, j).to_vec().into_boxed_slice());
            }
        }
        for t in g.tasks() {
            run_task_on_map(&mut slots, t, b, b).unwrap();
        }
        let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for j in 0..nt {
            for i in 0..mt {
                assert_eq!(
                    bits(&slots[&(SlotFamily::A, i, j)]),
                    bits(reference.tile(i, j)),
                    "tile ({i},{j}) diverged"
                );
            }
        }
        // Spot-check factor families too.
        for t in g.tasks() {
            for (fam, i, k) in t.writes() {
                let truth = match fam {
                    SlotFamily::A => continue,
                    SlotFamily::Vg => f.vg(i, k).unwrap(),
                    SlotFamily::Tg => f.tg(i, k).unwrap(),
                    SlotFamily::Tk => f.tk(i, k).unwrap(),
                };
                assert_eq!(bits(&slots[&(fam, i, k)]), bits(truth), "{fam:?}({i},{k}) diverged");
            }
        }
    }

    #[test]
    fn missing_a_operand_is_a_typed_error_and_map_unchanged() {
        let mut slots: HashMap<Slot, Box<[f64]>> = HashMap::new();
        let t = Task::geqrt(0, 0);
        let err = run_task_on_map(&mut slots, &t, 4, 4).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        assert!(slots.is_empty());
    }

    #[test]
    fn wrong_sized_slot_rejected() {
        let mut slots: HashMap<Slot, Box<[f64]>> = HashMap::new();
        slots.insert((SlotFamily::A, 0, 0), vec![0.0; 5].into_boxed_slice());
        let err = run_task_on_map(&mut slots, &Task::geqrt(0, 0), 4, 4).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        assert_eq!(slots.len(), 1, "buffer must be reinserted");
    }
}
