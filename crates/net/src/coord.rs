//! The distributed coordinator: drives an elimination-list DAG across
//! TCP tile workers, supervises them, and recovers from their deaths.
//!
//! ## Shard ownership and data movement
//!
//! Tiles are distributed 2D block-cyclically: tile `(i, j)` belongs to
//! grid rank `owner(i%p, j%q)`, and a `rank → worker` table maps ranks
//! onto live processes (initially the identity; recovery remaps a dead
//! worker's ranks onto survivors). Tasks execute on the worker owning
//! their affinity tile (owner-computes); operand slots the executing
//! worker does not hold are relayed — `Get` from the current holder,
//! `Put` to the executor — before the `Run` RPC. The coordinator tracks
//! for every slot the set of workers holding its *current* version:
//! a task's writes make its worker the sole holder; its reads add the
//! worker to the holder set.
//!
//! ## Failure detection and recovery
//!
//! Every worker is watched by a dedicated heartbeat connection; pings
//! that go unanswered for longer than `hb_timeout` condemn the worker.
//! RPC failures that survive the retry ladder condemn their target too
//! (partitions are treated as fail-stop: once condemned, a worker is
//! never spoken to again, so a revived partition cannot corrupt the
//! run). Condemnation triggers recovery: the dead worker's ranks are
//! remapped onto survivors, its queued/in-flight tasks are requeued,
//! and every slot whose holders all died is rebuilt *locally* by
//! lineage re-execution (`hqr_runtime::lineage`) from the pristine
//! input, then pushed to its new owner. Kernels are deterministic, so
//! the finished factorization is bitwise-identical to a fault-free run.

use crate::error::NetError;
use crate::fault::{FaultAction, NetFaultPlan};
use crate::kernel::Slot;
use crate::msg::{recv_msg, send_msg, Msg};
use hqr_runtime::task::SlotFamily;
use hqr_runtime::{rebuild_closure, recompute_slots, RetryPolicy, TFactors, Task, TaskGraph};
use hqr_tile::{ProcessGrid, TiledMatrix};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration for one distributed factorization.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Virtual process grid; `grid.nodes()` must equal the worker count.
    pub grid: ProcessGrid,
    /// Deadline for any single RPC attempt.
    pub rpc_timeout: Duration,
    /// Retry ladder applied to retryable RPC failures.
    pub retry: RetryPolicy,
    /// Gap between heartbeat probes.
    pub hb_interval: Duration,
    /// Silence longer than this condemns the worker.
    pub hb_timeout: Duration,
    /// Progress stall longer than this aborts the run.
    pub stall_timeout: Duration,
    /// Seeded drop/delay injection on coordinator-side RPC sends.
    pub fault: NetFaultPlan,
    /// Run identifier (workers reset state on a new id).
    pub run_id: u64,
}

impl DistConfig {
    /// Sensible defaults for `n` workers: the most square grid with
    /// `p*q == n`, patient RPC deadlines, snappy heartbeats.
    pub fn for_workers(n: usize) -> Self {
        assert!(n > 0, "need at least one worker");
        let mut p = (n as f64).sqrt() as usize;
        while p > 1 && !n.is_multiple_of(p) {
            p -= 1;
        }
        DistConfig {
            grid: ProcessGrid::new(p.max(1), n / p.max(1)),
            rpc_timeout: Duration::from_secs(5),
            retry: RetryPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(200),
                max_attempts: 3,
            },
            hb_interval: Duration::from_millis(50),
            hb_timeout: Duration::from_millis(1500),
            stall_timeout: Duration::from_secs(60),
            fault: NetFaultPlan::none(),
            run_id: 1,
        }
    }
}

/// One worker-loss recovery, for the report.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Which worker was condemned.
    pub worker: usize,
    /// Why.
    pub reason: String,
    /// In-flight/queued tasks of the dead worker put back on the queue.
    pub tasks_requeued: usize,
    /// Slots whose only holders died and had to be rebuilt.
    pub slots_rebuilt: usize,
    /// Lineage tasks re-executed locally to rebuild them.
    pub closure_len: usize,
}

/// What one distributed run did.
#[derive(Clone, Debug, Default)]
pub struct DistReport {
    /// Worker count at start.
    pub workers: usize,
    /// Tasks in the DAG.
    pub tasks_total: usize,
    /// Accepted task completions per worker.
    pub tasks_by_worker: Vec<u64>,
    /// Slot transfers relayed (Get+Put pairs), including scatter/gather.
    pub transfers: u64,
    /// Doubles moved across the wire.
    pub floats_moved: u64,
    /// RPC attempts beyond the first, fleet-wide.
    pub rpc_retries: u64,
    /// Every condemnation + recovery, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Wall-clock of the factorization phase (scatter..gather).
    pub elapsed: Duration,
}

/// A lazily-(re)connected channel to one worker.
struct Conn {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Conn {
    fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Conn { addr, timeout, stream: None }
    }

    fn ensure(&mut self) -> Result<&mut TcpStream, NetError> {
        if self.stream.is_none() {
            let s = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| NetError::Io(format!("connect {}: {e}", self.addr)))?;
            let _ = s.set_nodelay(true);
            s.set_read_timeout(Some(self.timeout))
                .map_err(|e| NetError::Io(format!("set timeout: {e}")))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// One request/reply exchange. Any failure poisons the connection
    /// (it is dropped and re-dialed on the next attempt), so a late
    /// reply to a timed-out request can never be mismatched.
    fn rpc(&mut self, req: &Msg, what: &str) -> Result<Msg, NetError> {
        let timeout = self.timeout;
        let result = (|| {
            let s = self.ensure()?;
            send_msg(s, req)?;
            recv_msg(s, what, timeout)
        })();
        if result.is_err() {
            self.stream = None;
        }
        result
    }
}

/// Per-worker connections and counters shared between threads.
struct Link {
    addr: SocketAddr,
    exec: Mutex<Conn>,
    data: Mutex<Conn>,
    send_seq: AtomicU64,
    condemned: AtomicBool,
}

struct Shared {
    links: Vec<Link>,
    cfg: DistConfig,
    retries: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    /// Retry ladder around one RPC, with seeded fault injection at the
    /// send site. `salt` decorrelates backoff between callers.
    fn rpc_retry(
        &self,
        worker: usize,
        lane: fn(&Link) -> &Mutex<Conn>,
        req: &Msg,
        what: &str,
    ) -> Result<Msg, NetError> {
        let link = &self.links[worker];
        if link.condemned.load(Ordering::SeqCst) {
            return Err(NetError::WorkerDead { worker, reason: "previously condemned".into() });
        }
        let mut attempt = 1u32;
        loop {
            let seq = link.send_seq.fetch_add(1, Ordering::Relaxed);
            let outcome = match self.cfg.fault.action(worker, seq) {
                FaultAction::Drop => Err(NetError::Timeout {
                    what: format!("{what} (injected drop)"),
                    after: self.cfg.rpc_timeout,
                }),
                FaultAction::Delay(d) => {
                    thread::sleep(d);
                    lane(link).lock().unwrap().rpc(req, what)
                }
                FaultAction::Deliver => lane(link).lock().unwrap().rpc(req, what),
            };
            match outcome {
                Ok(Msg::Err { detail }) => return Err(NetError::Remote(detail)),
                Ok(m) => return Ok(m),
                Err(e) if e.is_retryable() && self.cfg.retry.allows(attempt + 1) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let salt = (worker as u64) << 32 | seq & 0xFFFF_FFFF;
                    thread::sleep(self.cfg.retry.backoff(attempt, salt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn get_slot(&self, worker: usize, slot: Slot) -> Result<Vec<f64>, NetError> {
        let (fam, i, j) = slot;
        let req = Msg::Get { fam, i: i as u64, j: j as u64 };
        match self.rpc_retry(worker, |l| &l.data, &req, "slot data")? {
            Msg::SlotData { data, .. } => Ok(data),
            other => Err(NetError::Proto(format!("expected SlotData, got {other:?}"))),
        }
    }

    fn put_slot(&self, worker: usize, slot: Slot, data: Vec<f64>) -> Result<(), NetError> {
        let (fam, i, j) = slot;
        let req = Msg::Put { fam, i: i as u64, j: j as u64, data };
        match self.rpc_retry(worker, |l| &l.data, &req, "put ack")? {
            Msg::PutOk => Ok(()),
            other => Err(NetError::Proto(format!("expected PutOk, got {other:?}"))),
        }
    }
}

enum Event {
    Done { worker: usize, tid: u32 },
    Failed { worker: usize, tid: u32, culprit: usize, error: String },
    HbDead { worker: usize, reason: String },
}

enum Cmd {
    Run { tid: u32, task: Task, fetches: Vec<(Slot, usize)> },
    Stop,
}

/// Agent thread: executes Run commands for one worker, relaying operand
/// slots from their holders first.
fn agent_loop(w: usize, shared: &Shared, rx: &mpsc::Receiver<Cmd>, tx: &mpsc::Sender<Event>) {
    while let Ok(cmd) = rx.recv() {
        let Cmd::Run { tid, task, fetches } = cmd else { break };
        let mut failed = false;
        for (slot, holder) in fetches {
            let data = match shared.get_slot(holder, slot) {
                Ok(d) => d,
                Err(e) => {
                    let _ = tx.send(Event::Failed {
                        worker: w,
                        tid,
                        culprit: holder,
                        error: format!("fetch {slot:?} from worker {holder}: {e}"),
                    });
                    failed = true;
                    break;
                }
            };
            if let Err(e) = shared.put_slot(w, slot, data) {
                let _ = tx.send(Event::Failed {
                    worker: w,
                    tid,
                    culprit: w,
                    error: format!("stage {slot:?} on worker {w}: {e}"),
                });
                failed = true;
                break;
            }
        }
        if failed {
            continue;
        }
        let req = Msg::Run { task_id: tid as u64, task };
        match shared.rpc_retry(w, |l| &l.exec, &req, "task completion") {
            Ok(Msg::Done { .. }) => {
                let _ = tx.send(Event::Done { worker: w, tid });
            }
            Ok(other) => {
                let _ = tx.send(Event::Failed {
                    worker: w,
                    tid,
                    culprit: w,
                    error: format!("expected Done, got {other:?}"),
                });
            }
            Err(e) => {
                let _ = tx.send(Event::Failed {
                    worker: w,
                    tid,
                    culprit: w,
                    error: format!("run on worker {w}: {e}"),
                });
            }
        }
    }
}

/// Heartbeat monitor: a dedicated connection pings the worker; silence
/// past `hb_timeout` condemns it. A worker busy inside a kernel still
/// answers (its heartbeat connection has its own thread), so slow is
/// not declared dead.
fn heartbeat_loop(w: usize, shared: &Shared, tx: &mpsc::Sender<Event>) {
    let mut conn =
        Conn::new(shared.links[w].addr, shared.cfg.hb_interval.max(Duration::from_millis(10)));
    let mut seq = 0u64;
    let mut last_ok = Instant::now();
    while !shared.stop.load(Ordering::SeqCst) && !shared.links[w].condemned.load(Ordering::SeqCst) {
        seq += 1;
        match conn.rpc(&Msg::Ping { seq }, "pong") {
            Ok(Msg::Pong { seq: echo }) if echo == seq => last_ok = Instant::now(),
            _ => {
                if last_ok.elapsed() > shared.cfg.hb_timeout {
                    let _ = tx.send(Event::HbDead {
                        worker: w,
                        reason: format!(
                            "no heartbeat for {:?} (> {:?})",
                            last_ok.elapsed(),
                            shared.cfg.hb_timeout
                        ),
                    });
                    return;
                }
            }
        }
        thread::sleep(shared.cfg.hb_interval);
    }
}

struct CoordState<'g> {
    graph: &'g TaskGraph,
    completed: Vec<bool>,
    queued: Vec<bool>,
    indeg: Vec<u32>,
    /// Ready tasks per grid rank (stable across worker deaths).
    rank_queues: Vec<VecDeque<u32>>,
    /// rank -> live worker index.
    rank_owner: Vec<usize>,
    /// Current-version holders per slot.
    holders: HashMap<Slot, Vec<usize>>,
    alive: Vec<bool>,
    busy: Vec<Option<u32>>,
    done_count: usize,
    report: DistReport,
}

impl CoordState<'_> {
    fn owner_rank(&self, grid: &ProcessGrid, task: &Task) -> usize {
        let (i, j) = task.affinity_tile();
        grid.rank(i % grid.p, j % grid.q)
    }

    fn enqueue(&mut self, grid: &ProcessGrid, tid: u32) {
        if self.completed[tid as usize] || self.queued[tid as usize] {
            return;
        }
        if self.busy.contains(&Some(tid)) {
            return;
        }
        let rank = self.owner_rank(grid, &self.graph.tasks()[tid as usize]);
        self.rank_queues[rank].push_back(tid);
        self.queued[tid as usize] = true;
    }
}

/// Factorize `input` on the workers at `addrs`. Returns the factorized
/// matrix (R in the upper part, V below), the gathered T factors, and a
/// run report — bitwise-identical to `execute_serial` on the same graph,
/// worker deaths included.
pub fn factorize(
    addrs: &[SocketAddr],
    graph: &TaskGraph,
    input: &TiledMatrix,
    ib: usize,
    cfg: &DistConfig,
) -> Result<(TiledMatrix, TFactors, DistReport), NetError> {
    let n_workers = addrs.len();
    if n_workers == 0 {
        return Err(NetError::Recovery("no workers".into()));
    }
    if cfg.grid.nodes() != n_workers {
        return Err(NetError::Recovery(format!(
            "grid {}x{} needs {} workers, got {n_workers}",
            cfg.grid.p,
            cfg.grid.q,
            cfg.grid.nodes()
        )));
    }
    let start = Instant::now();
    let shared = Arc::new(Shared {
        links: addrs
            .iter()
            .map(|&addr| Link {
                addr,
                exec: Mutex::new(Conn::new(addr, cfg.rpc_timeout)),
                data: Mutex::new(Conn::new(addr, cfg.rpc_timeout)),
                send_seq: AtomicU64::new(0),
                condemned: AtomicBool::new(false),
            })
            .collect(),
        cfg: cfg.clone(),
        retries: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });

    let n_tasks = graph.tasks().len();
    let mut st = CoordState {
        graph,
        completed: vec![false; n_tasks],
        queued: vec![false; n_tasks],
        indeg: graph.in_degrees().to_vec(),
        rank_queues: vec![VecDeque::new(); cfg.grid.nodes()],
        rank_owner: (0..n_workers).collect(),
        holders: HashMap::new(),
        alive: vec![true; n_workers],
        busy: vec![None; n_workers],
        done_count: 0,
        report: DistReport {
            workers: n_workers,
            tasks_total: n_tasks,
            tasks_by_worker: vec![0; n_workers],
            ..DistReport::default()
        },
    };

    // Handshake, then scatter the initial shard.
    let hello = Msg::Hello {
        run_id: cfg.run_id,
        mt: graph.mt() as u64,
        nt: graph.nt() as u64,
        b: graph.b() as u64,
        ib: ib as u64,
    };
    for w in 0..n_workers {
        match shared.rpc_retry(w, |l| &l.data, &hello, "hello ack")? {
            Msg::HelloOk => {}
            other => return Err(NetError::Proto(format!("expected HelloOk, got {other:?}"))),
        }
    }
    for j in 0..graph.nt() {
        for i in 0..graph.mt() {
            let rank = cfg.grid.rank(i % cfg.grid.p, j % cfg.grid.q);
            let w = st.rank_owner[rank];
            shared.put_slot(w, (SlotFamily::A, i, j), input.tile(i, j).to_vec())?;
            st.holders.insert((SlotFamily::A, i, j), vec![w]);
            st.report.transfers += 1;
            st.report.floats_moved += (graph.b() * graph.b()) as u64;
        }
    }

    // Agents + heartbeat monitors.
    let (ev_tx, ev_rx) = mpsc::channel::<Event>();
    let mut cmd_txs = Vec::with_capacity(n_workers);
    let mut threads = Vec::new();
    for w in 0..n_workers {
        let (tx, rx) = mpsc::channel::<Cmd>();
        cmd_txs.push(tx);
        let sh = Arc::clone(&shared);
        let etx = ev_tx.clone();
        threads.push(thread::spawn(move || agent_loop(w, &sh, &rx, &etx)));
        let sh = Arc::clone(&shared);
        let etx = ev_tx.clone();
        threads.push(thread::spawn(move || heartbeat_loop(w, &sh, &etx)));
    }

    // Seed the ready queues.
    for t in 0..n_tasks {
        if st.indeg[t] == 0 {
            st.enqueue(&cfg.grid, t as u32);
        }
    }

    let run = drive(&mut st, &shared, cfg, graph, input, ib, &cmd_txs, &ev_rx);

    // Wind down threads regardless of outcome.
    shared.stop.store(true, Ordering::SeqCst);
    for tx in &cmd_txs {
        let _ = tx.send(Cmd::Stop);
    }
    drop(ev_tx);
    for t in threads {
        let _ = t.join();
    }
    run?;

    // Gather: pull every current slot version back; anything unreachable
    // is rebuilt locally from lineage (same machinery as recovery).
    let mut result = input.clone();
    let mut factors = TFactors::allocate_for(graph);
    let mut unreachable: Vec<Slot> = Vec::new();
    for (&slot, holders) in &st.holders {
        let Some(&w) = holders.iter().find(|&&h| st.alive[h]) else {
            unreachable.push(slot);
            continue;
        };
        match shared.get_slot(w, slot) {
            Ok(data) => {
                st.report.transfers += 1;
                st.report.floats_moved += data.len() as u64;
                install_slot(&mut result, &mut factors, slot, &data)?;
            }
            Err(_) => unreachable.push(slot),
        }
    }
    if !unreachable.is_empty() {
        let closure = rebuild_closure(graph, &st.completed, &unreachable);
        let rebuilt = recompute_slots(graph, input, ib, &closure, &unreachable)
            .map_err(NetError::Recovery)?;
        for (slot, data) in rebuilt {
            install_slot(&mut result, &mut factors, slot, &data)?;
        }
    }
    st.report.rpc_retries = shared.retries.load(Ordering::Relaxed);
    st.report.elapsed = start.elapsed();
    Ok((result, factors, st.report))
}

fn install_slot(
    a: &mut TiledMatrix,
    f: &mut TFactors,
    slot: Slot,
    data: &[f64],
) -> Result<(), NetError> {
    let (fam, i, j) = slot;
    let dst: &mut [f64] = match fam {
        SlotFamily::A => a.tile_mut(i, j),
        _ => f.slot_mut(fam, i, j).ok_or_else(|| {
            NetError::Recovery(format!("gathered {fam:?}({i},{j}) has no home in TFactors"))
        })?,
    };
    if data.len() != dst.len() {
        return Err(NetError::Recovery(format!(
            "gathered {fam:?}({i},{j}) has {} floats, expected {}",
            data.len(),
            dst.len()
        )));
    }
    dst.copy_from_slice(data);
    Ok(())
}

/// The scheduling/recovery event loop. Returns when every task is done.
#[allow(clippy::too_many_arguments)]
fn drive(
    st: &mut CoordState<'_>,
    shared: &Shared,
    cfg: &DistConfig,
    graph: &TaskGraph,
    input: &TiledMatrix,
    ib: usize,
    cmd_txs: &[mpsc::Sender<Cmd>],
    ev_rx: &mpsc::Receiver<Event>,
) -> Result<(), NetError> {
    let mut last_progress = Instant::now();
    while st.done_count < st.report.tasks_total {
        dispatch_all(st, cfg, cmd_txs)?;
        match ev_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(Event::Done { worker, tid }) => {
                if !st.alive[worker] {
                    // A condemned worker's result is untrusted and its
                    // data unreachable; the task was already requeued.
                    continue;
                }
                st.busy[worker] = None;
                if st.completed[tid as usize] {
                    continue;
                }
                st.completed[tid as usize] = true;
                st.done_count += 1;
                st.report.tasks_by_worker[worker] += 1;
                last_progress = Instant::now();
                let task = &graph.tasks()[tid as usize];
                for s in task.writes() {
                    st.holders.insert(s, vec![worker]);
                }
                for s in task.reads() {
                    let hs = st.holders.entry(s).or_default();
                    if !hs.contains(&worker) {
                        hs.push(worker);
                    }
                }
                for &succ in graph.successors(tid as usize) {
                    st.indeg[succ as usize] -= 1;
                    if st.indeg[succ as usize] == 0 {
                        st.enqueue(&cfg.grid, succ);
                    }
                }
            }
            Ok(Event::Failed { worker, tid, culprit, error }) => {
                st.busy[worker] = None;
                st.enqueue(&cfg.grid, tid);
                condemn(st, shared, cfg, graph, input, ib, culprit, &error)?;
                last_progress = Instant::now();
            }
            Ok(Event::HbDead { worker, reason }) => {
                condemn(st, shared, cfg, graph, input, ib, worker, &reason)?;
                last_progress = Instant::now();
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(NetError::Recovery("all agents exited early".into()));
            }
        }
        if last_progress.elapsed() > cfg.stall_timeout {
            return Err(NetError::Recovery(format!(
                "no progress for {:?} ({}/{} tasks done)",
                cfg.stall_timeout, st.done_count, st.report.tasks_total
            )));
        }
    }
    Ok(())
}

/// Hand every idle live worker its next task, with the fetch list
/// resolved against the current holder map.
fn dispatch_all(
    st: &mut CoordState<'_>,
    cfg: &DistConfig,
    cmd_txs: &[mpsc::Sender<Cmd>],
) -> Result<(), NetError> {
    for (w, tx) in cmd_txs.iter().enumerate() {
        if !st.alive[w] || st.busy[w].is_some() {
            continue;
        }
        // Lowest task id across this worker's ranks keeps program order.
        let mut pick: Option<(usize, u32)> = None;
        for (rank, q) in st.rank_queues.iter().enumerate() {
            if st.rank_owner[rank] != w {
                continue;
            }
            if let Some(&tid) = q.front() {
                if pick.is_none_or(|(_, best)| tid < best) {
                    pick = Some((rank, tid));
                }
            }
        }
        let Some((rank, tid)) = pick else { continue };
        st.rank_queues[rank].pop_front();
        st.queued[tid as usize] = false;
        let task = st.graph.tasks()[tid as usize];
        let mut fetches = Vec::new();
        let mut need = task.writes();
        for s in task.reads() {
            if !need.contains(&s) {
                need.push(s);
            }
        }
        for s in need {
            match st.holders.get(&s) {
                Some(hs) if hs.contains(&w) => {}
                Some(hs) => {
                    let Some(&holder) = hs.iter().find(|&&h| st.alive[h]) else {
                        return Err(NetError::Recovery(format!(
                            "slot {s:?} has no live holder at dispatch"
                        )));
                    };
                    fetches.push((s, holder));
                }
                // Never-written factor output: the worker zero-creates it.
                None => {}
            }
        }
        st.report.transfers += fetches.len() as u64;
        st.report.floats_moved += (fetches.len() * st.graph.b() * st.graph.b()) as u64;
        st.busy[w] = Some(tid);
        if tx.send(Cmd::Run { tid, task, fetches }).is_err() {
            // Agent gone (only happens on shutdown); requeue.
            st.busy[w] = None;
            st.enqueue(&cfg.grid, tid);
        }
    }
    Ok(())
}

/// Condemn `worker` and recover: remap its ranks, requeue its work, and
/// rebuild any slot version that died with it. Failures to place
/// rebuilt slots condemn the new target and loop.
#[allow(clippy::too_many_arguments)]
fn condemn(
    st: &mut CoordState<'_>,
    shared: &Shared,
    cfg: &DistConfig,
    graph: &TaskGraph,
    input: &TiledMatrix,
    ib: usize,
    worker: usize,
    reason: &str,
) -> Result<(), NetError> {
    let mut pending: Vec<(usize, String)> = vec![(worker, reason.to_string())];
    while let Some((w, why)) = pending.pop() {
        if !st.alive[w] {
            continue;
        }
        st.alive[w] = false;
        shared.links[w].condemned.store(true, Ordering::SeqCst);
        let survivors: Vec<usize> = (0..st.alive.len()).filter(|&x| st.alive[x]).collect();
        if survivors.is_empty() {
            return Err(NetError::Recovery(format!(
                "worker {w} condemned ({why}) and no survivors remain"
            )));
        }
        let mut requeued = 0;
        if let Some(tid) = st.busy[w].take() {
            st.enqueue(&cfg.grid, tid);
            requeued += 1;
        }
        for (rank, owner) in st.rank_owner.iter_mut().enumerate() {
            if *owner == w {
                *owner = survivors[rank % survivors.len()];
            }
        }
        // Rebuild every slot version whose holders all died.
        let lost: Vec<Slot> = st
            .holders
            .iter()
            .filter(|(_, hs)| hs.iter().all(|&h| !st.alive[h]))
            .map(|(&s, _)| s)
            .collect();
        let closure = rebuild_closure(graph, &st.completed, &lost);
        let rebuilt =
            recompute_slots(graph, input, ib, &closure, &lost).map_err(NetError::Recovery)?;
        let mut placed = 0usize;
        for (slot, data) in rebuilt {
            let (_, i, j) = slot;
            let rank = cfg.grid.rank(i % cfg.grid.p, j % cfg.grid.q);
            let target = st.rank_owner[rank];
            match shared.put_slot(target, slot, data.to_vec()) {
                Ok(()) => {
                    st.holders.insert(slot, vec![target]);
                    st.report.transfers += 1;
                    st.report.floats_moved += data.len() as u64;
                    placed += 1;
                }
                Err(e) => {
                    // The replacement died too; condemn it and redo the
                    // scan (lost set will include what we failed to place).
                    pending.push((target, format!("recovery put failed: {e}")));
                    break;
                }
            }
        }
        st.report.recoveries.push(RecoveryEvent {
            worker: w,
            reason: why,
            tasks_requeued: requeued,
            slots_rebuilt: placed,
            closure_len: closure.len(),
        });
    }
    Ok(())
}

/// Orderly shutdown of a fleet; dead workers are skipped silently.
pub fn shutdown_workers(addrs: &[SocketAddr]) {
    for &addr in addrs {
        let _ = crate::worker::shutdown(addr);
    }
}
