//! Runtime-vs-simulator scheduling parity: both backends must rank every
//! task identically under every shared [`SchedPolicy`]. The critical-path
//! ranks are additionally checked against an upward-rank reference
//! recomputed independently here, so the parity test has teeth even though
//! the two backends share the key computation.

use hqr_runtime::sched::priorities;
use hqr_runtime::{ElimOp, SchedPolicy, TaskGraph};
use hqr_sim::priority_ranks;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    v
}

fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        let rows: Vec<u32> = (k as u32..mt as u32).collect();
        let mut stride = 1;
        while stride < rows.len() {
            let mut idx = 0;
            while idx + stride < rows.len() {
                v.push(ElimOp::new(k as u32, rows[idx + stride], rows[idx], false));
                idx += 2 * stride;
            }
            stride *= 2;
        }
    }
    v
}

fn random_elims(mt: usize, nt: usize, seed: u64) -> Vec<ElimOp> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let vpos = rng.gen_range(1..alive.len());
            let upos = rng.gen_range(0..vpos);
            out.push(ElimOp::new(k as u32, alive[vpos], alive[upos], false));
            alive.remove(vpos);
        }
        alive.shuffle(&mut rng);
    }
    out
}

/// Independent upward-rank reference: a from-scratch reverse sweep using
/// only the public graph API, not `hqr_runtime::analysis`.
fn reference_upward_rank(g: &TaskGraph) -> Vec<u64> {
    let n = g.tasks().len();
    let mut rank = vec![0u64; n];
    for t in (0..n).rev() {
        let best = g.successors(t).iter().map(|&s| rank[s as usize]).max().unwrap_or(0);
        rank[t] = best + g.tasks()[t].kind.weight();
    }
    rank
}

fn graphs_under_test() -> Vec<TaskGraph> {
    let mut gs = vec![
        TaskGraph::build(16, 4, 3, &flat_elims(16, 4)),
        TaskGraph::build(12, 3, 3, &binary_elims(12, 3)),
    ];
    for seed in [7u64, 1234, 0xDEADBEEF] {
        gs.push(TaskGraph::build(9, 4, 3, &random_elims(9, 4, seed)));
    }
    gs
}

#[test]
fn runtime_and_sim_rank_tasks_identically_under_every_policy() {
    for g in graphs_under_test() {
        for policy in SchedPolicy::ALL {
            let rt = priorities(&g, policy);
            let sim = priority_ranks(&g, policy);
            assert_eq!(rt, sim, "{policy:?}: backends disagree on priority ranks");
        }
    }
}

#[test]
fn critical_path_ranks_match_an_independent_reference() {
    for g in graphs_under_test() {
        let keys = priority_ranks(&g, SchedPolicy::CriticalPath);
        let reference = reference_upward_rank(&g);
        for (t, &k) in keys.iter().enumerate() {
            assert_eq!(
                u64::MAX - k,
                reference[t],
                "task {t}: shared key disagrees with the reference upward rank"
            );
        }
    }
}

#[test]
fn critical_path_order_agrees_between_backends() {
    // Beyond equal keys: the induced execution *order* (sort by key, then
    // task id — exactly how both min-ordered queues break ties) matches.
    for g in graphs_under_test() {
        for policy in SchedPolicy::ALL {
            let order_of = |keys: &[u64]| {
                let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
                idx.sort_by_key(|&t| (keys[t as usize], t));
                idx
            };
            let rt = order_of(&priorities(&g, policy));
            let sim = order_of(&priority_ranks(&g, policy));
            assert_eq!(rt, sim, "{policy:?}: induced ready order differs");
        }
    }
}
