//! Timeline recording, realized-critical-path bounds, and the GPU
//! utilization regression (busy seconds were previously pooled into one
//! counter, letting utilization exceed 1.0 on accelerated platforms).

use hqr_runtime::validate_chrome_trace;
use hqr_runtime::{ElimOp, TaskGraph};
use hqr_sim::{
    simulate, simulate_traced, Accelerators, Platform, SchedPolicy, SimFaultPlan, SimInstantKind,
};
use hqr_tile::Layout;

fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    v
}

/// Regression: on an accelerated platform, GPU seconds used to land in
/// `node_busy` while the utilization denominator counted CPU cores only,
/// so an update-heavy DAG reported utilization > 1.
#[test]
fn gpu_platform_utilization_stays_below_one() {
    let g = TaskGraph::build(16, 8, 40, &flat_elims(16, 8));
    let p = Platform {
        nodes: 1,
        cores_per_node: 4,
        accelerators: Some(Accelerators { per_node: 2, update_speedup: 8.0 }),
        ..Platform::edel()
    };
    let r = simulate(&g, &Layout::Single, &p);
    let util = r.utilization(&p);
    assert!(util > 0.0 && util <= 1.0 + 1e-12, "utilization {util} must be a fraction of slots");
    // The split accounting is exhaustive: core + GPU busy covers exactly
    // the executed kernel seconds.
    let gpu_total: f64 = r.node_gpu_busy.iter().sum();
    let core_total: f64 = r.node_busy.iter().sum();
    assert!(gpu_total > 0.0, "an update-heavy DAG must use the GPUs");
    assert!(core_total > 0.0, "factor kernels are CPU-only");
    // No single pool can exceed its own capacity either.
    assert!(core_total <= r.makespan * 4.0 + 1e-9);
    assert!(gpu_total <= r.makespan * 2.0 + 1e-9);
}

#[test]
fn cpu_only_platform_keeps_old_busy_semantics() {
    let g = TaskGraph::build(6, 4, 40, &flat_elims(6, 4));
    let p = Platform { nodes: 2, cores_per_node: 2, ..Platform::edel() };
    let r = simulate(&g, &Layout::cyclic_rows(2), &p);
    assert!(r.node_gpu_busy.iter().all(|&x| x == 0.0));
    let total: f64 = g.tasks().iter().map(|t| p.kernel_seconds(t.kind, 40)).sum();
    assert!((r.node_busy.iter().sum::<f64>() - total).abs() < 1e-9);
}

#[test]
fn traced_run_matches_untraced_and_extracts_bounded_cp() {
    let g = TaskGraph::build(10, 4, 40, &flat_elims(10, 4));
    let p = Platform { nodes: 2, cores_per_node: 3, ..Platform::edel() };
    let lay = Layout::cyclic_rows(2);
    let plain = simulate(&g, &lay, &p);
    let traced = simulate_traced(&g, &lay, &p, SchedPolicy::PanelFirst, &SimFaultPlan::new())
        .expect("traced run");
    // Recording is an observer: identical schedule.
    assert_eq!(plain.makespan, traced.makespan);
    assert_eq!(plain.messages, traced.messages);

    let cp = traced.critical_path.as_ref().expect("traced run extracts a CP");
    let longest_task =
        g.tasks().iter().map(|t| p.kernel_seconds(t.kind, 40)).fold(0.0f64, f64::max);
    assert!(
        cp.length >= longest_task - 1e-12,
        "CP {} must dominate the longest task {longest_task}",
        cp.length
    );
    assert!(
        cp.length <= traced.makespan + 1e-12,
        "CP {} cannot exceed the makespan {}",
        cp.length,
        traced.makespan
    );
    assert!(!cp.steps.is_empty());
    assert!((cp.task_seconds + cp.comm_seconds - cp.length).abs() < 1e-9);
    // The chain is a real dependency chain: strictly increasing program
    // order (program order is topological).
    for w in cp.steps.windows(2) {
        assert!(w[0].task < w[1].task);
    }

    let tl = traced.timeline.as_ref().expect("traced run records a timeline");
    assert_eq!(tl.spans.len(), g.tasks().len(), "fault-free: one span per task");
    assert_eq!(tl.transfers.len(), traced.messages, "one transfer span per message");
    // Per-(node,lane) spans never overlap.
    let mut spans = tl.spans.clone();
    spans.sort_by(|a, b| {
        (a.node, a.gpu, a.lane).cmp(&(b.node, b.gpu, b.lane)).then(a.start.total_cmp(&b.start))
    });
    for w in spans.windows(2) {
        if (w[0].node, w[0].gpu, w[0].lane) == (w[1].node, w[1].gpu, w[1].lane) {
            assert!(w[1].start >= w[0].end - 1e-12, "lane overlap: {:?} then {:?}", w[0], w[1]);
        }
    }
    // Busy seconds agree with the report's split accounting.
    let busy: f64 = traced.node_busy.iter().sum::<f64>() + traced.node_gpu_busy.iter().sum::<f64>();
    assert!((tl.busy_seconds() - busy).abs() < 1e-9);

    let json = tl.to_chrome_trace(&g);
    let events = validate_chrome_trace(&json).expect("schema-valid Chrome trace");
    assert!(events >= tl.spans.len() + tl.transfers.len());
}

#[test]
fn traced_crash_run_records_instants_and_keeps_cp_bounds() {
    let mt = 12;
    let g = TaskGraph::build(mt, 1, 40, &flat_elims(mt, 1));
    let p = Platform { nodes: 3, cores_per_node: 2, ..Platform::edel() };
    let plan = SimFaultPlan::new().crash_node(1, 1e-4).degrade_link(2e-4, 0.5, 2.0);
    let r = simulate_traced(&g, &Layout::cyclic_rows(3), &p, SchedPolicy::PanelFirst, &plan)
        .expect("faulty traced run");
    let tl = r.timeline.as_ref().unwrap();
    assert!(
        tl.instants.iter().any(|i| i.kind == SimInstantKind::NodeCrash && i.node == 1),
        "crash instant recorded"
    );
    assert!(tl.instants.iter().any(|i| i.kind == SimInstantKind::LinkDegrade));
    assert!(tl.spans.len() >= g.tasks().len(), "re-executions add spans, never remove them");
    // Every resent (restaging) message shows up as a recovery transfer
    // span, and only those.
    let resent = r.overhead.as_ref().unwrap().resent_messages;
    assert_eq!(tl.transfers.iter().filter(|t| t.recovery).count(), resent);
    assert_eq!(tl.transfers.len(), r.messages, "one transfer span per message, resends included");
    let cp = r.critical_path.as_ref().unwrap();
    assert!(cp.length <= r.makespan + 1e-12);
    assert!(cp.length > 0.0);
    // GPUs absent: all spans are core spans with valid lane indices.
    assert!(tl.spans.iter().all(|s| !s.gpu && (s.lane as usize) < p.cores_per_node));
    let json = tl.to_chrome_trace(&g);
    validate_chrome_trace(&json).expect("faulty-run trace still schema-valid");
}

#[test]
fn gpu_spans_land_on_gpu_lanes() {
    let g = TaskGraph::build(8, 4, 40, &flat_elims(8, 4));
    let p = Platform {
        nodes: 1,
        cores_per_node: 2,
        accelerators: Some(Accelerators { per_node: 1, update_speedup: 8.0 }),
        ..Platform::edel()
    };
    let r = simulate_traced(&g, &Layout::Single, &p, SchedPolicy::PanelFirst, &SimFaultPlan::new())
        .unwrap();
    let tl = r.timeline.as_ref().unwrap();
    assert!(tl.spans.iter().any(|s| s.gpu), "GPU lane used");
    assert!(tl.spans.iter().filter(|s| s.gpu).all(|s| s.lane == 0), "one GPU -> lane 0");
    let gpu_busy: f64 = tl.spans.iter().filter(|s| s.gpu).map(|s| s.end - s.start).sum();
    assert!((gpu_busy - r.node_gpu_busy[0]).abs() < 1e-9);
    validate_chrome_trace(&tl.to_chrome_trace(&g)).unwrap();
}
