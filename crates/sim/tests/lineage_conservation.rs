//! Regression tests for the lineage fault model's conservation laws.
//!
//! After a node crash the DES re-executes *exactly* the lost producers
//! whose outputs are still needed — the lineage closure.  These tests
//! recompute that closure independently from the recorded timeline and
//! check it against the engine's `FaultOverhead` accounting, then verify
//! the work- and makespan-conservation identities.

use std::collections::BTreeSet;

use hqr_runtime::{ElimOp, TaskGraph};
use hqr_sim::{simulate, simulate_traced, Platform, SchedPolicy, SimFaultPlan};
use hqr_tile::Layout;

fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let mut next = Vec::new();
            for pair in alive.chunks(2) {
                if let [a, b] = pair {
                    out.push(ElimOp::new(k as u32, *b, *a, false));
                }
                next.push(pair[0]);
            }
            alive = next;
        }
    }
    out
}

/// The lineage closure, recomputed from first principles over the
/// recorded timeline.  Delivery in the DES is eager, so unfinished tasks
/// on surviving nodes already hold local copies of their inputs; only
/// tasks *re-homed off the crashed node* start with nothing.  Those form
/// the frontier, and every *finished* predecessor whose output lived on
/// the crashed node is pulled in — transitively, since a pulled
/// predecessor must itself re-run and so re-reads its own inputs.
fn expected_reexecution_set(
    graph: &TaskGraph,
    layout: &Layout,
    spans: &[hqr_sim::SimSpan],
    crashed: u16,
    crash_at: f64,
) -> BTreeSet<u32> {
    let n = graph.tasks().len();
    // First recorded span per task (its original, pre-crash execution).
    let mut first: Vec<Option<&hqr_sim::SimSpan>> = vec![None; n];
    for s in spans {
        let slot = &mut first[s.task as usize];
        if slot.is_none_or(|f| s.start < f.start) {
            *slot = Some(s);
        }
    }
    let done_at_crash =
        |t: usize| first[t].is_some_and(|s| s.end <= crash_at + 1e-12 && s.start < crash_at);
    // Predecessor lists from the successor CSR.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in 0..n {
        for &s in graph.successors(t) {
            preds[s as usize].push(t as u32);
        }
    }
    let home = |t: usize| {
        let (i, j) = graph.tasks()[t].affinity_tile();
        layout.owner(i, j)
    };
    let mut reexec: BTreeSet<u32> = BTreeSet::new();
    let mut stack: Vec<u32> = (0..n as u32)
        .filter(|&t| !done_at_crash(t as usize) && home(t as usize) == crashed as usize)
        .collect();
    while let Some(t) = stack.pop() {
        for &p in &preds[t as usize] {
            if done_at_crash(p as usize)
                && first[p as usize].unwrap().node == crashed
                && reexec.insert(p)
            {
                stack.push(p); // p re-runs, so its own inputs are needed again
            }
        }
    }
    reexec
}

#[test]
fn lineage_recovery_reexecutes_exactly_the_needed_lost_producers() {
    let (mt, nt, b) = (10, 5, 128);
    let graph = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let platform = Platform { nodes: 4, cores_per_node: 1, ..Platform::edel() };
    let layout = Layout::cyclic_rows(platform.nodes);
    let baseline = simulate(&graph, &layout, &platform).makespan;

    let crashed = 1u16;
    let crash_at = 0.47 * baseline;
    let plan = SimFaultPlan::new().crash_node(crashed as usize, crash_at);
    let report =
        simulate_traced(&graph, &layout, &platform, SchedPolicy::PanelFirst, &plan).unwrap();
    let overhead = report.overhead.clone().expect("faulty run carries overhead");
    let timeline = report.timeline.as_ref().expect("traced run carries timeline");

    // Observed re-executions: tasks with more than one recorded span
    // (spans are only recorded for completions that were not invalidated).
    let mut span_count = vec![0usize; graph.tasks().len()];
    for s in &timeline.spans {
        span_count[s.task as usize] += 1;
    }
    let observed: BTreeSet<u32> =
        span_count.iter().enumerate().filter(|&(_, &c)| c > 1).map(|(t, _)| t as u32).collect();

    let expected = expected_reexecution_set(&graph, &layout, &timeline.spans, crashed, crash_at);
    assert!(!expected.is_empty(), "a mid-run crash must lose some finished work");
    assert_eq!(
        observed, expected,
        "re-executed set must equal exactly the lost producers still needed"
    );
    assert_eq!(
        overhead.reexecuted_tasks,
        expected.len(),
        "FaultOverhead.reexecuted_tasks must count the lineage closure"
    );
    assert_eq!(overhead.nodes_lost, 1);

    // Every re-executed task's original run was on the crashed node and
    // finished before the crash.
    for &t in &expected {
        let mut runs: Vec<&hqr_sim::SimSpan> =
            timeline.spans.iter().filter(|s| s.task == t).collect();
        runs.sort_by(|a, b| a.start.total_cmp(&b.start));
        assert_eq!(runs[0].node, crashed);
        assert!(runs[0].end <= crash_at + 1e-12);
        // The re-run lands on a survivor, after the crash.
        assert_ne!(runs[1].node, crashed);
        assert!(runs[1].start >= crash_at - 1e-12);
    }
}

#[test]
fn fault_overhead_components_account_for_the_makespan_delta() {
    let (mt, nt, b) = (8, 4, 128);
    let graph = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let platform = Platform { nodes: 4, cores_per_node: 1, ..Platform::edel() };
    let layout = Layout::cyclic_rows(platform.nodes);
    let baseline = simulate(&graph, &layout, &platform).makespan;
    let plan = SimFaultPlan::new().crash_node(2, 0.53 * baseline);
    let report =
        simulate_traced(&graph, &layout, &platform, SchedPolicy::PanelFirst, &plan).unwrap();
    let overhead = report.overhead.clone().unwrap();
    let timeline = report.timeline.as_ref().unwrap();

    // Inflation identity: the relative overhead times the baseline is the
    // absolute makespan delta.
    let delta = report.makespan - overhead.baseline_makespan;
    assert!(delta >= -1e-9, "faults cannot speed the run up");
    assert!(
        (overhead.makespan_inflation * overhead.baseline_makespan - delta).abs()
            <= 1e-9 * report.makespan.max(1.0),
        "makespan_inflation must equal the makespan delta over the baseline"
    );

    // Work conservation: total recorded busy time equals one run of every
    // task plus one extra run per re-executed task — nothing else is
    // (re)computed.  Spans are only recorded for completions that stuck,
    // so aborted attempts do not enter the sum.
    let dur = |t: u32| {
        let task = &graph.tasks()[t as usize];
        platform.kernel_seconds(task.kind, b)
    };
    let recorded: f64 = timeline.spans.iter().map(|s| s.end - s.start).sum();
    let one_run_each: f64 = (0..graph.tasks().len() as u32).map(dur).sum();
    let mut span_count = vec![0usize; graph.tasks().len()];
    for s in &timeline.spans {
        span_count[s.task as usize] += 1;
    }
    let reexec_extra: f64 = span_count
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 1)
        .map(|(t, &c)| (c - 1) as f64 * dur(t as u32))
        .sum();
    assert!(
        (recorded - one_run_each - reexec_extra).abs() <= 1e-9 * recorded.max(1.0),
        "recorded work {recorded} must equal {one_run_each} + reexecution surplus {reexec_extra}"
    );
    let reexec_count: usize = span_count.iter().filter(|&&c| c > 1).count();
    assert_eq!(reexec_count, overhead.reexecuted_tasks);
}

#[test]
fn crash_free_fault_plan_has_zero_overhead_components() {
    let (mt, nt, b) = (6, 3, 128);
    let graph = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let platform = Platform { nodes: 3, cores_per_node: 2, ..Platform::edel() };
    let layout = Layout::cyclic_rows(platform.nodes);
    // A degrade-only plan loses no data: nothing may be re-executed.
    let plan = SimFaultPlan::new().degrade_link(0.1, 0.5, 2.0);
    let report =
        simulate_traced(&graph, &layout, &platform, SchedPolicy::PanelFirst, &plan).unwrap();
    let overhead = report.overhead.clone().unwrap();
    assert_eq!(overhead.reexecuted_tasks, 0);
    assert_eq!(overhead.aborted_tasks, 0);
    assert_eq!(overhead.nodes_lost, 0);
    let timeline = report.timeline.as_ref().unwrap();
    let mut seen = vec![0usize; graph.tasks().len()];
    for s in &timeline.spans {
        seen[s.task as usize] += 1;
    }
    assert!(seen.iter().all(|&c| c == 1), "every task runs exactly once");
}
