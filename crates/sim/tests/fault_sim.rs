//! Fault-injection tests for the discrete-event simulator: node crashes
//! must recover via lineage re-execution (never deadlock), link faults must
//! only slow things down, and every faulty run must stay deterministic.

use hqr_runtime::{ElimOp, TaskGraph};
use hqr_sim::{simulate, simulate_with_faults, Platform, SchedPolicy, SimError, SimFaultPlan};
use hqr_tile::Layout;

fn flat_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        for i in (k + 1)..mt {
            v.push(ElimOp::new(k as u32, i as u32, k as u32, true));
        }
    }
    v
}

fn binary_elims(mt: usize, nt: usize) -> Vec<ElimOp> {
    let mut v = Vec::new();
    for k in 0..mt.min(nt) {
        let rows: Vec<u32> = (k as u32..mt as u32).collect();
        let mut stride = 1;
        while stride < rows.len() {
            let mut idx = 0;
            while idx + stride < rows.len() {
                v.push(ElimOp::new(k as u32, rows[idx + stride], rows[idx], false));
                idx += 2 * stride;
            }
            stride *= 2;
        }
    }
    v
}

fn test_platform(nodes: usize) -> Platform {
    Platform { nodes, cores_per_node: 2, ..Platform::edel() }
}

/// Acceptance criterion: a node crash at t > 0 completes all tasks, with a
/// makespan at least the fault-free one and a non-empty re-execution set.
#[test]
fn node_crash_mid_run_recovers_with_overhead() {
    let (mt, nt, b) = (12, 6, 40);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let p = test_platform(3);
    let lay = Layout::cyclic_rows(3);
    let baseline = simulate(&g, &lay, &p);
    // Crash a node ~30% into the fault-free makespan: plenty completed,
    // plenty left to poison downstream.
    let plan = SimFaultPlan::new().crash_node(1, 0.3 * baseline.makespan);
    let r = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan)
        .expect("recovery must complete");
    let o = r.overhead.as_ref().expect("faulty run reports overhead");
    assert_eq!(o.baseline_makespan, baseline.makespan);
    assert_eq!(o.nodes_lost, 1);
    assert!(r.makespan >= baseline.makespan, "{} < {}", r.makespan, baseline.makespan);
    assert!(o.makespan_inflation >= 0.0);
    assert!(o.reexecuted_tasks > 0, "lineage closure must re-run lost producers: {o:?}");
    assert!(o.resent_messages <= r.messages);
    assert!(o.resent_bytes <= r.bytes);
    assert_eq!(r.messages_by_kind.iter().sum::<usize>(), r.messages);
}

#[test]
fn crash_after_completion_costs_nothing() {
    let (mt, nt, b) = (8, 4, 40);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let p = test_platform(2);
    let lay = Layout::cyclic_rows(2);
    let baseline = simulate(&g, &lay, &p);
    let plan = SimFaultPlan::new().crash_node(0, 10.0 * baseline.makespan);
    let r = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan).unwrap();
    let o = r.overhead.unwrap();
    assert_eq!(r.makespan, baseline.makespan);
    assert_eq!(o.reexecuted_tasks, 0);
    assert_eq!(o.aborted_tasks, 0);
    assert_eq!(o.resent_messages, 0);
}

#[test]
fn crash_at_time_zero_runs_everything_on_survivors() {
    let (mt, nt, b) = (8, 4, 40);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let p = test_platform(3);
    let lay = Layout::cyclic_rows(3);
    let plan = SimFaultPlan::new().crash_node(2, 0.0);
    let r = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan).unwrap();
    let o = r.overhead.unwrap();
    // Nothing had completed, so nothing re-executes — work just re-homes.
    assert_eq!(o.reexecuted_tasks, 0);
    assert!(r.node_busy[2] == 0.0, "dead node must do no work");
}

#[test]
fn link_degradation_inflates_makespan_without_losing_work() {
    let (mt, nt, b) = (10, 5, 40);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let p = test_platform(4);
    let lay = Layout::cyclic_rows(4);
    let baseline = simulate(&g, &lay, &p);
    // Collapse bandwidth to 2% and 10x the latency from the start.
    let plan = SimFaultPlan::new().degrade_link(0.0, 0.02, 10.0);
    let r = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan).unwrap();
    let o = r.overhead.unwrap();
    assert!(r.makespan > baseline.makespan, "{} vs {}", r.makespan, baseline.makespan);
    assert!(o.makespan_inflation > 0.0);
    assert_eq!(o.reexecuted_tasks, 0);
    assert_eq!(r.messages, baseline.messages, "degradation drops no traffic");
}

#[test]
fn empty_plan_matches_fault_free_run() {
    let (mt, nt, b) = (6, 3, 40);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let p = test_platform(2);
    let lay = Layout::cyclic_rows(2);
    let r0 = simulate(&g, &lay, &p);
    let r1 =
        simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &SimFaultPlan::new()).unwrap();
    assert_eq!(r0.makespan, r1.makespan);
    assert_eq!(r0.messages, r1.messages);
    assert!(r1.overhead.is_some(), "fallible API always reports overhead");
    assert_eq!(r1.overhead.unwrap().makespan_inflation, 0.0);
}

#[test]
fn faulty_runs_are_deterministic() {
    let (mt, nt, b) = (10, 5, 40);
    let g = TaskGraph::build(mt, nt, b, &binary_elims(mt, nt));
    let p = test_platform(3);
    let lay = Layout::cyclic_rows(3);
    let base = simulate(&g, &lay, &p).makespan;
    let plan = SimFaultPlan::new().crash_node(0, 0.4 * base).degrade_link(0.1 * base, 0.5, 2.0);
    let r1 = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan).unwrap();
    let r2 = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan).unwrap();
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.messages, r2.messages);
    assert_eq!(r1.bytes, r2.bytes);
    assert_eq!(r1.overhead, r2.overhead);
}

#[test]
fn double_crash_still_recovers_onto_last_survivor() {
    let (mt, nt, b) = (8, 4, 40);
    let g = TaskGraph::build(mt, nt, b, &flat_elims(mt, nt));
    let p = test_platform(3);
    let lay = Layout::cyclic_rows(3);
    let base = simulate(&g, &lay, &p).makespan;
    let plan = SimFaultPlan::new().crash_node(0, 0.2 * base).crash_node(1, 0.5 * base);
    let r = simulate_with_faults(&g, &lay, &p, SchedPolicy::PanelFirst, &plan).unwrap();
    let o = r.overhead.unwrap();
    assert_eq!(o.nodes_lost, 2);
    assert!(r.makespan >= base);
}

#[test]
fn crashing_every_node_is_rejected() {
    let g = TaskGraph::build(4, 2, 40, &flat_elims(4, 2));
    let p = test_platform(2);
    let plan = SimFaultPlan::new().crash_node(0, 0.1).crash_node(1, 0.2);
    match simulate_with_faults(&g, &Layout::cyclic_rows(2), &p, SchedPolicy::PanelFirst, &plan) {
        Err(SimError::AllNodesCrashed { nodes: 2 }) => {}
        other => panic!("expected AllNodesCrashed, got {other:?}"),
    }
}

#[test]
fn invalid_layout_is_a_typed_error_in_the_fallible_api() {
    let g = TaskGraph::build(4, 2, 40, &flat_elims(4, 2));
    let p = test_platform(2);
    match simulate_with_faults(
        &g,
        &Layout::cyclic_rows(4),
        &p,
        SchedPolicy::PanelFirst,
        &SimFaultPlan::new(),
    ) {
        Err(SimError::Config { message }) => assert!(message.contains("layout addresses")),
        other => panic!("expected Config error, got {other:?}"),
    }
}
