//! Property-based tests of the discrete-event simulator: fundamental
//! scheduling bounds must hold for arbitrary DAGs, layouts and platforms.

use hqr_runtime::{ElimOp, TaskGraph};
use hqr_sim::{simulate_with_policy, Platform, SchedPolicy};
use hqr_tile::{Layout, ProcessGrid};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_elims(mt: usize, nt: usize, seed: u64) -> Vec<ElimOp> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..mt.min(nt) {
        let mut alive: Vec<u32> = (k as u32..mt as u32).collect();
        while alive.len() > 1 {
            let vpos = rng.gen_range(1..alive.len());
            let upos = rng.gen_range(0..vpos);
            out.push(ElimOp::new(k as u32, alive[vpos], alive[upos], false));
            alive.remove(vpos);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Work and critical-path lower bounds, serial upper bound; all tasks
    /// complete; busy time equals total kernel time.
    #[test]
    fn fundamental_scheduling_bounds(
        mt in 1usize..10, nt in 1usize..5, seed in any::<u64>(),
        p in 1usize..4, q in 1usize..3, cores in 1usize..5,
        policy_sel in 0usize..3,
    ) {
        let b = 24usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let platform = Platform { nodes: p * q, cores_per_node: cores, ..Platform::edel() };
        let layout = Layout::Cyclic2D(ProcessGrid::new(p, q));
        let policy = [SchedPolicy::PanelFirst, SchedPolicy::Fifo, SchedPolicy::CriticalPath][policy_sel];
        let r = simulate_with_policy(&g, &layout, &platform, policy);
        let total: f64 = g.tasks().iter().map(|t| platform.kernel_seconds(t.kind, b)).sum();
        let total_cores = (p * q * cores) as f64;
        prop_assert!(r.makespan >= total / total_cores - 1e-9, "work bound violated");
        // Communication can make things slower than serial-no-comm, but the
        // busy-time identity must hold exactly.
        prop_assert!((r.node_busy.iter().sum::<f64>() - total).abs() < 1e-6);
        prop_assert!(r.gflops > 0.0);
        let util = r.utilization(&platform);
        prop_assert!(util > 0.0 && util <= 1.0 + 1e-9);
    }

    /// A free network (zero latency, infinite bandwidth) can never be
    /// slower than a costly one.
    #[test]
    fn faster_network_never_hurts(mt in 2usize..10, nt in 1usize..4, seed in any::<u64>()) {
        let b = 24usize;
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, b, &elims);
        let layout = Layout::cyclic_rows(3);
        let base = Platform { nodes: 3, cores_per_node: 2, ..Platform::edel() };
        let free = Platform {
            link: hqr_sim::LinkModel { latency: 0.0, bandwidth: f64::INFINITY, overhead: 0.0 },
            ..base
        };
        let r_slow = simulate_with_policy(&g, &layout, &base, SchedPolicy::PanelFirst);
        let r_fast = simulate_with_policy(&g, &layout, &free, SchedPolicy::PanelFirst);
        prop_assert!(r_fast.makespan <= r_slow.makespan + 1e-12);
        prop_assert_eq!(r_fast.messages, r_slow.messages, "same DAG, same message structure");
    }

    /// Single node ⇒ no messages, regardless of the DAG.
    #[test]
    fn single_node_no_messages(mt in 1usize..10, nt in 1usize..4, seed in any::<u64>()) {
        let elims = random_elims(mt, nt, seed);
        let g = TaskGraph::build(mt, nt, 16, &elims);
        let platform = Platform { nodes: 1, cores_per_node: 4, ..Platform::edel() };
        let r = simulate_with_policy(&g, &Layout::Single, &platform, SchedPolicy::PanelFirst);
        prop_assert_eq!(r.messages, 0);
        prop_assert_eq!(r.bytes, 0.0);
    }
}
