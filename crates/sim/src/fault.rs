//! Simulated platform faults: node crashes and link degradation.
//!
//! The fault model mirrors what checkpoint-free fault tolerance on top of a
//! data-flow runtime gives you (lineage recovery, as in DAGuE-descendant
//! runtimes): a crashed node loses every *intermediate* tile it produced,
//! while the original input matrix is assumed durably re-loadable. Recovery
//! walks the DAG backwards from the still-incomplete tasks and re-executes
//! exactly the lost producers whose outputs are still needed, on the
//! surviving nodes.

use std::collections::BTreeSet;
use std::fmt;

/// One node crash: at simulated time `at`, node `node` disappears — its
/// in-flight and queued tasks abort, and every intermediate tile it holds
/// is lost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCrash {
    /// Node index (into the platform's `nodes`).
    pub node: usize,
    /// Simulated time of the crash, seconds.
    pub at: f64,
}

/// One link-degradation event: at time `at` the interconnect's bandwidth is
/// multiplied by `bandwidth_factor` (< 1 degrades) and its latency by
/// `latency_factor` (> 1 degrades). Models cable faults, congestion or a
/// failed rail — LogGP parameters worsen but traffic still flows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkDegrade {
    /// Simulated time the degradation takes effect, seconds.
    pub at: f64,
    /// Multiplier applied to link bandwidth (0 < f ≤ 1 degrades).
    pub bandwidth_factor: f64,
    /// Multiplier applied to link latency (≥ 1 degrades).
    pub latency_factor: f64,
}

/// A deterministic schedule of platform faults for one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimFaultPlan {
    crashes: Vec<NodeCrash>,
    degrades: Vec<LinkDegrade>,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash `node` at time `at`.
    pub fn crash_node(mut self, node: usize, at: f64) -> Self {
        self.crashes.push(NodeCrash { node, at });
        self
    }

    /// Crash a deterministic seed-chosen node (among `nodes`) at time `at`.
    pub fn crash_random_node(self, nodes: usize, seed: u64, at: f64) -> Self {
        let mut s = seed ^ 0x0DE0_0DE0_0DE0_0DE0;
        let node = (splitmix64(&mut s) % nodes.max(1) as u64) as usize;
        self.crash_node(node, at)
    }

    /// Degrade the interconnect at time `at`.
    pub fn degrade_link(mut self, at: f64, bandwidth_factor: f64, latency_factor: f64) -> Self {
        self.degrades.push(LinkDegrade { at, bandwidth_factor, latency_factor });
        self
    }

    /// Scheduled crashes, in insertion order.
    pub fn crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// Scheduled link degradations, in insertion order.
    pub fn degrades(&self) -> &[LinkDegrade] {
        &self.degrades
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.degrades.is_empty()
    }

    /// Validate the plan against a platform of `nodes` nodes: every event
    /// must be well-formed and at least one node must survive all crashes.
    pub fn validate(&self, nodes: usize) -> Result<(), SimError> {
        let mut crashed = BTreeSet::new();
        for c in &self.crashes {
            if c.node >= nodes {
                return Err(SimError::Config {
                    message: format!("crash targets node {} but platform has {nodes}", c.node),
                });
            }
            if !c.at.is_finite() || c.at < 0.0 {
                return Err(SimError::Config {
                    message: format!("crash time {} must be finite and non-negative", c.at),
                });
            }
            crashed.insert(c.node);
        }
        if crashed.len() >= nodes && nodes > 0 {
            return Err(SimError::AllNodesCrashed { nodes });
        }
        for d in &self.degrades {
            if !d.at.is_finite() || d.at < 0.0 {
                return Err(SimError::Config {
                    message: format!("degradation time {} must be finite and non-negative", d.at),
                });
            }
            let ok = |f: f64| f.is_finite() && f > 0.0;
            if !ok(d.bandwidth_factor) || !ok(d.latency_factor) {
                return Err(SimError::Config {
                    message: "link degradation factors must be positive".into(),
                });
            }
        }
        Ok(())
    }
}

/// Recovery cost of a faulty run, attached to the
/// [`SimReport`](crate::SimReport) by
/// [`simulate_with_faults`](crate::simulate_with_faults).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultOverhead {
    /// Makespan of the identical fault-free run.
    pub baseline_makespan: f64,
    /// `makespan / baseline_makespan - 1` (0 when faults cost nothing).
    pub makespan_inflation: f64,
    /// Previously *completed* tasks whose outputs were lost and had to be
    /// re-executed on survivors (the lineage closure).
    pub reexecuted_tasks: usize,
    /// Tasks aborted mid-execution or while queued on a crashing node.
    pub aborted_tasks: usize,
    /// Extra messages sent to restage surviving inputs onto new owners.
    pub resent_messages: usize,
    /// Bytes carried by those restaging messages.
    pub resent_bytes: f64,
    /// Nodes lost to crashes.
    pub nodes_lost: usize,
}

/// Typed failure of a simulated run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// Malformed input (bad layout, bad fault plan parameters).
    Config {
        /// Human-readable description.
        message: String,
    },
    /// The fault plan leaves no survivor to recover onto.
    AllNodesCrashed {
        /// Platform size.
        nodes: usize,
    },
    /// The event loop drained with tasks still pending — a scheduling bug,
    /// kept as a typed error instead of an assert.
    Deadlock {
        /// Tasks that did run.
        completed: usize,
        /// Tasks in the graph.
        total: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config { message } => write!(f, "invalid simulation input: {message}"),
            SimError::AllNodesCrashed { nodes } => {
                write!(f, "fault plan crashes all {nodes} nodes; recovery needs a survivor")
            }
            SimError::Deadlock { completed, total } => {
                write!(f, "simulation deadlocked: {completed}/{total} tasks ran")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(SimFaultPlan::new().validate(4).is_ok());
        assert!(matches!(
            SimFaultPlan::new().crash_node(4, 1.0).validate(4),
            Err(SimError::Config { .. })
        ));
        assert!(matches!(
            SimFaultPlan::new().crash_node(0, -1.0).validate(4),
            Err(SimError::Config { .. })
        ));
        assert!(matches!(
            SimFaultPlan::new().crash_node(0, 0.1).crash_node(1, 0.2).validate(2),
            Err(SimError::AllNodesCrashed { nodes: 2 })
        ));
        assert!(matches!(
            SimFaultPlan::new().degrade_link(0.0, 0.0, 1.0).validate(2),
            Err(SimError::Config { .. })
        ));
        assert!(SimFaultPlan::new()
            .crash_node(1, 0.5)
            .degrade_link(0.1, 0.5, 2.0)
            .validate(3)
            .is_ok());
    }

    #[test]
    fn seeded_crash_is_deterministic_and_in_range() {
        let a = SimFaultPlan::new().crash_random_node(7, 42, 1.0);
        let b = SimFaultPlan::new().crash_random_node(7, 42, 1.0);
        assert_eq!(a, b);
        assert!(a.crashes()[0].node < 7);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SimError::Deadlock { completed: 3, total: 9 };
        assert_eq!(e.to_string(), "simulation deadlocked: 3/9 tasks ran");
        let e = SimError::AllNodesCrashed { nodes: 2 };
        assert!(e.to_string().contains("all 2 nodes"));
    }
}
