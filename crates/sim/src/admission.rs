//! Admission-policy pricing for the multi-job factorization service.
//!
//! `hqr serve` must decide what to do when offered load exceeds pool
//! capacity. This module prices the three classical answers with a
//! Poisson-arrival discrete-event simulation of the service loop:
//!
//! * **queue** — a bounded FIFO with pure backpressure: when the queue is
//!   full, new arrivals are refused (the client retries later). Nothing
//!   already accepted is ever dropped, but every accepted job inherits the
//!   full backlog in its latency.
//! * **shed** — the pool's own policy: bounded queue, and an arrival that
//!   finds it full may displace the newest *strictly lower-QoS* queued job
//!   (otherwise it is refused). Interactive latency stays flat through
//!   saturation at the price of batch completions.
//! * **degrade** — admit everything and oversubscribe the workers: a job
//!   admitted with `n` jobs in the system runs slowed by `max(1, n/c)`
//!   (cache and memory-bandwidth pressure of co-scheduling). No job is
//!   ever refused, but *everyone's* tail stretches once the system tips
//!   past saturation.
//!
//! Arrivals are Poisson with exponential service demands scaled per QoS
//! class (interactive jobs are short, batch jobs long), drawn from a
//! deterministic splitmix64 stream so every report is reproducible.
//! Dispatch is QoS-major FCFS in all arms, matching the pool's admission
//! order.

/// Service QoS mix: class index 0 = batch, 1 = normal, 2 = interactive.
const QOS_SHARE: [f64; 3] = [0.50, 0.35, 0.15];
/// Mean service demand of each class relative to `mean_service`.
const QOS_SCALE: [f64; 3] = [2.0, 1.0, 0.3];
const QOS_NAME: [&str; 3] = ["batch", "normal", "interactive"];

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform in (0, 1]; never 0 so `ln` stays finite.
fn uniform(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

fn exponential(state: &mut u64, mean: f64) -> f64 {
    -mean * uniform(state).ln()
}

/// The admission policy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Bounded queue, refuse arrivals when full.
    Queue,
    /// Bounded queue, displace the newest strictly lower-QoS entry.
    Shed,
    /// Unbounded admission with proportional slowdown.
    Degrade,
}

impl AdmissionPolicy {
    /// The three arms in report order.
    pub const ALL: [AdmissionPolicy; 3] =
        [AdmissionPolicy::Queue, AdmissionPolicy::Shed, AdmissionPolicy::Degrade];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Queue => "queue",
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Degrade => "degrade",
        }
    }
}

/// Workload and capacity parameters of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Mean arrivals per second (Poisson).
    pub arrival_rate: f64,
    /// Concurrent job slots (the pool's `max_active`).
    pub servers: usize,
    /// Bounded submission-queue capacity (`queue_cap`).
    pub queue_cap: usize,
    /// Mean service demand of a normal-QoS job, seconds.
    pub mean_service: f64,
    /// Number of arrivals to simulate.
    pub jobs: usize,
    /// RNG seed; equal seeds reproduce the identical trace.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            arrival_rate: 1.0,
            servers: 4,
            queue_cap: 16,
            mean_service: 2.0,
            jobs: 5_000,
            seed: 42,
        }
    }
}

/// What one policy arm did with the offered load.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionReport {
    /// The arm that produced this report.
    pub policy: AdmissionPolicy,
    /// Offered load ρ = λ·E[S]/c.
    pub rho: f64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Arrivals refused at the door (backpressure).
    pub rejected: usize,
    /// Accepted jobs later displaced by a higher-QoS arrival.
    pub shed: usize,
    /// Median sojourn (arrival → completion), seconds.
    pub p50: f64,
    /// 99th-percentile sojourn, seconds.
    pub p99: f64,
    /// 99th-percentile sojourn of the interactive class alone.
    pub p99_interactive: f64,
    /// Mean sojourn, seconds.
    pub mean: f64,
}

impl AdmissionReport {
    /// Fraction of all arrivals that never completed (refused or shed).
    pub fn loss_rate(&self, total: usize) -> f64 {
        (self.rejected + self.shed) as f64 / total.max(1) as f64
    }
}

#[derive(Clone, Copy)]
struct Arrival {
    at: f64,
    qos: usize,
    service: f64,
}

fn draw_arrivals(cfg: &AdmissionConfig) -> Vec<Arrival> {
    let mut state = cfg.seed ^ 0xa077_1e55_0000_0001;
    let mut t = 0.0;
    (0..cfg.jobs)
        .map(|_| {
            t += exponential(&mut state, 1.0 / cfg.arrival_rate.max(1e-12));
            let u = uniform(&mut state);
            let qos = if u < QOS_SHARE[0] {
                0
            } else if u < QOS_SHARE[0] + QOS_SHARE[1] {
                1
            } else {
                2
            };
            let service = exponential(&mut state, cfg.mean_service * QOS_SCALE[qos]);
            Arrival { at: t, qos, service }
        })
        .collect()
}

/// Mean service demand over the QoS mix, E[S].
fn mean_demand(cfg: &AdmissionConfig) -> f64 {
    QOS_SHARE.iter().zip(QOS_SCALE).map(|(share, scale)| share * scale * cfg.mean_service).sum()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn finish(
    policy: AdmissionPolicy,
    cfg: &AdmissionConfig,
    mut sojourns: Vec<(usize, f64)>,
    rejected: usize,
    shed: usize,
) -> AdmissionReport {
    let mut all: Vec<f64> = sojourns.iter().map(|&(_, s)| s).collect();
    all.sort_by(f64::total_cmp);
    sojourns.retain(|&(qos, _)| qos == 2);
    let mut inter: Vec<f64> = sojourns.into_iter().map(|(_, s)| s).collect();
    inter.sort_by(f64::total_cmp);
    let mean = if all.is_empty() { 0.0 } else { all.iter().sum::<f64>() / all.len() as f64 };
    AdmissionReport {
        policy,
        rho: cfg.arrival_rate * mean_demand(cfg) / cfg.servers.max(1) as f64,
        completed: all.len(),
        rejected,
        shed,
        p50: percentile(&all, 0.50),
        p99: percentile(&all, 0.99),
        p99_interactive: percentile(&inter, 0.99),
        mean,
    }
}

/// Run one policy arm over the configured workload.
pub fn simulate_admission(cfg: &AdmissionConfig, policy: AdmissionPolicy) -> AdmissionReport {
    let arrivals = draw_arrivals(cfg);
    match policy {
        AdmissionPolicy::Degrade => degrade_arm(cfg, &arrivals),
        _ => queue_arm(cfg, &arrivals, policy == AdmissionPolicy::Shed),
    }
}

/// Bounded-queue arms (`Queue` and `Shed`). Event-driven: walk arrivals
/// and completions in time order with a c-server station and a QoS-major
/// FCFS wait list.
fn queue_arm(cfg: &AdmissionConfig, arrivals: &[Arrival], shed_enabled: bool) -> AdmissionReport {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Completion events: (time, token). Waiting: (qos, seq) -> arrival idx.
    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut waiting: Vec<usize> = Vec::new(); // indices into `arrivals`
    let mut busy = 0usize;
    let (mut rejected, mut shed) = (0usize, 0usize);
    let mut sojourns: Vec<(usize, f64)> = Vec::with_capacity(arrivals.len());
    let key = |t: f64| (t * 1e9) as u64; // fixed-point event ordering

    let start = |idx: usize, now: f64, completions: &mut BinaryHeap<Reverse<(u64, usize)>>| {
        let a = arrivals[idx];
        completions.push(Reverse((key(now + a.service), idx)));
    };

    let mut next = 0usize;
    loop {
        let arrival_at = arrivals.get(next).map(|a| key(a.at));
        let completion_at = completions.peek().map(|Reverse((t, _))| *t);
        match (arrival_at, completion_at) {
            (None, None) => break,
            (Some(ta), Some(tc)) if tc <= ta => {
                let Reverse((t, idx)) = completions.pop().expect("peeked");
                let now = t as f64 / 1e9;
                sojourns.push((arrivals[idx].qos, now - arrivals[idx].at));
                busy -= 1;
                // QoS-major FCFS dispatch from the wait list.
                if let Some(pos) =
                    (0..waiting.len()).max_by_key(|&i| (arrivals[waiting[i]].qos, Reverse(i)))
                {
                    let idx = waiting.remove(pos);
                    busy += 1;
                    start(idx, now, &mut completions);
                }
            }
            (Some(_), _) => {
                let idx = next;
                next += 1;
                let a = arrivals[idx];
                if busy < cfg.servers {
                    busy += 1;
                    start(idx, a.at, &mut completions);
                } else if waiting.len() < cfg.queue_cap {
                    waiting.push(idx);
                } else if shed_enabled {
                    // Displace the newest strictly lower-QoS queued job.
                    match (0..waiting.len())
                        .filter(|&i| arrivals[waiting[i]].qos < a.qos)
                        .max_by_key(|&i| (Reverse(arrivals[waiting[i]].qos), i))
                    {
                        Some(pos) => {
                            waiting.remove(pos);
                            shed += 1;
                            waiting.push(idx);
                        }
                        None => rejected += 1,
                    }
                } else {
                    rejected += 1;
                }
            }
            (None, Some(_)) => {
                let Reverse((t, idx)) = completions.pop().expect("peeked");
                let now = t as f64 / 1e9;
                sojourns.push((arrivals[idx].qos, now - arrivals[idx].at));
                busy -= 1;
                if let Some(pos) =
                    (0..waiting.len()).max_by_key(|&i| (arrivals[waiting[i]].qos, Reverse(i)))
                {
                    let idx = waiting.remove(pos);
                    busy += 1;
                    start(idx, now, &mut completions);
                }
            }
        }
    }
    let policy = if shed_enabled { AdmissionPolicy::Shed } else { AdmissionPolicy::Queue };
    finish(policy, cfg, sojourns, rejected, shed)
}

/// The `Degrade` arm: every arrival starts immediately; a job admitted
/// with `n` jobs already in the system runs `max(1, n/c)` times slower.
fn degrade_arm(cfg: &AdmissionConfig, arrivals: &[Arrival]) -> AdmissionReport {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut sojourns: Vec<(usize, f64)> = Vec::with_capacity(arrivals.len());
    let key = |t: f64| (t * 1e9) as u64;
    for (idx, a) in arrivals.iter().enumerate() {
        while let Some(&Reverse((t, done))) = completions.peek() {
            if t as f64 / 1e9 > a.at {
                break;
            }
            completions.pop();
            sojourns.push((arrivals[done].qos, t as f64 / 1e9 - arrivals[done].at));
        }
        let in_system = completions.len();
        let slowdown = (in_system as f64 / cfg.servers.max(1) as f64).max(1.0);
        completions.push(Reverse((key(a.at + a.service * slowdown), idx)));
    }
    while let Some(Reverse((t, done))) = completions.pop() {
        sojourns.push((arrivals[done].qos, t as f64 / 1e9 - arrivals[done].at));
    }
    finish(AdmissionPolicy::Degrade, cfg, sojourns, 0, 0)
}

/// One sweep point: the offered arrival rate and all three arms' reports.
#[derive(Clone, Copy, Debug)]
pub struct SaturationPoint {
    /// Arrivals per second at this point.
    pub rate: f64,
    /// Reports in [`AdmissionPolicy::ALL`] order.
    pub arms: [AdmissionReport; 3],
}

/// Sweep the arrival rate across `rates`, running all three arms at each
/// point. The interesting read-out is where each arm's p99 (or loss rate)
/// leaves the flat region — the service's saturation knee.
pub fn saturation_sweep(base: &AdmissionConfig, rates: &[f64]) -> Vec<SaturationPoint> {
    rates
        .iter()
        .map(|&rate| {
            let cfg = AdmissionConfig { arrival_rate: rate, ..*base };
            SaturationPoint {
                rate,
                arms: [
                    simulate_admission(&cfg, AdmissionPolicy::Queue),
                    simulate_admission(&cfg, AdmissionPolicy::Shed),
                    simulate_admission(&cfg, AdmissionPolicy::Degrade),
                ],
            }
        })
        .collect()
}

/// Name of QoS class `i` (0 = batch .. 2 = interactive), for reports.
pub fn qos_class_name(i: usize) -> &'static str {
    QOS_NAME[i.min(2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64) -> AdmissionConfig {
        AdmissionConfig { arrival_rate: rate, jobs: 4_000, ..AdmissionConfig::default() }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_admission(&cfg(1.5), AdmissionPolicy::Shed);
        let b = simulate_admission(&cfg(1.5), AdmissionPolicy::Shed);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.p99.to_bits(), b.p99.to_bits());
    }

    #[test]
    fn light_load_loses_nothing_and_stays_fast() {
        for policy in AdmissionPolicy::ALL {
            let r = simulate_admission(&cfg(0.3), policy);
            assert!(r.rho < 0.25, "rho {}", r.rho);
            assert_eq!(r.rejected + r.shed, 0, "{policy:?} lost jobs under light load");
            assert_eq!(r.completed, 4_000);
            // Sojourn should be close to bare service demand.
            assert!(r.p50 < 4.0 * mean_demand(&cfg(0.3)), "{policy:?} p50 {}", r.p50);
        }
    }

    #[test]
    fn conservation_holds_at_overload() {
        for policy in AdmissionPolicy::ALL {
            let r = simulate_admission(&cfg(6.0), policy);
            assert_eq!(r.completed + r.rejected + r.shed, 4_000, "{policy:?}");
        }
    }

    #[test]
    fn shedding_protects_interactive_latency_at_overload() {
        let hot = cfg(5.0);
        let queue = simulate_admission(&hot, AdmissionPolicy::Queue);
        let shed = simulate_admission(&hot, AdmissionPolicy::Shed);
        let degrade = simulate_admission(&hot, AdmissionPolicy::Degrade);
        assert!(shed.shed > 0, "overload must trigger shedding");
        assert_eq!(degrade.rejected + degrade.shed, 0, "degrade admits everything");
        // The shedding arm keeps the interactive tail at or below the
        // pure-backpressure arm's, which itself beats uncontrolled
        // oversubscription.
        assert!(
            shed.p99_interactive <= queue.p99_interactive * 1.05,
            "shed p99i {} vs queue p99i {}",
            shed.p99_interactive,
            queue.p99_interactive
        );
        assert!(
            degrade.p99 > queue.p99,
            "degrade tail {} should exceed the bounded queue's {}",
            degrade.p99,
            queue.p99
        );
    }

    #[test]
    fn sweep_finds_a_knee() {
        let base = AdmissionConfig { jobs: 2_000, ..AdmissionConfig::default() };
        let points = saturation_sweep(&base, &[0.25, 0.5, 1.0, 2.0, 4.0]);
        assert_eq!(points.len(), 5);
        let shed_rates: Vec<usize> = points.iter().map(|p| p.arms[1].shed).collect();
        assert_eq!(shed_rates[0], 0, "no shedding far below saturation");
        assert!(*shed_rates.last().expect("points") > 0, "overload sheds");
        // rho is monotone in the arrival rate.
        for w in points.windows(2) {
            assert!(w[1].arms[0].rho > w[0].arms[0].rho);
        }
    }
}
