//! Disk-throughput model for out-of-core (spill-to-disk) factorization.
//!
//! The runtime's two-tier tile store (`hqr_runtime::spill`) keeps a
//! resident fraction of the tile footprint in memory and pages the rest
//! against a checksummed spill file. This module prices that trade
//! analytically, dslab-storage style: a single disk arm with a fixed
//! per-access latency and separate sustained read/write bandwidths,
//! serialized at the device. Each tile touch that misses the resident
//! tier costs one record read (the fault-in) and one record write (the
//! dirty eviction that made room for it).
//!
//! Two deployment arms bound the real runtime from both sides:
//!
//! * **overlapped** — a perfect prefetcher hides disk time behind
//!   compute, so the makespan is `max(compute, disk)`; this is what the
//!   scheduler-driven ready-frontier prefetch aims for;
//! * **serialized** — every miss is a demand fault on the critical path,
//!   so the makespan is `compute + disk`; this is what a prefetch-less
//!   run degrades to.
//!
//! [`spill_sweep`] walks the residency fraction and
//! [`spill_crossover`] solves for the fraction below which even perfect
//! prefetch cannot hide the disk: the run turns bandwidth-bound and
//! makespan grows linearly as residency shrinks.

use hqr_runtime::TaskGraph;

/// One disk arm: fixed per-access latency plus sustained sequential
/// bandwidths. Spill records are tile-sized, so bandwidth dominates for
/// realistic tiles and latency dominates for tiny ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Sustained read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sustained write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Fixed per-access latency, seconds (seek + request overhead).
    pub latency: f64,
}

impl Default for DiskModel {
    /// A mid-range SATA SSD: 500 MB/s reads, 450 MB/s writes, 100 µs
    /// per access.
    fn default() -> Self {
        DiskModel { read_bw: 500e6, write_bw: 450e6, latency: 100e-6 }
    }
}

impl DiskModel {
    /// Wall-clock seconds one miss costs: fault-in read plus the dirty
    /// write-back that evicted a resident tile to make room.
    pub fn miss_seconds(&self, tile_bytes: f64) -> f64 {
        2.0 * self.latency
            + tile_bytes / self.read_bw.max(f64::MIN_POSITIVE)
            + tile_bytes / self.write_bw.max(f64::MIN_POSITIVE)
    }
}

/// Total tile touches of a graph: every read- and write-set slot of
/// every task pins (and may fault) once.
pub fn tile_touches(graph: &TaskGraph) -> u64 {
    graph.tasks().iter().map(|t| (t.reads().len() + t.writes().len()) as u64).sum()
}

/// One point of the residency sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpillPoint {
    /// Fraction of the tile footprint held resident, in (0, 1].
    pub residency: f64,
    /// Expected tile touches that miss the resident tier.
    pub misses: f64,
    /// Seconds the disk arm is busy serving those misses.
    pub disk_seconds: f64,
    /// Makespan with a perfect prefetcher: `max(compute, disk)`.
    pub overlapped: f64,
    /// Makespan with demand faults only: `compute + disk`.
    pub serialized: f64,
}

impl SpillPoint {
    /// True when even perfect prefetch cannot hide the disk: the run is
    /// spill-bandwidth-bound at this residency (`disk >= compute`, so
    /// the disk arm sets the overlapped makespan).
    pub fn disk_bound(&self) -> bool {
        self.disk_seconds >= self.overlapped
    }
}

/// Price an out-of-core run at one residency fraction. Misses follow the
/// uniform-reuse approximation: a touch misses with probability
/// `1 - residency` (an LRU tier holding fraction `r` of the slots serves
/// fraction `r` of touches under uniform reuse — pessimistic for panel
/// locality, which the real prefetcher exploits).
pub fn spill_point(
    graph: &TaskGraph,
    tile_bytes: f64,
    compute_seconds: f64,
    disk: &DiskModel,
    residency: f64,
) -> SpillPoint {
    let r = residency.clamp(0.0, 1.0);
    let misses = tile_touches(graph) as f64 * (1.0 - r);
    let disk_seconds = misses * disk.miss_seconds(tile_bytes);
    SpillPoint {
        residency: r,
        misses,
        disk_seconds,
        overlapped: compute_seconds.max(disk_seconds),
        serialized: compute_seconds + disk_seconds,
    }
}

/// Sweep the residency fraction from `1/points` up to fully resident.
pub fn spill_sweep(
    graph: &TaskGraph,
    tile_bytes: f64,
    compute_seconds: f64,
    disk: &DiskModel,
    points: usize,
) -> Vec<SpillPoint> {
    let n = points.max(1);
    (1..=n)
        .map(|i| spill_point(graph, tile_bytes, compute_seconds, disk, i as f64 / n as f64))
        .collect()
}

/// The residency fraction where disk time equals compute time: below it
/// the overlapped makespan is disk-bound and grows as residency shrinks;
/// above it spilling is free (modulo prefetch misses). Returns 0.0 when
/// the disk never catches up (spilling is always hidden) and 1.0 when
/// even a sliver of spill traffic dominates.
pub fn spill_crossover(
    graph: &TaskGraph,
    tile_bytes: f64,
    compute_seconds: f64,
    disk: &DiskModel,
) -> f64 {
    let full_miss = tile_touches(graph) as f64 * disk.miss_seconds(tile_bytes);
    if full_miss <= f64::MIN_POSITIVE {
        return 0.0;
    }
    (1.0 - compute_seconds / full_miss).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_runtime::ElimOp;

    fn graph() -> TaskGraph {
        let (mt, nt, b) = (4, 3, 8);
        let mut elims = Vec::new();
        for k in 0..nt {
            for i in (k + 1)..mt {
                elims.push(ElimOp::new(k as u32, i as u32, k as u32, true));
            }
        }
        TaskGraph::build(mt, nt, b, &elims)
    }

    #[test]
    fn fully_resident_run_pays_nothing() {
        let g = graph();
        let p = spill_point(&g, 512.0, 10.0, &DiskModel::default(), 1.0);
        assert_eq!(p.misses, 0.0);
        assert_eq!(p.disk_seconds, 0.0);
        assert_eq!(p.overlapped, 10.0);
        assert_eq!(p.serialized, 10.0);
    }

    #[test]
    fn sweep_is_monotone_in_residency() {
        let g = graph();
        let disk = DiskModel::default();
        let pts = spill_sweep(&g, 512.0 * 512.0, 1e-3, &disk, 10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].residency < w[1].residency);
            assert!(w[0].disk_seconds >= w[1].disk_seconds, "less resident → more disk");
            assert!(w[0].serialized >= w[1].serialized);
            assert!(w[0].overlapped >= w[1].overlapped);
        }
        assert_eq!(pts.last().unwrap().residency, 1.0);
    }

    #[test]
    fn crossover_separates_disk_bound_from_compute_bound() {
        let g = graph();
        // A slow disk against a short compute: the crossover sits
        // strictly inside (0, 1), disk-bound below it, hidden above it.
        let disk = DiskModel { read_bw: 50e6, write_bw: 50e6, latency: 1e-4 };
        let tile_bytes = 512.0 * 1024.0;
        let touches = tile_touches(&g) as f64;
        let compute = 0.5 * touches * disk.miss_seconds(tile_bytes);
        let rstar = spill_crossover(&g, tile_bytes, compute, &disk);
        assert!(rstar > 0.0 && rstar < 1.0, "r* = {rstar}");
        let below = spill_point(&g, tile_bytes, compute, &disk, rstar * 0.5);
        let above = spill_point(&g, tile_bytes, compute, &disk, rstar + (1.0 - rstar) * 0.5);
        assert!(below.disk_seconds > compute, "below r* the disk dominates");
        assert!(above.disk_seconds < compute, "above r* compute dominates");
        // And with a fast disk the crossover collapses to zero: spilling
        // is always hidden by perfect prefetch.
        let fast = DiskModel { read_bw: 1e12, write_bw: 1e12, latency: 1e-9 };
        assert_eq!(spill_crossover(&g, 512.0, 1e3, &fast), 0.0);
    }

    #[test]
    fn touches_count_read_and_write_sets() {
        let g = graph();
        let touches = tile_touches(&g);
        // Every task touches at least two slots (its write set plus at
        // least one read), so the total strictly exceeds the task count.
        assert!(touches > g.tasks().len() as u64 * 2 - 1, "{touches}");
    }
}
