//! Discrete-event simulator of a cluster of multi-core nodes.
//!
//! This crate substitutes for the paper's experimental platform — 60
//! Grid'5000 *edel* nodes (2× Nehalem E5520, 8 cores) with Infiniband 20G —
//! which we obviously cannot access. The simulator replays a
//! [`hqr_runtime::TaskGraph`] under the owner-computes rule of the data
//! layout, with:
//!
//! * per-node multi-core execution (list scheduling with the panel-first
//!   priority heuristic DAGuE-style runtimes use);
//! * per-kernel sequential rates calibrated from the paper's own
//!   measurements (§V-A: dTSMQR 7.21 GFlop/s, dTTMQR 6.28 GFlop/s,
//!   9.08 GFlop/s theoretical peak per core);
//! * a latency/bandwidth link model with per-NIC send/receive
//!   serialization, which is what makes flat trees latency-bound and
//!   hierarchical trees "communication-avoiding".
//!
//! The absolute GFlop/s numbers are a model, but the *shape* of the results
//! (which tree wins for which matrix shape, the effect of `a` and of the
//! domino coupling, the ranking against ScaLAPACK/\[BBD+10\]/\[SLHD10\]) is
//! determined by work, critical path and message structure — which the
//! simulator reproduces faithfully from the real DAGs.

pub mod admission;
pub mod checkpoint;
pub mod des;
pub mod disk;
pub mod fault;
pub mod platform;
pub mod scalapack;
pub mod sdc;
pub mod timeline;

pub use admission::{
    saturation_sweep, simulate_admission, AdmissionConfig, AdmissionPolicy, AdmissionReport,
    SaturationPoint,
};
pub use checkpoint::{
    compare_recovery_policies, find_crossover, find_suspend_crossover, recovery_crossover,
    suspend_vs_scratch_sweep, young_daly_interval, CheckpointCostModel, CheckpointOutcome,
    CrossoverPoint, RecoveryComparison, RecoveryPolicy, SuspendPoint,
};
pub use des::{
    priority_ranks, simulate, simulate_traced, simulate_with_faults, simulate_with_policy,
    SchedPolicy, SimReport,
};
pub use disk::{spill_crossover, spill_point, spill_sweep, tile_touches, DiskModel, SpillPoint};
pub use fault::{FaultOverhead, LinkDegrade, NodeCrash, SimError, SimFaultPlan};
pub use platform::{Accelerators, KernelRates, LinkModel, Platform};
pub use sdc::{find_sdc_crossover, sdc_policy_sweep, SdcCostModel, SdcSweepPoint};
pub use timeline::{SimInstant, SimInstantKind, SimSpan, SimTimeline, SimTransfer};
