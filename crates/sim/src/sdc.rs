//! Silent-data-corruption cost model and recovery-policy comparison.
//!
//! The runtime's guard layer (`hqr_runtime::integrity`) detects corrupted
//! tiles at task granularity and recomputes the struck task from its
//! rollback snapshot.  This module prices that *detect-recompute* policy
//! against the two classical alternatives over a corruption-rate sweep:
//!
//! * **detect-recompute** — every task pays a verification tax `τ` (guard
//!   reads/writes are O(b²) memory traffic against the kernels' O(b³)
//!   flops), and each corruption costs one extra task execution:
//!   `T·(1+τ)·(1+rate)`;
//! * **checkpoint/restart** — no per-task guards; corruption is caught by
//!   a residual check bundled with each periodic checkpoint, and a hit
//!   rolls back to the last durable checkpoint.  Priced with the
//!   Young/Daly interval for the corruption MTBF, first-order overhead
//!   `T·C/τ* + k·(τ*/2 + R)`;
//! * **unprotected-rerun** — run blind, verify the final residual once,
//!   and rerun the whole factorization until a clean pass: expected
//!   `(T + residual)/(1-p)` where `p` is the probability at least one
//!   task was struck.
//!
//! The guard tax shrinks with tile size (surface-to-volume: O(b²) checksum
//! traffic against O(b³) kernel flops), so detect-recompute wins sooner on
//! the paper's large-tile configurations.

use hqr_runtime::{IntegrityMode, TaskGraph};
use hqr_tile::Layout;

use crate::checkpoint::{young_daly_interval, CheckpointCostModel};
use crate::des::{simulate, SchedPolicy};
use crate::fault::SimError;
use crate::platform::Platform;

/// Cost parameters of the guard-based SDC defense.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SdcCostModel {
    /// Sustained bytes/s one core streams while checksumming a tile
    /// (guard refresh/verify is bandwidth-bound, not flop-bound).
    pub guard_bandwidth: f64,
    /// Wall-clock seconds of one end-of-run residual check
    /// (‖A−QR‖ / ‖QᵀQ−I‖), paid by the non-guarded policies.
    pub residual_check: f64,
}

impl Default for SdcCostModel {
    /// ~4 GB/s streaming checksum per core, 50 ms per residual check.
    fn default() -> Self {
        SdcCostModel { guard_bandwidth: 4e9, residual_check: 0.05 }
    }
}

impl SdcCostModel {
    /// Guard passes one task pays under `mode`, in tile-buffer touches:
    /// Spot refreshes and verifies the write set (2·w); Full adds the
    /// pre-launch pass over the read set and write-set pre-images
    /// (+ r + w).
    pub fn guard_touches(mode: IntegrityMode, reads: usize, writes: usize) -> usize {
        match mode {
            IntegrityMode::Off => 0,
            IntegrityMode::Spot => 2 * writes,
            IntegrityMode::Full => 3 * writes + reads,
        }
    }

    /// Seconds `touches` tile-buffer guard passes take on a `b × b` tile.
    pub fn guard_seconds(&self, b: usize, touches: usize) -> f64 {
        touches as f64 * Platform::tile_bytes(b) / self.guard_bandwidth
    }

    /// The verification tax `τ`: total guard seconds over total kernel
    /// seconds for `graph` on `platform`.  Zero when `mode` is off;
    /// shrinks as `b` grows (O(b²) checksum traffic vs O(b³) flops).
    pub fn verification_tax(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        mode: IntegrityMode,
    ) -> f64 {
        let b = graph.b();
        let mut guard = 0.0;
        let mut work = 0.0;
        for t in graph.tasks() {
            let touches = Self::guard_touches(mode, t.reads().len(), t.writes().len());
            guard += self.guard_seconds(b, touches);
            work += platform.kernel_seconds(t.kind, b);
        }
        if work > 0.0 {
            guard / work
        } else {
            0.0
        }
    }
}

/// One point of the corruption-rate sweep: the three policies' expected
/// makespans at a given per-task corruption probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SdcSweepPoint {
    /// Per-task corruption probability.
    pub rate: f64,
    /// Expected corruption strikes over the whole run (`rate · n_tasks`).
    pub expected_corruptions: f64,
    /// Guard-verified execution with per-task recompute.
    pub detect_recompute: f64,
    /// Periodic checkpoint + residual check, rollback on a hit.
    pub checkpoint_restart: f64,
    /// Blind execution, full rerun until the final residual passes.
    pub unprotected_rerun: f64,
}

/// Price the three SDC recovery policies across `rates` (per-task
/// corruption probabilities in `[0, 1]`).  The fault-free makespan comes
/// from the DES; the policy arms are analytic on top of it, so all three
/// face the same baseline.
#[allow(clippy::too_many_arguments)]
pub fn sdc_policy_sweep(
    graph: &TaskGraph,
    layout: &Layout,
    platform: &Platform,
    policy: SchedPolicy,
    mode: IntegrityMode,
    model: &SdcCostModel,
    ckpt: &CheckpointCostModel,
    rates: &[f64],
) -> Result<Vec<SdcSweepPoint>, SimError> {
    if !(model.guard_bandwidth.is_finite() && model.guard_bandwidth > 0.0) {
        return Err(SimError::Config {
            message: format!("guard_bandwidth must be positive, got {}", model.guard_bandwidth),
        });
    }
    if !(model.residual_check.is_finite() && model.residual_check >= 0.0) {
        return Err(SimError::Config {
            message: format!("residual_check must be >= 0, got {}", model.residual_check),
        });
    }
    if let Some(&bad) = rates.iter().find(|r| !(r.is_finite() && (0.0..=1.0).contains(*r))) {
        return Err(SimError::Config {
            message: format!("corruption rate must be in [0, 1], got {bad}"),
        });
    }
    let _ = policy; // the analytic arms share the DES baseline schedule
    let t_base = simulate(graph, layout, platform).makespan;
    let tau = model.verification_tax(graph, platform, mode);
    let n = graph.tasks().len() as f64;
    let cost =
        ckpt.checkpoint_seconds(platform, graph.mt(), graph.nt(), graph.b()) + model.residual_check;

    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let k = rate * n;
        let detect_recompute = t_base * (1.0 + tau) * (1.0 + rate);
        let checkpoint_restart = if k > 0.0 {
            let mtbf = t_base / k;
            let interval = young_daly_interval(cost, mtbf).max(cost.max(1e-9));
            t_base + t_base * cost / interval + k * (interval / 2.0 + ckpt.restart_overhead)
        } else {
            t_base + model.residual_check
        };
        // Probability a full pass finishes clean; floored so a certainty
        // of corruption prices as "astronomical", not infinite.
        let p_clean = (1.0 - rate).powf(n).max(1e-9);
        let unprotected_rerun = (t_base + model.residual_check) / p_clean;
        points.push(SdcSweepPoint {
            rate,
            expected_corruptions: k,
            detect_recompute,
            checkpoint_restart,
            unprotected_rerun,
        });
    }
    Ok(points)
}

/// First sweep point where guard-based detect-recompute beats
/// checkpoint/restart, if any.  At rate 0 the guards pay their tax for
/// nothing; as the rate grows the checkpoint arm's √-scaled I/O and
/// rollback costs overtake the linear recompute cost.
pub fn find_sdc_crossover(points: &[SdcSweepPoint]) -> Option<&SdcSweepPoint> {
    points.iter().find(|p| p.rate > 0.0 && p.detect_recompute < p.checkpoint_restart)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqr_runtime::ElimOp;
    use hqr_tile::ProcessGrid;

    fn flat_graph(mt: usize, nt: usize, b: usize) -> TaskGraph {
        let elims: Vec<ElimOp> = (0..mt.min(nt))
            .flat_map(|k| {
                ((k + 1)..mt).map(move |i| ElimOp::new(k as u32, i as u32, k as u32, true))
            })
            .collect();
        TaskGraph::build(mt, nt, b, &elims)
    }

    fn small_platform(nodes: usize) -> Platform {
        Platform { nodes, cores_per_node: 2, ..Platform::edel() }
    }

    #[test]
    fn verification_tax_orders_by_mode_and_shrinks_with_tile_size() {
        let m = SdcCostModel::default();
        let p = small_platform(4);
        let g = flat_graph(6, 4, 64);
        let off = m.verification_tax(&g, &p, IntegrityMode::Off);
        let spot = m.verification_tax(&g, &p, IntegrityMode::Spot);
        let full = m.verification_tax(&g, &p, IntegrityMode::Full);
        assert_eq!(off, 0.0);
        assert!(0.0 < spot && spot < full, "spot {spot} vs full {full}");
        // Surface-to-volume: bigger tiles amortize the O(b²) guard work.
        let g_big = flat_graph(6, 4, 256);
        let full_big = m.verification_tax(&g_big, &p, IntegrityMode::Full);
        assert!(full_big < full, "tax must shrink with b: {full_big} vs {full}");
    }

    #[test]
    fn guard_touches_follow_the_read_write_sets() {
        // GEQRT: w=3, r=0; TSMQR: w=2, r=2.
        assert_eq!(SdcCostModel::guard_touches(IntegrityMode::Spot, 0, 3), 6);
        assert_eq!(SdcCostModel::guard_touches(IntegrityMode::Full, 0, 3), 9);
        assert_eq!(SdcCostModel::guard_touches(IntegrityMode::Spot, 2, 2), 4);
        assert_eq!(SdcCostModel::guard_touches(IntegrityMode::Full, 2, 2), 8);
        assert_eq!(SdcCostModel::guard_touches(IntegrityMode::Off, 2, 2), 0);
    }

    #[test]
    fn sweep_is_well_formed_and_has_a_crossover() {
        let g = flat_graph(8, 4, 128);
        let p = small_platform(4);
        let layout = Layout::Cyclic2D(ProcessGrid::new(2, 2));
        let rates = [0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1];
        let points = sdc_policy_sweep(
            &g,
            &layout,
            &p,
            SchedPolicy::PanelFirst,
            IntegrityMode::Full,
            &SdcCostModel::default(),
            &CheckpointCostModel::default(),
            &rates,
        )
        .unwrap();
        assert_eq!(points.len(), rates.len());
        let t_base = simulate(&g, &layout, &p).makespan;
        // At rate 0 the guards pay their tax for nothing; the other arms
        // only owe a residual check.
        assert!(points[0].detect_recompute > t_base);
        assert!(points[0].checkpoint_restart >= t_base);
        assert_eq!(points[0].expected_corruptions, 0.0);
        for w in points.windows(2) {
            assert!(w[1].detect_recompute > w[0].detect_recompute);
            assert!(w[1].unprotected_rerun >= w[0].unprotected_rerun);
        }
        // Somewhere in the sweep detect-recompute overtakes checkpointing.
        let cross = find_sdc_crossover(&points).expect("crossover in 0..0.1");
        assert!(cross.rate > 0.0);
        assert!(cross.detect_recompute < cross.checkpoint_restart);
        // Past the crossover, the blind policy is the worst of the three.
        let last = points.last().unwrap();
        assert!(last.unprotected_rerun > last.detect_recompute);
        assert!(last.unprotected_rerun > last.checkpoint_restart);
    }

    #[test]
    fn degenerate_model_and_rates_are_rejected() {
        let g = flat_graph(4, 2, 64);
        let p = small_platform(2);
        let layout = Layout::Cyclic2D(ProcessGrid::new(2, 1));
        let run = |model: &SdcCostModel, rates: &[f64]| {
            sdc_policy_sweep(
                &g,
                &layout,
                &p,
                SchedPolicy::PanelFirst,
                IntegrityMode::Full,
                model,
                &CheckpointCostModel::default(),
                rates,
            )
        };
        let bad = SdcCostModel { guard_bandwidth: 0.0, ..Default::default() };
        assert!(matches!(run(&bad, &[0.0]), Err(SimError::Config { .. })));
        let ok = SdcCostModel::default();
        assert!(matches!(run(&ok, &[1.5]), Err(SimError::Config { .. })));
        assert!(matches!(run(&ok, &[-0.1]), Err(SimError::Config { .. })));
        assert!(matches!(run(&ok, &[f64::NAN]), Err(SimError::Config { .. })));
        assert!(run(&ok, &[0.0, 0.5, 1.0]).is_ok());
    }
}
